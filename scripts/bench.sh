#!/usr/bin/env bash
# Benchmarks: builds the bench binaries offline in release mode and writes
# machine-readable results to the repository root:
#
#   BENCH_analyzer.json — median ns/scenario for a core-count-aware
#                         analyzer-worker sweep plus the shared-cache
#                         hit rate
#   BENCH_serve.json    — HTTP request throughput and p50/p99 status-poll
#                         latency of the nptsn-serve service
#   BENCH_obs.json      — nptsn-obs tracing overhead on the analyzer
#                         workload, recording disabled and enabled, plus
#                         the flight-recorder record/snapshot cost and the
#                         armed-tracing overhead on a routed two-shard
#                         submit-to-drain round (the binary itself fails
#                         if disabled overhead >= 5% or armed routed
#                         overhead >= 5%)
#   BENCH_chaos.json    — seeded chaos-storm results: determinism check,
#                         clean vs storm job throughput, p99 recovery
#                         latency, recovery counters, the durable-queue
#                         kill-and-restart storm, and the routed two-shard
#                         storm with a mid-work kill -9 (the binary fails
#                         if disarmed chaos overhead >= 10%, a recovery
#                         path never fired, any job was lost, any routed
#                         acked job was lost, or two same-seed storms
#                         diverge)
#   BENCH_store.json    — durable store microbenchmarks: append throughput
#                         (synced and unsynced), recovery time vs log
#                         size, and the compaction pause
#   BENCH_infer.json    — inference micro-batching: per-job p50/p99 latency
#                         and jobs/s of the full infer pipeline at batch
#                         1/8/64, fused-forward latency on ORION-scale
#                         observations, and the lane-vectorized matmul
#                         kernel speedup (the binary itself fails if the
#                         fused forward is not bit-identical to solo, a
#                         batched job result differs from its solo
#                         reference, or batch-64 throughput is below 4x
#                         batch-1)
#   BENCH_router.json   — sharded front tier: submit-to-drain throughput
#                         routed over a two-shard fleet vs direct to a
#                         single shard, and kill -9 failover latency to
#                         the first replayed job (p50/p99 over several
#                         rounds; the binary itself fails if routed
#                         overhead exceeds 25% or any acked job is lost)
#   BENCH_membership.json — elastic membership (DESIGN.md §16): the
#                         rejoin catch-up round trip of a restarted
#                         shard, and kill-to-served failover p50/p99 at
#                         replication factor 1 (dead-log replay) vs 2
#                         (replica promotion; the binary itself fails if
#                         the RF2 p99 reaches 50 ms or any acked job is
#                         lost)
#
# Usage: scripts/bench.sh [--smoke]
#   --smoke   shrink iteration counts to a fast plumbing check (used by
#             scripts/verify.sh; numbers are NOT representative)
set -euo pipefail
cd "$(dirname "$0")/.."

analyzer_out="BENCH_analyzer.json"
serve_out="BENCH_serve.json"
obs_out="BENCH_obs.json"
chaos_out="BENCH_chaos.json"
store_out="BENCH_store.json"
infer_out="BENCH_infer.json"
router_out="BENCH_router.json"
membership_out="BENCH_membership.json"
if [[ "${1:-}" == "--smoke" ]]; then
    export NPTSN_BENCH_SMOKE=1
    # Smoke numbers are not representative; keep them out of the committed
    # BENCH_*.json files.
    analyzer_out="target/BENCH_analyzer.smoke.json"
    serve_out="target/BENCH_serve.smoke.json"
    obs_out="target/BENCH_obs.smoke.json"
    chaos_out="target/BENCH_chaos.smoke.json"
    store_out="target/BENCH_store.smoke.json"
    infer_out="target/BENCH_infer.smoke.json"
    router_out="target/BENCH_router.smoke.json"
    membership_out="target/BENCH_membership.smoke.json"
fi

cargo build --release --offline -p nptsn-bench \
    --bin micro --bin serve_bench --bin obs_bench --bin chaos_storm --bin store_bench \
    --bin infer_bench --bin router_bench --bin membership_bench
NPTSN_BENCH_OUT="${NPTSN_BENCH_OUT:-$analyzer_out}" ./target/release/micro analyzer_json
NPTSN_BENCH_OUT="${NPTSN_SERVE_BENCH_OUT:-$serve_out}" ./target/release/serve_bench
NPTSN_BENCH_OUT="${NPTSN_OBS_BENCH_OUT:-$obs_out}" ./target/release/obs_bench
# The chaos storm is seeded: the same seed replays the same storm, so a
# reported failure reproduces exactly from the BENCH_chaos.json "seed".
NPTSN_BENCH_OUT="${NPTSN_CHAOS_BENCH_OUT:-$chaos_out}" ./target/release/chaos_storm --seed 42
NPTSN_BENCH_OUT="${NPTSN_STORE_BENCH_OUT:-$store_out}" ./target/release/store_bench
NPTSN_BENCH_OUT="${NPTSN_INFER_BENCH_OUT:-$infer_out}" ./target/release/infer_bench
# The router bench spawns its shard fleet as child processes of itself
# (kill -9 failover needs real processes) and gates routed overhead <=25%.
NPTSN_BENCH_OUT="${NPTSN_ROUTER_BENCH_OUT:-$router_out}" ./target/release/router_bench
# The membership bench spawns its fleets the same way and gates the
# pause-free-failover promise: RF2 kill-to-served p99 under 50 ms.
NPTSN_BENCH_OUT="${NPTSN_MEMBERSHIP_BENCH_OUT:-$membership_out}" ./target/release/membership_bench
