#!/usr/bin/env bash
# Analyzer benchmark: builds the bench binary offline in release mode and
# writes BENCH_analyzer.json (median ns/scenario for 1/2/4/8 analyzer
# workers plus the shared-cache hit rate) to the repository root.
#
# Usage: scripts/bench.sh [--smoke]
#   --smoke   shrink iteration counts to a fast plumbing check (used by
#             scripts/verify.sh; numbers are NOT representative)
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--smoke" ]]; then
    export NPTSN_BENCH_SMOKE=1
    # Smoke numbers are not representative; keep them out of the committed
    # BENCH_analyzer.json unless the caller explicitly asked for a path.
    export NPTSN_BENCH_OUT="${NPTSN_BENCH_OUT:-target/BENCH_analyzer.smoke.json}"
fi

cargo build --release --offline -p nptsn-bench --bin micro
exec ./target/release/micro analyzer_json
