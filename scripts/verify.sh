#!/usr/bin/env bash
# Hermetic verification: build, test, and lint with no registry access.
# The workspace has zero external dependencies, so --offline must succeed
# even with an empty cargo registry cache.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo clippy --offline --workspace -- -D warnings

# Smoke-run the benchmarks: exercises the parallel + cached analyzer and
# the HTTP service end to end and checks the BENCH_*.json plumbing. This
# includes the seeded chaos storm (chaos_storm --seed 42), which fails on
# its own if a job is lost, anything hangs, a recovery path never fires,
# or disarmed fault-injection overhead reaches 10%.
scripts/bench.sh --smoke

# Chaos smoke gates, re-checked from the storm's JSON so a regression in
# the binary's own gating cannot pass silently: the storm replayed
# deterministically, and every recovery counter moved.
chaos_json="target/BENCH_chaos.smoke.json"
grep -q '"determinism": true' "$chaos_json" \
    || { echo "chaos smoke: storm was not deterministic" >&2; exit 1; }
for counter in ppo_rollbacks deadline_kills client_retries; do
    if grep -q "\"$counter\": 0," "$chaos_json"; then
        echo "chaos smoke: recovery counter $counter never moved" >&2
        exit 1
    fi
done
# Router storm gates: the routed two-shard phase failed over, replayed the
# dead shard's log, and replayed byte-identically under the same seed.
grep -q '"router_identical": true' "$chaos_json" \
    || { echo "chaos smoke: router storm was not deterministic" >&2; exit 1; }
for counter in router_failovers router_replayed; do
    if grep -q "\"$counter\": 0," "$chaos_json"; then
        echo "chaos smoke: router storm counter $counter never moved" >&2
        exit 1
    fi
done
# Membership storm gates (DESIGN.md §16): the RF2 fleet promoted replicas
# on the kill, the restarted shard rejoined and drained its share, and the
# whole storm replayed byte-identically under the same seed.
grep -q '"membership_identical": true' "$chaos_json" \
    || { echo "chaos smoke: membership storm was not deterministic" >&2; exit 1; }
for counter in membership_rejoins membership_migrated membership_promotions; do
    if grep -q "\"$counter\": 0," "$chaos_json"; then
        echo "chaos smoke: membership storm counter $counter never moved" >&2
        exit 1
    fi
done
echo "chaos smoke: deterministic storm + live recovery counters confirmed"

# Trace smoke test: a tiny RL plan run with --trace-out must produce a
# Perfetto-loadable trace containing the planner/analyzer span taxonomy
# (trace_check validates the JSON with the in-tree parser) and a profile
# table on stdout.
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
cat > "$trace_dir/smoke.tssdn" <<'EOF'
[nodes]
es a
es b
sw s0
sw s1
[links]
a s0
a s1
b s0
b s1
s0 s1
[flows]
a b 500 128
EOF
cargo build --release --offline -p nptsn-bench --bin trace_check
./target/release/nptsn plan "$trace_dir/smoke.tssdn" \
    --epochs 1 --steps 32 --seed 1 \
    --trace-out "$trace_dir/trace.json" --profile > "$trace_dir/plan.out"
./target/release/trace_check "$trace_dir/trace.json" \
    planner.run planner.epoch planner.rollout analyzer.analyze soag.generate
grep -q "planner.epoch" "$trace_dir/plan.out" \
    || { echo "trace smoke: no profile table on stdout" >&2; exit 1; }
rm -rf "$trace_dir"
trap - EXIT
echo "trace smoke: trace + profile confirmed"

# Serve smoke test: start the service on an ephemeral port, run a greedy
# plan job through the in-tree client (all 200s, non-empty /metrics), and
# check the drain-and-shutdown path completes cleanly.
serve_log="$(mktemp)"
./target/release/nptsn serve --addr 127.0.0.1:0 --serve-workers 1 --queue-depth 4 \
    >"$serve_log" 2>&1 &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^nptsn-serve listening on \([0-9.:]*\) .*/\1/p' "$serve_log")"
    [[ -n "$addr" ]] && break
    sleep 0.1
done
[[ -n "$addr" ]] || { echo "serve smoke: server never printed its address" >&2; exit 1; }
# Wait on readiness, not a fixed sleep: /readyz answers 200 once the
# queue and workers are up.
./target/release/readyz_wait "$addr" 30
./target/release/serve_smoke "$addr"
wait "$serve_pid"
trap - EXIT
grep -q "drained and stopped" "$serve_log" \
    || { echo "serve smoke: no clean shutdown message" >&2; exit 1; }
echo "serve smoke: clean shutdown confirmed"

# Store smoke test (DESIGN.md §12): a server with a --data-dir is killed
# with SIGKILL mid-work — a finished verify job, a registered checkpoint,
# one running and several queued burn jobs on the books — then restarted
# on the same directory. store_smoke asserts the finished result comes
# back byte-identical, the registry survived, and every interrupted job
# is re-enqueued and driven to a terminal state.
store_state="$(mktemp -d)"
store_log="$store_state/serve.log"
start_store_server() {
    ./target/release/nptsn serve --addr 127.0.0.1:0 --serve-workers 1 \
        --queue-depth 16 --data-dir "$store_state/data" >"$store_log" 2>&1 &
    serve_pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/^nptsn-serve listening on \([0-9.:]*\) .*/\1/p' "$store_log")"
        [[ -n "$addr" ]] && break
        sleep 0.1
    done
    [[ -n "$addr" ]] || { echo "store smoke: server never printed its address" >&2; exit 1; }
    ./target/release/readyz_wait "$addr" 30
}
trap 'kill -9 "$serve_pid" 2>/dev/null || true; rm -rf "$store_state"' EXIT
start_store_server
./target/release/store_smoke seed "$addr" "$store_state"
kill -9 "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
start_store_server
grep -q "jobs re-enqueued" "$store_log" \
    || { echo "store smoke: restart reported no recovery" >&2; exit 1; }
if grep -q "(0 jobs re-enqueued)" "$store_log"; then
    echo "store smoke: restart re-enqueued nothing" >&2
    exit 1
fi
./target/release/store_smoke check "$addr" "$store_state"
wait "$serve_pid"
trap - EXIT
rm -rf "$store_state"
echo "store smoke: kill -9 recovery confirmed"

# Infer micro-batching smoke test (DESIGN.md §13): a one-worker server
# with --infer-batch-max 8 must coalesce concurrent identical infer jobs
# into fused batched forwards. infer_smoke registers a checkpoint, piles
# four identical infer jobs behind a burn job, asserts every outcome is
# identical and that /metrics counted at least one batched forward.
infer_log="$(mktemp)"
./target/release/nptsn serve --addr 127.0.0.1:0 --serve-workers 1 --queue-depth 16 \
    --infer-batch-max 8 >"$infer_log" 2>&1 &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^nptsn-serve listening on \([0-9.:]*\) .*/\1/p' "$infer_log")"
    [[ -n "$addr" ]] && break
    sleep 0.1
done
[[ -n "$addr" ]] || { echo "infer smoke: server never printed its address" >&2; exit 1; }
./target/release/readyz_wait "$addr" 30
./target/release/infer_smoke "$addr"
wait "$serve_pid"
trap - EXIT
grep -q "drained and stopped" "$infer_log" \
    || { echo "infer smoke: no clean shutdown message" >&2; exit 1; }
rm -f "$infer_log"
echo "infer smoke: coalesced batched inference confirmed"

# Router smoke test (DESIGN.md §14): two durable shards behind the
# consistent-hash front tier, one killed with SIGKILL mid-submission.
# router_smoke owns the kill and asserts the durability contract: every
# job the router acked reaches a terminal state through the router, with
# the failover and the dead-shard replay visible in /metrics.
router_state="$(mktemp -d)"
trap 'kill -9 ${shard_a_pid:-} ${shard_b_pid:-} ${router_pid:-} 2>/dev/null || true; \
     rm -rf "$router_state"' EXIT
start_shard() { # $1: log file, $2: data dir, $3: shard name
    ./target/release/nptsn serve --addr 127.0.0.1:0 --serve-workers 1 \
        --queue-depth 32 --data-dir "$2" --shard-name "$3" >"$1" 2>&1 &
    shard_pid=$!
    shard_addr=""
    for _ in $(seq 1 100); do
        shard_addr="$(sed -n 's/^nptsn-serve listening on \([0-9.:]*\) .*/\1/p' "$1")"
        [[ -n "$shard_addr" ]] && break
        sleep 0.1
    done
    [[ -n "$shard_addr" ]] \
        || { echo "router smoke: shard $3 never printed its address" >&2; exit 1; }
    ./target/release/readyz_wait "$shard_addr" 30
}
start_shard "$router_state/shard-a.log" "$router_state/data-a" s0
shard_a_pid=$shard_pid; shard_a_addr=$shard_addr
start_shard "$router_state/shard-b.log" "$router_state/data-b" s1
shard_b_pid=$shard_pid; shard_b_addr=$shard_addr
router_log="$router_state/router.log"
./target/release/nptsn router --addr 127.0.0.1:0 \
    --shards "$shard_a_addr,$shard_b_addr" \
    --data-dirs "$router_state/data-a,$router_state/data-b" \
    --names s0,s1 >"$router_log" 2>&1 &
router_pid=$!
router_addr=""
for _ in $(seq 1 100); do
    router_addr="$(sed -n 's/^nptsn-router listening on \([0-9.:]*\) .*/\1/p' "$router_log")"
    [[ -n "$router_addr" ]] && break
    sleep 0.1
done
[[ -n "$router_addr" ]] \
    || { echo "router smoke: router never printed its address" >&2; exit 1; }
./target/release/readyz_wait "$router_addr" 30
./target/release/router_smoke "$router_addr" --kill-pid "$shard_a_pid"
wait "$router_pid"
wait "$shard_a_pid" 2>/dev/null || true
# The router's /shutdown stops only the front tier; reap the survivor.
kill -9 "$shard_b_pid" 2>/dev/null || true
wait "$shard_b_pid" 2>/dev/null || true
trap - EXIT
grep -q "nptsn-router stopped" "$router_log" \
    || { echo "router smoke: no clean router shutdown message" >&2; exit 1; }
rm -rf "$router_state"
echo "router smoke: kill -9 failover with zero acked loss confirmed"

# Fleet observability smoke (DESIGN.md §15): a fresh two-shard fleet with
# an explicit --flight-capacity, one traced job routed through the front
# tier. trace_smoke asserts the merged Chrome-trace document (every span
# under the one router-minted trace id), the flight ring and the
# federated /metrics, and writes the merged trace for the greps below:
# both shard process rows plus spans from both sides of the process
# boundary must be in the document a Perfetto user would load.
obs_state="$(mktemp -d)"
trap 'kill -9 ${shard_a_pid:-} ${shard_b_pid:-} ${router_pid:-} 2>/dev/null || true; \
     rm -rf "$obs_state"' EXIT
start_shard "$obs_state/shard-a.log" "$obs_state/data-a" s0
shard_a_pid=$shard_pid; shard_a_addr=$shard_addr
start_shard "$obs_state/shard-b.log" "$obs_state/data-b" s1
shard_b_pid=$shard_pid; shard_b_addr=$shard_addr
obs_router_log="$obs_state/router.log"
./target/release/nptsn router --addr 127.0.0.1:0 \
    --shards "$shard_a_addr,$shard_b_addr" \
    --data-dirs "$obs_state/data-a,$obs_state/data-b" \
    --names s0,s1 --flight-capacity 1024 >"$obs_router_log" 2>&1 &
router_pid=$!
router_addr=""
for _ in $(seq 1 100); do
    router_addr="$(sed -n 's/^nptsn-router listening on \([0-9.:]*\) .*/\1/p' "$obs_router_log")"
    [[ -n "$router_addr" ]] && break
    sleep 0.1
done
[[ -n "$router_addr" ]] \
    || { echo "obs smoke: router never printed its address" >&2; exit 1; }
./target/release/readyz_wait "$router_addr" 30
./target/release/trace_smoke "$router_addr" "$obs_state/merged-trace.json" \
    --expect-capacity 1024
for needle in '"name":"s0"' '"name":"s1"' '"name":"job.run"' '"name":"router.forward"'; do
    grep -q "$needle" "$obs_state/merged-trace.json" \
        || { echo "obs smoke: $needle missing from the merged trace" >&2; exit 1; }
done
wait "$router_pid"
kill -9 "$shard_a_pid" "$shard_b_pid" 2>/dev/null || true
wait "$shard_a_pid" 2>/dev/null || true
wait "$shard_b_pid" 2>/dev/null || true
trap - EXIT
rm -rf "$obs_state"
echo "obs smoke: merged fleet trace + flight ring + federation confirmed"

# Membership smoke (DESIGN.md §16): membership_smoke spawns its own RF2
# fleet as child processes and walks the full elastic-membership story —
# kill -9 promotes the passive replicas pause-free, the restarted shard
# re-announces through POST /admin/shards and catches up, and a brand-new
# shard joins the running fleet and drains its share — asserting the
# counters and every acked job's survival at each step.
cargo build --release --offline -p nptsn-bench --bin membership_smoke
./target/release/membership_smoke
echo "membership smoke: rejoin + scale-out + replica promotion confirmed"
