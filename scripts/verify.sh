#!/usr/bin/env bash
# Hermetic verification: build, test, and lint with no registry access.
# The workspace has zero external dependencies, so --offline must succeed
# even with an empty cargo registry cache.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo clippy --offline -- -D warnings

# Smoke-run the analyzer benchmark: exercises the parallel + cached
# analyzer end to end and checks the BENCH_analyzer.json plumbing.
scripts/bench.sh --smoke
