//! Explore the failure analyzer and recovery machinery directly.
//!
//! Builds a small TSSDN by hand, injects failures, shows the recovery
//! re-routing flows, and runs the full Algorithm 3 analysis at different
//! reliability goals.
//!
//! Run with: `cargo run --release --example failure_analysis`

use std::sync::Arc;

use nptsn::{FailureAnalyzer, PlanningProblem, Verdict};
use nptsn_sched::{FlowSet, FlowSpec, NetworkBehavior, ShortestPathRecovery, TasConfig};
use nptsn_topo::{Asil, ComponentLibrary, ConnectionGraph, FailureScenario};

fn main() {
    // A theta network: two parallel switches between the stations.
    let mut gc = ConnectionGraph::new();
    let a = gc.add_end_station("sensor");
    let b = gc.add_end_station("ecu");
    let s0 = gc.add_switch("sw0");
    let s1 = gc.add_switch("sw1");
    for (u, v) in [(a, s0), (s0, b), (a, s1), (s1, b), (s0, s1)] {
        gc.add_candidate_link(u, v, 1.0).unwrap();
    }
    let gc = Arc::new(gc);

    let mut topo = gc.empty_topology();
    topo.add_switch(s0, Asil::A).unwrap();
    topo.add_switch(s1, Asil::A).unwrap();
    for (u, v) in [(a, s0), (s0, b), (a, s1), (s1, b)] {
        topo.add_link(u, v).unwrap();
    }

    let tas = TasConfig::default();
    let flows = FlowSet::new(vec![FlowSpec::new(a, b, 500, 256)]).unwrap();
    let nbf = ShortestPathRecovery::new();

    // 1. Run the NBF under explicit failure scenarios.
    println!("== recovery behavior (stateless NBF: {}) ==", nbf.name());
    for failure in [
        FailureScenario::none(),
        FailureScenario::switches(vec![s0]),
        FailureScenario::switches(vec![s1]),
        FailureScenario::switches(vec![s0, s1]),
    ] {
        let out = nbf.recover(&topo, &failure, &tas, &flows);
        let path = out
            .state
            .assignment(nptsn_sched::FlowId::from_index(0))
            .map(|asg| {
                asg.path()
                    .nodes()
                    .iter()
                    .map(|&n| gc.name(n).to_string())
                    .collect::<Vec<_>>()
                    .join(" -> ")
            })
            .unwrap_or_else(|| "UNRECOVERABLE".to_string());
        println!("  {failure}: {path}   ({})", out.errors);
    }

    // 2. Failure probabilities (Eq. 2).
    println!("\n== failure probabilities ==");
    for (label, failure) in [
        ("single ASIL-A switch", FailureScenario::switches(vec![s0])),
        ("both ASIL-A switches", FailureScenario::switches(vec![s0, s1])),
    ] {
        println!("  {label}: {:.3e}", topo.failure_probability(&failure));
    }

    // 3. Full Algorithm 3 analysis at different reliability goals.
    println!("\n== failure analysis (Algorithm 3) ==");
    let flows2 = flows.clone();
    for goal in [1e-6, 1e-9] {
        let problem = PlanningProblem::new(
            Arc::clone(&gc),
            ComponentLibrary::automotive(),
            tas,
            flows2.clone(),
            goal,
            Arc::new(ShortestPathRecovery::new()),
        )
        .unwrap();
        match FailureAnalyzer::new().analyze(&problem, &topo) {
            Verdict::Reliable => println!("  R = {goal:.0e}: RELIABLE"),
            Verdict::Unreliable { failure, errors } => {
                println!("  R = {goal:.0e}: UNRELIABLE under {failure} ({errors})")
            }
            Verdict::Inconclusive { scenarios_checked } => {
                println!("  R = {goal:.0e}: INCONCLUSIVE after {scenarios_checked} scenarios")
            }
        }
    }
    println!(
        "\nAt R = 1e-6 the dual-A failure (~1e-6 exact exponential value is \
         just below R) is a safe fault; at R = 1e-9 it must be survived and \
         the theta network fails the guarantee."
    );
}
