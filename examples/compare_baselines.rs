//! Compare every planner of the evaluation on one ADS workload:
//! NPTSN, the greedy SOAG ablation, TRH (static FRER) and the
//! NeuroPlan-style link-level RL agent.
//!
//! Run with: `cargo run --release --example compare_baselines`

use std::sync::Arc;

use nptsn::{GreedyPlanner, Planner, PlannerConfig, PlanningProblem};
use nptsn_baselines::{NeuroPlanAgent, Trh};
use nptsn_scenarios::{ads, random_flows};
use nptsn_sched::ShortestPathRecovery;
use nptsn_topo::ComponentLibrary;

fn main() {
    let scenario = ads();
    let flows = random_flows(&scenario.graph, 12, 7);
    let problem = PlanningProblem::new(
        Arc::clone(&scenario.graph),
        ComponentLibrary::automotive(),
        scenario.tas,
        flows,
        1e-6,
        Arc::new(ShortestPathRecovery::new()),
    )
    .expect("scenario inputs are consistent");

    println!("ADS, 12 flows, R = 1e-6\n");
    println!("{:<12} {:>9} {:>10} {:>22}", "planner", "reliable", "cost", "ASIL (A/B/C/D)");

    // TRH: static FRER redundancy over ASIL-B components.
    let trh = Trh::new().plan(&problem);
    println!(
        "{:<12} {:>9} {:>10.0} {:>22}",
        "TRH",
        trh.reliable,
        trh.cost,
        format!("all B ({} switches)", trh.topology.selected_switches().len())
    );

    // Greedy ablation: SOAG actions, myopic cost rule.
    let greedy = GreedyPlanner::new(problem.clone(), 16).run(8, 0);
    match &greedy {
        Some(sol) => {
            let h = sol.asil_histogram();
            println!(
                "{:<12} {:>9} {:>10.0} {:>22}",
                "greedy",
                true,
                sol.cost,
                format!("{}/{}/{}/{}", h[0], h[1], h[2], h[3])
            );
        }
        None => println!("{:<12} {:>9} {:>10} {:>22}", "greedy", false, "-", "-"),
    }

    // NeuroPlan-adapted: link-granularity RL.
    let np_config = PlannerConfig {
        max_epochs: 12,
        steps_per_epoch: 256,
        ..PlannerConfig::quick()
    };
    let np = NeuroPlanAgent::new(problem.clone(), np_config).run();
    match &np.best {
        Some(sol) => {
            let h = sol.asil_histogram();
            println!(
                "{:<12} {:>9} {:>10.0} {:>22}",
                "NeuroPlan",
                true,
                sol.cost,
                format!("{}/{}/{}/{}", h[0], h[1], h[2], h[3])
            );
        }
        None => println!(
            "{:<12} {:>9} {:>10} {:>22}",
            "NeuroPlan",
            false,
            "-",
            format!("({} dead ends)", np.dead_ends)
        ),
    }

    // NPTSN.
    let report = Planner::new(problem.clone(), PlannerConfig::quick()).run();
    match &report.best {
        Some(sol) => {
            let h = sol.asil_histogram();
            println!(
                "{:<12} {:>9} {:>10.0} {:>22}",
                "NPTSN",
                true,
                sol.cost,
                format!("{}/{}/{}/{}", h[0], h[1], h[2], h[3])
            );
        }
        None => println!("{:<12} {:>9} {:>10} {:>22}", "NPTSN", false, "-", "-"),
    }

    println!(
        "\n(Each RL planner runs a reduced budget here; the full Table II \
         settings are PlannerConfig::default_paper().)"
    );
}
