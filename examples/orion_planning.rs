//! Plan the ORION crew-exploration-vehicle network (Section VI-A) and
//! compare against the manually designed original topology.
//!
//! Run with: `cargo run --release --example orion_planning [flows] [epochs]`

use std::sync::Arc;

use nptsn::{Planner, PlannerConfig, PlanningProblem};
use nptsn_baselines::evaluate_original;
use nptsn_scenarios::{orion, random_flows};
use nptsn_sched::ShortestPathRecovery;
use nptsn_topo::ComponentLibrary;

fn main() {
    let mut args = std::env::args().skip(1);
    let flow_count: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);
    let epochs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);

    let scenario = orion();
    let flows = random_flows(&scenario.graph, flow_count, 1);
    println!(
        "ORION scenario: {} stations, {} optional switches, {} optional links, {} flows",
        scenario.graph.end_stations().len(),
        scenario.graph.switches().len(),
        scenario.graph.candidate_link_count(),
        flows.len()
    );

    let problem = PlanningProblem::new(
        Arc::clone(&scenario.graph),
        ComponentLibrary::automotive(),
        scenario.tas,
        flows,
        1e-6,
        Arc::new(ShortestPathRecovery::new()),
    )
    .expect("scenario inputs are consistent");

    // Baseline: the original all-ASIL-D design.
    let original = evaluate_original(&problem, scenario.original.as_ref().unwrap());
    println!(
        "original topology: reliable = {}, cost = {:.0}",
        original.reliable, original.cost
    );

    // NPTSN.
    let config = PlannerConfig { max_epochs: epochs, ..PlannerConfig::quick() };
    let start = std::time::Instant::now();
    let report = Planner::new(problem.clone(), config).run_with_progress(|s| {
        println!(
            "  epoch {:>3}: return {:>7.3}  solutions {:>3}  best {:?}",
            s.epoch, s.mean_episode_return, s.solutions_found, s.best_cost
        );
    });
    println!("trained in {:.1?}", start.elapsed());

    match report.best {
        Some(best) => {
            println!("\nNPTSN plan: {best}");
            println!(
                "cost reduction vs original: {:.1}x",
                original.cost / best.cost
            );
            println!(
                "verified: {}",
                nptsn::verify_topology(&problem, &best.topology).is_reliable()
            );
        }
        None => println!("no valid plan found — raise the training budget"),
    }
}
