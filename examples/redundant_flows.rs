//! Flow-level redundancy and the frame-level simulator (Section V
//! extension).
//!
//! Plans with the [`RedundantRecovery`] NBF (flows keep replicated
//! instances; a flow fails only when *all* instances fail), verifies with
//! the `AllNodes` analyzer scope, and executes the recovered schedule in
//! the frame-level TAS simulator to report real latencies.
//!
//! Run with: `cargo run --release --example redundant_flows`

use std::sync::Arc;

use nptsn::{FailureAnalyzer, NodeScope, PlanningProblem, Verdict};
use nptsn_sched::{
    simulate, FlowSet, FlowSpec, NetworkBehavior, RedundantRecovery, TasConfig,
};
use nptsn_topo::{Asil, ComponentLibrary, ConnectionGraph, FailureScenario};

fn main() {
    // Dual-homed stations over a two-switch mesh.
    let mut gc = ConnectionGraph::new();
    let cam = gc.add_end_station("camera");
    let ecu = gc.add_end_station("ecu");
    let brake = gc.add_end_station("brake");
    let s0 = gc.add_switch("sw0");
    let s1 = gc.add_switch("sw1");
    for es in [cam, ecu, brake] {
        gc.add_candidate_link(es, s0, 1.0).unwrap();
        gc.add_candidate_link(es, s1, 1.0).unwrap();
    }
    gc.add_candidate_link(s0, s1, 1.0).unwrap();
    let gc = Arc::new(gc);

    let mut topo = gc.empty_topology();
    topo.add_switch(s0, Asil::B).unwrap();
    topo.add_switch(s1, Asil::B).unwrap();
    for es in [cam, ecu, brake] {
        topo.add_link(es, s0).unwrap();
        topo.add_link(es, s1).unwrap();
    }

    let tas = TasConfig::default();
    let flows = FlowSet::new(vec![
        FlowSpec::new(cam, ecu, 500, 512),
        FlowSpec::new(ecu, brake, 250, 128),
    ])
    .unwrap();
    let nbf = RedundantRecovery::new(2);

    println!("== redundant recovery under failures ==");
    for failure in [
        FailureScenario::none(),
        FailureScenario::switches(vec![s0]),
        FailureScenario::switches(vec![s0, s1]),
    ] {
        let out = nbf.recover(&topo, &failure, &tas, &flows);
        println!("  {failure}: {}", out.errors);
        if out.is_success() {
            let report = simulate(&topo, &failure, &tas, &flows, &out.state)
                .expect("recovered schedules simulate");
            println!(
                "    simulated {} frames; worst latency {} slots ({} us), mean {:.1} slots",
                report.frames.len(),
                report.worst_latency_slots(),
                report.frames.iter().map(|f| f.latency_us(&tas)).max().unwrap_or(0),
                report.mean_latency_slots()
            );
        }
    }

    println!("\n== reliability analysis with flow-level redundancy ==");
    // With flow redundancy the analyzer must inject failures into all
    // nodes, end stations included (Section V).
    let problem = PlanningProblem::new(
        Arc::clone(&gc),
        ComponentLibrary::automotive(),
        tas,
        flows,
        1e-6,
        Arc::new(RedundantRecovery::new(2)),
    )
    .unwrap();
    for scope in [NodeScope::SwitchesOnly, NodeScope::AllNodes] {
        let verdict = FailureAnalyzer::with_scope(scope).analyze(&problem, &topo);
        match verdict {
            Verdict::Reliable => println!("  {scope:?}: RELIABLE"),
            Verdict::Unreliable { failure, errors } => {
                println!("  {scope:?}: UNRELIABLE under {failure} ({errors})")
            }
            Verdict::Inconclusive { scenarios_checked } => {
                println!("  {scope:?}: INCONCLUSIVE after {scenarios_checked} scenarios")
            }
        }
    }
}
