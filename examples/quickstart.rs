//! Quickstart: plan a tiny TSSDN end to end.
//!
//! Builds a four-station, two-switch candidate graph, runs the NPTSN
//! planner with a small budget and prints the resulting topology, ASIL
//! allocation and cost.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;

use nptsn::{Planner, PlannerConfig, PlanningProblem};
use nptsn_sched::{FlowSet, FlowSpec, ShortestPathRecovery, TasConfig};
use nptsn_topo::{ComponentLibrary, ConnectionGraph};

fn main() {
    // 1. Describe the possible connections Gc: four end stations that may
    //    attach to either of two switches, which may interconnect.
    let mut gc = ConnectionGraph::new();
    let cam = gc.add_end_station("camera");
    let lidar = gc.add_end_station("lidar");
    let ecu = gc.add_end_station("ecu");
    let brake = gc.add_end_station("brake");
    let sw0 = gc.add_switch("sw0");
    let sw1 = gc.add_switch("sw1");
    for es in [cam, lidar, ecu, brake] {
        gc.add_candidate_link(es, sw0, 1.0).unwrap();
        gc.add_candidate_link(es, sw1, 1.0).unwrap();
    }
    gc.add_candidate_link(sw0, sw1, 1.0).unwrap();

    // 2. The TT flows: sensors stream to the ECU, the ECU commands the
    //    brake. Period = deadline = the 500 us base period.
    let flows = FlowSet::new(vec![
        FlowSpec::new(cam, ecu, 500, 256),
        FlowSpec::new(lidar, ecu, 500, 256),
        FlowSpec::new(ecu, brake, 500, 128),
    ])
    .unwrap();

    // 3. Assemble the planning problem: Table I component library, 20-slot
    //    TAS cycle, reliability goal R = 1e-6, shortest-path recovery NBF.
    let problem = PlanningProblem::new(
        Arc::new(gc),
        ComponentLibrary::automotive(),
        TasConfig::default(),
        flows,
        1e-6,
        Arc::new(ShortestPathRecovery::new()),
    )
    .expect("inputs are consistent");

    // 4. Train the planner briefly and take the best verified plan.
    let config = PlannerConfig {
        max_epochs: 8,
        steps_per_epoch: 128,
        ..PlannerConfig::quick()
    };
    println!("training NPTSN for {} epochs...", config.max_epochs);
    let report = Planner::new(problem.clone(), config).run_with_progress(|s| {
        println!(
            "  epoch {:>2}: mean episode return {:>7.3}, best cost {:?}",
            s.epoch, s.mean_episode_return, s.best_cost
        );
    });

    let best = report.best.expect("this problem has valid plans");
    println!("\nbest plan: {best}");
    let gc = problem.connection_graph();
    for &sw in best.topology.selected_switches() {
        println!(
            "  switch {:<6} {:?}  degree {}",
            gc.name(sw),
            best.topology.switch_asil(sw).unwrap(),
            best.topology.degree(sw),
        );
    }
    for link in best.topology.links() {
        let (u, v) = gc.link_endpoints(link);
        println!(
            "  link   {:<6} -- {:<6} {:?}",
            gc.name(u),
            gc.name(v),
            best.topology.link_asil(link),
        );
    }
    println!(
        "\nverified: {}",
        nptsn::verify_topology(&problem, &best.topology).is_reliable()
    );
}
