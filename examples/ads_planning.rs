//! Plan the autonomous-driving-system (ADS) network of Section VI-B.
//!
//! 12 end stations, up to 4 switches, 54 optional links, 12 TT flows over
//! the 7 safety applications. Prints the training curve and the final
//! plan's ASIL allocation.
//!
//! Run with: `cargo run --release --example ads_planning`

use std::sync::Arc;

use nptsn::{Planner, PlannerConfig, PlanningProblem};
use nptsn_scenarios::{ads, random_flows};
use nptsn_sched::ShortestPathRecovery;
use nptsn_topo::ComponentLibrary;

fn main() {
    let scenario = ads();
    let flows = random_flows(&scenario.graph, 12, 2023);
    println!(
        "ADS scenario: {} stations, {} optional switches, {} optional links, {} flows",
        scenario.graph.end_stations().len(),
        scenario.graph.switches().len(),
        scenario.graph.candidate_link_count(),
        flows.len()
    );

    let problem = PlanningProblem::new(
        Arc::clone(&scenario.graph),
        ComponentLibrary::automotive(),
        scenario.tas,
        flows,
        1e-6,
        Arc::new(ShortestPathRecovery::new()),
    )
    .expect("scenario inputs are consistent");

    let config = PlannerConfig::quick();
    println!(
        "training: {} epochs x {} steps, K = {}, GCN-{} + MLP {:?}",
        config.max_epochs,
        config.steps_per_epoch,
        config.k_paths,
        config.gcn_layers,
        config.mlp_hidden
    );
    let start = std::time::Instant::now();
    let report = Planner::new(problem.clone(), config).run_with_progress(|s| {
        if s.epoch % 4 == 0 {
            println!(
                "  epoch {:>3}: return {:>7.3}  episodes {:>3}  solutions {:>3}  best {:?}",
                s.epoch, s.mean_episode_return, s.episodes, s.solutions_found, s.best_cost
            );
        }
    });
    println!("trained in {:.1?}", start.elapsed());

    match report.best {
        Some(best) => {
            println!("\nbest plan: {best}");
            let hist = best.asil_histogram();
            println!(
                "ASIL allocation: A {} / B {} / C {} / D {}",
                hist[0], hist[1], hist[2], hist[3]
            );
            println!(
                "verified: {}",
                nptsn::verify_topology(&problem, &best.topology).is_reliable()
            );
        }
        None => println!("no valid plan found — raise the training budget"),
    }
}
