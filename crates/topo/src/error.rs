//! Error type for topology operations.

use std::error::Error;
use std::fmt;

use crate::graph::NodeId;

/// Errors returned by graph and topology operations.
///
/// # Examples
///
/// ```
/// use nptsn_topo::{ConnectionGraph, TopoError};
///
/// let mut gc = ConnectionGraph::new();
/// let a = gc.add_end_station("a");
/// // Self-loops are rejected.
/// assert!(matches!(
///     gc.add_candidate_link(a, a, 1.0),
///     Err(TopoError::SelfLoop(_))
/// ));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum TopoError {
    /// A node id referenced a node that does not exist in the graph.
    UnknownNode(NodeId),
    /// The requested link is not part of the candidate connection set `Ec`.
    UnknownLink(NodeId, NodeId),
    /// Attempted to add a link from a node to itself.
    SelfLoop(NodeId),
    /// Attempted to add a link that already exists.
    DuplicateLink(NodeId, NodeId),
    /// The operation requires a switch but the node is an end station.
    NotASwitch(NodeId),
    /// The switch has not been added to the topology.
    SwitchNotSelected(NodeId),
    /// The switch is already part of the topology.
    SwitchAlreadySelected(NodeId),
    /// The switch is already at ASIL D and cannot be upgraded further.
    AlreadyAtMaxAsil(NodeId),
    /// Adding the link would exceed a node's maximum degree.
    DegreeExceeded {
        /// The node whose degree constraint would be violated.
        node: NodeId,
        /// The maximum degree allowed for this node.
        max_degree: usize,
    },
    /// A link endpoint is a switch that has not been selected yet.
    EndpointNotSelected(NodeId),
    /// The component library has no switch model with enough ports.
    NoSwitchModel {
        /// The degree that could not be accommodated.
        degree: usize,
    },
    /// A path was constructed from an empty node sequence.
    EmptyPath,
    /// A path revisited a node (paths are loopless).
    RepeatedNode(NodeId),
}

impl fmt::Display for TopoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopoError::UnknownNode(n) => write!(f, "unknown node {n}"),
            TopoError::UnknownLink(u, v) => {
                write!(f, "link ({u}, {v}) is not a candidate connection")
            }
            TopoError::SelfLoop(n) => write!(f, "self-loop at node {n} is not allowed"),
            TopoError::DuplicateLink(u, v) => write!(f, "link ({u}, {v}) already exists"),
            TopoError::NotASwitch(n) => write!(f, "node {n} is not a switch"),
            TopoError::SwitchNotSelected(n) => {
                write!(f, "switch {n} has not been added to the topology")
            }
            TopoError::SwitchAlreadySelected(n) => {
                write!(f, "switch {n} is already part of the topology")
            }
            TopoError::AlreadyAtMaxAsil(n) => {
                write!(f, "switch {n} is already at ASIL D")
            }
            TopoError::DegreeExceeded { node, max_degree } => {
                write!(f, "adding the link would exceed degree {max_degree} at node {node}")
            }
            TopoError::EndpointNotSelected(n) => {
                write!(f, "link endpoint {n} is a switch outside the topology")
            }
            TopoError::NoSwitchModel { degree } => {
                write!(f, "component library has no switch with at least {degree} ports")
            }
            TopoError::EmptyPath => f.write_str("a path needs at least one node"),
            TopoError::RepeatedNode(n) => {
                write!(f, "paths are loopless but {n} appears twice")
            }
        }
    }
}

impl Error for TopoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errors = [
            TopoError::UnknownNode(NodeId(0)),
            TopoError::UnknownLink(NodeId(0), NodeId(1)),
            TopoError::SelfLoop(NodeId(2)),
            TopoError::DuplicateLink(NodeId(0), NodeId(1)),
            TopoError::NotASwitch(NodeId(3)),
            TopoError::SwitchNotSelected(NodeId(4)),
            TopoError::SwitchAlreadySelected(NodeId(4)),
            TopoError::AlreadyAtMaxAsil(NodeId(4)),
            TopoError::DegreeExceeded { node: NodeId(1), max_degree: 8 },
            TopoError::EmptyPath,
            TopoError::RepeatedNode(NodeId(5)),
            TopoError::EndpointNotSelected(NodeId(5)),
            TopoError::NoSwitchModel { degree: 12 },
        ];
        for err in errors {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TopoError>();
    }
}
