//! Failure scenarios `Gf`.

use std::fmt;

use crate::graph::{LinkId, NodeId};

/// A failure scenario `Gf`: a set of permanently failed switches and links
/// (Section II-A).
///
/// When a link fails, connections are closed in both directions; when a
/// switch fails, every link attached to it is unusable. The failure analyzer
/// reduces arbitrary failures to switch-only failures (Eq. 6), so most
/// scenarios carry only switches, but links are supported for generality and
/// for the reduction proof tests.
///
/// # Examples
///
/// ```
/// use nptsn_topo::{ConnectionGraph, FailureScenario};
///
/// let mut gc = ConnectionGraph::new();
/// let s0 = gc.add_switch("s0");
/// let s1 = gc.add_switch("s1");
/// let f = FailureScenario::switches(vec![s1, s0, s1]);
/// // Deduplicated and sorted.
/// assert_eq!(f.failed_switches(), &[s0, s1]);
/// assert_eq!(f.order(), 2);
/// assert!(!f.is_empty());
/// assert!(FailureScenario::none().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct FailureScenario {
    switches: Vec<NodeId>,
    links: Vec<LinkId>,
}

impl FailureScenario {
    /// The empty failure (no component failed). The NBF applied to it yields
    /// the initial flow state `FI_0`.
    pub fn none() -> FailureScenario {
        FailureScenario::default()
    }

    /// A scenario with the given failed switches and links. Both lists are
    /// sorted and deduplicated.
    pub fn new(mut switches: Vec<NodeId>, mut links: Vec<LinkId>) -> FailureScenario {
        switches.sort_unstable();
        switches.dedup();
        links.sort_unstable();
        links.dedup();
        FailureScenario { switches, links }
    }

    /// A switch-only scenario.
    pub fn switches(switches: Vec<NodeId>) -> FailureScenario {
        FailureScenario::new(switches, Vec::new())
    }

    /// A link-only scenario.
    pub fn links(links: Vec<LinkId>) -> FailureScenario {
        FailureScenario::new(Vec::new(), links)
    }

    /// The failed switches, sorted ascending.
    pub fn failed_switches(&self) -> &[NodeId] {
        &self.switches
    }

    /// The failed links, sorted ascending.
    pub fn failed_links(&self) -> &[LinkId] {
        &self.links
    }

    /// Whether `node` is among the failed switches.
    pub fn contains_switch(&self, node: NodeId) -> bool {
        self.switches.binary_search(&node).is_ok()
    }

    /// Whether `link` is among the failed links.
    pub fn contains_link(&self, link: LinkId) -> bool {
        self.links.binary_search(&link).is_ok()
    }

    /// Whether no component failed.
    pub fn is_empty(&self) -> bool {
        self.switches.is_empty() && self.links.is_empty()
    }

    /// Number of failed components (the failure order).
    pub fn order(&self) -> usize {
        self.switches.len() + self.links.len()
    }

    /// Whether every failed component of `self` also fails in `other`.
    ///
    /// Used by the failure analyzer's memoization: a flow state that
    /// survives `other` also survives any subset of it (Section V).
    pub fn is_subset_of(&self, other: &FailureScenario) -> bool {
        self.switches.iter().all(|s| other.contains_switch(*s))
            && self.links.iter().all(|l| other.contains_link(*l))
    }
}

impl fmt::Display for FailureScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("no failure");
        }
        write!(f, "failure{{")?;
        let mut first = true;
        for s in &self.switches {
            if !first {
                f.write_str(", ")?;
            }
            write!(f, "{s}")?;
            first = false;
        }
        for l in &self.links {
            if !first {
                f.write_str(", ")?;
            }
            write!(f, "{l}")?;
            first = false;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId(i)
    }

    fn l(i: usize) -> LinkId {
        LinkId(i)
    }

    #[test]
    fn scenarios_are_normalized() {
        let f = FailureScenario::new(vec![n(3), n(1), n(3)], vec![l(2), l(2), l(0)]);
        assert_eq!(f.failed_switches(), &[n(1), n(3)]);
        assert_eq!(f.failed_links(), &[l(0), l(2)]);
        assert_eq!(f.order(), 4);
    }

    #[test]
    fn membership_queries() {
        let f = FailureScenario::new(vec![n(1)], vec![l(5)]);
        assert!(f.contains_switch(n(1)));
        assert!(!f.contains_switch(n(2)));
        assert!(f.contains_link(l(5)));
        assert!(!f.contains_link(l(4)));
    }

    #[test]
    fn subset_relation() {
        let small = FailureScenario::switches(vec![n(1)]);
        let big = FailureScenario::switches(vec![n(1), n(2)]);
        let other = FailureScenario::switches(vec![n(3)]);
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(!other.is_subset_of(&big));
        assert!(FailureScenario::none().is_subset_of(&small));
        // Mixed: a link is never a subset of a switch-only scenario.
        let with_link = FailureScenario::new(vec![n(1)], vec![l(0)]);
        assert!(!with_link.is_subset_of(&big));
        assert!(small.is_subset_of(&with_link));
    }

    #[test]
    fn display_formats() {
        assert_eq!(FailureScenario::none().to_string(), "no failure");
        let f = FailureScenario::new(vec![n(1)], vec![l(0)]);
        assert_eq!(f.to_string(), "failure{n1, l0}");
    }
}
