//! The component library of switches and links (Table I).

use crate::asil::Asil;
use crate::error::TopoError;
use crate::Result;

/// A switch model in the component library: a port count and a base cost
/// per ASIL level.
///
/// Small switches can be combined into larger ones, so the library simply
/// lists the available port counts with their costs (Section II-C).
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchModel {
    ports: usize,
    /// Cost per ASIL level, indexed by [`Asil::index`].
    cost: [f64; 4],
}

impl SwitchModel {
    /// Creates a switch model with the given number of ports and per-ASIL
    /// costs (indexed A..D).
    pub fn new(ports: usize, cost: [f64; 4]) -> SwitchModel {
        SwitchModel { ports, cost }
    }

    /// Number of external ports.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Cost of this model at the given ASIL.
    pub fn cost(&self, asil: Asil) -> f64 {
        self.cost[asil.index()]
    }
}

/// The component library: available switch models and link cost factors
/// (Section II-C, Table I).
///
/// The library defines
///
/// * `csw(deg, ASIL)` — the cost of a switch with degree `deg`: the cheapest
///   model with at least `deg` ports at the given ASIL,
/// * `clk(ASIL, len)` — the cost of a link: per-unit-length cost times cable
///   length, and
/// * the maximum switch degree (ports of the largest model), which the
///   topology must respect so that feasible switches exist.
///
/// # Examples
///
/// ```
/// use nptsn_topo::{Asil, ComponentLibrary};
///
/// let lib = ComponentLibrary::automotive();
/// // Table I: a 6-port ASIL-B switch costs 15.
/// assert_eq!(lib.switch_cost(5, Asil::B).unwrap(), 15.0);
/// // Table I: ASIL-C links cost 4 per unit length.
/// assert_eq!(lib.link_cost(Asil::C, 2.0), 8.0);
/// assert_eq!(lib.max_switch_degree(), 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentLibrary {
    switches: Vec<SwitchModel>,
    /// Link cost per unit length, indexed by ASIL.
    link_cost_per_unit: [f64; 4],
}

impl ComponentLibrary {
    /// Builds a library from explicit switch models and link cost factors.
    ///
    /// Models are sorted by port count; equal port counts keep the cheaper
    /// ASIL-A model first (only the cheapest is ever selected).
    pub fn new(mut switches: Vec<SwitchModel>, link_cost_per_unit: [f64; 4]) -> ComponentLibrary {
        switches.sort_by(|a, b| {
            a.ports
                .cmp(&b.ports)
                .then(a.cost[0].partial_cmp(&b.cost[0]).unwrap_or(std::cmp::Ordering::Equal))
        });
        ComponentLibrary { switches, link_cost_per_unit }
    }

    /// The automotive component library of Table I.
    ///
    /// 4/6/8-port switches at ASIL-A base costs 8/10/16, scaled by 1.5x per
    /// ASIL level (floored, matching the table: 12/15/24, 18/22/36,
    /// 27/33/54), and links at 1/2/4/8 per unit length (2x per level).
    pub fn automotive() -> ComponentLibrary {
        ComponentLibrary::new(
            vec![
                SwitchModel::new(4, [8.0, 12.0, 18.0, 27.0]),
                SwitchModel::new(6, [10.0, 15.0, 22.0, 33.0]),
                SwitchModel::new(8, [16.0, 24.0, 36.0, 54.0]),
            ],
            [1.0, 2.0, 4.0, 8.0],
        )
    }

    /// Builds a library by scaling ASIL-A base costs: switch costs grow by
    /// `switch_factor` per level (floored as in Table I) and link costs by
    /// `link_factor` per level.
    ///
    /// `base_switches` lists `(ports, asil_a_cost)` pairs.
    ///
    /// ```
    /// # use nptsn_topo::{Asil, ComponentLibrary};
    /// let lib = ComponentLibrary::scaled(&[(4, 8.0), (6, 10.0), (8, 16.0)], 1.5, 1.0, 2.0);
    /// assert_eq!(lib, ComponentLibrary::automotive());
    /// ```
    pub fn scaled(
        base_switches: &[(usize, f64)],
        switch_factor: f64,
        link_base: f64,
        link_factor: f64,
    ) -> ComponentLibrary {
        let switches = base_switches
            .iter()
            .map(|&(ports, base)| {
                let mut cost = [0.0; 4];
                for (level, slot) in cost.iter_mut().enumerate() {
                    *slot = (base * switch_factor.powi(level as i32)).floor();
                }
                SwitchModel::new(ports, cost)
            })
            .collect();
        let mut link_cost = [0.0; 4];
        for (level, slot) in link_cost.iter_mut().enumerate() {
            *slot = link_base * link_factor.powi(level as i32);
        }
        ComponentLibrary::new(switches, link_cost)
    }

    /// The available switch models, sorted by port count.
    pub fn switch_models(&self) -> &[SwitchModel] {
        &self.switches
    }

    /// Expands the library with *combined* switches: Section II-C notes
    /// that small switches can be combined into large ones and included in
    /// the library to enable more port options. Combining two models with
    /// `p1` and `p2` ports consumes one port on each for the interconnect,
    /// yielding `p1 + p2 - 2` external ports at the summed cost.
    ///
    /// Combinations are generated up to `rounds` pairwise merges; only
    /// combinations that are the cheapest for their port count survive
    /// (dominated models are dropped).
    ///
    /// ```
    /// # use nptsn_topo::{Asil, ComponentLibrary};
    /// let lib = ComponentLibrary::automotive().with_combined_switches(1);
    /// // Two 8-port switches combine into a 14-port model costing 32 at A.
    /// assert_eq!(lib.max_switch_degree(), 14);
    /// assert_eq!(lib.switch_cost(14, Asil::A).unwrap(), 32.0);
    /// // 4+4 -> 6 ports at cost 16 is dominated by the native 6-port (10).
    /// assert_eq!(lib.switch_cost(6, Asil::A).unwrap(), 10.0);
    /// ```
    pub fn with_combined_switches(&self, rounds: usize) -> ComponentLibrary {
        let mut models: Vec<SwitchModel> = self.switches.clone();
        let mut frontier = self.switches.clone();
        for _ in 0..rounds {
            let mut next = Vec::new();
            for a in &frontier {
                for b in &self.switches {
                    if a.ports < 2 || b.ports < 2 {
                        continue;
                    }
                    let ports = a.ports + b.ports - 2;
                    let mut cost = [0.0; 4];
                    for (i, c) in cost.iter_mut().enumerate() {
                        *c = a.cost[i] + b.cost[i];
                    }
                    next.push(SwitchModel::new(ports, cost));
                }
            }
            models.extend(next.iter().cloned());
            frontier = next;
        }
        // Drop dominated models: for each port count keep the cheapest (by
        // ASIL-A cost), and drop models whose cost is not below every model
        // with at least as many ports.
        models.sort_by(|a, b| {
            a.ports
                .cmp(&b.ports)
                .then(a.cost[0].partial_cmp(&b.cost[0]).unwrap_or(std::cmp::Ordering::Equal))
        });
        let mut kept: Vec<SwitchModel> = Vec::new();
        for m in models.into_iter().rev() {
            // Iterating from the largest: keep m only if it is cheaper than
            // everything kept so far (which all have >= ports).
            if kept.iter().all(|k| m.cost[0] < k.cost[0]) {
                kept.push(m);
            }
        }
        kept.reverse();
        ComponentLibrary { switches: kept, link_cost_per_unit: self.link_cost_per_unit }
    }

    /// The largest port count available; topologies must keep switch degrees
    /// at or below this bound.
    pub fn max_switch_degree(&self) -> usize {
        self.switches.iter().map(SwitchModel::ports).max().unwrap_or(0)
    }

    /// Cost `csw(degree, asil)` of the cheapest switch model with at least
    /// `degree` ports.
    ///
    /// A degree-0 switch (selected but not yet connected) is priced as the
    /// smallest model.
    ///
    /// # Errors
    ///
    /// Returns [`TopoError::NoSwitchModel`] when no model has enough ports.
    pub fn switch_cost(&self, degree: usize, asil: Asil) -> Result<f64> {
        self.switches
            .iter()
            .find(|m| m.ports >= degree)
            .map(|m| m.cost(asil))
            .ok_or(TopoError::NoSwitchModel { degree })
    }

    /// Cost `clk(asil, length)` of a link.
    pub fn link_cost(&self, asil: Asil, length: f64) -> f64 {
        self.link_cost_per_unit[asil.index()] * length
    }

    /// Link cost per unit length at the given ASIL.
    pub fn link_cost_per_unit(&self, asil: Asil) -> f64 {
        self.link_cost_per_unit[asil.index()]
    }
}

impl Default for ComponentLibrary {
    /// The automotive library of Table I.
    fn default() -> ComponentLibrary {
        ComponentLibrary::automotive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_switch_costs() {
        let lib = ComponentLibrary::automotive();
        // Every (ports, ASIL) cell of Table I.
        let expect = [
            (4, [8.0, 12.0, 18.0, 27.0]),
            (6, [10.0, 15.0, 22.0, 33.0]),
            (8, [16.0, 24.0, 36.0, 54.0]),
        ];
        for (ports, costs) in expect {
            for (level, cost) in costs.iter().enumerate() {
                let asil = Asil::from_index(level).unwrap();
                assert_eq!(lib.switch_cost(ports, asil).unwrap(), *cost);
            }
        }
    }

    #[test]
    fn table_i_link_costs() {
        let lib = ComponentLibrary::automotive();
        assert_eq!(lib.link_cost(Asil::A, 1.0), 1.0);
        assert_eq!(lib.link_cost(Asil::B, 1.0), 2.0);
        assert_eq!(lib.link_cost(Asil::C, 1.0), 4.0);
        assert_eq!(lib.link_cost(Asil::D, 1.0), 8.0);
        assert_eq!(lib.link_cost(Asil::D, 2.5), 20.0);
    }

    #[test]
    fn cheapest_sufficient_model_is_selected() {
        let lib = ComponentLibrary::automotive();
        // Degrees 0..=4 use the 4-port model; 5..=6 the 6-port; 7..=8 the 8-port.
        assert_eq!(lib.switch_cost(0, Asil::A).unwrap(), 8.0);
        assert_eq!(lib.switch_cost(3, Asil::A).unwrap(), 8.0);
        assert_eq!(lib.switch_cost(5, Asil::A).unwrap(), 10.0);
        assert_eq!(lib.switch_cost(7, Asil::A).unwrap(), 16.0);
        assert_eq!(lib.switch_cost(8, Asil::A).unwrap(), 16.0);
    }

    #[test]
    fn oversized_degree_is_an_error() {
        let lib = ComponentLibrary::automotive();
        assert_eq!(lib.switch_cost(9, Asil::A), Err(TopoError::NoSwitchModel { degree: 9 }));
        assert_eq!(lib.max_switch_degree(), 8);
    }

    #[test]
    fn scaled_reproduces_table_i() {
        let lib = ComponentLibrary::scaled(&[(4, 8.0), (6, 10.0), (8, 16.0)], 1.5, 1.0, 2.0);
        assert_eq!(lib, ComponentLibrary::automotive());
    }

    #[test]
    fn combined_switches_extend_the_port_range() {
        let lib = ComponentLibrary::automotive().with_combined_switches(1);
        // 8+8-2 = 14 ports max after one round.
        assert_eq!(lib.max_switch_degree(), 14);
        // Costs by construction: 4+6 -> 8 ports at 18 is dominated by the
        // native 8-port (16); 6+6 -> 10 ports at 20; 6+8 -> 12 at 26;
        // 8+8 -> 14 at 32.
        assert_eq!(lib.switch_cost(9, Asil::A).unwrap(), 20.0);
        assert_eq!(lib.switch_cost(12, Asil::A).unwrap(), 26.0);
        assert_eq!(lib.switch_cost(14, Asil::A).unwrap(), 32.0);
        // Native small models survive.
        assert_eq!(lib.switch_cost(4, Asil::A).unwrap(), 8.0);
        assert_eq!(lib.switch_cost(6, Asil::B).unwrap(), 15.0);
    }

    #[test]
    fn combination_rounds_compound() {
        let one = ComponentLibrary::automotive().with_combined_switches(1);
        let two = ComponentLibrary::automotive().with_combined_switches(2);
        assert!(two.max_switch_degree() > one.max_switch_degree());
        assert_eq!(two.max_switch_degree(), 20); // 14 + 8 - 2
        // Zero rounds is the identity.
        let zero = ComponentLibrary::automotive().with_combined_switches(0);
        assert_eq!(zero, ComponentLibrary::automotive());
    }

    #[test]
    fn models_sorted_by_ports() {
        let lib = ComponentLibrary::new(
            vec![SwitchModel::new(8, [1.0; 4]), SwitchModel::new(4, [1.0; 4])],
            [1.0; 4],
        );
        let ports: Vec<_> = lib.switch_models().iter().map(SwitchModel::ports).collect();
        assert_eq!(ports, vec![4, 8]);
    }
}
