//! Path types and graph search: BFS, Dijkstra, Yen's K-shortest paths and
//! node-disjoint path search.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::error::TopoError;
use crate::graph::{LinkId, NodeId};

/// Adjacency representation used by all search routines: for every node
/// index, its `(neighbor, link, length)` triples.
///
/// Both [`crate::Topology::adjacency`] (active links) and
/// [`crate::Topology::residual_adjacency`] (after a failure) produce this
/// shape, as do the filtered candidate-graph views built by the SOAG.
pub type Adjacency = Vec<Vec<(NodeId, LinkId, f64)>>;

/// A loopless path through the network: an ordered node sequence.
///
/// Paths are the granularity of NPTSN's addition actions — "the minimum
/// connectivity from the perspective of the flows" (Section IV-B).
///
/// # Examples
///
/// ```
/// use nptsn_topo::{ConnectionGraph, Path};
///
/// let mut gc = ConnectionGraph::new();
/// let a = gc.add_end_station("a");
/// let s = gc.add_switch("s");
/// let b = gc.add_end_station("b");
/// let p = Path::new(vec![a, s, b]);
/// assert_eq!(p.hop_count(), 2);
/// assert_eq!(p.source(), a);
/// assert_eq!(p.destination(), b);
/// assert_eq!(p.edges().count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Path {
    nodes: Vec<NodeId>,
}

impl Path {
    /// Creates a path from an ordered node sequence.
    ///
    /// # Panics
    ///
    /// Panics when `nodes` is empty or revisits a node (paths are loopless).
    /// Use [`Path::try_new`] to validate untrusted sequences instead.
    pub fn new(nodes: Vec<NodeId>) -> Path {
        Path::try_new(nodes).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible counterpart of [`Path::new`] for node sequences that come
    /// from outside the path-search algorithms (plan files, external
    /// controllers).
    ///
    /// # Errors
    ///
    /// [`TopoError::EmptyPath`] for an empty sequence,
    /// [`TopoError::RepeatedNode`] when a node appears twice.
    pub fn try_new(nodes: Vec<NodeId>) -> Result<Path, TopoError> {
        if nodes.is_empty() {
            return Err(TopoError::EmptyPath);
        }
        for (i, n) in nodes.iter().enumerate() {
            if nodes[..i].contains(n) {
                return Err(TopoError::RepeatedNode(*n));
            }
        }
        Ok(Path { nodes })
    }

    /// The ordered node sequence.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of hops (edges).
    pub fn hop_count(&self) -> usize {
        self.nodes.len() - 1
    }

    /// First node.
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// Last node.
    pub fn destination(&self) -> NodeId {
        *self.nodes.last().expect("paths are non-empty")
    }

    /// Whether the path traverses `node`.
    pub fn contains_node(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// Consecutive node pairs (the undirected edges of the path).
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes.windows(2).map(|w| (w[0], w[1]))
    }

    /// Total length of the path under `adj` weights, or `None` if an edge is
    /// missing from `adj`.
    pub fn length_in(&self, adj: &Adjacency) -> Option<f64> {
        let mut total = 0.0;
        for (u, v) in self.edges() {
            let w = adj[u.index()].iter().find(|(n, _, _)| *n == v)?.2;
            total += w;
        }
        Some(total)
    }
}

/// Min-heap entry ordered by (distance, node index) for deterministic
/// tie-breaking.
#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest distance.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Hop distances from `source` to every node, `None` for unreachable nodes.
///
/// # Examples
///
/// ```
/// use nptsn_topo::{bfs_distances, Asil, ConnectionGraph};
///
/// let mut gc = ConnectionGraph::new();
/// let a = gc.add_end_station("a");
/// let s = gc.add_switch("s");
/// let b = gc.add_end_station("b");
/// gc.add_candidate_link(a, s, 1.0).unwrap();
/// gc.add_candidate_link(s, b, 1.0).unwrap();
/// let mut topo = gc.empty_topology();
/// topo.add_switch(s, Asil::A).unwrap();
/// topo.add_link(a, s).unwrap();
/// topo.add_link(s, b).unwrap();
///
/// let dist = bfs_distances(&topo.adjacency(), a);
/// assert_eq!(dist[b.index()], Some(2));
/// ```
pub fn bfs_distances(adj: &Adjacency, source: NodeId) -> Vec<Option<usize>> {
    let mut dist = vec![None; adj.len()];
    let mut queue = std::collections::VecDeque::new();
    dist[source.index()] = Some(0);
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued nodes have distances");
        for &(v, _, _) in &adj[u.index()] {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Dijkstra shortest path from `source` to `target` by total link length;
/// `None` when unreachable. Ties break deterministically by node index.
pub fn dijkstra_shortest_path(adj: &Adjacency, source: NodeId, target: NodeId) -> Option<Path> {
    dijkstra_filtered(adj, source, target, &|_| true, &|_, _| true)
}

/// Dijkstra restricted to nodes passing `node_ok` and edges passing
/// `edge_ok(from, link)`. The source and target are always allowed.
pub(crate) fn dijkstra_filtered(
    adj: &Adjacency,
    source: NodeId,
    target: NodeId,
    node_ok: &dyn Fn(NodeId) -> bool,
    edge_ok: &dyn Fn(NodeId, LinkId) -> bool,
) -> Option<Path> {
    let n = adj.len();
    if source.index() >= n || target.index() >= n {
        return None;
    }
    if source == target {
        return Some(Path::new(vec![source]));
    }
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<NodeId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(HeapEntry { dist: 0.0, node: source.index() });
    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        if u == target.index() {
            break;
        }
        for &(v, link, w) in &adj[u] {
            if v != target && v != source && !node_ok(v) {
                continue;
            }
            if !edge_ok(NodeId(u), link) {
                continue;
            }
            let nd = d + w;
            // Strict improvement, or equal distance with a smaller
            // predecessor for determinism.
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                prev[v.index()] = Some(NodeId(u));
                heap.push(HeapEntry { dist: nd, node: v.index() });
            }
        }
    }
    if dist[target.index()].is_infinite() {
        return None;
    }
    let mut nodes = vec![target];
    let mut cur = target;
    while let Some(p) = prev[cur.index()] {
        nodes.push(p);
        cur = p;
    }
    nodes.reverse();
    debug_assert_eq!(nodes[0], source);
    Some(Path::new(nodes))
}

/// Yen's algorithm: up to `k` loopless shortest paths from `source` to
/// `target`, ordered by increasing length (ties broken by node sequence).
///
/// Used by the SOAG (Algorithm 1, line 5) to propose path-addition actions.
/// Returns fewer than `k` paths when the graph does not contain that many.
///
/// # Examples
///
/// ```
/// use nptsn_topo::{k_shortest_paths, Asil, ConnectionGraph};
///
/// let mut gc = ConnectionGraph::new();
/// let a = gc.add_end_station("a");
/// let b = gc.add_end_station("b");
/// let s0 = gc.add_switch("s0");
/// let s1 = gc.add_switch("s1");
/// for (u, v) in [(a, s0), (a, s1), (s0, b), (s1, b), (s0, s1)] {
///     gc.add_candidate_link(u, v, 1.0).unwrap();
/// }
/// let mut topo = gc.empty_topology();
/// topo.add_switch(s0, Asil::A).unwrap();
/// topo.add_switch(s1, Asil::A).unwrap();
/// for (u, v) in [(a, s0), (a, s1), (s0, b), (s1, b), (s0, s1)] {
///     topo.add_link(u, v).unwrap();
/// }
/// let paths = k_shortest_paths(&topo.adjacency(), a, b, 4);
/// assert_eq!(paths.len(), 4);
/// assert_eq!(paths[0].hop_count(), 2);
/// assert!(paths[3].hop_count() >= paths[0].hop_count());
/// ```
pub fn k_shortest_paths(adj: &Adjacency, source: NodeId, target: NodeId, k: usize) -> Vec<Path> {
    if k == 0 {
        return Vec::new();
    }
    let Some(first) = dijkstra_shortest_path(adj, source, target) else {
        return Vec::new();
    };
    let mut result = vec![first];
    // Candidate set: (cost, path). Kept sorted on extraction.
    let mut candidates: Vec<(f64, Path)> = Vec::new();

    while result.len() < k {
        let last = result.last().expect("result is non-empty").clone();
        for i in 0..last.hop_count() {
            let spur_node = last.nodes()[i];
            let root: Vec<NodeId> = last.nodes()[..=i].to_vec();

            // Edges removed: for every known path sharing this root, the
            // edge it takes out of the spur node.
            let mut banned_edges: Vec<(NodeId, NodeId)> = Vec::new();
            for p in result.iter().map(|p| p as &Path).chain(candidates.iter().map(|(_, p)| p)) {
                if p.nodes().len() > i + 1 && p.nodes()[..=i] == root[..] {
                    banned_edges.push((p.nodes()[i], p.nodes()[i + 1]));
                }
            }
            // Nodes removed: the root except the spur node itself.
            let banned_nodes: Vec<NodeId> = root[..i].to_vec();

            let node_ok = |n: NodeId| !banned_nodes.contains(&n);
            let edge_ok = |from: NodeId, link: LinkId| {
                !banned_edges.iter().any(|&(u, v)| {
                    from == u
                        && adj[u.index()]
                            .iter()
                            .any(|&(nb, l, _)| l == link && nb == v)
                })
            };
            if let Some(spur) =
                dijkstra_filtered(adj, spur_node, target, &node_ok, &edge_ok)
            {
                let mut nodes = root[..i].to_vec();
                nodes.extend_from_slice(spur.nodes());
                // The concatenation can revisit a root node through the spur
                // path only if the spur path loops back, which banned_nodes
                // prevents; still, guard against duplicates defensively.
                if nodes.iter().enumerate().all(|(j, n)| !nodes[..j].contains(n)) {
                    let candidate = Path::new(nodes);
                    let cost = candidate
                        .length_in(adj)
                        .expect("candidate uses existing edges");
                    if !result.contains(&candidate)
                        && !candidates.iter().any(|(_, p)| p == &candidate)
                    {
                        candidates.push((cost, candidate));
                    }
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Extract the best candidate deterministically.
        candidates.sort_by(|(ca, pa), (cb, pb)| {
            ca.partial_cmp(cb)
                .unwrap_or(Ordering::Equal)
                .then_with(|| pa.nodes().cmp(pb.nodes()))
        });
        let (_, best) = candidates.remove(0);
        result.push(best);
    }
    result
}

/// Greedily finds up to `count` mutually node-disjoint paths (sharing only
/// the endpoints) from `source` to `target`, shortest first.
///
/// This is the path-construction primitive of the TRH baseline \[4\], which
/// creates FRER-disjoint paths per flow. Returns `None` when fewer than
/// `count` disjoint paths exist under this greedy strategy.
pub fn node_disjoint_paths(
    adj: &Adjacency,
    source: NodeId,
    target: NodeId,
    count: usize,
) -> Option<Vec<Path>> {
    let mut used = vec![false; adj.len()];
    let mut paths = Vec::with_capacity(count);
    for _ in 0..count {
        let node_ok = |n: NodeId| !used[n.index()];
        let path = dijkstra_filtered(adj, source, target, &node_ok, &|_, _| true)?;
        for &n in path.nodes() {
            if n != source && n != target {
                used[n.index()] = true;
            }
        }
        paths.push(path);
    }
    Some(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asil::Asil;
    use crate::graph::ConnectionGraph;
    use crate::topology::Topology;
    use std::sync::Arc;

    /// Two parallel 2-hop routes a-s0-b and a-s1-b plus a chord s0-s1.
    fn theta() -> (Adjacency, NodeId, NodeId, NodeId, NodeId) {
        let mut gc = ConnectionGraph::new();
        let a = gc.add_end_station("a");
        let b = gc.add_end_station("b");
        let s0 = gc.add_switch("s0");
        let s1 = gc.add_switch("s1");
        for (u, v) in [(a, s0), (a, s1), (s0, b), (s1, b), (s0, s1)] {
            gc.add_candidate_link(u, v, 1.0).unwrap();
        }
        let mut topo = Topology::empty(Arc::new(gc));
        topo.add_switch(s0, Asil::A).unwrap();
        topo.add_switch(s1, Asil::A).unwrap();
        for (u, v) in [(a, s0), (a, s1), (s0, b), (s1, b), (s0, s1)] {
            topo.add_link(u, v).unwrap();
        }
        (topo.adjacency(), a, b, s0, s1)
    }

    #[test]
    fn try_new_rejects_invalid_sequences() {
        let (_, a, b, s0, _) = theta();
        assert_eq!(Path::try_new(vec![]), Err(TopoError::EmptyPath));
        assert_eq!(Path::try_new(vec![a, s0, a]), Err(TopoError::RepeatedNode(a)));
        assert_eq!(
            Path::try_new(vec![a, s0, b]).map(|p| p.hop_count()),
            Ok(2)
        );
    }

    #[test]
    #[should_panic(expected = "loopless")]
    fn paths_reject_revisits() {
        let _ = Path::new(vec![NodeId(0), NodeId(1), NodeId(0)]);
    }

    #[test]
    fn bfs_distances_count_hops() {
        let (adj, a, b, s0, _) = theta();
        let dist = bfs_distances(&adj, a);
        assert_eq!(dist[a.index()], Some(0));
        assert_eq!(dist[s0.index()], Some(1));
        assert_eq!(dist[b.index()], Some(2));
    }

    #[test]
    fn bfs_reports_unreachable() {
        let mut gc = ConnectionGraph::new();
        let a = gc.add_end_station("a");
        let b = gc.add_end_station("b");
        let topo = gc.empty_topology();
        let dist = bfs_distances(&topo.adjacency(), a);
        assert_eq!(dist[b.index()], None);
    }

    #[test]
    fn dijkstra_finds_shortest() {
        let (adj, a, b, ..) = theta();
        let p = dijkstra_shortest_path(&adj, a, b).unwrap();
        assert_eq!(p.hop_count(), 2);
        assert_eq!(p.source(), a);
        assert_eq!(p.destination(), b);
    }

    #[test]
    fn dijkstra_prefers_low_weight_over_few_hops() {
        let mut gc = ConnectionGraph::new();
        let a = gc.add_end_station("a");
        let b = gc.add_end_station("b");
        let s0 = gc.add_switch("s0");
        let s1 = gc.add_switch("s1");
        gc.add_candidate_link(a, s0, 10.0).unwrap();
        gc.add_candidate_link(s0, b, 10.0).unwrap();
        gc.add_candidate_link(a, s1, 1.0).unwrap();
        gc.add_candidate_link(s1, s0, 1.0).unwrap();
        let mut topo = gc.empty_topology();
        topo.add_switch(s0, Asil::A).unwrap();
        topo.add_switch(s1, Asil::A).unwrap();
        for (u, v) in [(a, s0), (s0, b), (a, s1), (s1, s0)] {
            topo.add_link(u, v).unwrap();
        }
        let p = dijkstra_shortest_path(&topo.adjacency(), a, b).unwrap();
        // a-s1-s0-b (cost 12) beats a-s0-b (cost 20).
        assert_eq!(p.hop_count(), 3);
        assert!(p.contains_node(s1));
    }

    #[test]
    fn dijkstra_same_source_target() {
        let (adj, a, ..) = theta();
        let p = dijkstra_shortest_path(&adj, a, a).unwrap();
        assert_eq!(p.hop_count(), 0);
    }

    #[test]
    fn yen_enumerates_loopless_paths_in_order() {
        let (adj, a, b, ..) = theta();
        let paths = k_shortest_paths(&adj, a, b, 10);
        // Loopless a-b paths in the theta graph: two 2-hop and two 3-hop.
        assert_eq!(paths.len(), 4);
        let mut prev = 0.0;
        for p in &paths {
            assert_eq!(p.source(), a);
            assert_eq!(p.destination(), b);
            let len = p.length_in(&adj).unwrap();
            assert!(len >= prev);
            prev = len;
            // Looplessness.
            let mut seen = std::collections::HashSet::new();
            assert!(p.nodes().iter().all(|n| seen.insert(*n)));
        }
        // All distinct.
        for i in 0..paths.len() {
            for j in 0..i {
                assert_ne!(paths[i], paths[j]);
            }
        }
    }

    #[test]
    fn yen_respects_k() {
        let (adj, a, b, ..) = theta();
        assert_eq!(k_shortest_paths(&adj, a, b, 1).len(), 1);
        assert_eq!(k_shortest_paths(&adj, a, b, 0).len(), 0);
        assert_eq!(k_shortest_paths(&adj, a, b, 3).len(), 3);
    }

    #[test]
    fn yen_unreachable_is_empty() {
        let mut gc = ConnectionGraph::new();
        let a = gc.add_end_station("a");
        let b = gc.add_end_station("b");
        let topo = gc.empty_topology();
        assert!(k_shortest_paths(&topo.adjacency(), a, b, 5).is_empty());
    }

    #[test]
    fn disjoint_paths_found_in_theta() {
        let (adj, a, b, s0, s1) = theta();
        let paths = node_disjoint_paths(&adj, a, b, 2).unwrap();
        assert_eq!(paths.len(), 2);
        // One goes through s0, the other through s1.
        let through: Vec<bool> = paths.iter().map(|p| p.contains_node(s0)).collect();
        assert_ne!(through[0], through[1]);
        let _ = s1;
        // Three disjoint paths do not exist.
        assert!(node_disjoint_paths(&adj, a, b, 3).is_none());
    }

    #[test]
    fn yen_is_deterministic() {
        let (adj, a, b, ..) = theta();
        let p1 = k_shortest_paths(&adj, a, b, 4);
        let p2 = k_shortest_paths(&adj, a, b, 4);
        assert_eq!(p1, p2);
    }
}
