//! The connection graph `Gc` of possible network connections.

use std::collections::HashMap;
use std::fmt;

use crate::asil::Asil;
use crate::error::TopoError;
use crate::topology::Topology;
use crate::Result;

/// Identifier of a node (end station or switch) within a [`ConnectionGraph`].
///
/// Node ids are dense indices assigned in insertion order, which lets callers
/// use them directly as rows of feature matrices (Section IV-C encoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The dense index of this node (`0 .. graph.node_count()`).
    pub fn index(self) -> usize {
        self.0
    }

    /// Rebuilds a node id from a dense index.
    ///
    /// Adjacency rows, feature matrices and schedule tables are all indexed
    /// by [`NodeId::index`]; this is the inverse used when walking such
    /// dense structures. The caller must guarantee the index is within the
    /// owning graph's node count.
    pub fn from_dense_index(index: usize) -> NodeId {
        NodeId(index)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a candidate link within a [`ConnectionGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub(crate) usize);

impl LinkId {
    /// The dense index of this link (`0 .. graph.candidate_link_count()`).
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Whether a node is an end station or a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// An application end station (`V_es`); defined by the applications,
    /// never planned, and assumed highly reliable (its failures are safe
    /// faults, Section II-C).
    EndStation,
    /// An optional switch (`V^c_sw`) that network planning may select.
    Switch,
}

#[derive(Debug, Clone)]
struct NodeInfo {
    name: String,
    kind: NodeKind,
    /// ASIL used when deriving link ASILs; only meaningful for end stations
    /// (switch ASILs live in the [`Topology`]). End stations default to
    /// ASIL D because their failures must be safe faults.
    es_asil: Asil,
}

#[derive(Debug, Clone)]
struct CandidateLink {
    a: NodeId,
    b: NodeId,
    length: f64,
}

/// The undirected graph of possible connections `Gc` (Section II-C).
///
/// Vertices are the end stations to be connected plus the optional switches;
/// edges are the optional links with their cable lengths. Network planning
/// selects a subgraph of `Gc` as the output topology `Gt`.
///
/// # Examples
///
/// ```
/// use nptsn_topo::ConnectionGraph;
///
/// let mut gc = ConnectionGraph::new();
/// let cam = gc.add_end_station("camera");
/// let sw = gc.add_switch("sw0");
/// gc.add_candidate_link(cam, sw, 2.5).unwrap();
/// assert_eq!(gc.node_count(), 2);
/// assert_eq!(gc.candidate_link_count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ConnectionGraph {
    nodes: Vec<NodeInfo>,
    links: Vec<CandidateLink>,
    /// adjacency[v] = (neighbor, link id) pairs.
    adjacency: Vec<Vec<(NodeId, LinkId)>>,
    link_lookup: HashMap<(usize, usize), LinkId>,
    end_stations: Vec<NodeId>,
    switches: Vec<NodeId>,
    max_switch_degree: usize,
    max_end_station_degree: usize,
}

impl ConnectionGraph {
    /// Creates an empty connection graph.
    ///
    /// The default degree constraints follow the paper's evaluation setup:
    /// a maximum switch degree of 8 (the largest switch in Table I) and a
    /// maximum end-station degree of 2 (the minimum that allows redundancy).
    pub fn new() -> ConnectionGraph {
        ConnectionGraph {
            nodes: Vec::new(),
            links: Vec::new(),
            adjacency: Vec::new(),
            link_lookup: HashMap::new(),
            end_stations: Vec::new(),
            switches: Vec::new(),
            max_switch_degree: 8,
            max_end_station_degree: 2,
        }
    }

    /// Adds an end station with ASIL D (the default for safety-critical
    /// stations whose failures must be safe faults) and returns its id.
    pub fn add_end_station(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(name.into(), NodeKind::EndStation, Asil::D)
    }

    /// Adds an end station with an explicit ASIL used for link-ASIL
    /// derivation.
    pub fn add_end_station_with_asil(&mut self, name: impl Into<String>, asil: Asil) -> NodeId {
        self.add_node(name.into(), NodeKind::EndStation, asil)
    }

    /// Adds an optional switch and returns its id.
    pub fn add_switch(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(name.into(), NodeKind::Switch, Asil::A)
    }

    fn add_node(&mut self, name: String, kind: NodeKind, es_asil: Asil) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(NodeInfo { name, kind, es_asil });
        self.adjacency.push(Vec::new());
        match kind {
            NodeKind::EndStation => self.end_stations.push(id),
            NodeKind::Switch => self.switches.push(id),
        }
        id
    }

    /// Adds a candidate link between `u` and `v` with the given cable length.
    ///
    /// # Errors
    ///
    /// Returns [`TopoError::SelfLoop`] when `u == v`,
    /// [`TopoError::UnknownNode`] for out-of-range ids and
    /// [`TopoError::DuplicateLink`] when the link already exists.
    pub fn add_candidate_link(&mut self, u: NodeId, v: NodeId, length: f64) -> Result<LinkId> {
        if u == v {
            return Err(TopoError::SelfLoop(u));
        }
        self.check_node(u)?;
        self.check_node(v)?;
        let key = Self::link_key(u, v);
        if self.link_lookup.contains_key(&key) {
            return Err(TopoError::DuplicateLink(u, v));
        }
        let id = LinkId(self.links.len());
        self.links.push(CandidateLink { a: u, b: v, length });
        self.adjacency[u.0].push((v, id));
        self.adjacency[v.0].push((u, id));
        self.link_lookup.insert(key, id);
        Ok(id)
    }

    fn link_key(u: NodeId, v: NodeId) -> (usize, usize) {
        (u.0.min(v.0), u.0.max(v.0))
    }

    fn check_node(&self, n: NodeId) -> Result<()> {
        if n.0 < self.nodes.len() {
            Ok(())
        } else {
            Err(TopoError::UnknownNode(n))
        }
    }

    /// Sets the maximum switch degree (number of ports of the largest switch
    /// in the component library).
    pub fn set_max_switch_degree(&mut self, degree: usize) {
        self.max_switch_degree = degree;
    }

    /// Sets the maximum end-station degree.
    pub fn set_max_end_station_degree(&mut self, degree: usize) {
        self.max_end_station_degree = degree;
    }

    /// Maximum degree allowed for switches.
    pub fn max_switch_degree(&self) -> usize {
        self.max_switch_degree
    }

    /// Maximum degree allowed for end stations.
    pub fn max_end_station_degree(&self) -> usize {
        self.max_end_station_degree
    }

    /// Maximum degree allowed for `node` given its kind.
    pub fn max_degree(&self, node: NodeId) -> usize {
        match self.kind(node) {
            NodeKind::EndStation => self.max_end_station_degree,
            NodeKind::Switch => self.max_switch_degree,
        }
    }

    /// Total number of nodes `|V^c|`.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of candidate links `|E^c|`.
    pub fn candidate_link_count(&self) -> usize {
        self.links.len()
    }

    /// All node ids in index order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// The end stations `V_es` in insertion order.
    pub fn end_stations(&self) -> &[NodeId] {
        &self.end_stations
    }

    /// The optional switches `V^c_sw` in insertion order.
    pub fn switches(&self) -> &[NodeId] {
        &self.switches
    }

    /// The kind of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this graph.
    pub fn kind(&self, node: NodeId) -> NodeKind {
        self.nodes[node.0].kind
    }

    /// Whether `node` is a switch.
    pub fn is_switch(&self, node: NodeId) -> bool {
        self.kind(node) == NodeKind::Switch
    }

    /// Whether `node` is an end station.
    pub fn is_end_station(&self, node: NodeId) -> bool {
        self.kind(node) == NodeKind::EndStation
    }

    /// The human-readable name of `node`.
    pub fn name(&self, node: NodeId) -> &str {
        &self.nodes[node.0].name
    }

    /// ASIL of an end station, used when deriving link ASILs.
    ///
    /// For switches this returns the placement default and should not be
    /// used; switch ASILs are allocated by the [`Topology`].
    pub fn end_station_asil(&self, node: NodeId) -> Asil {
        self.nodes[node.0].es_asil
    }

    /// The id of candidate link `(u, v)` if it exists, in either direction.
    pub fn link_between(&self, u: NodeId, v: NodeId) -> Option<LinkId> {
        self.link_lookup.get(&Self::link_key(u, v)).copied()
    }

    /// Endpoints `(a, b)` of a candidate link.
    pub fn link_endpoints(&self, link: LinkId) -> (NodeId, NodeId) {
        let l = &self.links[link.0];
        (l.a, l.b)
    }

    /// Cable length of a candidate link.
    pub fn link_length(&self, link: LinkId) -> f64 {
        self.links[link.0].length
    }

    /// Candidate neighbors of `node` as `(neighbor, link)` pairs.
    pub fn neighbors(&self, node: NodeId) -> &[(NodeId, LinkId)] {
        &self.adjacency[node.0]
    }

    /// Degree of `node` in the candidate graph.
    pub fn candidate_degree(&self, node: NodeId) -> usize {
        self.adjacency[node.0].len()
    }

    /// All candidate link ids.
    pub fn links(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.links.len()).map(LinkId)
    }

    /// Creates an empty topology over this connection graph: end stations
    /// only, no switches or links (the starting point of every NPTSN
    /// exploration episode, Section III).
    pub fn empty_topology(&self) -> Topology {
        Topology::empty(std::sync::Arc::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (ConnectionGraph, NodeId, NodeId, NodeId) {
        let mut gc = ConnectionGraph::new();
        let a = gc.add_end_station("a");
        let b = gc.add_end_station("b");
        let s = gc.add_switch("s");
        gc.add_candidate_link(a, s, 1.0).unwrap();
        gc.add_candidate_link(b, s, 2.0).unwrap();
        (gc, a, b, s)
    }

    #[test]
    fn nodes_are_partitioned_by_kind() {
        let (gc, a, b, s) = tiny();
        assert_eq!(gc.end_stations(), &[a, b]);
        assert_eq!(gc.switches(), &[s]);
        assert!(gc.is_switch(s));
        assert!(gc.is_end_station(a));
        assert_eq!(gc.node_count(), 3);
    }

    #[test]
    fn link_lookup_is_direction_insensitive() {
        let (gc, a, _, s) = tiny();
        let l = gc.link_between(a, s).unwrap();
        assert_eq!(gc.link_between(s, a), Some(l));
        let (x, y) = gc.link_endpoints(l);
        assert!((x == a && y == s) || (x == s && y == a));
        assert_eq!(gc.link_length(l), 1.0);
    }

    #[test]
    fn duplicate_and_self_loop_links_rejected() {
        let (mut gc, a, b, s) = tiny();
        assert_eq!(gc.add_candidate_link(s, a, 1.0), Err(TopoError::DuplicateLink(s, a)));
        assert_eq!(gc.add_candidate_link(b, b, 1.0), Err(TopoError::SelfLoop(b)));
    }

    #[test]
    fn unknown_node_rejected() {
        let (mut gc, a, ..) = tiny();
        let bogus = NodeId(99);
        assert_eq!(gc.add_candidate_link(a, bogus, 1.0), Err(TopoError::UnknownNode(bogus)));
    }

    #[test]
    fn neighbors_are_symmetric() {
        let (gc, a, _, s) = tiny();
        assert!(gc.neighbors(a).iter().any(|&(n, _)| n == s));
        assert!(gc.neighbors(s).iter().any(|&(n, _)| n == a));
        assert_eq!(gc.candidate_degree(s), 2);
    }

    #[test]
    fn default_degree_limits_match_paper() {
        let gc = ConnectionGraph::new();
        assert_eq!(gc.max_switch_degree(), 8);
        assert_eq!(gc.max_end_station_degree(), 2);
    }
}
