//! Planned TSSDN topologies `Gt` with ASIL allocation.

use std::sync::Arc;

use crate::asil::Asil;
use crate::error::TopoError;
use crate::failure::FailureScenario;
use crate::graph::{ConnectionGraph, LinkId, NodeId};
use crate::library::ComponentLibrary;
use crate::paths::{Adjacency, Path};
use crate::Result;

/// A planned TSSDN topology `Gt`: a subgraph of the connection graph that
/// connects the end stations with a subset of the optional links and
/// switches, plus the ASIL allocated to every selected switch
/// (Section II-A, II-C).
///
/// Link ASILs are *derived*, not stored: the ASIL of link `(u, v)` equals
/// the lowest ASIL of `u` and `v` (Section IV-B). The invariant therefore
/// holds by construction and survives switch upgrades.
///
/// Cloning a topology is cheap-ish (the connection graph is shared through
/// an [`Arc`]); NPTSN clones topologies when exploring and when recording
/// best solutions.
///
/// # Examples
///
/// ```
/// use nptsn_topo::{Asil, ComponentLibrary, ConnectionGraph};
///
/// let mut gc = ConnectionGraph::new();
/// let a = gc.add_end_station("a");
/// let b = gc.add_end_station("b");
/// let s = gc.add_switch("s");
/// gc.add_candidate_link(a, s, 1.0).unwrap();
/// gc.add_candidate_link(b, s, 1.0).unwrap();
///
/// let mut topo = gc.empty_topology();
/// topo.add_switch(s, Asil::A).unwrap();
/// topo.add_link(a, s).unwrap();
/// topo.add_link(b, s).unwrap();
///
/// // Link (a, s) inherits the lowest endpoint ASIL: the ASIL-A switch.
/// let link = topo.connection_graph().link_between(a, s).unwrap();
/// assert_eq!(topo.link_asil(link), Asil::A);
///
/// // Upgrading the switch lifts the link ASIL with it.
/// topo.upgrade_switch(s).unwrap();
/// assert_eq!(topo.link_asil(link), Asil::B);
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    gc: Arc<ConnectionGraph>,
    // PartialEq below compares the selection state only (switch ASILs and
    // present links); the remaining fields are derived from it.
    /// Indexed by node index; `None` for end stations and unselected
    /// switches.
    switch_asil: Vec<Option<Asil>>,
    /// Indexed by link index.
    link_present: Vec<bool>,
    degree: Vec<usize>,
    selected_switches: Vec<NodeId>,
    link_count: usize,
}

/// Structural equality: two topologies are equal when they select the same
/// switches at the same ASILs and contain the same links. The connection
/// graphs must have identical node/link layouts for the comparison to be
/// meaningful (always true for topologies over the same problem).
impl PartialEq for Topology {
    fn eq(&self, other: &Topology) -> bool {
        self.switch_asil == other.switch_asil && self.link_present == other.link_present
    }
}

impl Topology {
    /// Creates the empty topology (end stations only) over `gc`.
    pub fn empty(gc: Arc<ConnectionGraph>) -> Topology {
        let n = gc.node_count();
        let m = gc.candidate_link_count();
        Topology {
            gc,
            switch_asil: vec![None; n],
            link_present: vec![false; m],
            degree: vec![0; n],
            selected_switches: Vec::new(),
            link_count: 0,
        }
    }

    /// The underlying connection graph `Gc`.
    pub fn connection_graph(&self) -> &ConnectionGraph {
        &self.gc
    }

    /// Shared handle to the underlying connection graph.
    pub fn connection_graph_arc(&self) -> Arc<ConnectionGraph> {
        Arc::clone(&self.gc)
    }

    /// Adds switch `node` to the topology with the given ASIL.
    ///
    /// # Errors
    ///
    /// Returns [`TopoError::NotASwitch`] for end stations,
    /// [`TopoError::UnknownNode`] for out-of-range ids and
    /// [`TopoError::SwitchAlreadySelected`] when already added.
    pub fn add_switch(&mut self, node: NodeId, asil: Asil) -> Result<()> {
        if node.index() >= self.gc.node_count() {
            return Err(TopoError::UnknownNode(node));
        }
        if !self.gc.is_switch(node) {
            return Err(TopoError::NotASwitch(node));
        }
        if self.switch_asil[node.index()].is_some() {
            return Err(TopoError::SwitchAlreadySelected(node));
        }
        self.switch_asil[node.index()] = Some(asil);
        self.selected_switches.push(node);
        self.selected_switches.sort_unstable();
        Ok(())
    }

    /// Raises the ASIL of a selected switch by one level and returns the new
    /// level.
    ///
    /// # Errors
    ///
    /// Returns [`TopoError::SwitchNotSelected`] when the switch is not part
    /// of the topology and [`TopoError::AlreadyAtMaxAsil`] for ASIL-D
    /// switches (their upgrade actions are masked out, Section IV-B).
    pub fn upgrade_switch(&mut self, node: NodeId) -> Result<Asil> {
        let current = self
            .switch_asil
            .get(node.index())
            .copied()
            .flatten()
            .ok_or(TopoError::SwitchNotSelected(node))?;
        let next = current.upgraded().ok_or(TopoError::AlreadyAtMaxAsil(node))?;
        self.switch_asil[node.index()] = Some(next);
        Ok(next)
    }

    /// Whether switch `node` has been added to the topology.
    pub fn contains_switch(&self, node: NodeId) -> bool {
        self.switch_asil.get(node.index()).copied().flatten().is_some()
    }

    /// ASIL of a selected switch, or `None` if not selected (or not a
    /// switch).
    pub fn switch_asil(&self, node: NodeId) -> Option<Asil> {
        self.switch_asil.get(node.index()).copied().flatten()
    }

    /// ASIL of any node present in the topology: the allocated ASIL for
    /// selected switches, the fixed application-defined ASIL for end
    /// stations, `None` for unselected switches.
    pub fn node_asil(&self, node: NodeId) -> Option<Asil> {
        if self.gc.is_end_station(node) {
            Some(self.gc.end_station_asil(node))
        } else {
            self.switch_asil(node)
        }
    }

    /// The selected switches `V^t_sw` in ascending id order.
    pub fn selected_switches(&self) -> &[NodeId] {
        &self.selected_switches
    }

    /// Adds the candidate link between `u` and `v` to the topology.
    ///
    /// # Errors
    ///
    /// Returns [`TopoError::UnknownLink`] when `(u, v)` is not a candidate
    /// connection, [`TopoError::EndpointNotSelected`] when an endpoint is an
    /// unselected switch, [`TopoError::DuplicateLink`] when already present
    /// and [`TopoError::DegreeExceeded`] when a degree constraint would be
    /// violated.
    pub fn add_link(&mut self, u: NodeId, v: NodeId) -> Result<LinkId> {
        let link = self.gc.link_between(u, v).ok_or(TopoError::UnknownLink(u, v))?;
        for endpoint in [u, v] {
            if self.gc.is_switch(endpoint) && !self.contains_switch(endpoint) {
                return Err(TopoError::EndpointNotSelected(endpoint));
            }
        }
        if self.link_present[link.index()] {
            return Err(TopoError::DuplicateLink(u, v));
        }
        for endpoint in [u, v] {
            let max = self.gc.max_degree(endpoint);
            if self.degree[endpoint.index()] + 1 > max {
                return Err(TopoError::DegreeExceeded { node: endpoint, max_degree: max });
            }
        }
        self.link_present[link.index()] = true;
        self.degree[u.index()] += 1;
        self.degree[v.index()] += 1;
        self.link_count += 1;
        Ok(link)
    }

    /// Whether the candidate link is part of the topology.
    pub fn contains_link(&self, link: LinkId) -> bool {
        self.link_present.get(link.index()).copied().unwrap_or(false)
    }

    /// Whether the link between `u` and `v` is part of the topology.
    pub fn contains_link_between(&self, u: NodeId, v: NodeId) -> bool {
        self.gc.link_between(u, v).map(|l| self.contains_link(l)).unwrap_or(false)
    }

    /// Degree of `node` in the topology.
    pub fn degree(&self, node: NodeId) -> usize {
        self.degree[node.index()]
    }

    /// Number of links in the topology `|E^t|`.
    pub fn link_count(&self) -> usize {
        self.link_count
    }

    /// All links present in the topology.
    pub fn links(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.link_present
            .iter()
            .enumerate()
            .filter(|(_, &p)| p)
            .map(|(i, _)| LinkId(i))
    }

    /// ASIL of a topology link: the lowest ASIL of its endpoints
    /// (Section IV-B).
    ///
    /// # Panics
    ///
    /// Panics if the link is not part of the topology (its endpoints would
    /// have no ASIL). Use [`try_link_asil`](Topology::try_link_asil) when
    /// the link may come from untrusted input.
    pub fn link_asil(&self, link: LinkId) -> Asil {
        self.try_link_asil(link).expect("link endpoint without ASIL")
    }

    /// Fallible variant of [`link_asil`](Topology::link_asil).
    ///
    /// # Errors
    ///
    /// Returns [`TopoError::EndpointNotSelected`] if an endpoint of `link`
    /// is a switch outside the topology (so it has no ASIL).
    pub fn try_link_asil(&self, link: LinkId) -> Result<Asil> {
        let (u, v) = self.gc.link_endpoints(link);
        let au = self.node_asil(u).ok_or(TopoError::EndpointNotSelected(u))?;
        let av = self.node_asil(v).ok_or(TopoError::EndpointNotSelected(v))?;
        Ok(au.min(av))
    }

    /// Checks whether `path` could be added without violating degree
    /// constraints; only links not already present count towards degrees.
    ///
    /// Intermediate switches must already be selected (paths can only
    /// traverse previously added switches, Section IV-B); if one is not, the
    /// path is not addable.
    pub fn can_add_path(&self, path: &Path) -> bool {
        for &node in path.nodes() {
            if self.gc.is_switch(node) && !self.contains_switch(node) {
                return false;
            }
        }
        let mut delta: Vec<(NodeId, usize)> = Vec::with_capacity(path.nodes().len());
        let bump = |node: NodeId, delta: &mut Vec<(NodeId, usize)>| {
            if let Some(entry) = delta.iter_mut().find(|(n, _)| *n == node) {
                entry.1 += 1;
            } else {
                delta.push((node, 1));
            }
        };
        for (u, v) in path.edges() {
            match self.gc.link_between(u, v) {
                Some(link) if self.link_present[link.index()] => {}
                Some(_) => {
                    bump(u, &mut delta);
                    bump(v, &mut delta);
                }
                None => return false,
            }
        }
        delta
            .iter()
            .all(|&(node, d)| self.degree[node.index()] + d <= self.gc.max_degree(node))
    }

    /// Adds every missing link along `path`, returning how many links were
    /// new.
    ///
    /// # Errors
    ///
    /// Fails with the first underlying [`add_link`](Topology::add_link)
    /// error; on failure the topology may have been partially extended, so
    /// callers that need atomicity should check
    /// [`can_add_path`](Topology::can_add_path) first (SOAG masks guarantee
    /// this for RL actions).
    pub fn add_path(&mut self, path: &Path) -> Result<usize> {
        let mut added = 0;
        for (u, v) in path.edges() {
            let link = self.gc.link_between(u, v).ok_or(TopoError::UnknownLink(u, v))?;
            if !self.link_present[link.index()] {
                self.add_link(u, v)?;
                added += 1;
            }
        }
        Ok(added)
    }

    /// Total network cost (Eq. 1): the sum of switch costs
    /// `csw(deg(v), ASIL_v)` and link costs `clk(ASIL_uv, len(u, v))`.
    ///
    /// End stations are defined by the applications and do not contribute.
    ///
    /// # Panics
    ///
    /// Panics if a switch degree exceeds every model in the library
    /// (prevented by the degree constraints when the library's
    /// [`max_switch_degree`](ComponentLibrary::max_switch_degree) is used).
    /// Use [`try_network_cost`](Topology::try_network_cost) when the
    /// topology may come from untrusted input.
    pub fn network_cost(&self, library: &ComponentLibrary) -> f64 {
        self.try_network_cost(library)
            .expect("switch degree exceeds the component library")
    }

    /// Fallible variant of [`network_cost`](Topology::network_cost).
    pub fn try_network_cost(&self, library: &ComponentLibrary) -> Result<f64> {
        let mut cost = 0.0;
        for &sw in &self.selected_switches {
            let asil =
                self.switch_asil[sw.index()].ok_or(TopoError::SwitchNotSelected(sw))?;
            cost += library.switch_cost(self.degree[sw.index()], asil)?;
        }
        for link in self.links() {
            cost += library.link_cost(self.try_link_asil(link)?, self.gc.link_length(link));
        }
        Ok(cost)
    }

    /// Probability of failure scenario `Gf` (Eq. 2): the product of the
    /// component failure probabilities of every failed switch and link.
    ///
    /// # Panics
    ///
    /// Panics if the scenario references a switch outside the topology. Use
    /// [`try_failure_probability`](Topology::try_failure_probability) when
    /// the scenario may come from untrusted input.
    pub fn failure_probability(&self, failure: &FailureScenario) -> f64 {
        self.try_failure_probability(failure).expect("failed switch is selected")
    }

    /// Fallible variant of
    /// [`failure_probability`](Topology::failure_probability).
    ///
    /// # Errors
    ///
    /// Returns [`TopoError::SwitchNotSelected`] if the scenario fails a
    /// switch outside the topology, or
    /// [`TopoError::EndpointNotSelected`] if it fails a link with an
    /// unselected endpoint.
    pub fn try_failure_probability(&self, failure: &FailureScenario) -> Result<f64> {
        let mut p = 1.0;
        for &sw in failure.failed_switches() {
            let asil = self.switch_asil(sw).ok_or(TopoError::SwitchNotSelected(sw))?;
            p *= asil.failure_probability();
        }
        for &link in failure.failed_links() {
            p *= self.try_link_asil(link)?.failure_probability();
        }
        Ok(p)
    }

    /// A 128-bit fingerprint of the selection state (switch ASILs and
    /// present links) — the same fields [`PartialEq`] compares, so equal
    /// topologies always have equal fingerprints.
    ///
    /// The failure analyzer keys its NBF-outcome cache on this value:
    /// mutating the topology (adding a switch or link, upgrading an ASIL)
    /// changes the fingerprint, so stale entries are never read back.
    /// Two FNV-1a streams with independent offsets/primes make accidental
    /// collisions (~2^-128 per pair) negligible even across long runs.
    pub fn fingerprint(&self) -> u128 {
        // FNV-1a, two independent 64-bit streams.
        let mut lo: u64 = 0xcbf2_9ce4_8422_2325;
        let mut hi: u64 = 0x6c62_272e_07bb_0142;
        let mut mix = |byte: u8| {
            lo = (lo ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
            hi = (hi ^ u64::from(byte).rotate_left(17)).wrapping_mul(0x0000_01b3_0000_0193);
        };
        for asil in &self.switch_asil {
            mix(match asil {
                None => 0,
                Some(a) => 1 + *a as u8,
            });
        }
        for &present in &self.link_present {
            mix(u8::from(present));
        }
        (u128::from(hi) << 64) | u128::from(lo)
    }

    /// Adjacency of the active topology: for every node, its `(neighbor,
    /// link, length)` triples over present links.
    pub fn adjacency(&self) -> Adjacency {
        self.residual_adjacency(&FailureScenario::none())
    }

    /// Adjacency of the residual network after removing the failed switches
    /// and links of `failure` (a failed switch disables every link attached
    /// to it, Section II-A).
    pub fn residual_adjacency(&self, failure: &FailureScenario) -> Adjacency {
        let n = self.gc.node_count();
        let mut adj: Adjacency = vec![Vec::new(); n];
        for link in self.links() {
            if failure.contains_link(link) {
                continue;
            }
            let (u, v) = self.gc.link_endpoints(link);
            if failure.contains_switch(u) || failure.contains_switch(v) {
                continue;
            }
            let len = self.gc.link_length(link);
            adj[u.index()].push((v, link, len));
            adj[v.index()].push((u, link, len));
        }
        adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ConnectionGraph;

    /// a - s0 - s1 - b plus a direct a - s1 chord.
    fn diamondish() -> (Arc<ConnectionGraph>, NodeId, NodeId, NodeId, NodeId) {
        let mut gc = ConnectionGraph::new();
        let a = gc.add_end_station("a");
        let b = gc.add_end_station("b");
        let s0 = gc.add_switch("s0");
        let s1 = gc.add_switch("s1");
        gc.add_candidate_link(a, s0, 1.0).unwrap();
        gc.add_candidate_link(s0, s1, 1.0).unwrap();
        gc.add_candidate_link(s1, b, 1.0).unwrap();
        gc.add_candidate_link(a, s1, 2.0).unwrap();
        (Arc::new(gc), a, b, s0, s1)
    }

    #[test]
    fn empty_topology_has_no_cost() {
        let (gc, ..) = diamondish();
        let topo = Topology::empty(gc);
        assert_eq!(topo.network_cost(&ComponentLibrary::automotive()), 0.0);
        assert_eq!(topo.link_count(), 0);
        assert!(topo.selected_switches().is_empty());
    }

    #[test]
    fn add_switch_rejects_end_stations_and_duplicates() {
        let (gc, a, _, s0, _) = diamondish();
        let mut topo = Topology::empty(gc);
        assert_eq!(topo.add_switch(a, Asil::A), Err(TopoError::NotASwitch(a)));
        topo.add_switch(s0, Asil::A).unwrap();
        assert_eq!(topo.add_switch(s0, Asil::B), Err(TopoError::SwitchAlreadySelected(s0)));
    }

    #[test]
    fn link_requires_selected_endpoints() {
        let (gc, a, _, s0, _) = diamondish();
        let mut topo = Topology::empty(gc);
        assert_eq!(topo.add_link(a, s0), Err(TopoError::EndpointNotSelected(s0)));
        topo.add_switch(s0, Asil::A).unwrap();
        topo.add_link(a, s0).unwrap();
        assert!(topo.contains_link_between(a, s0));
    }

    #[test]
    fn link_asil_is_min_of_endpoints_and_follows_upgrades() {
        let (gc, a, _, s0, s1) = diamondish();
        let mut topo = Topology::empty(Arc::clone(&gc));
        topo.add_switch(s0, Asil::A).unwrap();
        topo.add_switch(s1, Asil::C).unwrap();
        topo.add_link(a, s0).unwrap();
        topo.add_link(s0, s1).unwrap();

        let es_link = gc.link_between(a, s0).unwrap();
        let sw_link = gc.link_between(s0, s1).unwrap();
        // ES is ASIL-D, switch is A -> link is A.
        assert_eq!(topo.link_asil(es_link), Asil::A);
        // min(A, C) = A.
        assert_eq!(topo.link_asil(sw_link), Asil::A);

        topo.upgrade_switch(s0).unwrap(); // A -> B
        assert_eq!(topo.link_asil(es_link), Asil::B);
        assert_eq!(topo.link_asil(sw_link), Asil::B);
        topo.upgrade_switch(s0).unwrap(); // B -> C
        topo.upgrade_switch(s0).unwrap(); // C -> D
        assert_eq!(topo.upgrade_switch(s0), Err(TopoError::AlreadyAtMaxAsil(s0)));
        // min(D, C) = C.
        assert_eq!(topo.link_asil(sw_link), Asil::C);
    }

    #[test]
    fn degree_constraint_enforced_for_end_stations() {
        let (gc, a, _, s0, s1) = diamondish();
        let mut topo = Topology::empty(gc);
        topo.add_switch(s0, Asil::A).unwrap();
        topo.add_switch(s1, Asil::A).unwrap();
        topo.add_link(a, s0).unwrap();
        topo.add_link(a, s1).unwrap();
        // Max ES degree is 2: a third link at `a` must fail even if it were
        // a candidate; simulate by lowering the limit instead.
        let mut gc2 = ConnectionGraph::new();
        gc2.set_max_end_station_degree(1);
        let x = gc2.add_end_station("x");
        let t0 = gc2.add_switch("t0");
        let t1 = gc2.add_switch("t1");
        gc2.add_candidate_link(x, t0, 1.0).unwrap();
        gc2.add_candidate_link(x, t1, 1.0).unwrap();
        let mut topo2 = gc2.empty_topology();
        topo2.add_switch(t0, Asil::A).unwrap();
        topo2.add_switch(t1, Asil::A).unwrap();
        topo2.add_link(x, t0).unwrap();
        assert_eq!(
            topo2.add_link(x, t1),
            Err(TopoError::DegreeExceeded { node: x, max_degree: 1 })
        );
    }

    #[test]
    fn network_cost_matches_table_i_by_hand() {
        let (gc, a, b, s0, s1) = diamondish();
        let lib = ComponentLibrary::automotive();
        let mut topo = Topology::empty(gc);
        topo.add_switch(s0, Asil::A).unwrap();
        topo.add_switch(s1, Asil::B).unwrap();
        topo.add_link(a, s0).unwrap(); // len 1, ASIL A -> 1
        topo.add_link(s0, s1).unwrap(); // len 1, min(A, B) = A -> 1
        topo.add_link(s1, b).unwrap(); // len 1, ASIL B -> 2
        // s0: degree 2, ASIL A -> 8 (4-port). s1: degree 2, ASIL B -> 12.
        assert_eq!(topo.network_cost(&lib), 8.0 + 12.0 + 1.0 + 1.0 + 2.0);
    }

    #[test]
    fn path_addition_respects_existing_links() {
        let (gc, a, b, s0, s1) = diamondish();
        let mut topo = Topology::empty(gc);
        topo.add_switch(s0, Asil::A).unwrap();
        topo.add_switch(s1, Asil::A).unwrap();
        topo.add_link(a, s0).unwrap();
        let path = Path::new(vec![a, s0, s1, b]);
        assert!(topo.can_add_path(&path));
        let added = topo.add_path(&path).unwrap();
        assert_eq!(added, 2); // (a, s0) already present
        assert_eq!(topo.link_count(), 3);
        // Re-adding is a no-op.
        assert_eq!(topo.add_path(&path).unwrap(), 0);
    }

    #[test]
    fn path_through_unselected_switch_is_not_addable() {
        let (gc, a, b, _, s1) = diamondish();
        let mut topo = Topology::empty(gc);
        topo.add_switch(s1, Asil::A).unwrap();
        // Path through s0, which is unselected.
        let through_s0 = Path::new(vec![a, NodeId(2), s1, b]);
        assert!(!topo.can_add_path(&through_s0));
        // Direct path via the chord is fine.
        let direct = Path::new(vec![a, s1, b]);
        assert!(topo.can_add_path(&direct));
    }

    #[test]
    fn failure_probability_is_product_of_components() {
        let (gc, a, _, s0, s1) = diamondish();
        let mut topo = Topology::empty(Arc::clone(&gc));
        topo.add_switch(s0, Asil::A).unwrap();
        topo.add_switch(s1, Asil::B).unwrap();
        topo.add_link(a, s0).unwrap();
        topo.add_link(s0, s1).unwrap();

        let f = FailureScenario::switches(vec![s0, s1]);
        let expect = Asil::A.failure_probability() * Asil::B.failure_probability();
        assert!((topo.failure_probability(&f) - expect).abs() < 1e-15);

        let link = gc.link_between(s0, s1).unwrap();
        let f2 = FailureScenario::new(vec![], vec![link]);
        // Link ASIL = min(A, B) = A.
        assert!((topo.failure_probability(&f2) - Asil::A.failure_probability()).abs() < 1e-15);
    }

    #[test]
    fn fingerprint_tracks_selection_state() {
        let (gc, a, b, s0, s1) = diamondish();
        let mut topo = Topology::empty(Arc::clone(&gc));
        let empty = topo.fingerprint();
        assert_eq!(empty, Topology::empty(Arc::clone(&gc)).fingerprint());

        topo.add_switch(s0, Asil::A).unwrap();
        let with_s0 = topo.fingerprint();
        assert_ne!(empty, with_s0);
        topo.upgrade_switch(s0).unwrap();
        assert_ne!(with_s0, topo.fingerprint(), "ASIL upgrades change the fingerprint");
        topo.add_link(a, s0).unwrap();
        let with_link = topo.fingerprint();
        assert_ne!(topo.fingerprint(), with_s0);

        // Equal selection states agree regardless of construction order.
        let mut twin = Topology::empty(Arc::clone(&gc));
        twin.add_switch(s0, Asil::B).unwrap();
        twin.add_link(a, s0).unwrap();
        assert_eq!(twin, topo);
        assert_eq!(twin.fingerprint(), with_link);

        // And selecting a different component diverges.
        let mut other = Topology::empty(gc);
        other.add_switch(s1, Asil::B).unwrap();
        other.add_link(b, s1).unwrap();
        assert_ne!(other.fingerprint(), with_link);
    }

    #[test]
    fn residual_adjacency_removes_failed_switch_links() {
        let (gc, a, b, s0, s1) = diamondish();
        let mut topo = Topology::empty(gc);
        topo.add_switch(s0, Asil::A).unwrap();
        topo.add_switch(s1, Asil::A).unwrap();
        topo.add_path(&Path::new(vec![a, s0, s1, b])).unwrap();

        let adj = topo.residual_adjacency(&FailureScenario::switches(vec![s0]));
        assert!(adj[a.index()].is_empty(), "links attached to s0 must vanish");
        assert_eq!(adj[s1.index()].len(), 1); // only (s1, b) remains
    }
}
