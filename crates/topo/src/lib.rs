//! Graph, component-library, ASIL and failure model for in-vehicle TSSDN
//! network planning.
//!
//! This crate implements the system model of Section II of the NPTSN paper
//! (DSN 2023):
//!
//! * [`ConnectionGraph`] — the undirected graph of *possible* connections
//!   `Gc` handed to the network planner, containing the end stations to
//!   connect and the optional switches/links.
//! * [`Topology`] — a planned TSSDN topology `Gt` (a subgraph of `Gc`)
//!   together with the ASIL allocated to every selected switch. Link ASILs
//!   are derived: the ASIL of link `(u, v)` always equals the lowest ASIL of
//!   its endpoints (Section IV-B), an invariant maintained by construction.
//! * [`Asil`] and [`ComponentLibrary`] — Automotive Safety Integrity Levels
//!   and the cost/failure-probability tables of Table I.
//! * [`FailureScenario`] — a failure `Gf` (failed switches and links).
//! * Path algorithms — BFS, Dijkstra, Yen's K-shortest paths and
//!   node-disjoint path search, used by the SOAG action generator, the
//!   recovery scheduler and the TRH baseline.
//!
//! # Examples
//!
//! ```
//! use nptsn_topo::{Asil, ComponentLibrary, ConnectionGraph};
//!
//! let mut gc = ConnectionGraph::new();
//! let es_a = gc.add_end_station("cam");
//! let es_b = gc.add_end_station("ecu");
//! let sw = gc.add_switch("sw0");
//! gc.add_candidate_link(es_a, sw, 1.0).unwrap();
//! gc.add_candidate_link(es_b, sw, 1.0).unwrap();
//!
//! let lib = ComponentLibrary::automotive();
//! let mut topo = gc.empty_topology();
//! topo.add_switch(sw, Asil::A).unwrap();
//! topo.add_link(es_a, sw).unwrap();
//! topo.add_link(es_b, sw).unwrap();
//! assert!(topo.network_cost(&lib) > 0.0);
//! ```

#![warn(missing_docs)]

mod asil;
mod error;
mod failure;
mod graph;
mod library;
mod paths;
mod topology;

pub use asil::Asil;
pub use error::TopoError;
pub use failure::FailureScenario;
pub use graph::{ConnectionGraph, LinkId, NodeId, NodeKind};
pub use library::{ComponentLibrary, SwitchModel};
pub use paths::{
    bfs_distances, dijkstra_shortest_path, k_shortest_paths, node_disjoint_paths, Path,
};
pub use topology::Topology;

/// Result alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, TopoError>;
