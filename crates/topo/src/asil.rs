//! Automotive Safety Integrity Levels (ISO 26262).

use std::fmt;

/// An Automotive Safety Integrity Level as defined by ISO 26262.
///
/// Levels range from [`Asil::A`] (least critical) to [`Asil::D`] (most
/// critical). Network planning allocates an ASIL to every selected switch;
/// link ASILs are derived from their endpoints.
///
/// # Examples
///
/// ```
/// use nptsn_topo::Asil;
///
/// assert!(Asil::A < Asil::D);
/// assert_eq!(Asil::B.upgraded(), Some(Asil::C));
/// assert_eq!(Asil::D.upgraded(), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Asil {
    /// ASIL A — least critical.
    A,
    /// ASIL B.
    B,
    /// ASIL C.
    C,
    /// ASIL D — most critical.
    D,
}

impl Asil {
    /// All levels in increasing order of criticality.
    pub const ALL: [Asil; 4] = [Asil::A, Asil::B, Asil::C, Asil::D];

    /// Returns the zero-based index of the level (`A` is 0, `D` is 3).
    ///
    /// ```
    /// # use nptsn_topo::Asil;
    /// assert_eq!(Asil::C.index(), 2);
    /// ```
    pub fn index(self) -> usize {
        match self {
            Asil::A => 0,
            Asil::B => 1,
            Asil::C => 2,
            Asil::D => 3,
        }
    }

    /// Builds a level from its zero-based index, or `None` if out of range.
    ///
    /// ```
    /// # use nptsn_topo::Asil;
    /// assert_eq!(Asil::from_index(3), Some(Asil::D));
    /// assert_eq!(Asil::from_index(4), None);
    /// ```
    pub fn from_index(index: usize) -> Option<Asil> {
        Asil::ALL.get(index).copied()
    }

    /// The next-higher level, or `None` for [`Asil::D`].
    ///
    /// Switch-upgrade actions in NPTSN increase a switch's ASIL by exactly
    /// one level per action (Section IV-B).
    pub fn upgraded(self) -> Option<Asil> {
        Asil::from_index(self.index() + 1)
    }

    /// Component failure probability `cfp(ASIL)` over a 1000-hour mission.
    ///
    /// The paper derives failure probabilities from the ISO 26262 failure
    /// rates (1e-6 .. 1e-9 per hour for ASIL A..D) assuming exponentially
    /// distributed failures over 1000 working hours:
    /// `cfp = 1 - exp(-rate * 1000)` (Section VI-A).
    ///
    /// Note that the exact value for ASIL D is *slightly below* 1e-6, which
    /// is what allows a single ASIL-D component to function without a backup
    /// when the reliability goal is `R = 1e-6` (its failure is a safe fault).
    ///
    /// ```
    /// # use nptsn_topo::Asil;
    /// assert!(Asil::D.failure_probability() < 1e-6);
    /// assert!(Asil::A.failure_probability() > 9e-4);
    /// ```
    pub fn failure_probability(self) -> f64 {
        1.0 - (-self.failure_rate_per_hour() * 1000.0).exp()
    }

    /// ISO 26262 random-hardware-failure rate in failures per hour.
    pub fn failure_rate_per_hour(self) -> f64 {
        match self {
            Asil::A => 1e-6,
            Asil::B => 1e-7,
            Asil::C => 1e-8,
            Asil::D => 1e-9,
        }
    }
}

impl fmt::Display for Asil {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Asil::A => "ASIL-A",
            Asil::B => "ASIL-B",
            Asil::C => "ASIL-C",
            Asil::D => "ASIL-D",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_follows_criticality() {
        assert!(Asil::A < Asil::B);
        assert!(Asil::B < Asil::C);
        assert!(Asil::C < Asil::D);
    }

    #[test]
    fn upgrade_chain_terminates_at_d() {
        assert_eq!(Asil::A.upgraded(), Some(Asil::B));
        assert_eq!(Asil::B.upgraded(), Some(Asil::C));
        assert_eq!(Asil::C.upgraded(), Some(Asil::D));
        assert_eq!(Asil::D.upgraded(), None);
    }

    #[test]
    fn index_roundtrip() {
        for asil in Asil::ALL {
            assert_eq!(Asil::from_index(asil.index()), Some(asil));
        }
        assert_eq!(Asil::from_index(17), None);
    }

    #[test]
    fn failure_probability_decreases_with_level() {
        let mut prev = 1.0;
        for asil in Asil::ALL {
            let p = asil.failure_probability();
            assert!(p < prev, "{asil} probability {p} not below {prev}");
            assert!(p > 0.0);
            prev = p;
        }
    }

    #[test]
    fn failure_probability_matches_table_i_magnitudes() {
        // Table I lists 1e-3 .. 1e-6; the exact exponential values are just
        // below those magnitudes.
        assert!((Asil::A.failure_probability() - 1e-3).abs() < 1e-5);
        assert!((Asil::B.failure_probability() - 1e-4).abs() < 1e-7);
        assert!((Asil::C.failure_probability() - 1e-5).abs() < 1e-9);
        assert!((Asil::D.failure_probability() - 1e-6).abs() < 1e-11);
        // Strictly below 1e-6: single ASIL-D failures are safe at R = 1e-6.
        assert!(Asil::D.failure_probability() < 1e-6);
    }

    #[test]
    fn display_is_nonempty() {
        for asil in Asil::ALL {
            assert!(!asil.to_string().is_empty());
        }
    }
}
