//! Randomized tests for the topology model and the path algorithms.
//!
//! Formerly proptest-based; now seeded deterministic sweeps driven by
//! `nptsn-rand` so the workspace needs no external dev-dependencies.

use std::collections::HashSet;
use std::sync::Arc;

use nptsn_rand::rngs::StdRng;
use nptsn_rand::{Rng, RngCore, SeedableRng};
use nptsn_topo::{
    k_shortest_paths, Asil, ComponentLibrary, ConnectionGraph, FailureScenario, NodeId, Topology,
};

const CASES: u64 = 64;

/// A random connected-ish candidate graph: `es` end stations, `sw` switches,
/// plus a random subset of the switch-ES and switch-switch pairs.
fn random_graph(rng: &mut StdRng) -> (Arc<ConnectionGraph>, Vec<NodeId>, Vec<NodeId>) {
    let es = rng.gen_range(2usize..5);
    let sw = rng.gen_range(2usize..6);
    let seed: u64 = rng.next_u64();
    let mut gc = ConnectionGraph::new();
    let stations: Vec<NodeId> = (0..es).map(|i| gc.add_end_station(format!("es{i}"))).collect();
    let switches: Vec<NodeId> = (0..sw).map(|i| gc.add_switch(format!("sw{i}"))).collect();
    // Deterministic pseudo-random edge selection from the seed.
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for &s in &switches {
        for &t in stations.iter().chain(switches.iter()) {
            if s == t {
                continue;
            }
            if gc.link_between(s, t).is_some() {
                continue;
            }
            // ~70% of candidate pairs become candidate links.
            if next() % 10 < 7 {
                let len = 1.0 + (next() % 3) as f64;
                gc.add_candidate_link(s, t, len).unwrap();
            }
        }
    }
    (Arc::new(gc), stations, switches)
}

/// Builds a topology selecting all switches with pseudo-random ASILs and
/// adding every candidate link that fits the degree constraints.
fn saturated_topology(gc: &Arc<ConnectionGraph>, switches: &[NodeId], seed: u64) -> Topology {
    let mut topo = Topology::empty(Arc::clone(gc));
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for &sw in switches {
        let asil = Asil::from_index((next() % 4) as usize).unwrap();
        topo.add_switch(sw, asil).unwrap();
    }
    for link in gc.links() {
        let (u, v) = gc.link_endpoints(link);
        let _ = topo.add_link(u, v); // degree violations are fine to skip
    }
    topo
}

/// Yen's K shortest paths are loopless, distinct, sorted by length and
/// all connect source to destination.
#[test]
fn yen_paths_are_sound() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x1090_0000 + case);
        let (gc, stations, switches) = random_graph(&mut rng);
        let k = rng.gen_range(1usize..8);
        let seed = rng.next_u64();
        let topo = saturated_topology(&gc, &switches, seed);
        let adj = topo.adjacency();
        let s = stations[0];
        let d = stations[1];
        let paths = k_shortest_paths(&adj, s, d, k);
        assert!(paths.len() <= k);
        let mut prev = 0.0;
        let mut seen = HashSet::new();
        for p in &paths {
            assert_eq!(p.source(), s);
            assert_eq!(p.destination(), d);
            let mut nodes = HashSet::new();
            assert!(p.nodes().iter().all(|n| nodes.insert(*n)), "loopless");
            let len = p.length_in(&adj).expect("edges exist");
            assert!(len >= prev - 1e-9, "sorted by length");
            prev = len;
            assert!(seen.insert(p.nodes().to_vec()), "distinct");
        }
    }
}

/// The first Yen path equals the Dijkstra shortest path.
#[test]
fn yen_first_path_is_shortest() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x1090_1000 + case);
        let (gc, stations, switches) = random_graph(&mut rng);
        let seed = rng.next_u64();
        let topo = saturated_topology(&gc, &switches, seed);
        let adj = topo.adjacency();
        let s = stations[0];
        let d = stations[1];
        let dij = nptsn_topo::dijkstra_shortest_path(&adj, s, d);
        let yen = k_shortest_paths(&adj, s, d, 1);
        match dij {
            Some(p) => {
                assert_eq!(yen.len(), 1);
                assert_eq!(p.length_in(&adj).unwrap(), yen[0].length_in(&adj).unwrap());
            }
            None => assert!(yen.is_empty()),
        }
        let _ = gc;
    }
}

/// Link ASIL always equals the minimum endpoint ASIL, across arbitrary
/// upgrade sequences.
#[test]
fn link_asil_invariant() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x1090_2000 + case);
        let (gc, _stations, switches) = random_graph(&mut rng);
        let seed = rng.next_u64();
        let n_upgrades = rng.gen_range(0usize..12);
        let mut topo = saturated_topology(&gc, &switches, seed);
        for _ in 0..n_upgrades {
            let sw = switches[rng.gen_range(0usize..6) % switches.len()];
            let _ = topo.upgrade_switch(sw); // may fail at ASIL-D; fine
        }
        for link in topo.links() {
            let (u, v) = gc.link_endpoints(link);
            let expected = topo.node_asil(u).unwrap().min(topo.node_asil(v).unwrap());
            assert_eq!(topo.link_asil(link), expected);
        }
    }
}

/// Network cost never decreases when a switch is upgraded.
#[test]
fn upgrades_never_reduce_cost() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x1090_3000 + case);
        let (gc, _stations, switches) = random_graph(&mut rng);
        let seed = rng.next_u64();
        let lib = ComponentLibrary::automotive();
        let mut topo = saturated_topology(&gc, &switches, seed);
        for &sw in &switches {
            let before = topo.network_cost(&lib);
            if topo.upgrade_switch(sw).is_ok() {
                let after = topo.network_cost(&lib);
                assert!(after >= before, "upgrade lowered cost: {before} -> {after}");
            }
        }
    }
}

/// Degrees never exceed the configured limits and the cost is always
/// computable (every degree fits a library model).
#[test]
fn degrees_within_limits() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x1090_4000 + case);
        let (gc, _stations, switches) = random_graph(&mut rng);
        let seed = rng.next_u64();
        let topo = saturated_topology(&gc, &switches, seed);
        for node in gc.nodes() {
            assert!(topo.degree(node) <= gc.max_degree(node));
        }
        assert!(topo.try_network_cost(&ComponentLibrary::automotive()).is_ok());
    }
}

/// Failure probability is monotone: a superset scenario is never more
/// probable than its subset.
#[test]
fn failure_probability_monotone() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x1090_5000 + case);
        let (gc, _stations, switches) = random_graph(&mut rng);
        let seed = rng.next_u64();
        let topo = saturated_topology(&gc, &switches, seed);
        let selected: Vec<NodeId> = topo.selected_switches().to_vec();
        for i in 0..selected.len() {
            let small = FailureScenario::switches(vec![selected[i]]);
            for j in 0..selected.len() {
                if i == j {
                    continue;
                }
                let big = FailureScenario::switches(vec![selected[i], selected[j]]);
                assert!(small.is_subset_of(&big));
                assert!(topo.failure_probability(&big) <= topo.failure_probability(&small));
            }
        }
        let _ = gc;
    }
}

/// The residual adjacency of a failure is a subgraph of the full
/// adjacency and contains no failed node.
#[test]
fn residual_is_subgraph() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x1090_6000 + case);
        let (gc, _stations, switches) = random_graph(&mut rng);
        let seed = rng.next_u64();
        let which = rng.gen_range(0usize..4);
        let topo = saturated_topology(&gc, &switches, seed);
        let failed = switches[which % switches.len()];
        let failure = FailureScenario::switches(vec![failed]);
        let full = topo.adjacency();
        let residual = topo.residual_adjacency(&failure);
        assert!(residual[failed.index()].is_empty());
        for (i, row) in residual.iter().enumerate() {
            for &(n, l, w) in row {
                assert!(n != failed);
                assert!(full[i].contains(&(n, l, w)));
            }
        }
        let _ = gc;
    }
}
