//! Property-based tests for the topology model and the path algorithms.

use std::collections::HashSet;
use std::sync::Arc;

use nptsn_topo::{
    k_shortest_paths, Asil, ComponentLibrary, ConnectionGraph, FailureScenario, NodeId, Topology,
};
use proptest::prelude::*;

/// A random connected-ish candidate graph: `es` end stations, `sw` switches,
/// plus a random subset of the switch-ES and switch-switch pairs.
fn arb_graph() -> impl Strategy<Value = (Arc<ConnectionGraph>, Vec<NodeId>, Vec<NodeId>)> {
    (2usize..5, 2usize..6, any::<u64>()).prop_map(|(es, sw, seed)| {
        let mut gc = ConnectionGraph::new();
        let stations: Vec<NodeId> = (0..es).map(|i| gc.add_end_station(format!("es{i}"))).collect();
        let switches: Vec<NodeId> = (0..sw).map(|i| gc.add_switch(format!("sw{i}"))).collect();
        // Deterministic pseudo-random edge selection from the seed.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for &s in &switches {
            for &t in stations.iter().chain(switches.iter()) {
                if s == t {
                    continue;
                }
                if gc.link_between(s, t).is_some() {
                    continue;
                }
                // ~70% of candidate pairs become candidate links.
                if next() % 10 < 7 {
                    let len = 1.0 + (next() % 3) as f64;
                    gc.add_candidate_link(s, t, len).unwrap();
                }
            }
        }
        (Arc::new(gc), stations, switches)
    })
}

/// Builds a topology selecting all switches with pseudo-random ASILs and
/// adding every candidate link that fits the degree constraints.
fn saturated_topology(
    gc: &Arc<ConnectionGraph>,
    switches: &[NodeId],
    seed: u64,
) -> Topology {
    let mut topo = Topology::empty(Arc::clone(gc));
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for &sw in switches {
        let asil = Asil::from_index((next() % 4) as usize).unwrap();
        topo.add_switch(sw, asil).unwrap();
    }
    for link in gc.links() {
        let (u, v) = gc.link_endpoints(link);
        let _ = topo.add_link(u, v); // degree violations are fine to skip
    }
    topo
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Yen's K shortest paths are loopless, distinct, sorted by length and
    /// all connect source to destination.
    #[test]
    fn yen_paths_are_sound((gc, stations, switches) in arb_graph(), k in 1usize..8, seed: u64) {
        let topo = saturated_topology(&gc, &switches, seed);
        let adj = topo.adjacency();
        let s = stations[0];
        let d = stations[1];
        let paths = k_shortest_paths(&adj, s, d, k);
        prop_assert!(paths.len() <= k);
        let mut prev = 0.0;
        let mut seen = HashSet::new();
        for p in &paths {
            prop_assert_eq!(p.source(), s);
            prop_assert_eq!(p.destination(), d);
            let mut nodes = HashSet::new();
            prop_assert!(p.nodes().iter().all(|n| nodes.insert(*n)), "loopless");
            let len = p.length_in(&adj).expect("edges exist");
            prop_assert!(len >= prev - 1e-9, "sorted by length");
            prev = len;
            prop_assert!(seen.insert(p.nodes().to_vec()), "distinct");
        }
    }

    /// The first Yen path equals the Dijkstra shortest path.
    #[test]
    fn yen_first_path_is_shortest((gc, stations, switches) in arb_graph(), seed: u64) {
        let topo = saturated_topology(&gc, &switches, seed);
        let adj = topo.adjacency();
        let s = stations[0];
        let d = stations[1];
        let dij = nptsn_topo::dijkstra_shortest_path(&adj, s, d);
        let yen = k_shortest_paths(&adj, s, d, 1);
        match dij {
            Some(p) => {
                prop_assert_eq!(yen.len(), 1);
                prop_assert_eq!(
                    p.length_in(&adj).unwrap(),
                    yen[0].length_in(&adj).unwrap()
                );
            }
            None => prop_assert!(yen.is_empty()),
        }
    }

    /// Link ASIL always equals the minimum endpoint ASIL, across arbitrary
    /// upgrade sequences.
    #[test]
    fn link_asil_invariant((gc, _stations, switches) in arb_graph(), seed: u64, upgrades in proptest::collection::vec(0usize..6, 0..12)) {
        let mut topo = saturated_topology(&gc, &switches, seed);
        for u in upgrades {
            let sw = switches[u % switches.len()];
            let _ = topo.upgrade_switch(sw); // may fail at ASIL-D; fine
        }
        for link in topo.links() {
            let (u, v) = gc.link_endpoints(link);
            let expected = topo.node_asil(u).unwrap().min(topo.node_asil(v).unwrap());
            prop_assert_eq!(topo.link_asil(link), expected);
        }
    }

    /// Network cost never decreases when a switch is upgraded.
    #[test]
    fn upgrades_never_reduce_cost((gc, _stations, switches) in arb_graph(), seed: u64) {
        let lib = ComponentLibrary::automotive();
        let mut topo = saturated_topology(&gc, &switches, seed);
        for &sw in &switches {
            let before = topo.network_cost(&lib);
            if topo.upgrade_switch(sw).is_ok() {
                let after = topo.network_cost(&lib);
                prop_assert!(after >= before, "upgrade lowered cost: {} -> {}", before, after);
            }
        }
    }

    /// Degrees never exceed the configured limits and the cost is always
    /// computable (every degree fits a library model).
    #[test]
    fn degrees_within_limits((gc, _stations, switches) in arb_graph(), seed: u64) {
        let topo = saturated_topology(&gc, &switches, seed);
        for node in gc.nodes() {
            prop_assert!(topo.degree(node) <= gc.max_degree(node));
        }
        prop_assert!(topo.try_network_cost(&ComponentLibrary::automotive()).is_ok());
    }

    /// Failure probability is monotone: a superset scenario is never more
    /// probable than its subset.
    #[test]
    fn failure_probability_monotone((gc, _stations, switches) in arb_graph(), seed: u64) {
        let topo = saturated_topology(&gc, &switches, seed);
        let selected: Vec<NodeId> = topo.selected_switches().to_vec();
        for i in 0..selected.len() {
            let small = FailureScenario::switches(vec![selected[i]]);
            for j in 0..selected.len() {
                if i == j {
                    continue;
                }
                let big = FailureScenario::switches(vec![selected[i], selected[j]]);
                prop_assert!(small.is_subset_of(&big));
                prop_assert!(
                    topo.failure_probability(&big) <= topo.failure_probability(&small)
                );
            }
        }
    }

    /// The residual adjacency of a failure is a subgraph of the full
    /// adjacency and contains no failed node.
    #[test]
    fn residual_is_subgraph((gc, _stations, switches) in arb_graph(), seed: u64, which in 0usize..4) {
        let topo = saturated_topology(&gc, &switches, seed);
        let failed = switches[which % switches.len()];
        let failure = FailureScenario::switches(vec![failed]);
        let full = topo.adjacency();
        let residual = topo.residual_adjacency(&failure);
        prop_assert!(residual[failed.index()].is_empty());
        for (i, row) in residual.iter().enumerate() {
            for &(n, l, w) in row {
                prop_assert!(n != failed);
                prop_assert!(full[i].contains(&(n, l, w)));
            }
        }
    }
}
