//! The bounded job queue and worker-pool executor behind the service.
//!
//! Lifecycle: `submitted → running → done | failed | cancelled`. The queue
//! depth is fixed at construction; a submission against a full queue is
//! rejected immediately (the HTTP layer maps that to `503` +
//! `Retry-After`) so heavy traffic degrades with backpressure instead of
//! unbounded memory growth. Shutdown is a *drain*: the queue stops
//! accepting work, the workers finish every job already accepted — running
//! and queued — and no result is dropped.
//!
//! Request payloads are parsed and validated at submission time (problem
//! text, plan text, checkpoint structure), so every malformed upload is a
//! synchronous `4xx` and a worker never picks up a job that cannot start.
//!
//! # Durability
//!
//! Every lifecycle transition is written through a [`Storage`] before it
//! is acknowledged: a submission is not `202` until its record (and the
//! id watermark) is durable, and a result is recorded on disk before the
//! worker moves on. [`JobQueue::open`] replays those records after a
//! restart — terminal jobs come back with byte-identical results,
//! submitted and running-at-crash jobs are re-validated from their raw
//! request text and re-enqueued (idempotently: re-running an interrupted
//! job is always safe because nothing was acknowledged for it), and
//! records that no longer validate are recorded `failed` instead of being
//! silently dropped.
//!
//! Terminal jobs are bounded by a [`RetentionConfig`]: beyond the count
//! cap (and optionally a TTL) the oldest are evicted from memory *and*
//! the store, so sustained traffic cannot leak either.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use nptsn::{
    plan_with_policy_batch, EpochStats, FailureAnalyzer, GreedyPlanner, InferLane, Planner,
    PlannerConfig, ScenarioCache, Solution,
};
use nptsn_format::json::{analysis_report_json, epoch_stats_json, Object};
use nptsn_format::{write_plan, ParsedProblem};
use nptsn_store::{MemStore, Storage, StoreError};
use nptsn_topo::Topology;

use crate::metrics::{Counter, Histogram};
use crate::persist::{
    decode_next_id, decode_record, decode_trace, encode_next_id, encode_record, encode_trace,
    job_id_from_key, job_key, replica_id_from_key, replica_key, trace_key, JobSpec, TraceRecord,
    TraceSpan, JOB_PREFIX, NEXT_ID_KEY, REPLICA_PREFIX,
};
use crate::registry::CheckpointRegistry;
use crate::server::ServeMetrics;

/// Telemetry for the infer micro-batching path, registered once on the
/// process-wide registry so `/metrics` (which merges it) exposes the
/// series whether infer runs through a batch or solo.
struct InferMetrics {
    /// Jobs coalesced per infer execution (solo executions observe 1).
    batch_size: Arc<Histogram>,
    /// Executions that fused two or more jobs into one batched forward.
    batched_forwards: Arc<Counter>,
    /// Infer jobs executed alone (batching off, deadline mode, no mates).
    solo_forwards: Arc<Counter>,
    /// Total infer jobs served through a batched forward.
    batch_jobs: Arc<Counter>,
}

fn infer_metrics() -> &'static InferMetrics {
    static METRICS: OnceLock<InferMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = &nptsn_obs::telemetry().registry;
        InferMetrics {
            batch_size: registry.histogram(
                "nptsn_infer_batch_size",
                "Infer jobs coalesced into one policy execution",
                &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0],
            ),
            batched_forwards: registry.counter(
                "nptsn_infer_batched_forwards_total",
                "Infer executions that fused multiple jobs into one batched forward",
            ),
            solo_forwards: registry.counter(
                "nptsn_infer_solo_forwards_total",
                "Infer jobs executed without batch-mates",
            ),
            batch_jobs: registry.counter(
                "nptsn_infer_batch_jobs_total",
                "Infer jobs served through a batched forward",
            ),
        }
    })
}

/// Identifies one submitted job.
pub type JobId = u64;

/// A validated plan request: train (or greedily construct) a topology for
/// the parsed problem.
#[derive(Debug, Clone)]
pub struct PlanRequest {
    /// The parsed problem (validated at submission).
    pub parsed: ParsedProblem,
    /// Training epochs (ignored for greedy).
    pub epochs: usize,
    /// Environment steps per epoch (ignored for greedy).
    pub steps: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Use the greedy ablation planner instead of RL.
    pub greedy: bool,
    /// Analyzer fan-out inside each rollout worker.
    pub analyzer_workers: usize,
}

/// A validated verify request: run the failure analyzer on a submitted
/// plan.
#[derive(Debug, Clone)]
pub struct VerifyRequest {
    /// The parsed problem.
    pub parsed: ParsedProblem,
    /// The topology parsed from the uploaded plan file.
    pub topology: Topology,
    /// Analyzer worker threads.
    pub analyzer_workers: usize,
}

/// Where an infer job's `NPTSNCK2` policy bytes come from.
#[derive(Debug, Clone)]
pub enum CheckpointSource {
    /// Uploaded inline with the submission (structurally validated there).
    Inline(Vec<u8>),
    /// A checkpoint registry name, resolved when the job runs — so an
    /// infer job always uses the *current* registered version.
    Named(String),
}

/// A validated inference request: restore an `NPTSNCK2` policy checkpoint
/// and plan without learning.
#[derive(Debug, Clone)]
pub struct InferRequest {
    /// The parsed problem.
    pub parsed: ParsedProblem,
    /// The checkpoint to restore.
    pub checkpoint: CheckpointSource,
    /// Deployment episodes to attempt.
    pub attempts: usize,
    /// Base RNG seed.
    pub seed: u64,
}

/// What a worker executes.
#[derive(Debug, Clone)]
pub enum JobKind {
    /// Train/construct a plan.
    Plan(PlanRequest),
    /// Verify a plan's reliability guarantee.
    Verify(VerifyRequest),
    /// Checkpoint-backed policy inference.
    Infer(InferRequest),
    /// A diagnostic job that busy-waits for the given duration — the
    /// load-generation stand-in used by the backpressure tests and the
    /// serving benchmark.
    Burn {
        /// How long the job occupies a worker, in milliseconds.
        millis: u64,
    },
}

impl JobKind {
    /// A short lowercase label for status output and metrics.
    pub fn name(&self) -> &'static str {
        match self {
            JobKind::Plan(_) => "plan",
            JobKind::Verify(_) => "verify",
            JobKind::Infer(_) => "infer",
            JobKind::Burn { .. } => "burn",
        }
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and waiting in the queue.
    Submitted,
    /// Picked up by a worker.
    Running,
    /// Finished with a result.
    Done,
    /// Finished with an error.
    Failed,
    /// Cancelled before or during execution.
    Cancelled,
}

impl JobState {
    /// The lowercase label used in status JSON.
    pub fn label(self) -> &'static str {
        match self {
            JobState::Submitted => "submitted",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Cancelled)
    }
}

/// The output of a finished job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// A plan (from `plan` or `infer`): the plan file, its cost, and — for
    /// RL runs — the trained policy checkpoint.
    Plan {
        /// The plan file text.
        planfile: String,
        /// Network cost of the solution.
        cost: f64,
        /// Human-readable solution summary.
        summary: String,
        /// `NPTSNCK2` bytes of the trained policy (RL plan jobs only).
        checkpoint: Option<Vec<u8>>,
    },
    /// A verification report, pre-serialized with the shared JSON
    /// serializer (identical to `nptsn verify --json`).
    Verify {
        /// The `analysis_report_json` text.
        json: String,
        /// Whether the verdict was `Reliable`.
        reliable: bool,
    },
    /// A completed burn job.
    Burn,
}

/// Live progress of a running job (epoch stats stream for plan jobs).
#[derive(Debug, Default)]
pub struct Progress {
    epochs: Mutex<Vec<EpochStats>>,
}

impl Progress {
    fn push(&self, stats: EpochStats) {
        self.epochs.lock().unwrap_or_else(|e| e.into_inner()).push(stats);
    }

    /// Number of epochs completed so far and the latest stats, if any.
    pub fn snapshot(&self) -> (usize, Option<EpochStats>) {
        let epochs = self.epochs.lock().unwrap_or_else(|e| e.into_inner());
        (epochs.len(), epochs.last().cloned())
    }
}

/// One tracked job.
#[derive(Debug)]
struct JobEntry {
    kind_name: &'static str,
    /// Present while the job waits in the queue; taken by the worker.
    pending: Option<JobKind>,
    /// The replayable submission, persisted with every transition.
    spec: Option<JobSpec>,
    state: JobState,
    cancel: Arc<AtomicBool>,
    progress: Arc<Progress>,
    outcome: Option<JobOutcome>,
    error: Option<String>,
    /// When the job reached a terminal state (drives TTL retention).
    finished_at: Option<Instant>,
    /// The trace context active when the job was accepted (router-minted
    /// for forwarded submissions). Re-installed on the worker thread so
    /// `job.run` and everything beneath it shares the request's trace id.
    /// In-memory only: a router recomputes a job's trace id from its id,
    /// so the job record codec does not carry it.
    trace: Option<nptsn_obs::TraceContext>,
}

impl JobEntry {
    fn persisted_record(&self) -> Vec<u8> {
        encode_record(self.state, self.spec.as_ref(), self.outcome.as_ref(), self.error.as_deref())
    }
}

/// A point-in-time view of one job, safe to serialize outside the lock.
#[derive(Debug, Clone)]
pub struct JobSnapshot {
    /// The job id.
    pub id: JobId,
    /// The kind label (`plan`, `verify`, `infer`, `burn`).
    pub kind: &'static str,
    /// Lifecycle state.
    pub state: JobState,
    /// Epochs completed so far (plan jobs).
    pub epochs_completed: usize,
    /// The most recent epoch diagnostics (plan jobs).
    pub latest_epoch: Option<EpochStats>,
    /// The outcome, once terminal.
    pub outcome: Option<JobOutcome>,
    /// The failure message, if the job failed.
    pub error: Option<String>,
}

impl JobSnapshot {
    /// The status JSON served by `GET /jobs/<id>`.
    pub fn to_json(&self) -> String {
        let mut obj = Object::new();
        obj.int("id", self.id);
        obj.str("kind", self.kind);
        obj.str("state", self.state.label());
        obj.int("epochs_completed", self.epochs_completed as u64);
        match &self.latest_epoch {
            Some(stats) => obj.raw("latest_epoch", &epoch_stats_json(stats)),
            None => obj.null("latest_epoch"),
        }
        match &self.outcome {
            Some(JobOutcome::Plan { cost, summary, checkpoint, .. }) => {
                obj.num("cost", *cost);
                obj.str("summary", summary);
                obj.bool("checkpoint_available", checkpoint.is_some());
            }
            Some(JobOutcome::Verify { reliable, .. }) => {
                obj.bool("reliable", *reliable);
            }
            Some(JobOutcome::Burn) | None => {}
        }
        match &self.error {
            Some(e) => obj.str("error", e),
            None => obj.null("error"),
        }
        obj.finish()
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity — retry later (HTTP 503 + `Retry-After`).
    Full,
    /// The service is draining for shutdown.
    ShuttingDown,
    /// The durable store refused the submission record — nothing was
    /// accepted (no ack without durability). Retryable.
    Storage,
    /// An explicit-id submission named an id this queue already tracks
    /// (HTTP 409): the caller must pick a fresh id.
    Duplicate,
}

/// What [`JobQueue::ingest_record`] did with a replayed record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// The id already exists here — replay is an idempotent no-op and the
    /// existing entry (with its byte-identical persisted result, if
    /// terminal) stays authoritative.
    AlreadyKnown,
    /// A terminal record was installed verbatim, result bytes and all.
    Terminal,
    /// A non-terminal record re-validated through [`JobSpec::validate`]
    /// and was enqueued for execution.
    Requeued,
    /// The record decoded but its spec no longer validates (or carried
    /// none) — recorded `failed`, never silently dropped.
    RecordedFailed,
    /// The record was stored as a **passive replica**
    /// ([`JobQueue::ingest_passive`]): durable here, owned and executed
    /// elsewhere, held until a promotion activates it.
    Passive,
}

/// Why [`JobQueue::ingest_record`] refused a replayed record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// The record bytes do not decode (HTTP 400) — nothing was stored.
    Malformed(String),
    /// The queue is draining for shutdown (HTTP 503).
    ShuttingDown,
    /// The durable store refused the record — nothing was ingested.
    /// Retryable (HTTP 503).
    Storage,
}

/// The result of a cancellation request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The job was still queued and is now cancelled.
    Cancelled,
    /// The job is running; the cancel flag is set and the job will wind
    /// down at its next cancellation point (epoch boundary).
    Signalled,
    /// The job had already finished.
    AlreadyFinished,
    /// No such job.
    NotFound,
}

/// Bounds on how long terminal jobs (and their persisted records) are
/// retained. `max_terminal == 0` and `ttl == None` disable each bound.
#[derive(Debug, Clone, Copy, Default)]
pub struct RetentionConfig {
    /// Keep at most this many terminal jobs; the oldest (lowest id) are
    /// evicted first. `0` = unbounded.
    pub max_terminal: usize,
    /// Evict terminal jobs this long after they finish (checked on every
    /// submission and completion, not by a timer).
    pub ttl: Option<std::time::Duration>,
}

/// What [`JobQueue::open`] found in the store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Terminal jobs loaded with their persisted results.
    pub terminal_loaded: u64,
    /// Submitted/running-at-crash jobs re-validated and re-enqueued.
    pub requeued: u64,
    /// Records that could not be decoded or re-validated — recorded as
    /// `failed`, never silently dropped.
    pub failed_to_recover: u64,
    /// Passive-replica records held for their primaries instead of being
    /// re-enqueued (the `replica/<id>` marker says the job is owned
    /// elsewhere).
    pub passive_held: u64,
}

#[derive(Debug, Default)]
struct QueueState {
    next_id: JobId,
    queue: VecDeque<JobId>,
    jobs: HashMap<JobId, JobEntry>,
    /// Passive-replica holdings: job id → primary shard name. Durable as
    /// `replica/<id>` markers; never visible through `GET /jobs/<id>` and
    /// never executed until [`JobQueue::promote`] activates them.
    passive: HashMap<JobId, String>,
    open: bool,
}

/// The bounded job queue shared by the HTTP handlers and the worker pool.
#[derive(Debug)]
pub struct JobQueue {
    depth: usize,
    state: Mutex<QueueState>,
    work_ready: Condvar,
    store: Arc<dyn Storage>,
    registry: CheckpointRegistry,
    retention: RetentionConfig,
    evicted: AtomicU64,
    /// Most infer jobs one worker pass may fuse into a batched forward;
    /// `<= 1` disables micro-batching entirely.
    infer_batch_max: AtomicUsize,
    /// How long a leader with no batch-mates waits (once) for stragglers
    /// before running solo, in microseconds.
    infer_batch_window_us: AtomicU64,
    /// The shard name stamped into persisted trace timelines (first set
    /// wins; empty until the server configures it).
    shard_label: OnceLock<String>,
}

impl JobQueue {
    /// A queue admitting at most `depth` waiting jobs (running jobs do not
    /// count against the depth), backed by an ephemeral in-memory store.
    pub fn new(depth: usize) -> JobQueue {
        let (queue, _report) =
            JobQueue::open(depth, Arc::new(MemStore::new()), RetentionConfig::default())
                .expect("an empty in-memory store always opens");
        queue
    }

    /// A queue backed by `store`, recovering every persisted job: terminal
    /// jobs come back with their results, interrupted jobs are
    /// re-validated and re-enqueued in id order, unrecoverable records are
    /// marked `failed`. See the module docs for the durability contract.
    pub fn open(
        depth: usize,
        store: Arc<dyn Storage>,
        retention: RetentionConfig,
    ) -> Result<(JobQueue, RecoveryReport), StoreError> {
        let registry = CheckpointRegistry::new(Arc::clone(&store));
        let queue = JobQueue {
            depth: depth.max(1),
            state: Mutex::new(QueueState { open: true, ..QueueState::default() }),
            work_ready: Condvar::new(),
            store,
            registry,
            retention,
            evicted: AtomicU64::new(0),
            infer_batch_max: AtomicUsize::new(1),
            infer_batch_window_us: AtomicU64::new(0),
            shard_label: OnceLock::new(),
        };
        let mut report = RecoveryReport::default();
        {
            let mut state = queue.lock();
            // Passive-replica markers: a job record named here was written
            // through by a router as a replication-factor-2 copy — another
            // shard owns and executes it, so recovery must hold it passive
            // rather than re-enqueue it (which would double-run the job).
            let mut passive_markers: HashMap<JobId, String> = HashMap::new();
            for key in queue.store.keys_with_prefix(REPLICA_PREFIX)? {
                let Some(id) = replica_id_from_key(&key) else { continue };
                let Some(bytes) = queue.store.get(&key)? else { continue };
                passive_markers.insert(id, String::from_utf8_lossy(&bytes).into_owned());
            }
            // Sorted prefix scan = submission order: requeued jobs rerun
            // in the order they were originally accepted.
            for key in queue.store.keys_with_prefix(JOB_PREFIX)? {
                let Some(id) = job_id_from_key(&key) else { continue };
                let Some(bytes) = queue.store.get(&key)? else { continue };
                let entry = match decode_record(&bytes) {
                    Err(e) => {
                        report.failed_to_recover += 1;
                        recovered_failure(None, format!("unrecoverable job record: {e}"))
                    }
                    Ok(record) if record.state.is_terminal() => {
                        // A terminal record trumps a stale replica marker
                        // (promotion ran the job here, or the marker's
                        // delete never landed): keep the result, drop the
                        // marker.
                        if passive_markers.remove(&id).is_some() {
                            let _ = queue.store.delete(&replica_key(id));
                        }
                        report.terminal_loaded += 1;
                        JobEntry {
                            kind_name: record
                                .spec
                                .as_ref()
                                .map_or("unknown", JobSpec::kind_name),
                            pending: None,
                            spec: record.spec,
                            state: record.state,
                            cancel: Arc::new(AtomicBool::new(false)),
                            progress: Arc::new(Progress::default()),
                            outcome: record.outcome,
                            error: record.error,
                            // TTL restarts at recovery: `Instant` does not
                            // survive the process, and a fresh window errs
                            // toward keeping results readable.
                            finished_at: Some(Instant::now()),
                            trace: None,
                        }
                    }
                    Ok(record) => {
                        // A marked non-terminal record is a passive replica:
                        // hold it (durably unchanged) for its primary. The
                        // id still advances the watermark — it was assigned
                        // fleet-wide.
                        if let Some(primary) = passive_markers.remove(&id) {
                            state.passive.insert(id, primary);
                            state.next_id = state.next_id.max(id);
                            report.passive_held += 1;
                            continue;
                        }
                        match record.spec {
                            None => {
                                report.failed_to_recover += 1;
                                recovered_failure(
                                    None,
                                    "interrupted by a restart with no replayable spec"
                                        .to_string(),
                                )
                            }
                            Some(spec) => match spec.validate() {
                                Ok(kind) => {
                                    report.requeued += 1;
                                    state.queue.push_back(id);
                                    JobEntry {
                                        kind_name: kind.name(),
                                        pending: Some(kind),
                                        spec: Some(spec),
                                        state: JobState::Submitted,
                                        cancel: Arc::new(AtomicBool::new(false)),
                                        progress: Arc::new(Progress::default()),
                                        outcome: None,
                                        error: None,
                                        finished_at: None,
                                        trace: None,
                                    }
                                }
                                Err(e) => {
                                    report.failed_to_recover += 1;
                                    recovered_failure(
                                        Some(spec),
                                        format!("spec no longer validates after restart: {e}"),
                                    )
                                }
                            },
                        }
                    }
                };
                // Re-persist the post-recovery state (running → submitted,
                // unrecoverable → failed) so a second crash replays to the
                // same place — recovery is idempotent.
                let payload = entry.persisted_record();
                queue.persist(id, &payload);
                state.next_id = state.next_id.max(id);
                state.jobs.insert(id, entry);
            }
            if let Some(bytes) = queue.store.get(NEXT_ID_KEY)? {
                if let Some(watermark) = decode_next_id(&bytes) {
                    // The watermark outlives deleted records, so a restart
                    // never reissues the id of a job deleted pre-crash.
                    state.next_id = state.next_id.max(watermark);
                }
            }
        }
        if report.failed_to_recover > 0 {
            nptsn_obs::telemetry()
                .registry
                .counter(
                    "nptsn_jobs_unrecoverable_total",
                    "Persisted jobs that could not be re-validated after restart",
                )
                .add(report.failed_to_recover);
        }
        Ok((queue, report))
    }

    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The configured queue depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of jobs currently waiting.
    pub fn queued(&self) -> usize {
        self.lock().queue.len()
    }

    /// The checkpoint registry sharing this queue's store.
    pub fn registry(&self) -> &CheckpointRegistry {
        &self.registry
    }

    /// The backing store (for stats endpoints and tests).
    pub fn store(&self) -> &Arc<dyn Storage> {
        &self.store
    }

    /// Terminal jobs evicted by retention since this queue was opened.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Configures infer micro-batching: fuse up to `batch_max` compatible
    /// queued infer jobs into one batched forward, waiting up to
    /// `window_us` microseconds (once, only when a leader finds no mates)
    /// for stragglers. `batch_max <= 1` disables batching.
    pub fn set_infer_batching(&self, batch_max: usize, window_us: u64) {
        self.infer_batch_max.store(batch_max.max(1), Ordering::Relaxed);
        self.infer_batch_window_us.store(window_us, Ordering::Relaxed);
    }

    /// The configured `(batch_max, window_us)` pair.
    pub fn infer_batching(&self) -> (usize, u64) {
        (
            self.infer_batch_max.load(Ordering::Relaxed),
            self.infer_batch_window_us.load(Ordering::Relaxed),
        )
    }

    /// Names this queue's shard in persisted trace timelines (first call
    /// wins; later calls are ignored).
    pub fn set_shard_label(&self, name: &str) {
        let _ = self.shard_label.set(name.to_string());
    }

    /// The shard name stamped into trace records (empty until set).
    pub fn shard_label(&self) -> &str {
        self.shard_label.get().map_or("", String::as_str)
    }

    /// Persists the spans the flight recorder captured under a finished
    /// job's trace id — the durable per-job timeline behind
    /// `GET /jobs/<id>/trace`. Strictly best-effort: a chaos fault or
    /// store error here degrades the timeline, never the job (which was
    /// already recorded terminal), and failures are counted. The write
    /// is relaxed (no fsync) — a timeline must never cost a synced
    /// append on the job hot path.
    fn persist_trace(&self, id: JobId, trace: Option<nptsn_obs::TraceContext>) {
        let Some(trace) = trace else { return };
        let spans: Vec<TraceSpan> = nptsn_obs::flight_spans_for_trace(trace.trace_id)
            .into_iter()
            .map(|e| TraceSpan {
                name: e.name.to_string(),
                tid: e.tid,
                start_ns: e.ts_ns,
                dur_ns: e.dur_ns,
                // Flight entries carry no child-time accounting; self
                // time approximates to the full duration.
                self_ns: e.dur_ns,
            })
            .collect();
        if spans.is_empty() {
            return; // flight recorder disarmed, or nothing captured
        }
        let record = TraceRecord {
            trace_id: trace.trace_id,
            shard: self.shard_label().to_string(),
            spans,
        };
        let flushed = nptsn_chaos::point("obs.flush")
            .map_err(|e| e.to_string())
            .and_then(|()| {
                self.store
                    .put_relaxed(&trace_key(id), &encode_trace(&record))
                    .map_err(|e| e.to_string())
            });
        if flushed.is_err() {
            nptsn_obs::telemetry()
                .registry
                .counter(
                    "nptsn_obs_trace_flush_failures_total",
                    "Job trace timelines that failed to persist (degraded, job unaffected)",
                )
                .inc();
        }
    }

    /// The persisted trace timeline for a job, if one was captured.
    pub fn trace_record(&self, id: JobId) -> Option<TraceRecord> {
        let bytes = self.store.get(&trace_key(id)).ok()??;
        decode_trace(&bytes).ok()
    }

    /// Ingests a trace timeline replayed from a dead shard's durable log,
    /// stored verbatim (after a decode check) so the merged fleet trace
    /// survives the shard that recorded it. Idempotent by key overwrite.
    pub fn ingest_trace(&self, id: JobId, bytes: &[u8]) -> Result<(), IngestError> {
        decode_trace(bytes).map_err(IngestError::Malformed)?;
        self.store.put_relaxed(&trace_key(id), bytes).map_err(|_| IngestError::Storage)
    }

    /// Claims up to `limit` queued infer jobs compatible with `leader` —
    /// same checkpoint source and same policy-network dimensions, so one
    /// restored policy serves the whole batch — marking each running
    /// (persisted) exactly like [`JobQueue::next_job`] would.
    fn claim_infer_batchmates(
        &self,
        leader: &InferRequest,
        limit: usize,
    ) -> Vec<(JobId, InferRequest, Arc<AtomicBool>)> {
        if limit == 0 {
            return Vec::new();
        }
        let leader_dims = infer_dims(leader);
        let mut state = self.lock();
        let mut claimed = Vec::new();
        let ids: Vec<JobId> = state.queue.iter().copied().collect();
        for id in ids {
            if claimed.len() >= limit {
                break;
            }
            let taken = {
                let Some(entry) = state.jobs.get_mut(&id) else { continue };
                let compatible = matches!(
                    &entry.pending,
                    Some(JobKind::Infer(req))
                        if same_checkpoint(&req.checkpoint, &leader.checkpoint)
                            && infer_dims(req) == leader_dims
                );
                if !compatible {
                    None
                } else {
                    let Some(JobKind::Infer(req)) = entry.pending.take() else {
                        unreachable!("compatibility check matched an infer kind")
                    };
                    entry.state = JobState::Running;
                    Some((entry.persisted_record(), Arc::clone(&entry.cancel), req))
                }
            };
            if let Some((payload, cancel, req)) = taken {
                state.queue.retain(|&q| q != id);
                self.persist(id, &payload);
                claimed.push((id, req, cancel));
            }
        }
        claimed
    }

    /// Runs a claimed batch of compatible infer jobs as one fused forward,
    /// splitting per-job results back out. Error isolation mirrors the
    /// solo path exactly: a chaos fault, an in-batch panic, or a lane
    /// failure marks *that* job `failed` while its batch-mates complete,
    /// and every message matches what the solo path would have produced.
    fn run_infer_batch(
        &self,
        jobs: Vec<(JobId, InferRequest, Arc<AtomicBool>)>,
        metrics: &ServeMetrics,
    ) {
        let _span = nptsn_obs::span("job.infer_batch");
        let size = jobs.len();
        let im = infer_metrics();
        im.batch_size.observe(size as f64);
        im.batched_forwards.inc();
        im.batch_jobs.add(size as u64);
        metrics.jobs_running.add(size as i64);
        metrics.jobs_queued.set(self.queued() as i64);

        let mut results: Vec<Option<Result<JobOutcome, String>>> = (0..size).map(|_| None).collect();

        // Per-job chaos gate, same site as the solo execute path: an
        // injected error (or panic) fails one job, not the batch.
        for slot in results.iter_mut() {
            match std::panic::catch_unwind(|| nptsn_chaos::point("serve.job")) {
                Ok(Ok(())) => {}
                Ok(Err(e)) => *slot = Some(Err(e.to_string())),
                Err(_) => *slot = Some(Err("job panicked".to_string())),
            }
        }

        // Resolve the shared checkpoint once — the compatibility key
        // guarantees every job in the batch names the same source.
        let bytes = match &jobs[0].1.checkpoint {
            CheckpointSource::Inline(bytes) => Ok(bytes.clone()),
            CheckpointSource::Named(name) => match self.registry.get(name) {
                Ok(Some((_version, bytes))) => Ok(bytes),
                Ok(None) => Err(format!("checkpoint '{name}' is not registered")),
                Err(e) => Err(format!("checkpoint '{name}' unavailable: {e}")),
            },
        };
        match bytes {
            Err(message) => {
                for slot in results.iter_mut().filter(|s| s.is_none()) {
                    *slot = Some(Err(message.clone()));
                }
            }
            Ok(bytes) => {
                let live: Vec<usize> = (0..size).filter(|&i| results[i].is_none()).collect();
                if !live.is_empty() {
                    self.run_live_lanes(&jobs, &live, &bytes, &mut results);
                }
            }
        }

        metrics.jobs_running.sub(size as i64);
        for ((id, _req, cancel), result) in jobs.into_iter().zip(results) {
            let result = result.expect("every batched job resolved a result");
            self.finish_job(id, result, false, &cancel, metrics);
        }
    }

    /// Restores the shared policy and plans the not-yet-failed jobs of a
    /// batch through [`plan_with_policy_batch`], writing per-job results.
    fn run_live_lanes(
        &self,
        jobs: &[(JobId, InferRequest, Arc<AtomicBool>)],
        live: &[usize],
        bytes: &[u8],
        results: &mut [Option<Result<JobOutcome, String>>],
    ) {
        let planners: Vec<Planner> = live
            .iter()
            .map(|&i| {
                let req = &jobs[i].1;
                Planner::new(req.parsed.problem.clone(), service_config(1, 1, req.seed, 1))
            })
            .collect();
        let policy = planners[0].build_policy();
        if let Err(e) = nptsn_nn::params_from_bytes(&nptsn_nn::Module::parameters(&policy), bytes)
        {
            let message = format!("checkpoint rejected: {e}");
            for &i in live {
                results[i] = Some(Err(message.clone()));
            }
            return;
        }
        let lanes: Vec<InferLane<'_>> = live
            .iter()
            .zip(&planners)
            .map(|(&i, planner)| InferLane {
                planner,
                attempts: jobs[i].1.attempts,
                seed: jobs[i].1.seed,
            })
            .collect();
        let outcomes = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            plan_with_policy_batch(&policy, &lanes)
        }));
        match outcomes {
            Err(_) => {
                for &i in live {
                    results[i] = Some(Err("job panicked".to_string()));
                }
            }
            Ok(outcomes) => {
                for (&i, outcome) in live.iter().zip(outcomes) {
                    results[i] = Some(match outcome {
                        Ok(Some(solution)) => Ok(plan_outcome(solution, None)),
                        Ok(None) => Err("the restored policy found no valid plan".to_string()),
                        Err(message) => Err(message),
                    });
                }
            }
        }
    }

    /// Best-effort persistence for transitions after acceptance: the job
    /// already exists durably, so a failed update here loses freshness,
    /// not the job — recovery replays from the previous state, which is
    /// always safe. Failures are counted, never silently swallowed.
    fn persist(&self, id: JobId, payload: &[u8]) {
        if let Err(e) = self.store.put(&job_key(id), payload) {
            nptsn_obs::telemetry()
                .registry
                .counter(
                    "nptsn_store_persist_errors_total",
                    "Job state transitions that failed to persist",
                )
                .inc();
            if nptsn_obs::enabled() {
                nptsn_obs::event(
                    nptsn_obs::Level::Error,
                    "store.persist",
                    &format!("job {id}: transition not persisted: {e}"),
                );
            }
        }
    }

    /// Accepts a job, or rejects it with backpressure. Derives a
    /// replayable spec where the kind alone carries one (burn jobs);
    /// HTTP submissions use [`JobQueue::submit_validated`] so every job
    /// kind recovers.
    pub fn submit(&self, kind: JobKind) -> Result<JobId, SubmitError> {
        let spec = match &kind {
            JobKind::Burn { millis } => Some(JobSpec::Burn { millis: *millis }),
            _ => None,
        };
        self.submit_validated(kind, spec)
    }

    /// Accepts a pre-validated job with its replayable spec. The record
    /// and the id watermark are durable before the id is returned — a
    /// `kill -9` after this call never loses the job.
    pub fn submit_validated(
        &self,
        kind: JobKind,
        spec: Option<JobSpec>,
    ) -> Result<JobId, SubmitError> {
        let mut state = self.lock();
        if !state.open {
            return Err(SubmitError::ShuttingDown);
        }
        if state.queue.len() >= self.depth {
            return Err(SubmitError::Full);
        }
        let id = state.next_id + 1;
        self.admit_at(&mut state, id, kind, spec)?;
        drop(state);
        self.work_ready.notify_one();
        Ok(id)
    }

    /// [`JobQueue::submit_validated`] at a caller-chosen id — the sharded
    /// path, where a router owns id assignment and the shard merely hosts
    /// the job. The watermark advances to `max(current, id)` so locally
    /// assigned ids never collide with router-assigned ones, and an id
    /// this queue already tracks is refused with
    /// [`SubmitError::Duplicate`] (the router retries with a fresh id).
    pub fn submit_validated_with_id(
        &self,
        id: JobId,
        kind: JobKind,
        spec: Option<JobSpec>,
    ) -> Result<JobId, SubmitError> {
        let mut state = self.lock();
        if !state.open {
            return Err(SubmitError::ShuttingDown);
        }
        if state.queue.len() >= self.depth {
            return Err(SubmitError::Full);
        }
        if id == 0 || state.jobs.contains_key(&id) {
            return Err(SubmitError::Duplicate);
        }
        self.admit_at(&mut state, id, kind, spec)?;
        drop(state);
        self.work_ready.notify_one();
        Ok(id)
    }

    /// The core of every acceptance path: persist the watermark, then the
    /// record, then mutate memory. Callers hold the lock and have already
    /// checked open/depth/duplicate.
    fn admit_at(
        &self,
        state: &mut QueueState,
        id: JobId,
        kind: JobKind,
        spec: Option<JobSpec>,
    ) -> Result<(), SubmitError> {
        let watermark = state.next_id.max(id);
        let payload = encode_record(JobState::Submitted, spec.as_ref(), None, None);
        if self.store.put(NEXT_ID_KEY, &encode_next_id(watermark)).is_err()
            || self.store.put(&job_key(id), &payload).is_err()
        {
            // Not accepted: no in-memory entry, no id consumed. Watermark
            // first: a half-failure can only burn an id (watermark without
            // a record), never leave an orphan record that recovery would
            // resurrect as a job nobody was ever promised.
            return Err(SubmitError::Storage);
        }
        state.next_id = watermark;
        state.jobs.insert(
            id,
            JobEntry {
                kind_name: kind.name(),
                pending: Some(kind),
                spec,
                state: JobState::Submitted,
                cancel: Arc::new(AtomicBool::new(false)),
                progress: Arc::new(Progress::default()),
                outcome: None,
                error: None,
                finished_at: None,
                // Adopted from the HTTP thread (which installed the
                // X-Nptsn-Trace context before dispatching).
                trace: nptsn_obs::current_trace(),
            },
        );
        state.queue.push_back(id);
        self.enforce_retention(state);
        Ok(())
    }

    /// Ingests one raw persisted job record replayed from another shard's
    /// durable log, through exactly the same decode → re-validate gate as
    /// crash recovery ([`JobQueue::open`]): terminal records install
    /// verbatim (byte-identical results), non-terminal records re-validate
    /// their spec and enqueue, and records that no longer validate are
    /// recorded `failed`. Idempotent by id — an id this queue already
    /// tracks is an [`IngestOutcome::AlreadyKnown`] no-op, which is what
    /// makes it safe for a router to retry a replay after any failure.
    ///
    /// Deliberately bypasses the queue-depth bound: the replayed set is
    /// bounded by the dead shard's durable log, and refusing half a replay
    /// would turn a shard death into acked-job loss.
    pub fn ingest_record(&self, id: JobId, bytes: &[u8]) -> Result<IngestOutcome, IngestError> {
        self.ingest_with(id, bytes, true)
    }

    /// The shared ingest core. `durable` selects fsync'd puts (replay —
    /// the ack promises the record stuck) or relaxed ones (promotion —
    /// the identical bytes are already in this store from the passive
    /// write-through, and the dead primary's fsync'd log remains the
    /// authoritative fallback).
    fn ingest_with(
        &self,
        id: JobId,
        bytes: &[u8],
        durable: bool,
    ) -> Result<IngestOutcome, IngestError> {
        let record = decode_record(bytes).map_err(IngestError::Malformed)?;
        let mut state = self.lock();
        if !state.open {
            return Err(IngestError::ShuttingDown);
        }
        if id == 0 || state.jobs.contains_key(&id) {
            return Ok(IngestOutcome::AlreadyKnown);
        }
        let (entry, outcome) = if record.state.is_terminal() {
            (
                JobEntry {
                    kind_name: record.spec.as_ref().map_or("unknown", JobSpec::kind_name),
                    pending: None,
                    spec: record.spec,
                    state: record.state,
                    cancel: Arc::new(AtomicBool::new(false)),
                    progress: Arc::new(Progress::default()),
                    outcome: record.outcome,
                    error: record.error,
                    finished_at: Some(Instant::now()),
                    trace: None,
                },
                IngestOutcome::Terminal,
            )
        } else {
            match record.spec {
                None => (
                    recovered_failure(None, "replayed with no replayable spec".to_string()),
                    IngestOutcome::RecordedFailed,
                ),
                Some(spec) => match spec.validate() {
                    Ok(kind) => (
                        JobEntry {
                            kind_name: kind.name(),
                            pending: Some(kind),
                            spec: Some(spec),
                            state: JobState::Submitted,
                            cancel: Arc::new(AtomicBool::new(false)),
                            progress: Arc::new(Progress::default()),
                            outcome: None,
                            error: None,
                            finished_at: None,
                            // The router re-stamps a replayed job's trace
                            // header, so the re-run keeps its trace id.
                            trace: nptsn_obs::current_trace(),
                        },
                        IngestOutcome::Requeued,
                    ),
                    Err(e) => (
                        recovered_failure(
                            Some(spec),
                            format!("spec no longer validates after replay: {e}"),
                        ),
                        IngestOutcome::RecordedFailed,
                    ),
                },
            }
        };
        // Same durability ordering as submission: watermark, then record,
        // then memory — and no ack (Ok) until both writes stuck.
        let watermark = state.next_id.max(id);
        let payload = entry.persisted_record();
        let written = if durable {
            self.store.put(NEXT_ID_KEY, &encode_next_id(watermark)).is_ok()
                && self.store.put(&job_key(id), &payload).is_ok()
        } else {
            self.store.put_relaxed(NEXT_ID_KEY, &encode_next_id(watermark)).is_ok()
                && self.store.put_relaxed(&job_key(id), &payload).is_ok()
        };
        if !written {
            return Err(IngestError::Storage);
        }
        state.next_id = watermark;
        let enqueue = outcome == IngestOutcome::Requeued;
        state.jobs.insert(id, entry);
        if enqueue {
            state.queue.push_back(id);
        }
        self.enforce_retention(&mut state);
        drop(state);
        if enqueue {
            self.work_ready.notify_one();
        }
        Ok(outcome)
    }

    /// Stores one job record as a **passive replica** for `primary`: the
    /// record and a `replica/<id>` marker become durable here, but the job
    /// is neither enqueued nor visible through the job API — `primary`
    /// owns and executes it. [`JobQueue::promote`] (the primary died)
    /// activates held replicas through the normal ingest gate.
    ///
    /// Idempotent by id: an id this queue already tracks as an *active*
    /// job is an [`IngestOutcome::AlreadyKnown`] no-op (a replica must
    /// never downgrade a real job), and re-replicating a held id just
    /// refreshes its bytes.
    ///
    /// Writes are relaxed (page cache, no fsync): the replica guards
    /// against the primary's `kill -9`, not a simultaneous power cut, and
    /// the write-through sits on the submission hot path. The durable
    /// fallback for the relaxed window is the classic dead-log replay.
    pub fn ingest_passive(
        &self,
        id: JobId,
        primary: &str,
        bytes: &[u8],
    ) -> Result<IngestOutcome, IngestError> {
        decode_record(bytes).map_err(IngestError::Malformed)?;
        let mut state = self.lock();
        if !state.open {
            return Err(IngestError::ShuttingDown);
        }
        if id == 0 || state.jobs.contains_key(&id) {
            return Ok(IngestOutcome::AlreadyKnown);
        }
        let watermark = state.next_id.max(id);
        if self.store.put_relaxed(NEXT_ID_KEY, &encode_next_id(watermark)).is_err()
            || self.store.put_relaxed(&job_key(id), bytes).is_err()
            || self.store.put_relaxed(&replica_key(id), primary.as_bytes()).is_err()
        {
            return Err(IngestError::Storage);
        }
        state.next_id = watermark;
        state.passive.insert(id, primary.to_string());
        Ok(IngestOutcome::Passive)
    }

    /// Activates every passive replica held for `primary` (the primary
    /// shard died): the stored record goes through the same validate gate
    /// as replay, so terminal records install verbatim and non-terminal
    /// ones re-validate and enqueue, and then each marker is dropped.
    /// Returns how many replicas were activated.
    ///
    /// Promotion is the pause-free half of failover, so nothing on it may
    /// fsync per record: the record bytes are already on this shard's log
    /// from the passive write-through, so the installs use relaxed puts
    /// (and the dead primary's fsync'd log remains the durable fallback),
    /// and the marker tombstones — which each sync — are handed to a
    /// background thread so the promote response returns the moment every
    /// record is live and serving.
    ///
    /// Crash-safe in both orders: a marker surviving an installed record
    /// means a restart holds the record passive again until the next
    /// promote — and the dead-log replay re-delivers it regardless; a
    /// marker deleted for a job that finished first means recovery sees a
    /// terminal record and discards nothing it needs.
    pub fn promote(&self, primary: &str) -> u64 {
        let ids: Vec<JobId> = {
            let mut state = self.lock();
            let ids: Vec<JobId> = state
                .passive
                .iter()
                .filter(|(_, held_for)| held_for.as_str() == primary)
                .map(|(&id, _)| id)
                .collect();
            for id in &ids {
                state.passive.remove(id);
            }
            ids
        };
        // Activate in id order — the order the fleet originally accepted.
        let mut ids = ids;
        ids.sort_unstable();
        let mut promoted = 0u64;
        for &id in &ids {
            let Ok(Some(bytes)) = self.store.get(&job_key(id)) else { continue };
            if self.ingest_with(id, &bytes, false).is_ok() {
                promoted += 1;
            }
        }
        let store = Arc::clone(&self.store);
        let markers = ids.clone();
        let cleanup = std::thread::Builder::new()
            .name("nptsn-serve-promote-gc".to_string())
            .spawn(move || {
                for id in markers {
                    let _ = store.delete(&replica_key(id));
                }
            });
        if cleanup.is_err() {
            // No thread available: delete inline rather than leak markers.
            for id in ids {
                let _ = self.store.delete(&replica_key(id));
            }
        }
        promoted
    }

    /// Passive replicas currently held (all primaries).
    pub fn passive_count(&self) -> usize {
        self.lock().passive.len()
    }

    /// The id watermark: the highest job id this queue has durably
    /// promised never to reissue. A router seeds its own id assignment
    /// above the maximum watermark of its fleet.
    pub fn next_id_watermark(&self) -> JobId {
        self.lock().next_id
    }

    /// A snapshot of one job, or `None` if the id is unknown.
    pub fn snapshot(&self, id: JobId) -> Option<JobSnapshot> {
        let state = self.lock();
        let entry = state.jobs.get(&id)?;
        let (epochs_completed, latest_epoch) = entry.progress.snapshot();
        Some(JobSnapshot {
            id,
            kind: entry.kind_name,
            state: entry.state,
            epochs_completed,
            latest_epoch,
            outcome: entry.outcome.clone(),
            error: entry.error.clone(),
        })
    }

    /// Requests cancellation of a job.
    pub fn cancel(&self, id: JobId) -> CancelOutcome {
        let mut state = self.lock();
        let Some(entry) = state.jobs.get_mut(&id) else {
            return CancelOutcome::NotFound;
        };
        match entry.state {
            JobState::Submitted => {
                entry.state = JobState::Cancelled;
                entry.pending = None;
                entry.finished_at = Some(Instant::now());
                let payload = entry.persisted_record();
                state.queue.retain(|&q| q != id);
                self.persist(id, &payload);
                self.enforce_retention(&mut state);
                CancelOutcome::Cancelled
            }
            JobState::Running => {
                entry.cancel.store(true, Ordering::Relaxed);
                CancelOutcome::Signalled
            }
            _ => CancelOutcome::AlreadyFinished,
        }
    }

    /// Removes a *terminal* job entirely — from memory and from the store
    /// (a tombstone in the log, reclaimed at the next compaction). Returns
    /// `false` if the job is unknown or not yet terminal.
    pub fn forget_terminal(&self, id: JobId) -> bool {
        let mut state = self.lock();
        match state.jobs.get(&id) {
            Some(entry) if entry.state.is_terminal() => {
                state.jobs.remove(&id);
                drop(state);
                let _ = self.store.delete(&trace_key(id));
                if let Err(e) = self.store.delete(&job_key(id)) {
                    // The entry is gone from memory either way; a surviving
                    // record resurfaces as a terminal job after restart.
                    if nptsn_obs::enabled() {
                        nptsn_obs::event(
                            nptsn_obs::Level::Error,
                            "store.persist",
                            &format!("job {id}: record not deleted: {e}"),
                        );
                    }
                }
                true
            }
            _ => false,
        }
    }

    /// Evicts terminal jobs beyond the retention bounds (memory + store).
    fn enforce_retention(&self, state: &mut QueueState) {
        let mut evict: Vec<JobId> = Vec::new();
        if let Some(ttl) = self.retention.ttl {
            evict.extend(state.jobs.iter().filter_map(|(&id, entry)| {
                (entry.state.is_terminal()
                    && entry.finished_at.is_some_and(|at| at.elapsed() >= ttl))
                .then_some(id)
            }));
        }
        if self.retention.max_terminal > 0 {
            let mut terminal: Vec<JobId> = state
                .jobs
                .iter()
                .filter(|(id, entry)| entry.state.is_terminal() && !evict.contains(id))
                .map(|(&id, _)| id)
                .collect();
            let over = terminal.len().saturating_sub(self.retention.max_terminal);
            if over > 0 {
                terminal.sort_unstable();
                evict.extend(&terminal[..over]);
            }
        }
        if evict.is_empty() {
            return;
        }
        for &id in &evict {
            state.jobs.remove(&id);
            let _ = self.store.delete(&job_key(id));
            let _ = self.store.delete(&trace_key(id));
        }
        self.evicted.fetch_add(evict.len() as u64, Ordering::Relaxed);
        nptsn_obs::telemetry()
            .registry
            .counter("nptsn_jobs_evicted_total", "Terminal jobs evicted by retention")
            .add(evict.len() as u64);
    }

    /// Stops accepting new jobs and wakes every worker so the queue
    /// drains; already-accepted jobs still run to completion.
    pub fn close(&self) {
        self.lock().open = false;
        self.work_ready.notify_all();
    }

    /// Claims the next queued job, marking it running (persisted). With
    /// `block`, waits on the condvar until work arrives or the queue
    /// closes; without, returns `None` immediately when the queue is idle.
    fn next_job(&self, block: bool) -> Option<ClaimedJob> {
        let mut state = self.lock();
        loop {
            if let Some(id) = state.queue.pop_front() {
                let entry = state.jobs.get_mut(&id).expect("queued job exists");
                let kind = entry.pending.take().expect("queued job has a kind");
                entry.state = JobState::Running;
                let payload = entry.persisted_record();
                self.persist(id, &payload);
                return Some((
                    id,
                    kind,
                    Arc::clone(&entry.cancel),
                    Arc::clone(&entry.progress),
                    entry.trace,
                ));
            }
            if !state.open || !block {
                return None;
            }
            state = self.work_ready.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Records one finished job — memory first, then the store, then the
    /// retention sweep — mirroring the tail of the old worker loop.
    fn finish_job(
        &self,
        id: JobId,
        result: Result<JobOutcome, String>,
        timed_out: bool,
        cancel: &AtomicBool,
        metrics: &ServeMetrics,
    ) {
        let mut state = self.lock();
        let entry = state.jobs.get_mut(&id).expect("running job exists");
        if timed_out {
            // A deadline kill is always `failed` — even if a cancel
            // arrived concurrently, the deadline is what ended it, and
            // the distinction matters for the recovery counters.
            entry.state = JobState::Failed;
            entry.error = result.err();
            entry.finished_at = Some(Instant::now());
            let payload = entry.persisted_record();
            self.persist(id, &payload);
            self.enforce_retention(&mut state);
            metrics.jobs_failed.inc();
            nptsn_obs::telemetry().recovery_deadline_kills.inc();
            drop(state);
            // Signal *after* recording: the orphaned computation can only
            // observe the flag once `failed` is already visible.
            cancel.store(true, Ordering::Relaxed);
            return;
        }
        match result {
            Ok(outcome) => {
                entry.outcome = Some(outcome);
                if cancel.load(Ordering::Relaxed) {
                    entry.state = JobState::Cancelled;
                    metrics.jobs_cancelled.inc();
                } else {
                    entry.state = JobState::Done;
                    metrics.jobs_completed.inc();
                }
            }
            Err(message) => {
                if cancel.load(Ordering::Relaxed) {
                    entry.state = JobState::Cancelled;
                    metrics.jobs_cancelled.inc();
                } else {
                    entry.state = JobState::Failed;
                    metrics.jobs_failed.inc();
                }
                entry.error = Some(message);
            }
        }
        entry.finished_at = Some(Instant::now());
        let payload = entry.persisted_record();
        self.persist(id, &payload);
        self.enforce_retention(&mut state);
    }

    /// One worker's run loop: take jobs until the queue is closed *and*
    /// drained. Results are recorded on the job entry — nothing accepted
    /// is ever dropped.
    ///
    /// With a `job_deadline`, each job runs on a helper thread and is
    /// abandoned when the wall clock expires: the job is recorded as
    /// `failed`, the worker moves straight on to the next job, and the
    /// orphaned computation gets its cancel flag set so it winds down at
    /// its next cancellation point. Its late result is discarded.
    pub fn worker_loop(&self, metrics: &ServeMetrics, job_deadline: Option<std::time::Duration>) {
        while let Some((id, kind, cancel, progress, trace)) = self.next_job(true) {
            // Micro-batching: an infer leader scoops compatible queued
            // infer jobs into one fused forward. Deadline mode stays
            // solo — each job needs its own helper thread and clock.
            // Batched execution runs untraced by design: one fused
            // forward serves many jobs, so per-job span attribution
            // would be fiction.
            if job_deadline.is_none() {
                if let JobKind::Infer(req) = &kind {
                    let (batch_max, window_us) = self.infer_batching();
                    if batch_max > 1 {
                        let mut mates = self.claim_infer_batchmates(req, batch_max - 1);
                        if mates.is_empty() && window_us > 0 {
                            // One bounded wait for stragglers, then solo.
                            std::thread::sleep(std::time::Duration::from_micros(window_us));
                            mates = self.claim_infer_batchmates(req, batch_max - 1);
                        }
                        if !mates.is_empty() {
                            let mut jobs = vec![(id, req.clone(), Arc::clone(&cancel))];
                            jobs.append(&mut mates);
                            self.run_infer_batch(jobs, metrics);
                            continue;
                        }
                    }
                }
            }
            metrics.jobs_running.add(1);
            metrics.jobs_queued.set(self.queued() as i64);
            let (result, timed_out) = {
                // The worker adopts the submission's trace context, so
                // `job.run` and the spans beneath it carry the trace id
                // minted at the router.
                let _trace = nptsn_obs::with_trace(trace);
                match job_deadline {
                    None => (run_caught(&kind, &cancel, &progress, &self.registry), false),
                    Some(limit) => {
                        run_with_deadline(&kind, &cancel, &progress, &self.registry, limit)
                    }
                }
            };
            metrics.jobs_running.sub(1);
            self.finish_job(id, result, timed_out, &cancel, metrics);
            self.persist_trace(id, trace);
        }
    }

    /// Runs exactly one queued job to completion on the calling thread,
    /// with no deadline. Returns the job id, or `None` if the queue is
    /// idle. This is the deterministic-execution primitive the chaos
    /// kill-and-restart storm uses: run K jobs, drop the queue without a
    /// drain (every transition is already durable), reopen, and the replay
    /// is exact.
    pub fn run_one(&self, metrics: &ServeMetrics) -> Option<JobId> {
        let (id, kind, cancel, progress, trace) = self.next_job(false)?;
        metrics.jobs_running.add(1);
        let result = {
            let _trace = nptsn_obs::with_trace(trace);
            run_caught(&kind, &cancel, &progress, &self.registry)
        };
        metrics.jobs_running.sub(1);
        self.finish_job(id, result, false, &cancel, metrics);
        self.persist_trace(id, trace);
        Some(id)
    }
}

/// What [`JobQueue::next_job`] hands a worker: id, kind, cancel flag,
/// progress sink, and the submission's trace context.
type ClaimedJob =
    (JobId, JobKind, Arc<AtomicBool>, Arc<Progress>, Option<nptsn_obs::TraceContext>);

/// Whether two infer jobs restore the same checkpoint — half of the
/// batching compatibility key (the other half is [`infer_dims`]).
fn same_checkpoint(a: &CheckpointSource, b: &CheckpointSource) -> bool {
    match (a, b) {
        (CheckpointSource::Named(x), CheckpointSource::Named(y)) => x == y,
        (CheckpointSource::Inline(x), CheckpointSource::Inline(y)) => x == y,
        _ => false,
    }
}

/// The policy-network dimensions an infer job's restored checkpoint must
/// fit. Two jobs with equal dims (and the same checkpoint) can share one
/// restored policy in a batched forward.
fn infer_dims(req: &InferRequest) -> (usize, usize, usize) {
    Planner::new(req.parsed.problem.clone(), service_config(1, 1, req.seed, 1)).network_dims()
}

/// A `failed` entry for a record that could not be recovered.
fn recovered_failure(spec: Option<JobSpec>, message: String) -> JobEntry {
    JobEntry {
        kind_name: spec.as_ref().map_or("unknown", JobSpec::kind_name),
        pending: None,
        spec,
        state: JobState::Failed,
        cancel: Arc::new(AtomicBool::new(false)),
        progress: Arc::new(Progress::default()),
        outcome: None,
        error: Some(message),
        finished_at: Some(Instant::now()),
        trace: None,
    }
}

/// Executes a job under `catch_unwind`: a panicking job poisons only
/// itself, never the worker (same policy as the planner's rollout
/// workers).
fn run_caught(
    kind: &JobKind,
    cancel: &AtomicBool,
    progress: &Progress,
    registry: &CheckpointRegistry,
) -> Result<JobOutcome, String> {
    let _span = nptsn_obs::span("job.run");
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        execute(kind, cancel, progress, registry)
    }))
    .unwrap_or_else(|_| {
        // A worker panic is exactly what the flight recorder exists for:
        // dump the ring before the evidence scrolls out of it.
        nptsn_obs::flight_dump_auto("panic");
        Err("job panicked".to_string())
    })
}

/// Executes one job on a helper thread with a wall-clock deadline.
/// Returns the job's own result and `false` when it finished in time, or
/// a deadline error and `true` when the clock expired first (the helper
/// thread is detached and its eventual result discarded).
fn run_with_deadline(
    kind: &JobKind,
    cancel: &Arc<AtomicBool>,
    progress: &Arc<Progress>,
    registry: &CheckpointRegistry,
    limit: std::time::Duration,
) -> (Result<JobOutcome, String>, bool) {
    type Slot = Arc<(Mutex<Option<Result<JobOutcome, String>>>, Condvar)>;
    let slot: Slot = Arc::new((Mutex::new(None), Condvar::new()));
    let spawned = {
        let slot = Arc::clone(&slot);
        let kind = kind.clone();
        let cancel = Arc::clone(cancel);
        let progress = Arc::clone(progress);
        let registry = registry.clone();
        std::thread::Builder::new()
            .name("nptsn-serve-job".to_string())
            .spawn(move || {
                let result = run_caught(&kind, &cancel, &progress, &registry);
                let (lock, cv) = &*slot;
                *lock.lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
                cv.notify_all();
            })
    };
    if spawned.is_err() {
        // Thread exhaustion: degrade to an inline run rather than losing
        // the job.
        return (run_caught(kind, cancel, progress, registry), false);
    }
    let (lock, cv) = &*slot;
    let guard = lock.lock().unwrap_or_else(|e| e.into_inner());
    let (mut guard, wait) = cv
        .wait_timeout_while(guard, limit, |r| r.is_none())
        .unwrap_or_else(|e| e.into_inner());
    match guard.take() {
        Some(result) => (result, false),
        None => {
            debug_assert!(wait.timed_out());
            let message = format!("job exceeded the {}ms deadline", limit.as_millis());
            (Err(message), true)
        }
    }
}

/// The planner configuration a service job uses: the laptop-scale `quick`
/// architecture with the request's budget knobs. Inference rebuilds the
/// same architecture, so checkpoints produced by service plan jobs always
/// restore cleanly.
fn service_config(epochs: usize, steps: usize, seed: u64, analyzer_workers: usize) -> PlannerConfig {
    PlannerConfig {
        max_epochs: epochs,
        steps_per_epoch: steps,
        seed,
        analyzer_workers: analyzer_workers.max(1),
        ..PlannerConfig::quick()
    }
}

fn plan_outcome(solution: Solution, checkpoint: Option<Vec<u8>>) -> JobOutcome {
    JobOutcome::Plan {
        planfile: write_plan(&solution.topology),
        cost: solution.cost,
        summary: solution.to_string(),
        checkpoint,
    }
}

/// Runs one job to completion. Returns `Err` with a message for planning
/// dead-ends and restoration failures; infrastructure-level panics are
/// caught by the worker loop.
fn execute(
    kind: &JobKind,
    cancel: &AtomicBool,
    progress: &Progress,
    registry: &CheckpointRegistry,
) -> Result<JobOutcome, String> {
    // Chaos: an error here is a failed job, a panic exercises the
    // catch_unwind in the worker loop, a delay triggers job deadlines.
    nptsn_chaos::point("serve.job").map_err(|e| e.to_string())?;
    match kind {
        JobKind::Plan(req) => {
            let config = service_config(req.epochs, req.steps, req.seed, req.analyzer_workers);
            if req.greedy {
                let best = GreedyPlanner::new(req.parsed.problem.clone(), config.k_paths)
                    .run(8, req.seed);
                return match best {
                    Some(solution) => Ok(plan_outcome(solution, None)),
                    None => Err("greedy planner found no valid plan".to_string()),
                };
            }
            let planner = Planner::new(req.parsed.problem.clone(), config);
            // Epoch/solution telemetry is recorded by the planner itself
            // (nptsn-obs global registry); the job only tracks progress.
            let report = planner.run_until(|stats| {
                progress.push(stats.clone());
                !cancel.load(Ordering::Relaxed)
            });
            match report.best {
                Some(solution) => Ok(plan_outcome(solution, Some(report.policy_checkpoint))),
                None if cancel.load(Ordering::Relaxed) => {
                    Err("cancelled before a valid plan was found".to_string())
                }
                None => Err("no valid plan found; raise epochs/steps".to_string()),
            }
        }
        JobKind::Verify(req) => {
            let analyzer = FailureAnalyzer::new()
                .with_workers(req.analyzer_workers)
                .with_shared_cache(Arc::new(ScenarioCache::new()));
            // Scenario/cache telemetry is recorded inside `try_analyze`.
            let report = analyzer
                .try_analyze(&req.parsed.problem, &req.topology)
                .map_err(|e| format!("analysis failed: {e}"))?;
            let reliable = report.verdict.is_reliable();
            let cost = req.topology.network_cost(req.parsed.problem.library());
            let json = analysis_report_json(&req.parsed.problem, &report, Some(cost));
            Ok(JobOutcome::Verify { json, reliable })
        }
        JobKind::Infer(req) => {
            // Named checkpoints resolve at execution time, so a recovered
            // or delayed infer job uses the registry's current version.
            let bytes = match &req.checkpoint {
                CheckpointSource::Inline(bytes) => bytes.clone(),
                CheckpointSource::Named(name) => match registry.get(name) {
                    Ok(Some((_version, bytes))) => bytes,
                    Ok(None) => return Err(format!("checkpoint '{name}' is not registered")),
                    Err(e) => return Err(format!("checkpoint '{name}' unavailable: {e}")),
                },
            };
            let im = infer_metrics();
            im.solo_forwards.inc();
            im.batch_size.observe(1.0);
            let config = service_config(1, 1, req.seed, 1);
            let planner = Planner::new(req.parsed.problem.clone(), config);
            let policy = planner.build_policy();
            nptsn_nn::params_from_bytes(&nptsn_nn::Module::parameters(&policy), &bytes)
                .map_err(|e| format!("checkpoint rejected: {e}"))?;
            match planner.plan_with_policy(&policy, req.attempts, req.seed) {
                Some(solution) => Ok(plan_outcome(solution, None)),
                None => Err("the restored policy found no valid plan".to_string()),
            }
        }
        JobKind::Burn { millis } => {
            // Sleep in slices so cancellation stays responsive.
            let mut remaining = *millis;
            while remaining > 0 && !cancel.load(Ordering::Relaxed) {
                let slice = remaining.min(10);
                std::thread::sleep(std::time::Duration::from_millis(slice));
                remaining -= slice;
            }
            Ok(JobOutcome::Burn)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServeMetrics;

    fn burn(millis: u64) -> JobKind {
        JobKind::Burn { millis }
    }

    #[test]
    fn backpressure_rejects_when_full() {
        let queue = JobQueue::new(2);
        queue.submit(burn(0)).unwrap();
        queue.submit(burn(0)).unwrap();
        assert_eq!(queue.submit(burn(0)), Err(SubmitError::Full));
        assert_eq!(queue.queued(), 2);
    }

    #[test]
    fn closed_queue_refuses_submissions_but_drains() {
        let metrics = ServeMetrics::new();
        let queue = Arc::new(JobQueue::new(8));
        let a = queue.submit(burn(1)).unwrap();
        let b = queue.submit(burn(1)).unwrap();
        queue.close();
        assert_eq!(queue.submit(burn(0)), Err(SubmitError::ShuttingDown));
        // A worker started after close still drains both jobs, then exits.
        queue.worker_loop(&metrics, None);
        for id in [a, b] {
            let snap = queue.snapshot(id).unwrap();
            assert_eq!(snap.state, JobState::Done, "job {id}");
            assert!(matches!(snap.outcome, Some(JobOutcome::Burn)));
        }
        assert_eq!(metrics.jobs_completed.get(), 2);
    }

    #[test]
    fn queued_jobs_cancel_instantly() {
        let queue = JobQueue::new(4);
        let id = queue.submit(burn(1000)).unwrap();
        assert_eq!(queue.cancel(id), CancelOutcome::Cancelled);
        assert_eq!(queue.snapshot(id).unwrap().state, JobState::Cancelled);
        assert_eq!(queue.queued(), 0);
        assert_eq!(queue.cancel(id), CancelOutcome::AlreadyFinished);
        assert_eq!(queue.cancel(999), CancelOutcome::NotFound);
    }

    #[test]
    fn snapshots_serialize_states() {
        let queue = JobQueue::new(4);
        let id = queue.submit(burn(0)).unwrap();
        let json = queue.snapshot(id).unwrap().to_json();
        assert!(json.contains("\"state\":\"submitted\""), "{json}");
        assert!(json.contains("\"kind\":\"burn\""));
        assert!(json.contains("\"latest_epoch\":null"));
        assert!(queue.snapshot(99).is_none());
    }

    #[test]
    fn expired_deadline_fails_the_job_and_the_worker_survives() {
        let before = nptsn_obs::telemetry().snapshot();
        let metrics = ServeMetrics::new();
        let queue = Arc::new(JobQueue::new(8));
        // The first job overruns a 30ms deadline; the second is instant.
        // Both results must be recorded by the *same* worker pass.
        let slow = queue.submit(burn(60_000)).unwrap();
        let fast = queue.submit(burn(0)).unwrap();
        queue.close();
        queue.worker_loop(&metrics, Some(std::time::Duration::from_millis(30)));

        let snap = queue.snapshot(slow).unwrap();
        assert_eq!(snap.state, JobState::Failed);
        assert!(
            snap.error.as_deref().unwrap_or("").contains("deadline"),
            "{:?}",
            snap.error
        );
        assert_eq!(queue.snapshot(fast).unwrap().state, JobState::Done);
        assert_eq!(metrics.jobs_failed.get(), 1);
        assert_eq!(metrics.jobs_completed.get(), 1);
        let after = nptsn_obs::telemetry().snapshot();
        assert!(after.recovery_deadline_kills > before.recovery_deadline_kills);
    }

    #[test]
    fn jobs_inside_the_deadline_complete_normally() {
        let metrics = ServeMetrics::new();
        let queue = Arc::new(JobQueue::new(4));
        let id = queue.submit(burn(1)).unwrap();
        queue.close();
        queue.worker_loop(&metrics, Some(std::time::Duration::from_secs(30)));
        assert_eq!(queue.snapshot(id).unwrap().state, JobState::Done);
        assert_eq!(metrics.jobs_completed.get(), 1);
    }

    #[test]
    fn job_states_know_terminality() {
        assert!(!JobState::Submitted.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(JobState::Done.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
        assert_eq!(JobState::Running.label(), "running");
    }

    // ------------------------------------------------------------------
    // Durability: the MemStore outlives the queue, so dropping one queue
    // and opening another on the same store is a faithful in-process
    // stand-in for `kill -9` + restart (nothing in the queue's memory
    // survives; only what was persisted does).
    // ------------------------------------------------------------------

    #[test]
    fn restart_recovers_terminal_results_and_requeues_interrupted_jobs() {
        let store: Arc<dyn Storage> = Arc::new(MemStore::new());
        let metrics = ServeMetrics::new();
        let (done, interrupted) = {
            let (queue, report) =
                JobQueue::open(8, Arc::clone(&store), RetentionConfig::default()).unwrap();
            assert_eq!(report, RecoveryReport::default());
            let done = queue.submit(burn(0)).unwrap();
            let interrupted = queue.submit(burn(0)).unwrap();
            assert_eq!(queue.run_one(&metrics), Some(done));
            // `interrupted` is still queued when the process "dies".
            (done, interrupted)
        };

        let (queue, report) =
            JobQueue::open(8, Arc::clone(&store), RetentionConfig::default()).unwrap();
        assert_eq!(report.terminal_loaded, 1);
        assert_eq!(report.requeued, 1);
        assert_eq!(report.failed_to_recover, 0);
        let snap = queue.snapshot(done).unwrap();
        assert_eq!(snap.state, JobState::Done);
        assert!(matches!(snap.outcome, Some(JobOutcome::Burn)));
        assert_eq!(queue.snapshot(interrupted).unwrap().state, JobState::Submitted);
        // The requeued job drains normally.
        assert_eq!(queue.run_one(&metrics), Some(interrupted));
        assert_eq!(queue.snapshot(interrupted).unwrap().state, JobState::Done);
        // Ids continue past the watermark, never reusing.
        let next = queue.submit(burn(0)).unwrap();
        assert!(next > interrupted);
    }

    #[test]
    fn running_at_crash_jobs_are_reenqueued() {
        let store: Arc<dyn Storage> = Arc::new(MemStore::new());
        let id = {
            let (queue, _) =
                JobQueue::open(4, Arc::clone(&store), RetentionConfig::default()).unwrap();
            let id = queue.submit(burn(0)).unwrap();
            // Claim the job (persists `running`) and "die" before it ends.
            let claimed = queue.next_job(false).unwrap();
            assert_eq!(claimed.0, id);
            id
        };
        let (queue, report) =
            JobQueue::open(4, Arc::clone(&store), RetentionConfig::default()).unwrap();
        assert_eq!(report.requeued, 1);
        assert_eq!(queue.snapshot(id).unwrap().state, JobState::Submitted);
        assert_eq!(queue.run_one(&ServeMetrics::new()), Some(id));
        assert_eq!(queue.snapshot(id).unwrap().state, JobState::Done);
    }

    #[test]
    fn retention_cap_evicts_oldest_terminal_jobs_everywhere() {
        let store: Arc<dyn Storage> = Arc::new(MemStore::new());
        let retention = RetentionConfig { max_terminal: 2, ttl: None };
        let metrics = ServeMetrics::new();
        let (queue, _) = JobQueue::open(16, Arc::clone(&store), retention).unwrap();
        let ids: Vec<JobId> = (0..4).map(|_| queue.submit(burn(0)).unwrap()).collect();
        while queue.run_one(&metrics).is_some() {}
        // 4 terminal, cap 2: the two oldest are gone from memory…
        assert_eq!(queue.evicted(), 2);
        assert!(queue.snapshot(ids[0]).is_none());
        assert!(queue.snapshot(ids[1]).is_none());
        assert_eq!(queue.snapshot(ids[3]).unwrap().state, JobState::Done);
        // …and from the store: a restart sees only the retained two.
        drop(queue);
        let (reopened, report) = JobQueue::open(16, store, retention).unwrap();
        assert_eq!(report.terminal_loaded, 2);
        assert!(reopened.snapshot(ids[0]).is_none());
        assert!(reopened.snapshot(ids[3]).is_some());
    }

    #[test]
    fn ttl_retention_expires_terminal_jobs() {
        let store: Arc<dyn Storage> = Arc::new(MemStore::new());
        let retention =
            RetentionConfig { max_terminal: 0, ttl: Some(std::time::Duration::ZERO) };
        let metrics = ServeMetrics::new();
        let (queue, _) = JobQueue::open(4, store, retention).unwrap();
        let id = queue.submit(burn(0)).unwrap();
        queue.run_one(&metrics);
        // A zero TTL evicts at the next sweep — triggered by a submission.
        queue.submit(burn(0)).unwrap();
        assert!(queue.snapshot(id).is_none());
        assert_eq!(queue.evicted(), 1);
    }

    #[test]
    fn forget_terminal_deletes_the_persisted_record() {
        let store: Arc<dyn Storage> = Arc::new(MemStore::new());
        let metrics = ServeMetrics::new();
        let id = {
            let (queue, _) =
                JobQueue::open(4, Arc::clone(&store), RetentionConfig::default()).unwrap();
            let id = queue.submit(burn(0)).unwrap();
            assert!(!queue.forget_terminal(id), "non-terminal jobs cannot be deleted");
            queue.run_one(&metrics);
            assert!(queue.forget_terminal(id));
            assert!(queue.snapshot(id).is_none());
            assert!(!queue.forget_terminal(id), "already deleted");
            id
        };
        // The deletion is durable, and the id is never reissued.
        let (reopened, report) =
            JobQueue::open(4, store, RetentionConfig::default()).unwrap();
        assert_eq!(report.terminal_loaded, 0);
        assert!(reopened.snapshot(id).is_none());
        assert!(reopened.submit(burn(0)).unwrap() > id);
    }

    #[test]
    fn recovery_accounting_is_exact() {
        // submitted == terminal_loaded + requeued, with no store faults.
        let store: Arc<dyn Storage> = Arc::new(MemStore::new());
        let metrics = ServeMetrics::new();
        let submitted = 6u64;
        {
            let (queue, _) =
                JobQueue::open(16, Arc::clone(&store), RetentionConfig::default()).unwrap();
            for _ in 0..submitted {
                queue.submit(burn(0)).unwrap();
            }
            for _ in 0..3 {
                queue.run_one(&metrics);
            }
            // Kill with 3 done, 3 queued.
        }
        let (_queue, report) =
            JobQueue::open(16, store, RetentionConfig::default()).unwrap();
        assert_eq!(report.terminal_loaded + report.requeued, submitted);
        assert_eq!(report.failed_to_recover, 0);
    }

    const INFER_DOC: &str =
        "[nodes]\nes a\nes b\nsw s0\nsw s1\n[links]\na s0\na s1\nb s0\nb s1\ns0 s1\n[flows]\na b 500 128\n";

    #[test]
    fn worker_batches_compatible_infer_jobs_with_solo_identical_results() {
        let metrics = ServeMetrics::new();
        let queue = JobQueue::new(16);
        queue.set_infer_batching(8, 0);
        let parsed = nptsn_format::parse_problem(INFER_DOC).expect("valid problem");

        // A structurally valid checkpoint for this problem's architecture.
        let planner = Planner::new(parsed.problem.clone(), service_config(1, 1, 0, 1));
        let policy = planner.build_policy();
        let bytes = nptsn_nn::params_to_bytes(&nptsn_nn::Module::parameters(&policy));

        // Solo references computed in-process: what each job must report.
        let solo: Vec<Option<Solution>> = [(2usize, 7u64), (3, 11), (2, 42)]
            .iter()
            .map(|&(attempts, seed)| {
                let planner =
                    Planner::new(parsed.problem.clone(), service_config(1, 1, seed, 1));
                let policy = planner.build_policy();
                nptsn_nn::params_from_bytes(&nptsn_nn::Module::parameters(&policy), &bytes)
                    .expect("checkpoint restores");
                planner.plan_with_policy(&policy, attempts, seed)
            })
            .collect();

        let before_batched = infer_metrics().batched_forwards.get();
        let ids: Vec<JobId> = [(2usize, 7u64), (3, 11), (2, 42)]
            .iter()
            .map(|&(attempts, seed)| {
                queue
                    .submit(JobKind::Infer(InferRequest {
                        parsed: parsed.clone(),
                        checkpoint: CheckpointSource::Inline(bytes.clone()),
                        attempts,
                        seed,
                    }))
                    .expect("submit")
            })
            .collect();
        // An incompatible straggler (different checkpoint source) must NOT
        // join the batch; it runs solo afterwards.
        let named = queue
            .submit(JobKind::Infer(InferRequest {
                parsed: parsed.clone(),
                checkpoint: CheckpointSource::Named("missing".to_string()),
                attempts: 1,
                seed: 0,
            }))
            .expect("submit");
        queue.close();
        queue.worker_loop(&metrics, None);

        assert!(
            infer_metrics().batched_forwards.get() > before_batched,
            "no batched forward was recorded"
        );
        for (id, reference) in ids.iter().zip(&solo) {
            let snap = queue.snapshot(*id).expect("job tracked");
            match reference {
                Some(solution) => {
                    assert_eq!(snap.state, JobState::Done, "job {id}: {:?}", snap.error);
                    match &snap.outcome {
                        Some(JobOutcome::Plan { cost, planfile, .. }) => {
                            assert_eq!(*cost, solution.cost, "job {id} cost diverged");
                            assert_eq!(
                                planfile,
                                &write_plan(&solution.topology),
                                "job {id} plan diverged"
                            );
                        }
                        other => panic!("job {id}: unexpected outcome {other:?}"),
                    }
                }
                None => {
                    assert_eq!(snap.state, JobState::Failed);
                    assert_eq!(
                        snap.error.as_deref(),
                        Some("the restored policy found no valid plan")
                    );
                }
            }
        }
        let named_snap = queue.snapshot(named).expect("straggler tracked");
        assert_eq!(named_snap.state, JobState::Failed);
        assert!(
            named_snap.error.as_deref().unwrap_or("").contains("not registered"),
            "{:?}",
            named_snap.error
        );
    }

    #[test]
    fn named_infer_jobs_fail_cleanly_without_a_registration() {
        let queue = JobQueue::new(4);
        let registry = queue.registry().clone();
        let cancel = AtomicBool::new(false);
        let progress = Progress::default();
        let parsed = nptsn_format::parse_problem(
            "[nodes]\nes a\nes b\nsw s0\n[links]\na s0\nb s0\n[flows]\na b 500 128\n",
        )
        .expect("valid problem");
        let kind = JobKind::Infer(InferRequest {
            parsed,
            checkpoint: CheckpointSource::Named("missing".to_string()),
            attempts: 1,
            seed: 0,
        });
        let result = execute(&kind, &cancel, &progress, &registry);
        assert!(result.unwrap_err().contains("not registered"));
    }

    #[test]
    fn explicit_id_submission_advances_the_watermark_and_rejects_duplicates() {
        let store: Arc<dyn Storage> = Arc::new(MemStore::new());
        let (queue, _) = JobQueue::open(8, Arc::clone(&store), RetentionConfig::default()).unwrap();
        // A router-assigned id far above the local watermark.
        assert_eq!(queue.submit_validated_with_id(100, burn(0), Some(JobSpec::Burn { millis: 0 })), Ok(100));
        assert_eq!(queue.next_id_watermark(), 100);
        // The same id again is a duplicate, as is id 0.
        assert_eq!(
            queue.submit_validated_with_id(100, burn(0), None),
            Err(SubmitError::Duplicate)
        );
        assert_eq!(queue.submit_validated_with_id(0, burn(0), None), Err(SubmitError::Duplicate));
        // Local (implicit-id) submission continues above the watermark.
        assert_eq!(queue.submit(burn(0)), Ok(101));
        // The watermark survives a restart: ids never collide after reopen.
        drop(queue);
        let (queue, _) = JobQueue::open(8, Arc::clone(&store), RetentionConfig::default()).unwrap();
        assert_eq!(queue.submit(burn(0)), Ok(102));
    }

    #[test]
    fn ingest_replays_terminal_records_verbatim_and_requeues_interrupted_ones() {
        let metrics = ServeMetrics::new();
        // The "dead shard": run one job to done, leave one submitted.
        let dead_store: Arc<dyn Storage> = Arc::new(MemStore::new());
        let (dead, _) =
            JobQueue::open(8, Arc::clone(&dead_store), RetentionConfig::default()).unwrap();
        let finished = dead.submit(burn(0)).unwrap();
        let interrupted = dead.submit(burn(0)).unwrap();
        assert_eq!(dead.run_one(&metrics), Some(finished));
        let finished_bytes = dead_store.get(&job_key(finished)).unwrap().unwrap();
        let interrupted_bytes = dead_store.get(&job_key(interrupted)).unwrap().unwrap();

        // The survivor ingests both records.
        let (live, _) =
            JobQueue::open(2, Arc::new(MemStore::new()), RetentionConfig::default()).unwrap();
        assert_eq!(live.ingest_record(finished, &finished_bytes), Ok(IngestOutcome::Terminal));
        assert_eq!(
            live.ingest_record(interrupted, &interrupted_bytes),
            Ok(IngestOutcome::Requeued)
        );
        // Idempotent: a retried replay is a no-op for both.
        assert_eq!(live.ingest_record(finished, &finished_bytes), Ok(IngestOutcome::AlreadyKnown));
        assert_eq!(
            live.ingest_record(interrupted, &interrupted_bytes),
            Ok(IngestOutcome::AlreadyKnown)
        );
        // The terminal record came over byte-identical.
        assert_eq!(
            live.store().get(&job_key(finished)).unwrap().unwrap(),
            finished_bytes
        );
        let snap = live.snapshot(finished).unwrap();
        assert_eq!(snap.state, JobState::Done);
        assert!(matches!(snap.outcome, Some(JobOutcome::Burn)));
        // The interrupted one runs to completion on the survivor.
        assert_eq!(live.run_one(&metrics), Some(interrupted));
        assert_eq!(live.snapshot(interrupted).unwrap().state, JobState::Done);
        // The watermark moved past every ingested id.
        assert!(live.next_id_watermark() >= interrupted);
        // Garbage bytes are refused without storing anything.
        assert!(matches!(
            live.ingest_record(999, b"not a record"),
            Err(IngestError::Malformed(_))
        ));
        assert!(live.snapshot(999).is_none());
    }

    #[test]
    fn ingest_bypasses_queue_depth_but_submission_does_not() {
        let (queue, _) =
            JobQueue::open(1, Arc::new(MemStore::new()), RetentionConfig::default()).unwrap();
        queue.submit(burn(0)).unwrap();
        assert_eq!(queue.submit(burn(0)), Err(SubmitError::Full));
        assert_eq!(
            queue.submit_validated_with_id(50, burn(0), None),
            Err(SubmitError::Full)
        );
        // Replay must not be refused by backpressure: losing half a dead
        // shard's log to a full queue would turn failover into data loss.
        let record = encode_record(JobState::Submitted, Some(&JobSpec::Burn { millis: 0 }), None, None);
        assert_eq!(queue.ingest_record(50, &record), Ok(IngestOutcome::Requeued));
        assert_eq!(queue.queued(), 2);
    }
}
