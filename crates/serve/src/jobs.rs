//! The bounded job queue and worker-pool executor behind the service.
//!
//! Lifecycle: `submitted → running → done | failed | cancelled`. The queue
//! depth is fixed at construction; a submission against a full queue is
//! rejected immediately (the HTTP layer maps that to `503` +
//! `Retry-After`) so heavy traffic degrades with backpressure instead of
//! unbounded memory growth. Shutdown is a *drain*: the queue stops
//! accepting work, the workers finish every job already accepted — running
//! and queued — and no result is dropped.
//!
//! Request payloads are parsed and validated at submission time (problem
//! text, plan text, checkpoint structure), so every malformed upload is a
//! synchronous `4xx` and a worker never picks up a job that cannot start.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use nptsn::{
    EpochStats, FailureAnalyzer, GreedyPlanner, Planner, PlannerConfig, ScenarioCache, Solution,
};
use nptsn_format::json::{analysis_report_json, epoch_stats_json, Object};
use nptsn_format::{write_plan, ParsedProblem};
use nptsn_topo::Topology;

use crate::server::ServeMetrics;

/// Identifies one submitted job.
pub type JobId = u64;

/// A validated plan request: train (or greedily construct) a topology for
/// the parsed problem.
#[derive(Debug, Clone)]
pub struct PlanRequest {
    /// The parsed problem (validated at submission).
    pub parsed: ParsedProblem,
    /// Training epochs (ignored for greedy).
    pub epochs: usize,
    /// Environment steps per epoch (ignored for greedy).
    pub steps: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Use the greedy ablation planner instead of RL.
    pub greedy: bool,
    /// Analyzer fan-out inside each rollout worker.
    pub analyzer_workers: usize,
}

/// A validated verify request: run the failure analyzer on a submitted
/// plan.
#[derive(Debug, Clone)]
pub struct VerifyRequest {
    /// The parsed problem.
    pub parsed: ParsedProblem,
    /// The topology parsed from the uploaded plan file.
    pub topology: Topology,
    /// Analyzer worker threads.
    pub analyzer_workers: usize,
}

/// A validated inference request: restore an uploaded `NPTSNCK2` policy
/// checkpoint and plan without learning.
#[derive(Debug, Clone)]
pub struct InferRequest {
    /// The parsed problem.
    pub parsed: ParsedProblem,
    /// The checkpoint bytes (structurally validated at submission).
    pub checkpoint: Vec<u8>,
    /// Deployment episodes to attempt.
    pub attempts: usize,
    /// Base RNG seed.
    pub seed: u64,
}

/// What a worker executes.
#[derive(Debug, Clone)]
pub enum JobKind {
    /// Train/construct a plan.
    Plan(PlanRequest),
    /// Verify a plan's reliability guarantee.
    Verify(VerifyRequest),
    /// Checkpoint-backed policy inference.
    Infer(InferRequest),
    /// A diagnostic job that busy-waits for the given duration — the
    /// load-generation stand-in used by the backpressure tests and the
    /// serving benchmark.
    Burn {
        /// How long the job occupies a worker, in milliseconds.
        millis: u64,
    },
}

impl JobKind {
    /// A short lowercase label for status output and metrics.
    pub fn name(&self) -> &'static str {
        match self {
            JobKind::Plan(_) => "plan",
            JobKind::Verify(_) => "verify",
            JobKind::Infer(_) => "infer",
            JobKind::Burn { .. } => "burn",
        }
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and waiting in the queue.
    Submitted,
    /// Picked up by a worker.
    Running,
    /// Finished with a result.
    Done,
    /// Finished with an error.
    Failed,
    /// Cancelled before or during execution.
    Cancelled,
}

impl JobState {
    /// The lowercase label used in status JSON.
    pub fn label(self) -> &'static str {
        match self {
            JobState::Submitted => "submitted",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Cancelled)
    }
}

/// The output of a finished job.
#[derive(Debug, Clone)]
pub enum JobOutcome {
    /// A plan (from `plan` or `infer`): the plan file, its cost, and — for
    /// RL runs — the trained policy checkpoint.
    Plan {
        /// The plan file text.
        planfile: String,
        /// Network cost of the solution.
        cost: f64,
        /// Human-readable solution summary.
        summary: String,
        /// `NPTSNCK2` bytes of the trained policy (RL plan jobs only).
        checkpoint: Option<Vec<u8>>,
    },
    /// A verification report, pre-serialized with the shared JSON
    /// serializer (identical to `nptsn verify --json`).
    Verify {
        /// The `analysis_report_json` text.
        json: String,
        /// Whether the verdict was `Reliable`.
        reliable: bool,
    },
    /// A completed burn job.
    Burn,
}

/// Live progress of a running job (epoch stats stream for plan jobs).
#[derive(Debug, Default)]
pub struct Progress {
    epochs: Mutex<Vec<EpochStats>>,
}

impl Progress {
    fn push(&self, stats: EpochStats) {
        self.epochs.lock().unwrap_or_else(|e| e.into_inner()).push(stats);
    }

    /// Number of epochs completed so far and the latest stats, if any.
    pub fn snapshot(&self) -> (usize, Option<EpochStats>) {
        let epochs = self.epochs.lock().unwrap_or_else(|e| e.into_inner());
        (epochs.len(), epochs.last().cloned())
    }
}

/// One tracked job.
#[derive(Debug)]
struct JobEntry {
    kind_name: &'static str,
    /// Present while the job waits in the queue; taken by the worker.
    pending: Option<JobKind>,
    state: JobState,
    cancel: Arc<AtomicBool>,
    progress: Arc<Progress>,
    outcome: Option<JobOutcome>,
    error: Option<String>,
}

/// A point-in-time view of one job, safe to serialize outside the lock.
#[derive(Debug, Clone)]
pub struct JobSnapshot {
    /// The job id.
    pub id: JobId,
    /// The kind label (`plan`, `verify`, `infer`, `burn`).
    pub kind: &'static str,
    /// Lifecycle state.
    pub state: JobState,
    /// Epochs completed so far (plan jobs).
    pub epochs_completed: usize,
    /// The most recent epoch diagnostics (plan jobs).
    pub latest_epoch: Option<EpochStats>,
    /// The outcome, once terminal.
    pub outcome: Option<JobOutcome>,
    /// The failure message, if the job failed.
    pub error: Option<String>,
}

impl JobSnapshot {
    /// The status JSON served by `GET /jobs/<id>`.
    pub fn to_json(&self) -> String {
        let mut obj = Object::new();
        obj.int("id", self.id);
        obj.str("kind", self.kind);
        obj.str("state", self.state.label());
        obj.int("epochs_completed", self.epochs_completed as u64);
        match &self.latest_epoch {
            Some(stats) => obj.raw("latest_epoch", &epoch_stats_json(stats)),
            None => obj.null("latest_epoch"),
        }
        match &self.outcome {
            Some(JobOutcome::Plan { cost, summary, checkpoint, .. }) => {
                obj.num("cost", *cost);
                obj.str("summary", summary);
                obj.bool("checkpoint_available", checkpoint.is_some());
            }
            Some(JobOutcome::Verify { reliable, .. }) => {
                obj.bool("reliable", *reliable);
            }
            Some(JobOutcome::Burn) | None => {}
        }
        match &self.error {
            Some(e) => obj.str("error", e),
            None => obj.null("error"),
        }
        obj.finish()
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity — retry later (HTTP 503 + `Retry-After`).
    Full,
    /// The service is draining for shutdown.
    ShuttingDown,
}

/// The result of a cancellation request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The job was still queued and is now cancelled.
    Cancelled,
    /// The job is running; the cancel flag is set and the job will wind
    /// down at its next cancellation point (epoch boundary).
    Signalled,
    /// The job had already finished.
    AlreadyFinished,
    /// No such job.
    NotFound,
}

#[derive(Debug, Default)]
struct QueueState {
    next_id: JobId,
    queue: VecDeque<JobId>,
    jobs: HashMap<JobId, JobEntry>,
    open: bool,
}

/// The bounded job queue shared by the HTTP handlers and the worker pool.
#[derive(Debug)]
pub struct JobQueue {
    depth: usize,
    state: Mutex<QueueState>,
    work_ready: Condvar,
}

impl JobQueue {
    /// A queue admitting at most `depth` waiting jobs (running jobs do not
    /// count against the depth).
    pub fn new(depth: usize) -> JobQueue {
        JobQueue {
            depth: depth.max(1),
            state: Mutex::new(QueueState { open: true, ..QueueState::default() }),
            work_ready: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The configured queue depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of jobs currently waiting.
    pub fn queued(&self) -> usize {
        self.lock().queue.len()
    }

    /// Accepts a job, or rejects it with backpressure.
    pub fn submit(&self, kind: JobKind) -> Result<JobId, SubmitError> {
        let mut state = self.lock();
        if !state.open {
            return Err(SubmitError::ShuttingDown);
        }
        if state.queue.len() >= self.depth {
            return Err(SubmitError::Full);
        }
        state.next_id += 1;
        let id = state.next_id;
        state.jobs.insert(
            id,
            JobEntry {
                kind_name: kind.name(),
                pending: Some(kind),
                state: JobState::Submitted,
                cancel: Arc::new(AtomicBool::new(false)),
                progress: Arc::new(Progress::default()),
                outcome: None,
                error: None,
            },
        );
        state.queue.push_back(id);
        drop(state);
        self.work_ready.notify_one();
        Ok(id)
    }

    /// A snapshot of one job, or `None` if the id is unknown.
    pub fn snapshot(&self, id: JobId) -> Option<JobSnapshot> {
        let state = self.lock();
        let entry = state.jobs.get(&id)?;
        let (epochs_completed, latest_epoch) = entry.progress.snapshot();
        Some(JobSnapshot {
            id,
            kind: entry.kind_name,
            state: entry.state,
            epochs_completed,
            latest_epoch,
            outcome: entry.outcome.clone(),
            error: entry.error.clone(),
        })
    }

    /// Requests cancellation of a job.
    pub fn cancel(&self, id: JobId) -> CancelOutcome {
        let mut state = self.lock();
        let Some(entry) = state.jobs.get_mut(&id) else {
            return CancelOutcome::NotFound;
        };
        match entry.state {
            JobState::Submitted => {
                entry.state = JobState::Cancelled;
                entry.pending = None;
                state.queue.retain(|&q| q != id);
                CancelOutcome::Cancelled
            }
            JobState::Running => {
                entry.cancel.store(true, Ordering::Relaxed);
                CancelOutcome::Signalled
            }
            _ => CancelOutcome::AlreadyFinished,
        }
    }

    /// Stops accepting new jobs and wakes every worker so the queue
    /// drains; already-accepted jobs still run to completion.
    pub fn close(&self) {
        self.lock().open = false;
        self.work_ready.notify_all();
    }

    /// One worker's run loop: take jobs until the queue is closed *and*
    /// drained. Results are recorded on the job entry — nothing accepted
    /// is ever dropped.
    ///
    /// With a `job_deadline`, each job runs on a helper thread and is
    /// abandoned when the wall clock expires: the job is recorded as
    /// `failed`, the worker moves straight on to the next job, and the
    /// orphaned computation gets its cancel flag set so it winds down at
    /// its next cancellation point. Its late result is discarded.
    pub fn worker_loop(&self, metrics: &ServeMetrics, job_deadline: Option<std::time::Duration>) {
        loop {
            let (id, kind, cancel, progress) = {
                let mut state = self.lock();
                loop {
                    if let Some(id) = state.queue.pop_front() {
                        let entry = state.jobs.get_mut(&id).expect("queued job exists");
                        let kind = entry.pending.take().expect("queued job has a kind");
                        entry.state = JobState::Running;
                        break (
                            id,
                            kind,
                            Arc::clone(&entry.cancel),
                            Arc::clone(&entry.progress),
                        );
                    }
                    if !state.open {
                        return;
                    }
                    state = self
                        .work_ready
                        .wait(state)
                        .unwrap_or_else(|e| e.into_inner());
                }
            };

            metrics.jobs_running.add(1);
            metrics.jobs_queued.set(self.queued() as i64);
            // A panicking job poisons only itself, never the worker: the
            // pool keeps serving (same policy as the planner's rollout
            // workers).
            let (result, timed_out) = match job_deadline {
                None => {
                    let _span = nptsn_obs::span("job.run");
                    let result =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            execute(&kind, &cancel, &progress)
                        }))
                        .unwrap_or_else(|_| Err("job panicked".to_string()));
                    (result, false)
                }
                Some(limit) => run_with_deadline(&kind, &cancel, &progress, limit),
            };
            metrics.jobs_running.sub(1);

            let mut state = self.lock();
            let entry = state.jobs.get_mut(&id).expect("running job exists");
            if timed_out {
                // A deadline kill is always `failed` — even if a cancel
                // arrived concurrently, the deadline is what ended it,
                // and the distinction matters for the recovery counters.
                entry.state = JobState::Failed;
                entry.error = result.err();
                metrics.jobs_failed.inc();
                nptsn_obs::telemetry().recovery_deadline_kills.inc();
                drop(state);
                // Signal *after* recording: the orphaned computation can
                // only observe the flag once `failed` is already visible.
                cancel.store(true, Ordering::Relaxed);
                continue;
            }
            match result {
                Ok(outcome) => {
                    entry.outcome = Some(outcome);
                    if cancel.load(Ordering::Relaxed) {
                        entry.state = JobState::Cancelled;
                        metrics.jobs_cancelled.inc();
                    } else {
                        entry.state = JobState::Done;
                        metrics.jobs_completed.inc();
                    }
                }
                Err(message) => {
                    if cancel.load(Ordering::Relaxed) {
                        entry.state = JobState::Cancelled;
                        metrics.jobs_cancelled.inc();
                    } else {
                        entry.state = JobState::Failed;
                        metrics.jobs_failed.inc();
                    }
                    entry.error = Some(message);
                }
            }
        }
    }
}

/// Executes one job on a helper thread with a wall-clock deadline.
/// Returns the job's own result and `false` when it finished in time, or
/// a deadline error and `true` when the clock expired first (the helper
/// thread is detached and its eventual result discarded).
fn run_with_deadline(
    kind: &JobKind,
    cancel: &Arc<AtomicBool>,
    progress: &Arc<Progress>,
    limit: std::time::Duration,
) -> (Result<JobOutcome, String>, bool) {
    type Slot = Arc<(Mutex<Option<Result<JobOutcome, String>>>, Condvar)>;
    let slot: Slot = Arc::new((Mutex::new(None), Condvar::new()));
    let spawned = {
        let slot = Arc::clone(&slot);
        let kind = kind.clone();
        let cancel = Arc::clone(cancel);
        let progress = Arc::clone(progress);
        std::thread::Builder::new()
            .name("nptsn-serve-job".to_string())
            .spawn(move || {
                let _span = nptsn_obs::span("job.run");
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    execute(&kind, &cancel, &progress)
                }))
                .unwrap_or_else(|_| Err("job panicked".to_string()));
                let (lock, cv) = &*slot;
                *lock.lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
                cv.notify_all();
            })
    };
    if spawned.is_err() {
        // Thread exhaustion: degrade to an inline run rather than losing
        // the job.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute(kind, cancel, progress)
        }))
        .unwrap_or_else(|_| Err("job panicked".to_string()));
        return (result, false);
    }
    let (lock, cv) = &*slot;
    let guard = lock.lock().unwrap_or_else(|e| e.into_inner());
    let (mut guard, wait) = cv
        .wait_timeout_while(guard, limit, |r| r.is_none())
        .unwrap_or_else(|e| e.into_inner());
    match guard.take() {
        Some(result) => (result, false),
        None => {
            debug_assert!(wait.timed_out());
            let message = format!("job exceeded the {}ms deadline", limit.as_millis());
            (Err(message), true)
        }
    }
}

/// The planner configuration a service job uses: the laptop-scale `quick`
/// architecture with the request's budget knobs. Inference rebuilds the
/// same architecture, so checkpoints produced by service plan jobs always
/// restore cleanly.
fn service_config(epochs: usize, steps: usize, seed: u64, analyzer_workers: usize) -> PlannerConfig {
    PlannerConfig {
        max_epochs: epochs,
        steps_per_epoch: steps,
        seed,
        analyzer_workers: analyzer_workers.max(1),
        ..PlannerConfig::quick()
    }
}

fn plan_outcome(solution: Solution, checkpoint: Option<Vec<u8>>) -> JobOutcome {
    JobOutcome::Plan {
        planfile: write_plan(&solution.topology),
        cost: solution.cost,
        summary: solution.to_string(),
        checkpoint,
    }
}

/// Runs one job to completion. Returns `Err` with a message for planning
/// dead-ends and restoration failures; infrastructure-level panics are
/// caught by the worker loop.
fn execute(
    kind: &JobKind,
    cancel: &AtomicBool,
    progress: &Progress,
) -> Result<JobOutcome, String> {
    // Chaos: an error here is a failed job, a panic exercises the
    // catch_unwind in the worker loop, a delay triggers job deadlines.
    nptsn_chaos::point("serve.job").map_err(|e| e.to_string())?;
    match kind {
        JobKind::Plan(req) => {
            let config = service_config(req.epochs, req.steps, req.seed, req.analyzer_workers);
            if req.greedy {
                let best = GreedyPlanner::new(req.parsed.problem.clone(), config.k_paths)
                    .run(8, req.seed);
                return match best {
                    Some(solution) => Ok(plan_outcome(solution, None)),
                    None => Err("greedy planner found no valid plan".to_string()),
                };
            }
            let planner = Planner::new(req.parsed.problem.clone(), config);
            // Epoch/solution telemetry is recorded by the planner itself
            // (nptsn-obs global registry); the job only tracks progress.
            let report = planner.run_until(|stats| {
                progress.push(stats.clone());
                !cancel.load(Ordering::Relaxed)
            });
            match report.best {
                Some(solution) => Ok(plan_outcome(solution, Some(report.policy_checkpoint))),
                None if cancel.load(Ordering::Relaxed) => {
                    Err("cancelled before a valid plan was found".to_string())
                }
                None => Err("no valid plan found; raise epochs/steps".to_string()),
            }
        }
        JobKind::Verify(req) => {
            let analyzer = FailureAnalyzer::new()
                .with_workers(req.analyzer_workers)
                .with_shared_cache(Arc::new(ScenarioCache::new()));
            // Scenario/cache telemetry is recorded inside `try_analyze`.
            let report = analyzer
                .try_analyze(&req.parsed.problem, &req.topology)
                .map_err(|e| format!("analysis failed: {e}"))?;
            let reliable = report.verdict.is_reliable();
            let cost = req.topology.network_cost(req.parsed.problem.library());
            let json = analysis_report_json(&req.parsed.problem, &report, Some(cost));
            Ok(JobOutcome::Verify { json, reliable })
        }
        JobKind::Infer(req) => {
            let config = service_config(1, 1, req.seed, 1);
            let planner = Planner::new(req.parsed.problem.clone(), config);
            let policy = planner.build_policy();
            nptsn_nn::params_from_bytes(
                &nptsn_nn::Module::parameters(&policy),
                &req.checkpoint,
            )
            .map_err(|e| format!("checkpoint rejected: {e}"))?;
            match planner.plan_with_policy(&policy, req.attempts, req.seed) {
                Some(solution) => Ok(plan_outcome(solution, None)),
                None => Err("the restored policy found no valid plan".to_string()),
            }
        }
        JobKind::Burn { millis } => {
            // Sleep in slices so cancellation stays responsive.
            let mut remaining = *millis;
            while remaining > 0 && !cancel.load(Ordering::Relaxed) {
                let slice = remaining.min(10);
                std::thread::sleep(std::time::Duration::from_millis(slice));
                remaining -= slice;
            }
            Ok(JobOutcome::Burn)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServeMetrics;

    fn burn(millis: u64) -> JobKind {
        JobKind::Burn { millis }
    }

    #[test]
    fn backpressure_rejects_when_full() {
        let queue = JobQueue::new(2);
        queue.submit(burn(0)).unwrap();
        queue.submit(burn(0)).unwrap();
        assert_eq!(queue.submit(burn(0)), Err(SubmitError::Full));
        assert_eq!(queue.queued(), 2);
    }

    #[test]
    fn closed_queue_refuses_submissions_but_drains() {
        let metrics = ServeMetrics::new();
        let queue = Arc::new(JobQueue::new(8));
        let a = queue.submit(burn(1)).unwrap();
        let b = queue.submit(burn(1)).unwrap();
        queue.close();
        assert_eq!(queue.submit(burn(0)), Err(SubmitError::ShuttingDown));
        // A worker started after close still drains both jobs, then exits.
        queue.worker_loop(&metrics, None);
        for id in [a, b] {
            let snap = queue.snapshot(id).unwrap();
            assert_eq!(snap.state, JobState::Done, "job {id}");
            assert!(matches!(snap.outcome, Some(JobOutcome::Burn)));
        }
        assert_eq!(metrics.jobs_completed.get(), 2);
    }

    #[test]
    fn queued_jobs_cancel_instantly() {
        let queue = JobQueue::new(4);
        let id = queue.submit(burn(1000)).unwrap();
        assert_eq!(queue.cancel(id), CancelOutcome::Cancelled);
        assert_eq!(queue.snapshot(id).unwrap().state, JobState::Cancelled);
        assert_eq!(queue.queued(), 0);
        assert_eq!(queue.cancel(id), CancelOutcome::AlreadyFinished);
        assert_eq!(queue.cancel(999), CancelOutcome::NotFound);
    }

    #[test]
    fn snapshots_serialize_states() {
        let queue = JobQueue::new(4);
        let id = queue.submit(burn(0)).unwrap();
        let json = queue.snapshot(id).unwrap().to_json();
        assert!(json.contains("\"state\":\"submitted\""), "{json}");
        assert!(json.contains("\"kind\":\"burn\""));
        assert!(json.contains("\"latest_epoch\":null"));
        assert!(queue.snapshot(99).is_none());
    }

    #[test]
    fn expired_deadline_fails_the_job_and_the_worker_survives() {
        let before = nptsn_obs::telemetry().snapshot();
        let metrics = ServeMetrics::new();
        let queue = Arc::new(JobQueue::new(8));
        // The first job overruns a 30ms deadline; the second is instant.
        // Both results must be recorded by the *same* worker pass.
        let slow = queue.submit(burn(60_000)).unwrap();
        let fast = queue.submit(burn(0)).unwrap();
        queue.close();
        queue.worker_loop(&metrics, Some(std::time::Duration::from_millis(30)));

        let snap = queue.snapshot(slow).unwrap();
        assert_eq!(snap.state, JobState::Failed);
        assert!(
            snap.error.as_deref().unwrap_or("").contains("deadline"),
            "{:?}",
            snap.error
        );
        assert_eq!(queue.snapshot(fast).unwrap().state, JobState::Done);
        assert_eq!(metrics.jobs_failed.get(), 1);
        assert_eq!(metrics.jobs_completed.get(), 1);
        let after = nptsn_obs::telemetry().snapshot();
        assert!(after.recovery_deadline_kills >= before.recovery_deadline_kills + 1);
    }

    #[test]
    fn jobs_inside_the_deadline_complete_normally() {
        let metrics = ServeMetrics::new();
        let queue = Arc::new(JobQueue::new(4));
        let id = queue.submit(burn(1)).unwrap();
        queue.close();
        queue.worker_loop(&metrics, Some(std::time::Duration::from_secs(30)));
        assert_eq!(queue.snapshot(id).unwrap().state, JobState::Done);
        assert_eq!(metrics.jobs_completed.get(), 1);
    }

    #[test]
    fn job_states_know_terminality() {
        assert!(!JobState::Submitted.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(JobState::Done.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
        assert_eq!(JobState::Running.label(), "running");
    }
}
