//! Smoke client for `scripts/verify.sh`: drives a running `nptsn serve`
//! instance end to end — submits a greedy plan job, polls it to
//! completion, fetches the plan file, checks `/healthz` and `/metrics`,
//! and requests shutdown. Exits non-zero (with a panic message) on any
//! deviation.
//!
//! ```text
//! serve_smoke <host:port>
//! ```

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use nptsn_serve::Client;

const DOC: &str = "\
[nodes]
es camera
es ecu
sw s0
sw s1
[links]
camera s0
camera s1
ecu s0
ecu s1
s0 s1
[flows]
camera ecu 500 256
";

fn json_u64(body: &str, key: &str) -> u64 {
    let marker = format!("\"{key}\":");
    let at = body.find(&marker).unwrap_or_else(|| panic!("no {key} in {body}"));
    body[at + marker.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric {key} in {body}"))
}

fn main() {
    let addr: SocketAddr = std::env::args()
        .nth(1)
        .expect("usage: serve_smoke <host:port>")
        .parse()
        .expect("argument is not a host:port address");
    let mut client = Client::new(addr);

    let health = client.get("/healthz").expect("GET /healthz");
    assert_eq!(health.status, 200, "{}", health.text());
    println!("serve_smoke: /healthz 200");

    let submitted = client
        .post("/jobs/plan?greedy=1&seed=0", DOC.as_bytes())
        .expect("POST /jobs/plan");
    assert_eq!(submitted.status, 202, "{}", submitted.text());
    let id = json_u64(&submitted.text(), "id");
    println!("serve_smoke: greedy plan job {id} accepted (202)");

    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = client.get(&format!("/jobs/{id}")).expect("poll");
        assert_eq!(status.status, 200, "{}", status.text());
        let body = status.text();
        if body.contains("\"state\":\"done\"") {
            break;
        }
        assert!(
            !body.contains("\"state\":\"failed\"") && !body.contains("\"state\":\"cancelled\""),
            "job ended badly: {body}"
        );
        assert!(Instant::now() < deadline, "job {id} never finished: {body}");
        std::thread::sleep(Duration::from_millis(20));
    }
    println!("serve_smoke: job {id} done");

    let plan = client.get(&format!("/jobs/{id}/plan")).expect("GET plan");
    assert_eq!(plan.status, 200, "{}", plan.text());
    assert!(plan.text().contains("[switches]"), "not a plan file: {}", plan.text());
    println!("serve_smoke: plan file fetched (200, {} bytes)", plan.body.len());

    let metrics = client.get("/metrics").expect("GET /metrics");
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    assert!(!text.is_empty(), "/metrics is empty");
    assert!(text.contains("nptsn_jobs_completed_total 1"), "{text}");
    assert!(text.contains("nptsn_http_requests_total"), "{text}");
    println!("serve_smoke: /metrics 200, {} bytes", metrics.body.len());

    let shutdown = client.post("/shutdown", &[]).expect("POST /shutdown");
    assert_eq!(shutdown.status, 200, "{}", shutdown.text());
    println!("serve_smoke: shutdown requested (200); all checks passed");
}
