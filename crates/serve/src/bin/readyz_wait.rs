//! Readiness poller for `scripts/verify.sh`: blocks until `GET /readyz`
//! on the given address answers `200`, then exits `0`. Replaces the old
//! fixed `sleep` between starting a service and driving it — the scripts
//! wait exactly as long as startup takes, and fail fast (exit `1` with a
//! message) if the service never becomes ready within the timeout.
//!
//! ```text
//! readyz_wait <host:port> [timeout-secs]
//! ```

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use nptsn_serve::Client;

fn main() {
    let mut args = std::env::args().skip(1);
    let addr: SocketAddr = args
        .next()
        .expect("usage: readyz_wait <host:port> [timeout-secs]")
        .parse()
        .expect("argument is not a host:port address");
    let timeout_secs: u64 = args.next().map_or(30, |raw| {
        raw.parse().expect("timeout is not a number of seconds")
    });
    let deadline = Instant::now() + Duration::from_secs(timeout_secs);
    let mut last = String::from("no response yet");
    while Instant::now() < deadline {
        // A fresh client per attempt: a refused connection (service still
        // binding) must not poison a kept-alive socket.
        let mut client = Client::new(addr);
        match client.get("/readyz") {
            Ok(response) if response.status == 200 => {
                println!("readyz_wait: {addr} ready");
                return;
            }
            Ok(response) => last = format!("{} {}", response.status, response.text()),
            Err(e) => last = e.to_string(),
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("readyz_wait: {addr} not ready after {timeout_secs}s (last: {last})");
    std::process::exit(1);
}
