//! Infer micro-batching smoke client for `scripts/verify.sh`:
//!
//! ```text
//! infer_smoke <host:port>
//! ```
//!
//! Against a server started with one worker and `--infer-batch-max > 1`,
//! it registers a checkpoint, piles identical concurrent infer jobs
//! behind a burn job so the worker coalesces them, then asserts that
//! (a) every job reached the same terminal outcome — batching never
//! changes a result — and (b) the server really fused at least one batch
//! (`nptsn_infer_batched_forwards_total >= 1` on `/metrics`). Exits
//! non-zero (with a panic message) on any deviation, then requests
//! shutdown so the script can observe the drain.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use nptsn::{Planner, PlannerConfig};
use nptsn_format::parse_problem;
use nptsn_nn::{params_to_bytes, Module};
use nptsn_serve::Client;

const DOC: &str = "\
[nodes]
es camera
es ecu
sw s0
sw s1
[links]
camera s0
camera s1
ecu s0
ecu s1
s0 s1
[flows]
camera ecu 500 256
";

fn json_u64(body: &str, key: &str) -> u64 {
    let marker = format!("\"{key}\":");
    let at = body.find(&marker).unwrap_or_else(|| panic!("no {key} in {body}"));
    body[at + marker.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric {key} in {body}"))
}

fn poll_terminal(client: &mut Client, id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let body = client.get(&format!("/jobs/{id}")).expect("poll").text();
        if ["done", "failed", "cancelled"]
            .iter()
            .any(|s| body.contains(&format!("\"state\":\"{s}\"")))
        {
            return body;
        }
        assert!(Instant::now() < deadline, "job {id} never finished: {body}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn main() {
    let addr: SocketAddr = std::env::args()
        .nth(1)
        .expect("usage: infer_smoke <host:port>")
        .parse()
        .expect("argument is not a host:port address");
    let mut client = Client::new(addr);

    // A structurally valid (untrained) checkpoint for the fixture problem.
    let parsed = parse_problem(DOC).expect("fixture problem parses");
    let planner = Planner::new(parsed.problem.clone(), PlannerConfig::quick());
    let bytes = params_to_bytes(&planner.build_policy().parameters());
    let put = client.put("/checkpoints/smoke", &bytes).expect("PUT checkpoint");
    assert_eq!(put.status, 200, "{}", put.text());
    println!("infer_smoke: checkpoint 'smoke' registered");

    // Occupy the single worker so the infer jobs pile up and coalesce.
    let burn = client.post("/jobs/burn?millis=1000", &[]).expect("POST burn");
    assert_eq!(burn.status, 202, "{}", burn.text());
    let burn_id = json_u64(&burn.text(), "id");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let body = client.get(&format!("/jobs/{burn_id}")).expect("poll burn").text();
        if body.contains("\"state\":\"running\"") {
            break;
        }
        assert!(Instant::now() < deadline, "burn job never started: {body}");
        std::thread::sleep(Duration::from_millis(5));
    }

    let ids: Vec<u64> = (0..4)
        .map(|_| {
            let r = client
                .post("/jobs/infer?checkpoint=smoke&attempts=2&seed=7", DOC.as_bytes())
                .expect("POST infer");
            assert_eq!(r.status, 202, "{}", r.text());
            json_u64(&r.text(), "id")
        })
        .collect();
    println!("infer_smoke: {} identical infer jobs queued behind the burn", ids.len());

    // Identical submissions must produce identical terminal outcomes.
    let bodies: Vec<String> = ids.iter().map(|&id| poll_terminal(&mut client, id)).collect();
    let canon = |body: &str, id: u64| body.replace(&format!("\"id\":{id}"), "");
    let first = canon(&bodies[0], ids[0]);
    for (&id, body) in ids.iter().zip(&bodies).skip(1) {
        assert_eq!(canon(body, id), first, "job {id} diverged from its identical twin");
    }
    println!("infer_smoke: all {} outcomes identical", ids.len());

    // The worker really fused a batch.
    let metrics = client.get("/metrics").expect("GET /metrics").text();
    let batched: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("nptsn_infer_batched_forwards_total "))
        .and_then(|v| v.parse().ok())
        .expect("batched-forwards counter present");
    assert!(batched >= 1, "no batched forward recorded:\n{metrics}");
    let batch_jobs: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("nptsn_infer_batch_jobs_total "))
        .and_then(|v| v.parse().ok())
        .expect("batch-jobs counter present");
    println!(
        "infer_smoke: {batched} fused batch(es) served {batch_jobs} of {} jobs",
        ids.len()
    );

    let shutdown = client.post("/shutdown", &[]).expect("POST /shutdown");
    assert_eq!(shutdown.status, 200, "{}", shutdown.text());
    println!("infer_smoke: shutdown requested (200); all checks passed");
}
