//! Durability smoke client for `scripts/verify.sh`: proves a `--data-dir`
//! server survives `kill -9`. Two phases around a kill the *script*
//! performs:
//!
//! ```text
//! store_smoke seed  <host:port> <state-dir>   # before the kill
//! store_smoke check <host:port> <state-dir>   # against the restarted server
//! ```
//!
//! `seed` registers a checkpoint, runs a verify job to completion and
//! saves its result bytes, then loads the queue with burn jobs (one
//! running, several queued) and exits — leaving the server mid-work for
//! `kill -9`. `check` asserts, against a fresh server on the same data
//! directory, that the finished result came back byte-identical, the
//! checkpoint registry survived, and every interrupted burn job was
//! re-enqueued and driven to a terminal state. Exits non-zero (with a
//! panic message) on any deviation.

use std::net::SocketAddr;
use std::path::Path;
use std::time::{Duration, Instant};

use nptsn::{Planner, PlannerConfig};
use nptsn_format::parse_problem;
use nptsn_nn::{params_to_bytes, Module};
use nptsn_serve::Client;

const DOC: &str = "\
[nodes]
es camera
es ecu
sw s0
sw s1
[links]
camera s0
camera s1
ecu s0
ecu s1
s0 s1
[flows]
camera ecu 500 256
";

const PLAN: &str = "\
[switches]
s0 A
[plan-links]
camera s0
ecu s0
";

fn json_u64(body: &str, key: &str) -> u64 {
    let marker = format!("\"{key}\":");
    let at = body.find(&marker).unwrap_or_else(|| panic!("no {key} in {body}"));
    body[at + marker.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric {key} in {body}"))
}

fn poll_terminal(client: &mut Client, id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let body = client.get(&format!("/jobs/{id}")).expect("poll").text();
        if ["done", "failed", "cancelled"]
            .iter()
            .any(|s| body.contains(&format!("\"state\":\"{s}\"")))
        {
            return body;
        }
        assert!(Instant::now() < deadline, "job {id} never finished: {body}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn checkpoint_bytes() -> Vec<u8> {
    let parsed = parse_problem(DOC).expect("fixture problem parses");
    let planner = Planner::new(parsed.problem.clone(), PlannerConfig::quick());
    params_to_bytes(&planner.build_policy().parameters())
}

fn seed(mut client: Client, state: &Path) {
    let put = client.put("/checkpoints/smoke", &checkpoint_bytes()).expect("PUT checkpoint");
    assert_eq!(put.status, 200, "{}", put.text());
    println!("store_smoke: checkpoint 'smoke' registered (version {})", json_u64(&put.text(), "version"));

    let body = format!("{DOC}{PLAN}");
    let submit = client.post("/jobs/verify", body.as_bytes()).expect("POST verify");
    assert_eq!(submit.status, 202, "{}", submit.text());
    let verify_id = json_u64(&submit.text(), "id");
    let status = poll_terminal(&mut client, verify_id);
    assert!(status.contains("\"state\":\"done\""), "{status}");
    let result = client.get(&format!("/jobs/{verify_id}/result")).expect("GET result");
    assert_eq!(result.status, 200);
    std::fs::write(state.join("verify.id"), verify_id.to_string()).expect("save id");
    std::fs::write(state.join("verify.result"), &result.body).expect("save result");
    println!("store_smoke: verify job {verify_id} done ({} result bytes saved)", result.body.len());

    // Load the queue so the kill lands mid-work: one long burn runs while
    // the rest wait. None of these will finish before the kill.
    let mut burn_ids = Vec::new();
    for millis in [5_000, 1, 1, 1] {
        let burn = client.post(&format!("/jobs/burn?millis={millis}"), &[]).expect("POST burn");
        assert_eq!(burn.status, 202, "{}", burn.text());
        burn_ids.push(json_u64(&burn.text(), "id").to_string());
    }
    std::fs::write(state.join("burn.ids"), burn_ids.join("\n")).expect("save burn ids");
    println!("store_smoke: {} burn jobs in flight — ready for kill -9", burn_ids.len());
}

fn check(mut client: Client, state: &Path) {
    let verify_id: u64 = std::fs::read_to_string(state.join("verify.id"))
        .expect("saved id")
        .trim()
        .parse()
        .expect("saved id parses");
    let saved = std::fs::read(state.join("verify.result")).expect("saved result");

    let status = client.get(&format!("/jobs/{verify_id}")).expect("GET recovered job");
    assert_eq!(status.status, 200, "{}", status.text());
    assert!(status.text().contains("\"state\":\"done\""), "{}", status.text());
    let result = client.get(&format!("/jobs/{verify_id}/result")).expect("GET recovered result");
    assert_eq!(result.status, 200);
    assert_eq!(result.body, saved, "recovered result is not byte-identical");
    println!("store_smoke: verify job {verify_id} recovered, result byte-identical");

    let ckpt = client.get("/checkpoints/smoke").expect("GET checkpoint");
    assert_eq!(ckpt.status, 200);
    assert_eq!(ckpt.body, checkpoint_bytes(), "checkpoint bytes changed across restart");
    println!("store_smoke: checkpoint registry survived the restart");

    for line in std::fs::read_to_string(state.join("burn.ids")).expect("saved burn ids").lines() {
        let id: u64 = line.trim().parse().expect("burn id parses");
        let body = poll_terminal(&mut client, id);
        assert!(
            body.contains("\"state\":\"done\"") || body.contains("\"state\":\"failed\""),
            "re-enqueued job {id} ended badly: {body}"
        );
    }
    println!("store_smoke: every interrupted burn job was re-enqueued and finished");

    let shutdown = client.post("/shutdown", &[]).expect("POST /shutdown");
    assert_eq!(shutdown.status, 200, "{}", shutdown.text());
    println!("store_smoke: shutdown requested (200); all checks passed");
}

fn main() {
    let mut argv = std::env::args().skip(1);
    let usage = "usage: store_smoke <seed|check> <host:port> <state-dir>";
    let mode = argv.next().expect(usage);
    let addr: SocketAddr =
        argv.next().expect(usage).parse().expect("argument is not a host:port address");
    let state = std::path::PathBuf::from(argv.next().expect(usage));
    let client = Client::new(addr);
    match mode.as_str() {
        "seed" => seed(client, &state),
        "check" => check(client, &state),
        other => panic!("unknown mode {other:?} — {usage}"),
    }
}
