//! nptsn-serve: a std-only HTTP planning and inference service for NPTSN.
//!
//! The service wraps the planner ([`nptsn::Planner`]), the greedy ablation,
//! the failure analyzer and checkpoint-backed inference behind a small
//! HTTP/1.1 API, with:
//!
//! * a **bounded job queue** and a **worker pool** — a full queue answers
//!   `503` + `Retry-After` (backpressure), and shutdown drains every
//!   accepted job before the process stops;
//! * **live progress**: plan jobs stream per-epoch [`nptsn::EpochStats`]
//!   through `GET /jobs/<id>`, and `DELETE` cancels a run cleanly at the
//!   next epoch boundary;
//! * the workspace **metrics registry** ([`metrics::Registry`], from
//!   `nptsn-obs`) exported in the Prometheus text format at `/metrics`,
//!   merged with the process-wide planner/analyzer telemetry.
//!
//! Everything is built on `std` alone — `std::net::TcpListener`, threads,
//! atomics — in keeping with the workspace's zero-dependency policy. The
//! HTTP layer ([`http`]) is a deliberate subset: `Content-Length` bodies,
//! keep-alive, hard limits on lines/headers/body size, nothing else.
//!
//! # Example
//!
//! ```no_run
//! use nptsn_serve::{Server, ServeConfig};
//!
//! let server = Server::bind(ServeConfig::default()).expect("bind");
//! println!("listening on {}", server.local_addr());
//! server.wait(); // until POST /shutdown
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod jobs;
pub mod persist;
pub mod registry;
pub mod server;

/// The Prometheus-text metrics registry. The implementation moved to
/// `nptsn-obs` so every crate shares one registry type; this re-export
/// keeps `nptsn_serve::metrics::...` paths and series names working.
pub use nptsn_obs::metrics;

pub use client::{BackoffConfig, Client, ClientResponse};
pub use jobs::{
    IngestError, IngestOutcome, JobId, JobQueue, JobSnapshot, JobState, RecoveryReport,
    RetentionConfig,
};
pub use registry::CheckpointRegistry;
pub use server::{ServeConfig, ServeMetrics, Server};
