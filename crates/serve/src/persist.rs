//! Durable job records: what the queue writes through the store so a
//! restarted server can rebuild itself.
//!
//! A [`JobSpec`] is the *submission* in replayable form — the raw request
//! text plus its parameters, not the parsed structures (a parsed problem
//! does not retain its source, and only the source is stable across
//! versions). Recovery re-validates a spec through the exact same path as
//! an HTTP submission ([`JobSpec::validate`]), so a record that parsed
//! yesterday parses identically today or fails loudly into a `failed` job.
//!
//! A [`JobRecord`] is one job's full persisted state: lifecycle state,
//! its spec, and — once terminal — the outcome payload or error, so
//! recovered results are byte-identical to what the pre-crash server
//! would have served.
//!
//! The encoding is a versioned, length-prefixed binary format (the store
//! already CRCs every record, so no checksum here).

use crate::jobs::{
    CheckpointSource, InferRequest, JobId, JobKind, JobOutcome, JobState, PlanRequest,
    VerifyRequest,
};
use nptsn_format::{parse_plan, parse_problem};

/// Store key prefix for job records (ids zero-padded so the store's
/// sorted prefix scan yields submission order).
pub const JOB_PREFIX: &str = "job/";
/// Store key holding the highest id ever issued, so a restart after
/// `DELETE /jobs/<id>` never reuses an id.
pub const NEXT_ID_KEY: &str = "meta/next_id";

/// The store key for one job's record.
pub fn job_key(id: JobId) -> String {
    format!("{JOB_PREFIX}{id:020}")
}

/// The job id encoded in a store key, if it is a job key.
pub fn job_id_from_key(key: &str) -> Option<JobId> {
    key.strip_prefix(JOB_PREFIX)?.parse().ok()
}

/// Store key prefix for passive-replica markers. A marker under
/// `replica/<id>` means the job record under `job/<id>` was written
/// through by a router as a replication-factor-2 copy and is **not** this
/// shard's to execute: recovery holds it passive instead of re-enqueueing
/// it, until a promotion (the primary died) activates it. The marker's
/// value is the primary shard's name.
pub const REPLICA_PREFIX: &str = "replica/";

/// The store key for one job's passive-replica marker.
pub fn replica_key(id: JobId) -> String {
    format!("{REPLICA_PREFIX}{id:020}")
}

/// The job id encoded in a store key, if it is a replica marker key.
pub fn replica_id_from_key(key: &str) -> Option<JobId> {
    key.strip_prefix(REPLICA_PREFIX)?.parse().ok()
}

/// Store key prefix for per-job trace timelines (span summaries captured
/// from the flight recorder when a job reaches a terminal state).
pub const TRACE_PREFIX: &str = "trace/";

/// The store key for one job's trace timeline.
pub fn trace_key(id: JobId) -> String {
    format!("{TRACE_PREFIX}{id:020}")
}

/// The job id encoded in a store key, if it is a trace key.
pub fn trace_id_from_key(key: &str) -> Option<JobId> {
    key.strip_prefix(TRACE_PREFIX)?.parse().ok()
}

const RECORD_VERSION: u8 = 1;
const TRACE_RECORD_VERSION: u8 = 1;

/// A submission in replayable form. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// A `POST /jobs/plan` submission.
    Plan {
        /// The raw problem document.
        problem: String,
        /// Training epochs.
        epochs: u64,
        /// Environment steps per epoch.
        steps: u64,
        /// Base RNG seed.
        seed: u64,
        /// Greedy ablation instead of RL.
        greedy: bool,
        /// Analyzer fan-out per rollout worker.
        analyzer_workers: u64,
    },
    /// A `POST /jobs/verify` submission (problem + plan in one body).
    Verify {
        /// The raw combined body.
        body: String,
        /// Analyzer worker threads.
        analyzer_workers: u64,
    },
    /// A `POST /jobs/infer` submission.
    Infer {
        /// The raw problem document.
        problem: String,
        /// Where the policy checkpoint comes from.
        checkpoint: CheckpointRef,
        /// Deployment episodes to attempt.
        attempts: u64,
        /// Base RNG seed.
        seed: u64,
    },
    /// A diagnostic burn job.
    Burn {
        /// Worker occupancy in milliseconds.
        millis: u64,
    },
}

/// Where an infer job's checkpoint bytes come from.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointRef {
    /// Uploaded inline with the submission.
    Inline(Vec<u8>),
    /// A name in the checkpoint registry, resolved when the job runs.
    Named(String),
}

/// Why a spec cannot become a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The submission is structurally malformed (HTTP 400).
    Malformed(String),
    /// The submission parsed but its content is invalid (HTTP 422).
    Invalid(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Malformed(m) | SpecError::Invalid(m) => f.write_str(m),
        }
    }
}

/// Splits a verify body into (problem, plan) at the first `[switches]`
/// line — a section name the problem format does not use.
pub fn split_verify_body(text: &str) -> Option<(&str, &str)> {
    let split = text
        .lines()
        .scan(0usize, |offset, line| {
            let at = *offset;
            *offset = at + line.len() + 1;
            Some((at, line))
        })
        .find(|(_, line)| line.trim() == "[switches]")
        .map(|(at, _)| at)?;
    Some(text.split_at(split))
}

impl JobSpec {
    /// Re-validates the spec into an executable [`JobKind`] — the single
    /// validation path shared by HTTP submission and crash recovery.
    pub fn validate(&self) -> Result<JobKind, SpecError> {
        match self {
            JobSpec::Plan { problem, epochs, steps, seed, greedy, analyzer_workers } => {
                let parsed = parse_problem(problem)
                    .map_err(|e| SpecError::Invalid(format!("invalid problem: {e}")))?;
                Ok(JobKind::Plan(PlanRequest {
                    parsed,
                    epochs: (*epochs).max(1) as usize,
                    steps: (*steps).max(1) as usize,
                    seed: *seed,
                    greedy: *greedy,
                    analyzer_workers: *analyzer_workers as usize,
                }))
            }
            JobSpec::Verify { body, analyzer_workers } => {
                let Some((problem_text, plan_text)) = split_verify_body(body) else {
                    return Err(SpecError::Malformed(
                        "verify body has no [switches] section (problem + plan expected)"
                            .to_string(),
                    ));
                };
                let parsed = parse_problem(problem_text)
                    .map_err(|e| SpecError::Invalid(format!("invalid problem: {e}")))?;
                let topology = parse_plan(&parsed, plan_text)
                    .map_err(|e| SpecError::Invalid(format!("invalid plan: {e}")))?;
                Ok(JobKind::Verify(VerifyRequest {
                    parsed,
                    topology,
                    analyzer_workers: *analyzer_workers as usize,
                }))
            }
            JobSpec::Infer { problem, checkpoint, attempts, seed } => {
                let parsed = parse_problem(problem)
                    .map_err(|e| SpecError::Invalid(format!("invalid problem: {e}")))?;
                let checkpoint = match checkpoint {
                    CheckpointRef::Inline(bytes) => {
                        // Structural validation up front: magic, version,
                        // framing, CRC-32 — malformed uploads never queue.
                        nptsn_nn::checkpoint_shapes(bytes).map_err(|e| {
                            SpecError::Invalid(format!("invalid checkpoint: {e}"))
                        })?;
                        CheckpointSource::Inline(bytes.clone())
                    }
                    CheckpointRef::Named(name) => CheckpointSource::Named(name.clone()),
                };
                Ok(JobKind::Infer(InferRequest {
                    parsed,
                    checkpoint,
                    attempts: (*attempts).max(1) as usize,
                    seed: *seed,
                }))
            }
            JobSpec::Burn { millis } => Ok(JobKind::Burn { millis: *millis }),
        }
    }

    /// The kind label this spec produces (`plan`, `verify`, …).
    pub fn kind_name(&self) -> &'static str {
        match self {
            JobSpec::Plan { .. } => "plan",
            JobSpec::Verify { .. } => "verify",
            JobSpec::Infer { .. } => "infer",
            JobSpec::Burn { .. } => "burn",
        }
    }
}

/// One job's full persisted state.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Lifecycle state at the last persisted transition.
    pub state: JobState,
    /// The replayable submission (absent only for legacy direct-`JobKind`
    /// submissions, which cannot be re-executed after a crash).
    pub spec: Option<JobSpec>,
    /// The result payload, once `done` (and for cancelled-with-result).
    pub outcome: Option<JobOutcome>,
    /// The failure message, once `failed`.
    pub error: Option<String>,
}

// ---------------------------------------------------------------------
// Binary codec
// ---------------------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }
    fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
    fn opt(&mut self, present: bool) {
        self.u8(present as u8);
    }
}

struct Dec<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.bytes.len() - self.at < n {
            return Err(format!("record truncated at byte {}", self.at));
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    fn bytes(&mut self) -> Result<Vec<u8>, String> {
        let len = self.u64()? as usize;
        Ok(self.take(len)?.to_vec())
    }
    fn str(&mut self) -> Result<String, String> {
        String::from_utf8(self.bytes()?).map_err(|_| "record string is not UTF-8".to_string())
    }
    fn bool(&mut self) -> Result<bool, String> {
        Ok(self.u8()? != 0)
    }
    fn done(&self) -> Result<(), String> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(format!("{} trailing bytes after record", self.bytes.len() - self.at))
        }
    }
}

fn state_tag(state: JobState) -> u8 {
    match state {
        JobState::Submitted => 0,
        JobState::Running => 1,
        JobState::Done => 2,
        JobState::Failed => 3,
        JobState::Cancelled => 4,
    }
}

fn state_from_tag(tag: u8) -> Result<JobState, String> {
    Ok(match tag {
        0 => JobState::Submitted,
        1 => JobState::Running,
        2 => JobState::Done,
        3 => JobState::Failed,
        4 => JobState::Cancelled,
        other => return Err(format!("unknown job state tag {other}")),
    })
}

fn encode_spec(enc: &mut Enc, spec: &JobSpec) {
    match spec {
        JobSpec::Plan { problem, epochs, steps, seed, greedy, analyzer_workers } => {
            enc.u8(1);
            enc.str(problem);
            enc.u64(*epochs);
            enc.u64(*steps);
            enc.u64(*seed);
            enc.u8(*greedy as u8);
            enc.u64(*analyzer_workers);
        }
        JobSpec::Verify { body, analyzer_workers } => {
            enc.u8(2);
            enc.str(body);
            enc.u64(*analyzer_workers);
        }
        JobSpec::Infer { problem, checkpoint, attempts, seed } => {
            enc.u8(3);
            enc.str(problem);
            match checkpoint {
                CheckpointRef::Inline(bytes) => {
                    enc.u8(0);
                    enc.bytes(bytes);
                }
                CheckpointRef::Named(name) => {
                    enc.u8(1);
                    enc.str(name);
                }
            }
            enc.u64(*attempts);
            enc.u64(*seed);
        }
        JobSpec::Burn { millis } => {
            enc.u8(4);
            enc.u64(*millis);
        }
    }
}

fn decode_spec(dec: &mut Dec<'_>) -> Result<JobSpec, String> {
    Ok(match dec.u8()? {
        1 => JobSpec::Plan {
            problem: dec.str()?,
            epochs: dec.u64()?,
            steps: dec.u64()?,
            seed: dec.u64()?,
            greedy: dec.bool()?,
            analyzer_workers: dec.u64()?,
        },
        2 => JobSpec::Verify { body: dec.str()?, analyzer_workers: dec.u64()? },
        3 => JobSpec::Infer {
            problem: dec.str()?,
            checkpoint: match dec.u8()? {
                0 => CheckpointRef::Inline(dec.bytes()?),
                1 => CheckpointRef::Named(dec.str()?),
                other => return Err(format!("unknown checkpoint ref tag {other}")),
            },
            attempts: dec.u64()?,
            seed: dec.u64()?,
        },
        4 => JobSpec::Burn { millis: dec.u64()? },
        other => return Err(format!("unknown job spec tag {other}")),
    })
}

fn encode_outcome(enc: &mut Enc, outcome: &JobOutcome) {
    match outcome {
        JobOutcome::Plan { planfile, cost, summary, checkpoint } => {
            enc.u8(1);
            enc.str(planfile);
            enc.f64(*cost);
            enc.str(summary);
            enc.opt(checkpoint.is_some());
            if let Some(bytes) = checkpoint {
                enc.bytes(bytes);
            }
        }
        JobOutcome::Verify { json, reliable } => {
            enc.u8(2);
            enc.str(json);
            enc.u8(*reliable as u8);
        }
        JobOutcome::Burn => enc.u8(3),
    }
}

fn decode_outcome(dec: &mut Dec<'_>) -> Result<JobOutcome, String> {
    Ok(match dec.u8()? {
        1 => JobOutcome::Plan {
            planfile: dec.str()?,
            cost: dec.f64()?,
            summary: dec.str()?,
            checkpoint: if dec.bool()? { Some(dec.bytes()?) } else { None },
        },
        2 => JobOutcome::Verify { json: dec.str()?, reliable: dec.bool()? },
        3 => JobOutcome::Burn,
        other => return Err(format!("unknown outcome tag {other}")),
    })
}

/// Encodes one job record (by parts, so callers holding a live entry do
/// not clone payloads just to persist them).
pub fn encode_record(
    state: JobState,
    spec: Option<&JobSpec>,
    outcome: Option<&JobOutcome>,
    error: Option<&str>,
) -> Vec<u8> {
    let mut enc = Enc { buf: Vec::with_capacity(64) };
    enc.u8(RECORD_VERSION);
    enc.u8(state_tag(state));
    enc.opt(spec.is_some());
    if let Some(spec) = spec {
        encode_spec(&mut enc, spec);
    }
    enc.opt(outcome.is_some());
    if let Some(outcome) = outcome {
        encode_outcome(&mut enc, outcome);
    }
    enc.opt(error.is_some());
    if let Some(error) = error {
        enc.str(error);
    }
    enc.buf
}

/// Decodes one job record.
pub fn decode_record(bytes: &[u8]) -> Result<JobRecord, String> {
    let mut dec = Dec { bytes, at: 0 };
    let version = dec.u8()?;
    if version != RECORD_VERSION {
        return Err(format!("unsupported job record version {version}"));
    }
    let state = state_from_tag(dec.u8()?)?;
    let spec = if dec.bool()? { Some(decode_spec(&mut dec)?) } else { None };
    let outcome = if dec.bool()? { Some(decode_outcome(&mut dec)?) } else { None };
    let error = if dec.bool()? { Some(dec.str()?) } else { None };
    dec.done()?;
    Ok(JobRecord { state, spec, outcome, error })
}

/// One span summary in a persisted job timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// The span name (owned: the record outlives the process that had the
    /// static string).
    pub name: String,
    /// Recording thread on the shard.
    pub tid: u64,
    /// Start offset from the shard's trace epoch.
    pub start_ns: u64,
    /// Wall-clock duration.
    pub dur_ns: u64,
    /// Self time.
    pub self_ns: u64,
}

/// One job's persisted trace timeline: the spans the shard recorded under
/// the job's trace id, written alongside the job record at terminal
/// transitions and replayed to a successor shard on failover.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// The 128-bit trace id shared with the router's spans.
    pub trace_id: u128,
    /// The shard that recorded the spans.
    pub shard: String,
    /// Span summaries, oldest first.
    pub spans: Vec<TraceSpan>,
}

/// Encodes one trace record.
pub fn encode_trace(record: &TraceRecord) -> Vec<u8> {
    let mut enc = Enc { buf: Vec::with_capacity(64 + record.spans.len() * 48) };
    enc.u8(TRACE_RECORD_VERSION);
    enc.u64(record.trace_id as u64);
    enc.u64((record.trace_id >> 64) as u64);
    enc.str(&record.shard);
    enc.u64(record.spans.len() as u64);
    for span in &record.spans {
        enc.str(&span.name);
        enc.u64(span.tid);
        enc.u64(span.start_ns);
        enc.u64(span.dur_ns);
        enc.u64(span.self_ns);
    }
    enc.buf
}

/// Decodes one trace record.
pub fn decode_trace(bytes: &[u8]) -> Result<TraceRecord, String> {
    let mut dec = Dec { bytes, at: 0 };
    let version = dec.u8()?;
    if version != TRACE_RECORD_VERSION {
        return Err(format!("unsupported trace record version {version}"));
    }
    let lo = dec.u64()?;
    let hi = dec.u64()?;
    let shard = dec.str()?;
    let count = dec.u64()? as usize;
    let mut spans = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        spans.push(TraceSpan {
            name: dec.str()?,
            tid: dec.u64()?,
            start_ns: dec.u64()?,
            dur_ns: dec.u64()?,
            self_ns: dec.u64()?,
        });
    }
    dec.done()?;
    Ok(TraceRecord { trace_id: ((hi as u128) << 64) | (lo as u128), shard, spans })
}

/// Encodes the next-id meta record.
pub fn encode_next_id(id: JobId) -> Vec<u8> {
    id.to_le_bytes().to_vec()
}

/// Decodes the next-id meta record.
pub fn decode_next_id(bytes: &[u8]) -> Option<JobId> {
    Some(JobId::from_le_bytes(bytes.try_into().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(record: &JobRecord) -> JobRecord {
        let bytes = encode_record(
            record.state,
            record.spec.as_ref(),
            record.outcome.as_ref(),
            record.error.as_deref(),
        );
        decode_record(&bytes).unwrap()
    }

    #[test]
    fn records_roundtrip_every_shape() {
        let records = [
            JobRecord {
                state: JobState::Submitted,
                spec: Some(JobSpec::Plan {
                    problem: "[nodes]\nes a\n".to_string(),
                    epochs: 3,
                    steps: 64,
                    seed: 7,
                    greedy: true,
                    analyzer_workers: 2,
                }),
                outcome: None,
                error: None,
            },
            JobRecord {
                state: JobState::Running,
                spec: Some(JobSpec::Verify { body: "p\n[switches]\ns".to_string(), analyzer_workers: 1 }),
                outcome: None,
                error: None,
            },
            JobRecord {
                state: JobState::Done,
                spec: Some(JobSpec::Infer {
                    problem: "[nodes]".to_string(),
                    checkpoint: CheckpointRef::Inline(vec![1, 2, 3]),
                    attempts: 8,
                    seed: 0,
                }),
                outcome: Some(JobOutcome::Plan {
                    planfile: "[switches]\n".to_string(),
                    cost: 12.5,
                    summary: "ok".to_string(),
                    checkpoint: Some(vec![9, 9]),
                }),
                error: None,
            },
            JobRecord {
                state: JobState::Failed,
                spec: Some(JobSpec::Infer {
                    problem: "[nodes]".to_string(),
                    checkpoint: CheckpointRef::Named("prod".to_string()),
                    attempts: 1,
                    seed: 3,
                }),
                outcome: None,
                error: Some("no plan".to_string()),
            },
            JobRecord {
                state: JobState::Cancelled,
                spec: Some(JobSpec::Burn { millis: 5 }),
                outcome: Some(JobOutcome::Burn),
                error: None,
            },
            JobRecord {
                state: JobState::Done,
                spec: None,
                outcome: Some(JobOutcome::Verify { json: "{}".to_string(), reliable: false }),
                error: None,
            },
        ];
        for record in &records {
            assert_eq!(&roundtrip(record), record, "{record:?}");
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_record(&[]).is_err());
        assert!(decode_record(&[99]).is_err());
        assert!(decode_record(&[1, 0, 1, 77]).is_err()); // bad spec tag
        // Trailing bytes after a valid record are an error, not ignored.
        let mut bytes = encode_record(JobState::Submitted, None, None, None);
        bytes.push(0);
        assert!(decode_record(&bytes).unwrap_err().contains("trailing"));
    }

    #[test]
    fn job_keys_sort_in_id_order() {
        assert_eq!(job_key(7), "job/00000000000000000007");
        assert!(job_key(9) < job_key(10));
        assert_eq!(job_id_from_key(&job_key(42)), Some(42));
        assert_eq!(job_id_from_key("ckpt/x"), None);
        assert_eq!(decode_next_id(&encode_next_id(900)), Some(900));
    }

    #[test]
    fn replica_marker_keys_parse() {
        assert_eq!(replica_key(7), "replica/00000000000000000007");
        assert_eq!(replica_id_from_key(&replica_key(42)), Some(42));
        assert_eq!(replica_id_from_key(&job_key(42)), None);
        assert_eq!(job_id_from_key(&replica_key(42)), None);
    }

    #[test]
    fn trace_records_roundtrip_and_keys_parse() {
        assert_eq!(trace_key(7), "trace/00000000000000000007");
        assert_eq!(trace_id_from_key(&trace_key(42)), Some(42));
        assert_eq!(trace_id_from_key(&job_key(42)), None);
        assert_eq!(job_id_from_key(&trace_key(42)), None);
        let record = TraceRecord {
            trace_id: 0xdead_beef_0000_0001_u128 << 32 | 7,
            shard: "alpha".to_string(),
            spans: vec![
                TraceSpan {
                    name: "job.run".to_string(),
                    tid: 3,
                    start_ns: 1_000,
                    dur_ns: 9_000,
                    self_ns: 2_000,
                },
                TraceSpan {
                    name: "gcn.forward".to_string(),
                    tid: 3,
                    start_ns: 2_000,
                    dur_ns: 7_000,
                    self_ns: 7_000,
                },
            ],
        };
        let decoded = decode_trace(&encode_trace(&record)).unwrap();
        assert_eq!(decoded, record);
        let empty = TraceRecord { trace_id: 1, shard: String::new(), spans: Vec::new() };
        assert_eq!(decode_trace(&encode_trace(&empty)).unwrap(), empty);
        assert!(decode_trace(&[]).is_err());
        assert!(decode_trace(&[9, 0, 0]).is_err());
    }

    #[test]
    fn validate_is_the_shared_gate() {
        let bad = JobSpec::Plan {
            problem: "[nonsense".to_string(),
            epochs: 1,
            steps: 1,
            seed: 0,
            greedy: true,
            analyzer_workers: 1,
        };
        assert!(matches!(bad.validate(), Err(SpecError::Invalid(_))));
        let lone = JobSpec::Verify { body: "no plan here".to_string(), analyzer_workers: 1 };
        assert!(matches!(lone.validate(), Err(SpecError::Malformed(_))));
        let burn = JobSpec::Burn { millis: 3 };
        assert!(matches!(burn.validate(), Ok(JobKind::Burn { millis: 3 })));
        assert_eq!(burn.kind_name(), "burn");
    }
}
