//! A minimal blocking HTTP client for exercising the service — used by the
//! end-to-end tests, the smoke test in `scripts/verify.sh` and the serving
//! benchmark. One [`Client`] holds one keep-alive connection.
//!
//! With [`Client::with_backoff`] the client also self-heals: transport
//! errors and `503` backpressure answers are retried with capped, jittered
//! exponential backoff, honoring the server's `Retry-After` hint. The
//! jitter stream is seeded, so a retry schedule replays exactly.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use nptsn_rand::rngs::StdRng;
use nptsn_rand::{Rng, SeedableRng};

/// Retry policy for [`Client::with_backoff`].
#[derive(Debug, Clone)]
pub struct BackoffConfig {
    /// Retries after the first attempt (`0` disables retrying).
    pub max_retries: u32,
    /// Base delay for the exponential schedule, in milliseconds.
    pub base_ms: u64,
    /// Hard cap on any single delay (including `Retry-After` hints).
    pub cap_ms: u64,
    /// Seed for the jitter stream — same seed, same schedule.
    pub seed: u64,
    /// Hard cap on the **total elapsed** retry time of one request, in
    /// milliseconds (`0` disables). An attempt-count cap alone is not a
    /// latency bound — `Retry-After` hints and the exponential tail can
    /// stretch five retries to arbitrary wall-clock time. With a deadline
    /// the client never starts a sleep that the deadline could not cover,
    /// returning the last outcome instead. The router fan-out path relies
    /// on this so one slow shard cannot pin a routed request forever.
    pub deadline_ms: u64,
}

impl Default for BackoffConfig {
    fn default() -> BackoffConfig {
        BackoffConfig { max_retries: 5, base_ms: 50, cap_ms: 2_000, seed: 0, deadline_ms: 0 }
    }
}

impl BackoffConfig {
    /// The delay before retry number `attempt` (0-based): the server's
    /// `Retry-After` hint when present, otherwise `base * 2^attempt`,
    /// both capped at `cap_ms` — then halved and jittered so synchronized
    /// clients spread out instead of stampeding together.
    fn delay(&self, attempt: u32, retry_after_secs: Option<u64>, rng: &mut StdRng) -> Duration {
        let nominal = match retry_after_secs {
            Some(secs) => secs.saturating_mul(1_000),
            None => self.base_ms.saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX)),
        }
        .min(self.cap_ms);
        let jittered = nominal / 2 + rng.gen_range(0..nominal / 2 + 1);
        Duration::from_millis(jittered)
    }
}

/// A response as the client sees it.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// The status code.
    pub status: u16,
    /// Headers with lowercased names.
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The first header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A blocking keep-alive HTTP client for one server address.
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    connection: Option<BufReader<TcpStream>>,
    backoff: Option<(BackoffConfig, StdRng)>,
}

impl Client {
    /// A client for the given address; connects lazily.
    pub fn new(addr: SocketAddr) -> Client {
        Client { addr, connection: None, backoff: None }
    }

    /// Returns this client with retrying enabled: transport errors and
    /// `503` answers are retried up to `config.max_retries` times with
    /// capped jittered exponential backoff, honoring `Retry-After`.
    pub fn with_backoff(mut self, config: BackoffConfig) -> Client {
        let rng = StdRng::seed_from_u64(config.seed);
        self.backoff = Some((config, rng));
        self
    }

    /// Returns this client with retrying disabled, keeping the kept-alive
    /// connection. Lets a connection pool hand the same client to callers
    /// with different retry policies: each checkout re-applies its own.
    pub fn without_backoff(mut self) -> Client {
        self.backoff = None;
        self
    }

    /// A `GET` request.
    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request("GET", path, &[], &[])
    }

    /// A `POST` request with a body.
    pub fn post(&mut self, path: &str, body: &[u8]) -> io::Result<ClientResponse> {
        self.request("POST", path, &[], body)
    }

    /// A `POST` request with extra headers (e.g. `X-Problem-Length`).
    pub fn post_with_headers(
        &mut self,
        path: &str,
        headers: &[(&str, String)],
        body: &[u8],
    ) -> io::Result<ClientResponse> {
        self.request("POST", path, headers, body)
    }

    /// A `PUT` request with a body (checkpoint registration).
    pub fn put(&mut self, path: &str, body: &[u8]) -> io::Result<ClientResponse> {
        self.request("PUT", path, &[], body)
    }

    /// A `DELETE` request.
    pub fn delete(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request("DELETE", path, &[], &[])
    }

    /// A request with an arbitrary method — the generic entry point a
    /// proxy (the router's fan-out) uses to forward whatever it received.
    pub fn send(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, String)],
        body: &[u8],
    ) -> io::Result<ClientResponse> {
        self.request(method, path, headers, body)
    }

    fn connect(&mut self) -> io::Result<&mut BufReader<TcpStream>> {
        if self.connection.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_read_timeout(Some(Duration::from_secs(60)))?;
            stream.set_nodelay(true)?;
            self.connection = Some(BufReader::new(stream));
        }
        Ok(self.connection.as_mut().expect("connection just established"))
    }

    /// Sends one request, reconnecting once if the kept-alive connection
    /// went away since the last exchange. With a backoff policy, also
    /// retries transport errors and `503` backpressure answers — bounded
    /// by both the attempt count and, when configured, the total-elapsed
    /// deadline (a sleep the deadline cannot cover is never started; the
    /// last outcome is returned instead).
    fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, String)],
        body: &[u8],
    ) -> io::Result<ClientResponse> {
        let started = Instant::now();
        let mut attempt = 0u32;
        loop {
            let outcome = self.request_once(method, path, headers, body);
            let Some((config, _)) = &self.backoff else { return outcome };
            if attempt >= config.max_retries {
                return outcome;
            }
            let retry_after = match &outcome {
                // Backpressure: retry on the server's schedule.
                Ok(r) if r.status == 503 => {
                    Some(r.header("retry-after").and_then(|v| v.parse::<u64>().ok()))
                }
                Ok(_) => return outcome,
                // Transport failure: the connection died or timed out.
                Err(_) => Some(None),
            };
            let Some(retry_after) = retry_after else { return outcome };
            self.connection = None;
            let (config, rng) = self.backoff.as_mut().expect("backoff checked above");
            let delay = config.delay(attempt, retry_after, rng);
            if config.deadline_ms > 0
                && started.elapsed() + delay > Duration::from_millis(config.deadline_ms)
            {
                return outcome;
            }
            nptsn_obs::telemetry().recovery_client_retries.inc();
            std::thread::sleep(delay);
            attempt += 1;
        }
    }

    /// One attempt: sends the request, reconnecting once if the
    /// kept-alive connection went away since the last exchange.
    fn request_once(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, String)],
        body: &[u8],
    ) -> io::Result<ClientResponse> {
        match self.try_request(method, path, headers, body) {
            Ok(response) => Ok(response),
            Err(_) if self.connection.is_some() => {
                self.connection = None;
                self.try_request(method, path, headers, body)
            }
            Err(e) => Err(e),
        }
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, String)],
        body: &[u8],
    ) -> io::Result<ClientResponse> {
        let reader = self.connect()?;
        {
            let stream = reader.get_mut();
            let mut head = format!(
                "{method} {path} HTTP/1.1\r\nHost: nptsn\r\nContent-Length: {}\r\n",
                body.len()
            );
            for (name, value) in headers {
                head.push_str(&format!("{name}: {value}\r\n"));
            }
            head.push_str("\r\n");
            stream.write_all(head.as_bytes())?;
            stream.write_all(body)?;
            stream.flush()?;
        }

        let status_line = read_line(reader)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, format!("bad status line {status_line:?}"))
            })?;

        let mut headers_out = Vec::new();
        let mut content_length = 0usize;
        let mut close = false;
        loop {
            let line = read_line(reader)?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim().to_string();
                if name == "content-length" {
                    content_length = value.parse().map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length")
                    })?;
                }
                if name == "connection" && value.eq_ignore_ascii_case("close") {
                    close = true;
                }
                headers_out.push((name, value));
            }
        }

        let mut body_out = vec![0u8; content_length];
        reader.read_exact(&mut body_out)?;
        if close {
            self.connection = None;
        }
        Ok(ClientResponse { status, headers: headers_out, body: body_out })
    }
}

fn read_line(reader: &mut BufReader<TcpStream>) -> io::Result<String> {
    let mut line = String::new();
    let n = reader.read_line(&mut line)?;
    if n == 0 {
        return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed"));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_delays_grow_exponentially_and_cap() {
        let config = BackoffConfig { max_retries: 8, base_ms: 100, cap_ms: 1_000, seed: 1, ..BackoffConfig::default() };
        let mut rng = StdRng::seed_from_u64(1);
        let mut previous_nominal = 0;
        for attempt in 0..8 {
            let delay = config.delay(attempt, None, &mut rng).as_millis() as u64;
            let nominal = (100u64 << attempt).min(1_000);
            // Jitter keeps the delay in [nominal/2, nominal].
            assert!(delay >= nominal / 2 && delay <= nominal, "attempt {attempt}: {delay}");
            assert!(nominal >= previous_nominal);
            previous_nominal = nominal;
        }
    }

    #[test]
    fn retry_after_hint_overrides_the_schedule_but_not_the_cap() {
        let config = BackoffConfig { max_retries: 3, base_ms: 10, cap_ms: 500, seed: 7, ..BackoffConfig::default() };
        let mut rng = StdRng::seed_from_u64(7);
        // 2s hint capped to 500ms, then jittered into [250, 500].
        let delay = config.delay(0, Some(2), &mut rng).as_millis() as u64;
        assert!((250..=500).contains(&delay), "{delay}");
    }

    #[test]
    fn deadline_caps_total_elapsed_retry_time() {
        // A listener that accepts and immediately drops every connection:
        // each attempt dies in transport, so without a deadline this
        // schedule would sleep for seconds (100 retries x ~22ms).
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let acceptor = std::thread::spawn(move || {
            for stream in listener.incoming().take(64) {
                drop(stream);
            }
        });
        let mut client = Client::new(addr).with_backoff(BackoffConfig {
            max_retries: 100,
            base_ms: 30,
            cap_ms: 30,
            seed: 3,
            deadline_ms: 120,
        });
        let started = Instant::now();
        let outcome = client.get("/healthz");
        let elapsed = started.elapsed();
        assert!(outcome.is_err(), "every attempt hits a dropped connection");
        // The deadline (120ms) bit long before the attempt cap could: even
        // with generous scheduling slack this must end well under the
        // ~2.2s the full 100-retry schedule would take.
        assert!(elapsed < Duration::from_millis(1_000), "{elapsed:?}");
        drop(client);
        drop(acceptor); // detach: it exits after its take(64) accepts
    }

    #[test]
    fn the_seeded_schedule_truncates_at_the_deadline_deterministically() {
        let config = BackoffConfig {
            max_retries: 10,
            base_ms: 40,
            cap_ms: 400,
            seed: 5,
            deadline_ms: 300,
        };
        // Replay the request loop's arithmetic: a sleep that would push
        // the total past the deadline is never started.
        let simulate = |config: &BackoffConfig| -> (u64, u32) {
            let mut rng = StdRng::seed_from_u64(config.seed);
            let mut elapsed = 0u64;
            let mut slept = 0u32;
            for attempt in 0..config.max_retries {
                let delay = config.delay(attempt, None, &mut rng).as_millis() as u64;
                if elapsed + delay > config.deadline_ms {
                    break;
                }
                elapsed += delay;
                slept += 1;
            }
            (elapsed, slept)
        };
        let (elapsed, slept) = simulate(&config);
        assert!(elapsed <= config.deadline_ms);
        assert!(slept > 0, "the first delays fit inside the deadline");
        assert!(slept < config.max_retries, "the deadline bites before the attempt cap");
        // Same seed, same truncation point — the schedule is replayable.
        assert_eq!(simulate(&config), (elapsed, slept));
    }

    #[test]
    fn a_seed_pins_the_whole_retry_schedule() {
        let config = BackoffConfig::default();
        let run = |seed: u64| -> Vec<Duration> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..6).map(|i| config.delay(i, None, &mut rng)).collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should jitter differently");
    }
}
