//! A minimal blocking HTTP client for exercising the service — used by the
//! end-to-end tests, the smoke test in `scripts/verify.sh` and the serving
//! benchmark. One [`Client`] holds one keep-alive connection.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A response as the client sees it.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// The status code.
    pub status: u16,
    /// Headers with lowercased names.
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The first header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A blocking keep-alive HTTP client for one server address.
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    connection: Option<BufReader<TcpStream>>,
}

impl Client {
    /// A client for the given address; connects lazily.
    pub fn new(addr: SocketAddr) -> Client {
        Client { addr, connection: None }
    }

    /// A `GET` request.
    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request("GET", path, &[], &[])
    }

    /// A `POST` request with a body.
    pub fn post(&mut self, path: &str, body: &[u8]) -> io::Result<ClientResponse> {
        self.request("POST", path, &[], body)
    }

    /// A `POST` request with extra headers (e.g. `X-Problem-Length`).
    pub fn post_with_headers(
        &mut self,
        path: &str,
        headers: &[(&str, String)],
        body: &[u8],
    ) -> io::Result<ClientResponse> {
        self.request("POST", path, headers, body)
    }

    /// A `DELETE` request.
    pub fn delete(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request("DELETE", path, &[], &[])
    }

    fn connect(&mut self) -> io::Result<&mut BufReader<TcpStream>> {
        if self.connection.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_read_timeout(Some(Duration::from_secs(60)))?;
            stream.set_nodelay(true)?;
            self.connection = Some(BufReader::new(stream));
        }
        Ok(self.connection.as_mut().expect("connection just established"))
    }

    /// Sends one request, reconnecting once if the kept-alive connection
    /// went away since the last exchange.
    fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, String)],
        body: &[u8],
    ) -> io::Result<ClientResponse> {
        match self.try_request(method, path, headers, body) {
            Ok(response) => Ok(response),
            Err(_) if self.connection.is_some() => {
                self.connection = None;
                self.try_request(method, path, headers, body)
            }
            Err(e) => Err(e),
        }
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, String)],
        body: &[u8],
    ) -> io::Result<ClientResponse> {
        let reader = self.connect()?;
        {
            let stream = reader.get_mut();
            let mut head = format!(
                "{method} {path} HTTP/1.1\r\nHost: nptsn\r\nContent-Length: {}\r\n",
                body.len()
            );
            for (name, value) in headers {
                head.push_str(&format!("{name}: {value}\r\n"));
            }
            head.push_str("\r\n");
            stream.write_all(head.as_bytes())?;
            stream.write_all(body)?;
            stream.flush()?;
        }

        let status_line = read_line(reader)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, format!("bad status line {status_line:?}"))
            })?;

        let mut headers_out = Vec::new();
        let mut content_length = 0usize;
        let mut close = false;
        loop {
            let line = read_line(reader)?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim().to_string();
                if name == "content-length" {
                    content_length = value.parse().map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length")
                    })?;
                }
                if name == "connection" && value.eq_ignore_ascii_case("close") {
                    close = true;
                }
                headers_out.push((name, value));
            }
        }

        let mut body_out = vec![0u8; content_length];
        reader.read_exact(&mut body_out)?;
        if close {
            self.connection = None;
        }
        Ok(ClientResponse { status, headers: headers_out, body: body_out })
    }
}

fn read_line(reader: &mut BufReader<TcpStream>) -> io::Result<String> {
    let mut line = String::new();
    let n = reader.read_line(&mut line)?;
    if n == 0 {
        return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed"));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}
