//! The named checkpoint registry behind `PUT/GET /checkpoints/<name>`.
//!
//! Trained `NPTSNCK2` policies are registered once under a stable name and
//! referenced by infer jobs (`POST /jobs/infer?checkpoint=<name>`) instead
//! of re-uploaded with every submission. Each overwrite bumps a version
//! counter so operators can tell a stale replica from a fresh one. Backed
//! by the same [`Storage`] as the job queue, so registered checkpoints
//! survive restarts alongside the jobs that reference them.

use std::sync::Arc;

use nptsn_store::{Storage, StoreError};

/// Store key prefix for registry entries.
const CKPT_PREFIX: &str = "ckpt/";

/// One registered checkpoint, without its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointInfo {
    /// The registered name.
    pub name: String,
    /// Version counter: 1 on first registration, +1 per overwrite.
    pub version: u64,
    /// Payload size in bytes.
    pub bytes: u64,
}

/// A named, versioned checkpoint store shared by the HTTP handlers and
/// the worker pool. Cloning shares the underlying storage.
#[derive(Debug, Clone)]
pub struct CheckpointRegistry {
    store: Arc<dyn Storage>,
}

/// Whether a checkpoint name is acceptable in a URL path and a store key:
/// 1–128 characters of `[A-Za-z0-9._-]`, not starting with a dot.
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && !name.starts_with('.')
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

impl CheckpointRegistry {
    /// A registry on the given storage.
    pub fn new(store: Arc<dyn Storage>) -> CheckpointRegistry {
        CheckpointRegistry { store }
    }

    fn key(name: &str) -> String {
        format!("{CKPT_PREFIX}{name}")
    }

    /// Registers (or overwrites) `name`, returning the new version.
    pub fn put(&self, name: &str, bytes: &[u8]) -> Result<u64, StoreError> {
        let key = CheckpointRegistry::key(name);
        let version = match self.store.get(&key)? {
            Some(existing) => decode_version(&existing) + 1,
            None => 1,
        };
        let mut value = Vec::with_capacity(8 + bytes.len());
        value.extend_from_slice(&version.to_le_bytes());
        value.extend_from_slice(bytes);
        self.store.put(&key, &value)?;
        Ok(version)
    }

    /// The registered payload and its version, or `None`.
    pub fn get(&self, name: &str) -> Result<Option<(u64, Vec<u8>)>, StoreError> {
        Ok(self.store.get(&CheckpointRegistry::key(name))?.map(|value| {
            let version = decode_version(&value);
            (version, value[value.len().min(8)..].to_vec())
        }))
    }

    /// Unregisters `name`; `false` if it was not registered.
    pub fn delete(&self, name: &str) -> Result<bool, StoreError> {
        let key = CheckpointRegistry::key(name);
        if self.store.get(&key)?.is_none() {
            return Ok(false);
        }
        self.store.delete(&key)?;
        Ok(true)
    }

    /// Every registered checkpoint, sorted by name.
    pub fn list(&self) -> Result<Vec<CheckpointInfo>, StoreError> {
        let mut out = Vec::new();
        for key in self.store.keys_with_prefix(CKPT_PREFIX)? {
            let Some(value) = self.store.get(&key)? else { continue };
            out.push(CheckpointInfo {
                name: key[CKPT_PREFIX.len()..].to_string(),
                version: decode_version(&value),
                bytes: value.len().saturating_sub(8) as u64,
            });
        }
        Ok(out)
    }
}

/// The version prefix of a registry value (0 for a malformed one — never
/// written by [`CheckpointRegistry::put`], but the store is shared).
fn decode_version(value: &[u8]) -> u64 {
    value
        .get(..8)
        .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nptsn_store::MemStore;

    fn registry() -> CheckpointRegistry {
        CheckpointRegistry::new(Arc::new(MemStore::new()))
    }

    #[test]
    fn put_versions_and_get_roundtrip() {
        let reg = registry();
        assert_eq!(reg.put("prod", b"v1-bytes").unwrap(), 1);
        assert_eq!(reg.put("prod", b"v2-bytes").unwrap(), 2);
        let (version, bytes) = reg.get("prod").unwrap().unwrap();
        assert_eq!(version, 2);
        assert_eq!(bytes, b"v2-bytes");
        assert_eq!(reg.get("absent").unwrap(), None);
    }

    #[test]
    fn delete_and_list() {
        let reg = registry();
        reg.put("b", b"bb").unwrap();
        reg.put("a", b"a").unwrap();
        let infos = reg.list().unwrap();
        assert_eq!(
            infos.iter().map(|i| (i.name.as_str(), i.version, i.bytes)).collect::<Vec<_>>(),
            vec![("a", 1, 1), ("b", 1, 2)]
        );
        assert!(reg.delete("a").unwrap());
        assert!(!reg.delete("a").unwrap());
        assert_eq!(reg.list().unwrap().len(), 1);
    }

    #[test]
    fn name_validation() {
        assert!(valid_name("prod-policy.v2_final"));
        assert!(!valid_name(""));
        assert!(!valid_name(".hidden"));
        assert!(!valid_name("has/slash"));
        assert!(!valid_name("has space"));
        assert!(!valid_name(&"x".repeat(129)));
    }
}
