//! The TCP server: accepts connections, routes requests to the job queue,
//! exposes `/healthz` and `/metrics`, and coordinates graceful shutdown.
//!
//! # Endpoints
//!
//! | Method & path              | Purpose                                       |
//! |----------------------------|-----------------------------------------------|
//! | `GET /healthz`             | Liveness + queue occupancy                    |
//! | `GET /readyz`              | Readiness: store + queue state; 503 draining  |
//! | `GET /metrics`             | Prometheus text exposition                    |
//! | `POST /jobs/plan`          | Submit a `.tssdn` problem for planning        |
//! | `POST /jobs/verify`        | Submit a problem + plan for verification      |
//! | `POST /jobs/infer`         | Plan from an uploaded `NPTSNCK2` checkpoint   |
//! | `POST /jobs/burn`          | Diagnostic load job (tests, benchmarks)       |
//! | `GET /jobs/<id>`           | Job status with live epoch stats              |
//! | `GET /jobs/<id>/plan`      | The resulting plan file                       |
//! | `GET /jobs/<id>/result`    | The full result document                      |
//! | `GET /jobs/<id>/checkpoint`| The trained policy checkpoint (`NPTSNCK2`)    |
//! | `DELETE /jobs/<id>`        | Cancel a live job / delete a terminal one     |
//! | `GET /checkpoints`         | List registered checkpoints                   |
//! | `PUT /checkpoints/<name>`  | Register (or overwrite) a named checkpoint    |
//! | `GET /checkpoints/<name>`  | Download a registered checkpoint              |
//! | `DELETE /checkpoints/<name>`| Unregister a checkpoint                      |
//! | `GET /jobs/<id>/trace`     | The persisted span timeline for the job       |
//! | `GET /debug/flight`        | The in-memory flight-recorder ring            |
//! | `POST /internal/replay/<id>`| Ingest a raw job record (dead-shard replay)  |
//! | `POST /internal/trace/<id>`| Ingest a replayed trace timeline              |
//! | `POST /shutdown`           | Drain the queue and stop                      |
//!
//! A full queue answers `503` with a `Retry-After` header — backpressure,
//! not an error. Shutdown closes the queue, lets the workers finish every
//! accepted job, then stops the acceptor; nothing accepted is dropped.
//!
//! With a `data_dir` configured, the queue and the checkpoint registry are
//! backed by the `nptsn-store` segment log: every lifecycle transition is
//! durable before it is acknowledged, and a restarted server (even after
//! `kill -9`) recovers terminal results byte-identically and re-enqueues
//! the jobs the crash interrupted. `POST /jobs/infer?checkpoint=<name>`
//! plans from a registered checkpoint without re-uploading it.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use nptsn_format::json::Object;
use nptsn_nn::checkpoint_shapes;
use nptsn_store::{LogStore, MemStore, Storage, StoreError};

use crate::http::{read_request_deadline, HttpError, Request, Response};
use crate::jobs::{
    CancelOutcome, IngestError, IngestOutcome, JobOutcome, JobQueue, JobState, RetentionConfig,
    SubmitError,
};
use crate::metrics::{Counter, Gauge, Histogram, Registry};
use crate::persist::{CheckpointRef, JobSpec, SpecError};
use crate::registry::valid_name;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The address to bind (`host:port`; port `0` picks an ephemeral one).
    pub addr: String,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Maximum number of jobs waiting in the queue.
    pub queue_depth: usize,
    /// Maximum accepted request body, in bytes.
    pub max_body_bytes: usize,
    /// The `Retry-After` hint (seconds) sent with backpressure responses.
    pub retry_after_secs: u32,
    /// Per-connection socket read/write timeout in milliseconds (`0`
    /// disables). Bounds every individual socket operation so a stalled
    /// or vanished peer can never pin a connection thread forever.
    pub io_timeout_ms: u64,
    /// Total deadline for reading one request head (request line +
    /// headers) in milliseconds (`0` disables). Slowloris protection: a
    /// peer dripping bytes resets the per-read timeout but not this.
    pub header_deadline_ms: u64,
    /// Wall-clock deadline for one job's execution in milliseconds (`0`
    /// disables). An expired job is recorded as `failed` and its worker
    /// moves on; the orphaned computation is signalled to wind down.
    pub job_deadline_ms: u64,
    /// Directory for the durable job & checkpoint store. `None` (the
    /// default) keeps everything in memory — nothing survives a restart.
    pub data_dir: Option<String>,
    /// Keep at most this many terminal jobs (memory *and* store); the
    /// oldest are evicted first. `0` disables the cap.
    pub job_retention: usize,
    /// Evict terminal jobs this many seconds after they finish (`0`
    /// disables). The clock restarts at recovery.
    pub job_ttl_secs: u64,
    /// Most infer jobs one worker coalesces into a single batched policy
    /// forward (`<= 1` disables micro-batching). Batched results are
    /// bitwise identical to solo runs, so this trades nothing but is
    /// ignored when a `job_deadline_ms` is set (deadline jobs run solo on
    /// helper threads).
    pub infer_batch_max: usize,
    /// How long an infer leader with no batch-mates waits (once) for
    /// stragglers before running solo, in microseconds.
    pub infer_batch_window_us: u64,
    /// The shard name this process answers to in a routed fleet, reported
    /// by `GET /readyz`. Purely informational — routing is by address.
    pub shard_name: Option<String>,
    /// Flight-recorder ring capacity in entries (`0` uses the built-in
    /// default). The ring is armed unconditionally at bind — it is the
    /// always-on last-moments record behind `GET /debug/flight`.
    pub flight_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 16,
            max_body_bytes: 4 * 1024 * 1024,
            retry_after_secs: 1,
            io_timeout_ms: 30_000,
            header_deadline_ms: 10_000,
            job_deadline_ms: 0,
            data_dir: None,
            job_retention: 1024,
            job_ttl_secs: 0,
            infer_batch_max: 8,
            infer_batch_window_us: 200,
            shard_name: None,
            flight_capacity: 0,
        }
    }
}

/// Every metric the service records, with pre-registered handles so the
/// hot paths never touch the registry lock.
#[derive(Debug)]
pub struct ServeMetrics {
    /// The registry backing `/metrics`.
    pub registry: Registry,
    /// Requests read off the wire.
    pub http_requests: Arc<Counter>,
    /// End-to-end request handling latency.
    pub http_request_seconds: Arc<Histogram>,
    /// Jobs accepted into the queue.
    pub jobs_submitted: Arc<Counter>,
    /// Jobs that finished with a result.
    pub jobs_completed: Arc<Counter>,
    /// Jobs that finished with an error.
    pub jobs_failed: Arc<Counter>,
    /// Jobs cancelled before or during execution.
    pub jobs_cancelled: Arc<Counter>,
    /// Submissions refused with backpressure.
    pub jobs_rejected: Arc<Counter>,
    /// Interrupted jobs re-enqueued by restart recovery.
    pub jobs_recovered: Arc<Counter>,
    /// Jobs currently waiting in the queue.
    pub jobs_queued: Arc<Gauge>,
    /// Jobs currently executing.
    pub jobs_running: Arc<Gauge>,
}

impl ServeMetrics {
    /// Registers the full metric set on a fresh registry.
    pub fn new() -> ServeMetrics {
        let registry = Registry::new();
        let http_requests =
            registry.counter("nptsn_http_requests_total", "HTTP requests received");
        let http_request_seconds = registry.histogram(
            "nptsn_http_request_seconds",
            "HTTP request handling latency",
            &Histogram::latency_bounds(),
        );
        let jobs_submitted =
            registry.counter("nptsn_jobs_submitted_total", "Jobs accepted into the queue");
        let jobs_completed =
            registry.counter("nptsn_jobs_completed_total", "Jobs finished successfully");
        let jobs_failed = registry.counter("nptsn_jobs_failed_total", "Jobs finished in error");
        let jobs_cancelled = registry.counter("nptsn_jobs_cancelled_total", "Jobs cancelled");
        let jobs_rejected = registry
            .counter("nptsn_jobs_rejected_total", "Submissions refused with backpressure");
        let jobs_recovered = registry
            .counter("nptsn_jobs_recovered_total", "Interrupted jobs re-enqueued after restart");
        let jobs_queued = registry.gauge("nptsn_jobs_queued", "Jobs waiting in the queue");
        let jobs_running = registry.gauge("nptsn_jobs_running", "Jobs currently executing");
        ServeMetrics {
            registry,
            http_requests,
            http_request_seconds,
            jobs_submitted,
            jobs_completed,
            jobs_failed,
            jobs_cancelled,
            jobs_rejected,
            jobs_recovered,
            jobs_queued,
            jobs_running,
        }
    }

    /// The full `/metrics` exposition: the server's own registry followed
    /// by the process-wide planner/analyzer telemetry from `nptsn-obs`.
    /// The planner and analyzer report there directly, so plan/verify work
    /// shows up whether it ran through a job, the CLI, or an embedding.
    pub fn render(&self) -> String {
        let mut text = self.registry.render();
        text.push_str(&nptsn_obs::telemetry().registry.render());
        text
    }

    /// The per-status-code response counter (`nptsn_http_responses_total`).
    pub fn response_counter(&self, code: u16) -> Arc<Counter> {
        self.registry.counter_labeled(
            "nptsn_http_responses_total",
            &format!("code=\"{code}\""),
            "HTTP responses by status code",
        )
    }
}

impl Default for ServeMetrics {
    fn default() -> ServeMetrics {
        ServeMetrics::new()
    }
}

/// State shared between the acceptor, connection handlers and workers.
struct Shared {
    config: ServeConfig,
    local_addr: SocketAddr,
    queue: Arc<JobQueue>,
    metrics: Arc<ServeMetrics>,
    shutdown: AtomicBool,
    done: Mutex<bool>,
    done_cv: Condvar,
}

impl Shared {
    /// Initiates shutdown exactly once: stop accepting jobs, wake the
    /// acceptor, release `wait()`.
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue.close();
        // Wake the acceptor so it observes the flag; errors are fine (the
        // listener may already be gone).
        let _ = TcpStream::connect(self.local_addr);
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        *done = true;
        self.done_cv.notify_all();
    }
}

/// The running service: a TCP acceptor plus the worker pool.
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and starts the worker pool and acceptor.
    ///
    /// With `config.data_dir` set, opens (or creates) the durable store
    /// there and recovers every persisted job before accepting traffic:
    /// terminal jobs reload with their results, interrupted jobs are
    /// re-enqueued (counted in `nptsn_jobs_recovered_total`).
    pub fn bind(config: ServeConfig) -> std::io::Result<Server> {
        // Arm the flight recorder before anything can record: it is the
        // always-on ring behind `/debug/flight` and the panic/drain dumps.
        nptsn_obs::flight_init(config.flight_capacity);
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let metrics = Arc::new(ServeMetrics::new());
        let store: Arc<dyn Storage> = match &config.data_dir {
            Some(dir) => Arc::new(LogStore::open(dir).map_err(store_io_error)?),
            None => Arc::new(MemStore::new()),
        };
        let retention = RetentionConfig {
            max_terminal: config.job_retention,
            ttl: (config.job_ttl_secs > 0).then(|| Duration::from_secs(config.job_ttl_secs)),
        };
        let (queue, recovered) =
            JobQueue::open(config.queue_depth, store, retention).map_err(store_io_error)?;
        queue.set_infer_batching(config.infer_batch_max, config.infer_batch_window_us);
        if let Some(name) = &config.shard_name {
            queue.set_shard_label(name);
        }
        if let Some(dir) = &config.data_dir {
            nptsn_obs::flight_set_dump_dir(std::path::Path::new(dir));
        }
        let queue = Arc::new(queue);
        metrics.jobs_recovered.add(recovered.requeued);
        if nptsn_obs::enabled() && recovered != crate::jobs::RecoveryReport::default() {
            nptsn_obs::event(
                nptsn_obs::Level::Info,
                "serve.recovery",
                &format!(
                    "recovered {} terminal, requeued {}, failed {}",
                    recovered.terminal_loaded, recovered.requeued, recovered.failed_to_recover
                ),
            );
        }
        let shared = Arc::new(Shared {
            config,
            local_addr,
            queue,
            metrics,
            shutdown: AtomicBool::new(false),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });

        let job_deadline = (shared.config.job_deadline_ms > 0)
            .then(|| Duration::from_millis(shared.config.job_deadline_ms));
        let workers = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("nptsn-serve-worker-{i}"))
                    .spawn(move || shared.queue.worker_loop(&shared.metrics, job_deadline))
                    .expect("spawn worker thread")
            })
            .collect();

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("nptsn-serve-acceptor".to_string())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn acceptor thread")
        };

        Ok(Server { shared, acceptor: Some(acceptor), workers })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// The service metrics (for embedding / tests).
    pub fn metrics(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// The job queue (for embedding / tests — e.g. inspecting results
    /// after a drain, when the acceptor is already gone).
    pub fn queue(&self) -> Arc<JobQueue> {
        Arc::clone(&self.shared.queue)
    }

    /// Initiates shutdown from the embedding process, as `POST /shutdown`
    /// would.
    pub fn stop(&self) {
        self.shared.begin_shutdown();
    }

    /// Blocks until shutdown is requested (via `POST /shutdown` or
    /// [`Server::stop`]), then drains the queue and joins every thread.
    /// Every job accepted before the shutdown has its result recorded
    /// before this returns.
    pub fn wait(mut self) {
        {
            let mut done = self.shared.done.lock().unwrap_or_else(|e| e.into_inner());
            while !*done {
                done = self.shared.done_cv.wait(done).unwrap_or_else(|e| e.into_inner());
            }
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Last act before the process exits: park the flight ring on disk
        // so "what were the final moments" survives the shutdown.
        nptsn_obs::flight_dump_auto("drain");
    }
}

/// Maps a store failure at startup into the `bind` error.
fn store_io_error(e: StoreError) -> std::io::Error {
    match e {
        StoreError::Io(inner) => inner,
        StoreError::Corrupt(message) => {
            std::io::Error::new(std::io::ErrorKind::InvalidData, message)
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        // Chaos: a faulted accept drops the connection before a handler
        // exists — the client sees a reset and must retry.
        if nptsn_chaos::point("serve.accept").is_err() {
            drop(stream);
            continue;
        }
        let shared = Arc::clone(shared);
        // Connection handlers are detached: they end when the client
        // closes or after the first response once shutdown begins.
        let _ = std::thread::Builder::new()
            .name("nptsn-serve-conn".to_string())
            .spawn(move || handle_connection(&shared, stream));
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    // Socket timeouts first: every read and write on this connection is
    // individually bounded, so a stalled peer can never pin this thread.
    // (Both halves share the underlying socket, so setting them once on
    // the original stream covers the clone too.)
    let io_timeout =
        (shared.config.io_timeout_ms > 0).then(|| Duration::from_millis(shared.config.io_timeout_ms));
    if stream.set_read_timeout(io_timeout).is_err() || stream.set_write_timeout(io_timeout).is_err()
    {
        return;
    }
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        let started = Instant::now();
        let header_deadline = (shared.config.header_deadline_ms > 0)
            .then(|| started + Duration::from_millis(shared.config.header_deadline_ms));
        let mut is_shutdown = false;
        let response = match read_request_deadline(
            &mut reader,
            shared.config.max_body_bytes,
            header_deadline,
        ) {
            Ok(request) => {
                // Adopt the caller's trace context (router-minted) before
                // opening the request span, so this span and everything the
                // request causes — including the job, which carries the
                // context through the queue — share one fleet-wide trace id.
                let _trace = nptsn_obs::with_trace(
                    request.header("x-nptsn-trace").and_then(nptsn_obs::TraceContext::parse),
                );
                let _span = nptsn_obs::span("http.request");
                shared.metrics.http_requests.inc();
                is_shutdown = request.method == "POST" && request.path == "/shutdown";
                let mut response = route(shared, &request);
                if nptsn_obs::enabled() {
                    nptsn_obs::event(
                        nptsn_obs::Level::Debug,
                        "http.request",
                        &format!("{} {} -> {}", request.method, request.path, response.status),
                    );
                }
                response.close = response.close
                    || request.wants_close()
                    || shared.shutdown.load(Ordering::SeqCst);
                response
            }
            Err(HttpError::Closed) => return,
            Err(HttpError::BadRequest(message)) => {
                shared.metrics.http_requests.inc();
                let mut r = Response::error(400, &message);
                r.close = true;
                r
            }
            Err(HttpError::PayloadTooLarge { declared, limit }) => {
                shared.metrics.http_requests.inc();
                let mut r = Response::error(
                    413,
                    &format!("body of {declared} bytes exceeds the {limit}-byte limit"),
                );
                // The unread body is still on the wire; the connection
                // cannot be reused.
                r.close = true;
                r
            }
            // An idle keep-alive connection timing out is the normal end
            // of a session — close quietly, exactly like a client EOF.
            Err(HttpError::Timeout { mid_request: false }) => return,
            Err(HttpError::Timeout { mid_request: true }) => {
                shared.metrics.http_requests.inc();
                let mut r = Response::error(408, "request timed out");
                // Part of a request is still on the wire; the connection
                // cannot be reused.
                r.close = true;
                r
            }
            Err(HttpError::Io(_)) => return,
        };
        shared
            .metrics
            .http_request_seconds
            .observe(started.elapsed().as_secs_f64());
        shared.metrics.response_counter(response.status).inc();
        // Chaos: a faulted write drops the connection with the response
        // unsent — the client sees the connection die mid-exchange.
        if nptsn_chaos::point("serve.conn.write").is_err() {
            return;
        }
        let write_ok = response.write_to(&mut writer).is_ok();
        // Shutdown is initiated only after the 200 is on the wire: wait()
        // (and thus process exit) races this handler thread, so flushing
        // first is what lets the requester actually see the confirmation.
        if is_shutdown {
            shared.begin_shutdown();
        }
        if !write_ok || response.close {
            return;
        }
    }
}

/// Parses a query parameter as `T`, with a default when absent.
fn query_number<T: std::str::FromStr>(
    request: &Request,
    name: &str,
    default: T,
) -> Result<T, Response> {
    match request.query_param(name) {
        None => Ok(default),
        Some(raw) => raw.parse().map_err(|_| {
            Response::error(400, &format!("query parameter {name}={raw} is not a valid number"))
        }),
    }
}

/// Dispatches one request. Pure routing — all state lives in `shared`.
fn route(shared: &Arc<Shared>, request: &Request) -> Response {
    let path = request.path.as_str();
    let method = request.method.as_str();
    match (method, path) {
        ("GET", "/healthz") => {
            let mut obj = Object::new();
            obj.str("status", "ok");
            obj.int("queued", shared.queue.queued() as u64);
            obj.int("queue_depth", shared.queue.depth() as u64);
            obj.int("workers", shared.config.workers as u64);
            Response::json(200, obj.finish())
        }
        ("GET", "/readyz") => readyz(shared),
        ("GET", "/metrics") => {
            // Prometheus text exposition format version 0.0.4.
            let mut r = Response::text(200, shared.metrics.render());
            r.content_type = "text/plain; version=0.0.4";
            r
        }
        // The actual begin_shutdown() call happens in handle_connection
        // *after* this response is flushed — see the ordering note there.
        ("POST", "/shutdown") => {
            let mut obj = Object::new();
            obj.str("status", "shutting down");
            let mut r = Response::json(200, obj.finish());
            r.close = true;
            r
        }
        ("POST", "/jobs/plan") => submit_plan(shared, request),
        ("POST", "/jobs/verify") => submit_verify(shared, request),
        ("POST", "/jobs/infer") => submit_infer(shared, request),
        ("POST", "/jobs/burn") => {
            let millis = match query_number(request, "millis", 0u64) {
                Ok(v) => v,
                Err(r) => return r,
            };
            submit_spec(shared, request, JobSpec::Burn { millis })
        }
        ("GET", "/checkpoints") => list_checkpoints(shared),
        // The flight recorder: the last few thousand spans/events this
        // process recorded, always on, for post-hoc "what just happened".
        ("GET", "/debug/flight") => Response::json(200, nptsn_obs::flight_json()),
        _ if path.starts_with("/checkpoints/") => route_checkpoint(shared, request),
        ("POST", "/internal/promote") => route_promote(shared, request),
        _ if path.starts_with("/internal/replay/") => route_replay(shared, request),
        _ if path.starts_with("/internal/trace/") => route_trace_ingest(shared, request),
        _ => route_job(shared, request),
    }
}

/// `GET /readyz`: readiness, distinct from `/healthz` liveness. By
/// construction the listener only exists after store recovery completed
/// and the worker pool is up ([`Server::bind`] does both before binding
/// returns), so a 200 here means the shard can accept *and execute* jobs;
/// once shutdown begins it answers 503 so a router stops placing work
/// here. The body carries the signals a router health-checker feeds on:
/// queue occupancy, the id watermark, persist-error and store occupancy
/// counters.
fn readyz(shared: &Arc<Shared>) -> Response {
    if shared.shutdown.load(Ordering::SeqCst) {
        let mut obj = Object::new();
        obj.str("status", "draining");
        let mut r = Response::json(503, obj.finish());
        r = r.with_header("Retry-After", shared.config.retry_after_secs.to_string());
        return r;
    }
    // Get-or-create returns the same counter the persist path increments.
    let persist_errors = nptsn_obs::telemetry()
        .registry
        .counter(
            "nptsn_store_persist_errors_total",
            "Job state transitions that failed to persist",
        )
        .get();
    let stats = shared.queue.store().stats();
    let mut obj = Object::new();
    obj.str("status", "ready");
    if let Some(name) = &shared.config.shard_name {
        obj.str("shard", name);
    }
    obj.int("queued", shared.queue.queued() as u64);
    obj.int("queue_depth", shared.queue.depth() as u64);
    obj.int("running", shared.metrics.jobs_running.get().max(0) as u64);
    obj.int("workers", shared.config.workers as u64);
    obj.int("next_id", shared.queue.next_id_watermark());
    obj.int("persist_errors", persist_errors);
    obj.int("store_live_keys", stats.live_keys);
    obj.int("store_segments", stats.segments);
    // Re-admission handshake fields: how many interrupted jobs recovery
    // re-enqueued, and how many passive replica records this shard holds
    // for peers — a router rejoining this shard reads both.
    obj.int("recovered", shared.metrics.jobs_recovered.get());
    obj.int("passive", shared.queue.passive_count() as u64);
    Response::json(200, obj.finish())
}

/// Routes `POST /internal/replay/<id>`: ingest one raw persisted job
/// record replayed from a dead shard's durable log, through the same
/// decode → re-validate gate as crash recovery. Idempotent by id, so a
/// router can retry after any failure without double-running a job.
fn route_replay(shared: &Arc<Shared>, request: &Request) -> Response {
    let id_text = &request.path["/internal/replay/".len()..];
    if request.method != "POST" {
        return Response::error(405, "method not allowed");
    }
    let Ok(id) = id_text.parse::<u64>() else {
        return Response::error(400, "replay id is not a valid job id");
    };
    if id == 0 {
        return Response::error(400, "job id 0 is reserved");
    }
    // A replica write-through: the record is held passive under the
    // primary's name instead of being activated, so a later promotion
    // (`POST /internal/promote`) can requeue it without a dead-log replay.
    if let Some(primary) = request.header("x-nptsn-passive-for") {
        let primary = primary.trim().to_string();
        if primary.is_empty() {
            return Response::error(400, "X-Nptsn-Passive-For names no shard");
        }
        return match shared.queue.ingest_passive(id, &primary, &request.body) {
            Ok(outcome) => {
                let mut obj = Object::new();
                obj.int("id", id);
                obj.str(
                    "replay",
                    match outcome {
                        IngestOutcome::Passive => "passive",
                        _ => "already_known",
                    },
                );
                Response::json(200, obj.finish())
            }
            Err(IngestError::Malformed(e)) => {
                Response::error(400, &format!("record does not decode: {e}"))
            }
            Err(IngestError::ShuttingDown) => Response::error(503, "service is shutting down")
                .with_header("Retry-After", shared.config.retry_after_secs.to_string()),
            Err(IngestError::Storage) => {
                Response::error(503, "job store unavailable, retry later")
                    .with_header("Retry-After", shared.config.retry_after_secs.to_string())
            }
        };
    }
    match shared.queue.ingest_record(id, &request.body) {
        Ok(outcome) => {
            shared
                .metrics
                .registry
                .counter(
                    "nptsn_jobs_replay_ingested_total",
                    "Job records ingested through dead-shard replay",
                )
                .inc();
            if outcome == IngestOutcome::Requeued {
                shared.metrics.jobs_queued.set(shared.queue.queued() as i64);
            }
            let mut obj = Object::new();
            obj.int("id", id);
            obj.str(
                "replay",
                match outcome {
                    IngestOutcome::AlreadyKnown => "already_known",
                    IngestOutcome::Terminal => "terminal",
                    IngestOutcome::Requeued => "requeued",
                    IngestOutcome::RecordedFailed => "recorded_failed",
                    IngestOutcome::Passive => unreachable!("ingest_record never holds passive"),
                },
            );
            Response::json(200, obj.finish())
        }
        Err(IngestError::Malformed(e)) => {
            Response::error(400, &format!("record does not decode: {e}"))
        }
        Err(IngestError::ShuttingDown) => Response::error(503, "service is shutting down")
            .with_header("Retry-After", shared.config.retry_after_secs.to_string()),
        Err(IngestError::Storage) => Response::error(503, "job store unavailable, retry later")
            .with_header("Retry-After", shared.config.retry_after_secs.to_string()),
    }
}

/// `POST /internal/promote?for=<shard>`: activate every passive replica
/// record held on behalf of the named (now dead) primary. Each record
/// goes through the same decode → re-validate gate as dead-shard replay,
/// so promotion is just replay with the bytes already local — no
/// cross-process export, which is what makes failover pause-free.
fn route_promote(shared: &Arc<Shared>, request: &Request) -> Response {
    let Some(primary) = request.query_param("for") else {
        return Response::error(400, "promote needs ?for=<shard name>");
    };
    if primary.trim().is_empty() {
        return Response::error(400, "promote needs a non-empty shard name");
    }
    let promoted = shared.queue.promote(primary.trim());
    shared.metrics.jobs_queued.set(shared.queue.queued() as i64);
    let mut obj = Object::new();
    obj.str("for", primary.trim());
    obj.int("promoted", promoted);
    obj.int("passive_held", shared.queue.passive_count() as u64);
    Response::json(200, obj.finish())
}

/// Routes `POST /internal/trace/<id>`: ingest one persisted trace
/// timeline replayed from a dead shard's durable log, stored verbatim so
/// the merged fleet trace outlives the shard that recorded it.
fn route_trace_ingest(shared: &Arc<Shared>, request: &Request) -> Response {
    let id_text = &request.path["/internal/trace/".len()..];
    if request.method != "POST" {
        return Response::error(405, "method not allowed");
    }
    let Ok(id) = id_text.parse::<u64>() else {
        return Response::error(400, "trace id is not a valid job id");
    };
    if id == 0 {
        return Response::error(400, "job id 0 is reserved");
    }
    match shared.queue.ingest_trace(id, &request.body) {
        Ok(()) => {
            let mut obj = Object::new();
            obj.int("id", id);
            obj.str("trace", "ingested");
            Response::json(200, obj.finish())
        }
        Err(IngestError::Malformed(e)) => {
            Response::error(400, &format!("trace record does not decode: {e}"))
        }
        Err(IngestError::ShuttingDown) => Response::error(503, "service is shutting down")
            .with_header("Retry-After", shared.config.retry_after_secs.to_string()),
        Err(IngestError::Storage) => Response::error(503, "job store unavailable, retry later")
            .with_header("Retry-After", shared.config.retry_after_secs.to_string()),
    }
}

/// `GET /jobs/<id>/trace`: the persisted span timeline for one job, as
/// JSON the router merges into a fleet-wide Chrome trace. A job that has
/// not finished (or predates tracing) answers with an empty span list —
/// the timeline is written at the terminal transition.
fn job_trace(shared: &Arc<Shared>, id: u64) -> Response {
    let (trace_id, shard, spans) = match shared.queue.trace_record(id) {
        Some(record) => (record.trace_id, record.shard, record.spans),
        None => (0, shared.queue.shard_label().to_string(), Vec::new()),
    };
    let entries: Vec<String> = spans
        .iter()
        .map(|span| {
            let mut obj = Object::new();
            obj.str("name", &span.name);
            obj.int("tid", span.tid);
            obj.int("start_ns", span.start_ns);
            obj.int("dur_ns", span.dur_ns);
            obj.int("self_ns", span.self_ns);
            obj.finish()
        })
        .collect();
    let mut head = Object::new();
    head.int("id", id);
    head.str("trace", &format!("{trace_id:032x}"));
    head.str("shard", &shard);
    let head = head.finish();
    // Splice the spans array into the object by hand — the tiny JSON
    // builder has no nested-array support.
    let body = format!("{},\"spans\":[{}]}}", &head[..head.len() - 1], entries.join(","));
    Response::json(200, body)
}

/// Routes `/checkpoints/<name>` (PUT / GET / DELETE).
fn route_checkpoint(shared: &Arc<Shared>, request: &Request) -> Response {
    let name = &request.path["/checkpoints/".len()..];
    if !valid_name(name) {
        return Response::error(
            400,
            "checkpoint names are 1-128 characters of [A-Za-z0-9._-], not starting with '.'",
        );
    }
    let registry = shared.queue.registry();
    match request.method.as_str() {
        "PUT" => {
            // Same structural gate as an inline infer upload: magic,
            // version, framing, CRC-32.
            if let Err(e) = checkpoint_shapes(&request.body) {
                return Response::error(422, &format!("invalid checkpoint: {e}"));
            }
            match registry.put(name, &request.body) {
                Ok(version) => {
                    let mut obj = Object::new();
                    obj.str("name", name);
                    obj.int("version", version);
                    obj.int("bytes", request.body.len() as u64);
                    Response::json(200, obj.finish())
                }
                Err(e) => Response::error(503, &format!("checkpoint store unavailable: {e}")),
            }
        }
        "GET" => match registry.get(name) {
            Ok(Some((version, bytes))) => Response {
                status: 200,
                content_type: "application/octet-stream",
                body: bytes,
                extra_headers: vec![("X-Checkpoint-Version".to_string(), version.to_string())],
                close: false,
            },
            Ok(None) => Response::error(404, &format!("no checkpoint '{name}'")),
            Err(e) => Response::error(503, &format!("checkpoint store unavailable: {e}")),
        },
        "DELETE" => match registry.delete(name) {
            Ok(true) => {
                let mut obj = Object::new();
                obj.str("name", name);
                obj.bool("deleted", true);
                Response::json(200, obj.finish())
            }
            Ok(false) => Response::error(404, &format!("no checkpoint '{name}'")),
            Err(e) => Response::error(503, &format!("checkpoint store unavailable: {e}")),
        },
        _ => Response::error(405, "method not allowed"),
    }
}

/// `GET /checkpoints`: every registered name with version and size.
fn list_checkpoints(shared: &Arc<Shared>) -> Response {
    match shared.queue.registry().list() {
        Ok(infos) => {
            let entries: Vec<String> = infos
                .iter()
                .map(|info| {
                    let mut obj = Object::new();
                    obj.str("name", &info.name);
                    obj.int("version", info.version);
                    obj.int("bytes", info.bytes);
                    obj.finish()
                })
                .collect();
            Response::json(200, format!("{{\"checkpoints\":[{}]}}", entries.join(",")))
        }
        Err(e) => Response::error(503, &format!("checkpoint store unavailable: {e}")),
    }
}

/// Routes `/jobs/<id>[/<resource>]` paths; everything else is a 404/405.
fn route_job(shared: &Arc<Shared>, request: &Request) -> Response {
    let Some(rest) = request.path.strip_prefix("/jobs/") else {
        return match request.path.as_str() {
            "/healthz" | "/readyz" | "/metrics" | "/shutdown" | "/jobs/plan" | "/jobs/verify"
            | "/jobs/infer" | "/jobs/burn" => Response::error(405, "method not allowed"),
            _ => Response::error(404, "no such endpoint"),
        };
    };
    let (id_text, resource) = match rest.split_once('/') {
        Some((id, resource)) => (id, Some(resource)),
        None => (rest, None),
    };
    let Ok(id) = id_text.parse::<u64>() else {
        // `/jobs/plan` with a non-POST method lands here too.
        return match (request.method.as_str(), resource) {
            ("POST", _) => Response::error(404, "no such endpoint"),
            _ => Response::error(405, "method not allowed"),
        };
    };
    let Some(snapshot) = shared.queue.snapshot(id) else {
        return Response::error(404, &format!("no job {id}"));
    };
    match (request.method.as_str(), resource) {
        ("GET", None) => Response::json(200, snapshot.to_json()),
        ("DELETE", None) => match shared.queue.cancel(id) {
            CancelOutcome::Cancelled => {
                shared.metrics.jobs_cancelled.inc();
                shared.metrics.jobs_queued.set(shared.queue.queued() as i64);
                let mut obj = Object::new();
                obj.int("id", id);
                obj.str("state", "cancelled");
                Response::json(200, obj.finish())
            }
            CancelOutcome::Signalled => {
                let mut obj = Object::new();
                obj.int("id", id);
                obj.str("state", "cancelling");
                Response::json(202, obj.finish())
            }
            // A terminal job has nothing to cancel — DELETE removes it
            // instead, from memory and the durable store (a tombstone,
            // reclaimed at the next compaction).
            CancelOutcome::AlreadyFinished => {
                if shared.queue.forget_terminal(id) {
                    let mut obj = Object::new();
                    obj.int("id", id);
                    obj.str("state", "deleted");
                    Response::json(200, obj.finish())
                } else {
                    Response::error(404, &format!("no job {id}"))
                }
            }
            CancelOutcome::NotFound => Response::error(404, &format!("no job {id}")),
        },
        ("GET", Some("plan")) => match require_done(&snapshot) {
            Err(r) => r,
            Ok(()) => match &snapshot.outcome {
                Some(JobOutcome::Plan { planfile, .. }) => Response::text(200, planfile.clone()),
                _ => Response::error(409, &format!("job {id} produced no plan")),
            },
        },
        ("GET", Some("result")) => match require_done(&snapshot) {
            Err(r) => r,
            Ok(()) => match &snapshot.outcome {
                Some(JobOutcome::Verify { json, .. }) => Response::json(200, json.clone()),
                _ => Response::json(200, snapshot.to_json()),
            },
        },
        ("GET", Some("checkpoint")) => match require_done(&snapshot) {
            Err(r) => r,
            Ok(()) => match &snapshot.outcome {
                Some(JobOutcome::Plan { checkpoint: Some(bytes), .. }) => Response {
                    status: 200,
                    content_type: "application/octet-stream",
                    body: bytes.clone(),
                    extra_headers: Vec::new(),
                    close: false,
                },
                _ => Response::error(409, &format!("job {id} has no policy checkpoint")),
            },
        },
        ("GET", Some("trace")) => job_trace(shared, id),
        ("GET", Some(_)) => Response::error(404, "no such job resource"),
        _ => Response::error(405, "method not allowed"),
    }
}

/// 409 unless the job reached `Done`.
fn require_done(snapshot: &crate::jobs::JobSnapshot) -> Result<(), Response> {
    match snapshot.state {
        JobState::Done => Ok(()),
        JobState::Failed => Err(Response::error(
            409,
            snapshot.error.as_deref().unwrap_or("job failed"),
        )),
        JobState::Cancelled => Err(Response::error(409, "job was cancelled")),
        _ => Err(Response::error(
            409,
            &format!("job is still {}", snapshot.state.label()),
        )),
    }
}

/// The accepted-job response and the backpressure mapping shared by every
/// submission path.
fn submit_result(shared: &Arc<Shared>, result: Result<u64, SubmitError>) -> Response {
    match result {
        Ok(id) => {
            shared.metrics.jobs_submitted.inc();
            shared.metrics.jobs_queued.set(shared.queue.queued() as i64);
            let mut obj = Object::new();
            obj.int("id", id);
            obj.str("state", "submitted");
            Response::json(202, obj.finish())
        }
        Err(SubmitError::Duplicate) => {
            // Not backpressure: the explicit id is already taken here and a
            // retry with the same id can never succeed — the router picks a
            // fresh id instead.
            shared.metrics.jobs_rejected.inc();
            Response::error(409, "job id already exists on this shard")
        }
        Err(reason) => {
            shared.metrics.jobs_rejected.inc();
            let message = match reason {
                SubmitError::Full => "queue full, retry later",
                SubmitError::ShuttingDown => "service is shutting down",
                SubmitError::Storage => "job store unavailable, retry later",
                SubmitError::Duplicate => unreachable!("handled above"),
            };
            Response::error(503, message)
                .with_header("Retry-After", shared.config.retry_after_secs.to_string())
        }
    }
}

/// The router-assigned explicit job id, if the submission carries one
/// (`X-Nptsn-Job-Id`). Direct submissions have none and the queue assigns
/// the next local id.
fn explicit_id(request: &Request) -> Result<Option<u64>, Response> {
    match request.header("x-nptsn-job-id") {
        None => Ok(None),
        Some(raw) => match raw.trim().parse::<u64>() {
            Ok(id) if id > 0 => Ok(Some(id)),
            _ => Err(Response::error(400, "X-Nptsn-Job-Id is not a valid job id")),
        },
    }
}

/// Validates a replayable spec and submits it — the single gate shared
/// with crash recovery and dead-shard replay, so a submission that queues
/// today re-validates identically after a restart or a failover.
fn submit_spec(shared: &Arc<Shared>, request: &Request, spec: JobSpec) -> Response {
    let kind = match spec.validate() {
        Ok(kind) => kind,
        Err(SpecError::Malformed(message)) => return Response::error(400, &message),
        Err(SpecError::Invalid(message)) => return Response::error(422, &message),
    };
    let id = match explicit_id(request) {
        Ok(id) => id,
        Err(r) => return r,
    };
    // Replication factor 2: the router names the successor shard and this
    // shard mirrors the accepted record there as a passive replica. The
    // record is encoded up front because submission consumes the spec.
    let replica = request
        .header("x-nptsn-replica")
        .and_then(|raw| raw.trim().parse::<SocketAddr>().ok());
    let record = replica
        .map(|_| crate::persist::encode_record(JobState::Submitted, Some(&spec), None, None));
    let result = match id {
        None => shared.queue.submit_validated(kind, Some(spec)),
        Some(id) => shared.queue.submit_validated_with_id(id, kind, Some(spec)),
    };
    if let (Ok(id), Some(addr), Some(record)) = (&result, replica, record) {
        mirror_to_replica(shared, *id, addr, &record);
    }
    submit_result(shared, result)
}

/// Best-effort write-through of one accepted submission to its successor
/// shard as a passive replica. A few immediate retries, then give up —
/// the dead-log replay path remains the safety net, so a missed mirror
/// costs failover latency, never an acked job.
fn mirror_to_replica(shared: &Arc<Shared>, id: u64, addr: SocketAddr, record: &[u8]) {
    let Some(primary) = shared.config.shard_name.clone() else {
        // Without an identity the replica could never be promoted by
        // name; replication needs named shards.
        return;
    };
    let mut client = crate::client::Client::new(addr);
    let path = format!("/internal/replay/{id}");
    let headers = [("X-Nptsn-Passive-For", primary)];
    for _ in 0..3 {
        match client.post_with_headers(&path, &headers, record) {
            // 2xx stored (or already known); 4xx is terminal — retrying
            // the same bytes cannot change the answer.
            Ok(response) if response.status < 500 => return,
            _ => {}
        }
    }
}

fn submit_plan(shared: &Arc<Shared>, request: &Request) -> Response {
    let text = match std::str::from_utf8(&request.body) {
        Ok(t) => t,
        Err(_) => return Response::error(400, "problem body is not UTF-8"),
    };
    let epochs = match query_number(request, "epochs", 3u64) {
        Ok(v) => v.max(1),
        Err(r) => return r,
    };
    let steps = match query_number(request, "steps", 64u64) {
        Ok(v) => v.max(1),
        Err(r) => return r,
    };
    let seed = match query_number(request, "seed", 0u64) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let analyzer_workers = match query_number(request, "analyzer-workers", 1u64) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let greedy = matches!(request.query_param("greedy"), Some("1" | "true"));
    submit_spec(
        shared,
        request,
        JobSpec::Plan { problem: text.to_string(), epochs, steps, seed, greedy, analyzer_workers },
    )
}

fn submit_verify(shared: &Arc<Shared>, request: &Request) -> Response {
    let text = match std::str::from_utf8(&request.body) {
        Ok(t) => t,
        Err(_) => return Response::error(400, "verify body is not UTF-8"),
    };
    // The body is the problem document followed by the plan file; the
    // spec's validation splits them at the first `[switches]` line.
    let analyzer_workers = match query_number(request, "analyzer-workers", 1u64) {
        Ok(v) => v,
        Err(r) => return r,
    };
    submit_spec(shared, request, JobSpec::Verify { body: text.to_string(), analyzer_workers })
}

fn submit_infer(shared: &Arc<Shared>, request: &Request) -> Response {
    let attempts = match query_number(request, "attempts", 8u64) {
        Ok(v) => v.max(1),
        Err(r) => return r,
    };
    let seed = match query_number(request, "seed", 0u64) {
        Ok(v) => v,
        Err(r) => return r,
    };
    // `?checkpoint=<name>`: the body is the problem alone and the policy
    // comes from the registry (resolved again when the job runs).
    if let Some(name) = request.query_param("checkpoint") {
        if !valid_name(name) {
            return Response::error(400, &format!("invalid checkpoint name '{name}'"));
        }
        let text = match std::str::from_utf8(&request.body) {
            Ok(t) => t,
            Err(_) => return Response::error(400, "problem body is not UTF-8"),
        };
        // Fail fast on an unknown name; the job re-resolves at run time.
        match shared.queue.registry().get(name) {
            Ok(Some(_)) => {}
            Ok(None) => {
                return Response::error(422, &format!("checkpoint '{name}' is not registered"))
            }
            Err(e) => return Response::error(503, &format!("checkpoint store unavailable: {e}")),
        }
        return submit_spec(
            shared,
            request,
            JobSpec::Infer {
                problem: text.to_string(),
                checkpoint: CheckpointRef::Named(name.to_string()),
                attempts,
                seed,
            },
        );
    }
    let Some(problem_len_text) = request.header("x-problem-length") else {
        return Response::error(
            400,
            "X-Problem-Length header required (problem bytes preceding the checkpoint), \
             or ?checkpoint=<name> to use a registered checkpoint",
        );
    };
    let Ok(problem_len) = problem_len_text.parse::<usize>() else {
        return Response::error(400, "X-Problem-Length is not a valid number");
    };
    if problem_len > request.body.len() {
        return Response::error(400, "X-Problem-Length exceeds the body size");
    }
    let (problem_bytes, checkpoint) = request.body.split_at(problem_len);
    let text = match std::str::from_utf8(problem_bytes) {
        Ok(t) => t,
        Err(_) => return Response::error(400, "problem body is not UTF-8"),
    };
    submit_spec(
        shared,
        request,
        JobSpec::Infer {
            problem: text.to_string(),
            checkpoint: CheckpointRef::Inline(checkpoint.to_vec()),
            attempts,
            seed,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_shared() -> Arc<Shared> {
        Arc::new(Shared {
            config: ServeConfig::default(),
            local_addr: "127.0.0.1:1".parse().unwrap(),
            queue: Arc::new(JobQueue::new(2)),
            metrics: Arc::new(ServeMetrics::new()),
            shutdown: AtomicBool::new(false),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        })
    }

    fn request(method: &str, path: &str) -> Request {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            query: Vec::new(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    #[test]
    fn routing_rejects_unknown_paths_and_methods() {
        let shared = test_shared();
        assert_eq!(route(&shared, &request("GET", "/nope")).status, 404);
        assert_eq!(route(&shared, &request("POST", "/healthz")).status, 405);
        assert_eq!(route(&shared, &request("DELETE", "/metrics")).status, 405);
        assert_eq!(route(&shared, &request("GET", "/jobs/plan")).status, 405);
        assert_eq!(route(&shared, &request("GET", "/jobs/77")).status, 404);
        assert_eq!(route(&shared, &request("PUT", "/jobs/abc")).status, 405);
    }

    #[test]
    fn healthz_reports_queue_shape() {
        let shared = test_shared();
        let response = route(&shared, &request("GET", "/healthz"));
        assert_eq!(response.status, 200);
        let body = String::from_utf8(response.body).unwrap();
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(body.contains("\"queue_depth\":2"), "{body}");
    }

    #[test]
    fn burn_submissions_hit_backpressure() {
        let shared = test_shared();
        // Depth 2; no workers are draining in this test.
        assert_eq!(route(&shared, &request("POST", "/jobs/burn")).status, 202);
        assert_eq!(route(&shared, &request("POST", "/jobs/burn")).status, 202);
        let rejected = route(&shared, &request("POST", "/jobs/burn"));
        assert_eq!(rejected.status, 503);
        assert!(rejected
            .extra_headers
            .iter()
            .any(|(name, value)| name == "Retry-After" && value == "1"));
        assert_eq!(shared.metrics.jobs_rejected.get(), 1);
        assert_eq!(shared.metrics.jobs_submitted.get(), 2);
    }

    #[test]
    fn plan_submission_validates_the_problem() {
        let shared = test_shared();
        let mut bad = request("POST", "/jobs/plan");
        bad.body = b"[nonsense".to_vec();
        assert_eq!(route(&shared, &bad).status, 422);
        let mut binary = request("POST", "/jobs/plan");
        binary.body = vec![0xff, 0xfe];
        assert_eq!(route(&shared, &binary).status, 400);
    }

    #[test]
    fn verify_submission_requires_both_documents() {
        let shared = test_shared();
        let mut lone = request("POST", "/jobs/verify");
        lone.body = b"[nodes]\nes a\n".to_vec();
        let response = route(&shared, &lone);
        assert_eq!(response.status, 400);
        let body = String::from_utf8(response.body).unwrap();
        assert!(body.contains("[switches]"), "{body}");
    }

    #[test]
    fn infer_submission_validates_the_checkpoint() {
        let shared = test_shared();
        let mut no_header = request("POST", "/jobs/infer");
        no_header.body = b"x".to_vec();
        assert_eq!(route(&shared, &no_header).status, 400);

        let mut too_long = request("POST", "/jobs/infer");
        too_long.headers.push(("x-problem-length".into(), "99".into()));
        too_long.body = b"short".to_vec();
        assert_eq!(route(&shared, &too_long).status, 400);
    }

    #[test]
    fn checkpoint_routes_validate_names_and_payloads() {
        let shared = test_shared();
        assert_eq!(route(&shared, &request("PUT", "/checkpoints/.hidden")).status, 400);
        assert_eq!(route(&shared, &request("PUT", "/checkpoints/has space")).status, 400);

        let mut garbage = request("PUT", "/checkpoints/prod");
        garbage.body = b"not a checkpoint".to_vec();
        assert_eq!(route(&shared, &garbage).status, 422);

        assert_eq!(route(&shared, &request("GET", "/checkpoints/prod")).status, 404);
        assert_eq!(route(&shared, &request("DELETE", "/checkpoints/prod")).status, 404);
        assert_eq!(route(&shared, &request("POST", "/checkpoints/prod")).status, 405);

        let list = route(&shared, &request("GET", "/checkpoints"));
        assert_eq!(list.status, 200);
        let body = String::from_utf8(list.body).unwrap();
        assert!(body.contains("\"checkpoints\":[]"), "{body}");

        // Infer against an unregistered name is a clean 422 at submission.
        let mut infer = request("POST", "/jobs/infer");
        infer.query.push(("checkpoint".to_string(), "prod".to_string()));
        infer.body = b"[nodes]\nes a\nes b\nsw s0\n[links]\na s0\nb s0\n[flows]\na b 500 128\n"
            .to_vec();
        let response = route(&shared, &infer);
        assert_eq!(response.status, 422);
        let body = String::from_utf8(response.body).unwrap();
        assert!(body.contains("not registered"), "{body}");
    }

    #[test]
    fn delete_on_a_terminal_job_removes_it() {
        let shared = test_shared();
        let accepted = route(&shared, &request("POST", "/jobs/burn"));
        assert_eq!(accepted.status, 202);
        let body = String::from_utf8(accepted.body).unwrap();
        let id: u64 = body
            .split("\"id\":")
            .nth(1)
            .and_then(|s| s.chars().take_while(char::is_ascii_digit).collect::<String>().parse().ok())
            .expect("id in response");
        shared.queue.run_one(&shared.metrics).expect("one job runs");

        let deleted = route(&shared, &request("DELETE", &format!("/jobs/{id}")));
        assert_eq!(deleted.status, 200);
        assert!(String::from_utf8(deleted.body).unwrap().contains("\"state\":\"deleted\""));
        // Gone for good: status is a 404, a second DELETE too.
        assert_eq!(route(&shared, &request("GET", &format!("/jobs/{id}"))).status, 404);
        assert_eq!(route(&shared, &request("DELETE", &format!("/jobs/{id}"))).status, 404);
    }

    #[test]
    fn shutdown_responds_then_closes_the_queue() {
        let shared = test_shared();
        // route() only builds the confirmation; handle_connection triggers
        // begin_shutdown after the response is flushed.
        let response = route(&shared, &request("POST", "/shutdown"));
        assert_eq!(response.status, 200);
        assert!(response.close);
        assert_eq!(route(&shared, &request("POST", "/jobs/burn")).status, 202);

        shared.begin_shutdown();
        let refused = route(&shared, &request("POST", "/jobs/burn"));
        assert_eq!(refused.status, 503);
    }

    #[test]
    fn readyz_reports_ready_then_draining() {
        let shared = test_shared();
        let response = route(&shared, &request("GET", "/readyz"));
        assert_eq!(response.status, 200);
        let body = String::from_utf8(response.body).unwrap();
        assert!(body.contains("\"status\":\"ready\""), "{body}");
        assert!(body.contains("\"queue_depth\":2"), "{body}");
        assert!(body.contains("\"next_id\":"), "{body}");
        assert!(body.contains("\"persist_errors\":"), "{body}");
        assert_eq!(route(&shared, &request("POST", "/readyz")).status, 405);

        shared.shutdown.store(true, Ordering::SeqCst);
        let draining = route(&shared, &request("GET", "/readyz"));
        assert_eq!(draining.status, 503);
        let body = String::from_utf8(draining.body).unwrap();
        assert!(body.contains("\"status\":\"draining\""), "{body}");
    }

    #[test]
    fn readyz_names_the_shard_when_configured() {
        let mut shared = test_shared();
        Arc::get_mut(&mut shared).unwrap().config.shard_name = Some("s1".to_string());
        let response = route(&shared, &request("GET", "/readyz"));
        let body = String::from_utf8(response.body).unwrap();
        assert!(body.contains("\"shard\":\"s1\""), "{body}");
    }

    #[test]
    fn explicit_id_submissions_place_and_conflict() {
        let shared = test_shared();
        let mut routed = request("POST", "/jobs/burn");
        routed.headers.push(("x-nptsn-job-id".into(), "42".into()));
        let accepted = route(&shared, &routed);
        assert_eq!(accepted.status, 202);
        assert!(String::from_utf8(accepted.body).unwrap().contains("\"id\":42"));
        // Same id again: a 409, not backpressure.
        let conflict = route(&shared, &routed);
        assert_eq!(conflict.status, 409);
        assert!(conflict.extra_headers.iter().all(|(name, _)| name != "Retry-After"));
        // Garbage ids are a 400 before anything is queued.
        for bad in ["abc", "0", "-3"] {
            let mut r = request("POST", "/jobs/burn");
            r.headers.push(("x-nptsn-job-id".into(), bad.into()));
            assert_eq!(route(&shared, &r).status, 400, "{bad}");
        }
    }

    #[test]
    fn debug_flight_answers_with_the_ring() {
        let shared = test_shared();
        let response = route(&shared, &request("GET", "/debug/flight"));
        assert_eq!(response.status, 200);
        let body = String::from_utf8(response.body).unwrap();
        assert!(body.contains("\"capacity\":"), "{body}");
        assert!(body.contains("\"entries\":["), "{body}");
    }

    #[test]
    fn job_trace_serves_empty_until_a_record_exists() {
        let shared = test_shared();
        shared.queue.set_shard_label("s1");
        let accepted = route(&shared, &request("POST", "/jobs/burn"));
        assert_eq!(accepted.status, 202);
        let body = String::from_utf8(accepted.body).unwrap();
        let id: u64 = body
            .split("\"id\":")
            .nth(1)
            .and_then(|s| s.chars().take_while(char::is_ascii_digit).collect::<String>().parse().ok())
            .expect("id in response");

        // Known job, no timeline yet: an empty span list, not a 404.
        let trace = route(&shared, &request("GET", &format!("/jobs/{id}/trace")));
        assert_eq!(trace.status, 200);
        let body = String::from_utf8(trace.body).unwrap();
        assert!(body.contains("\"spans\":[]"), "{body}");
        assert!(body.contains("\"shard\":\"s1\""), "{body}");
        // Unknown job: 404, same as every other job resource.
        assert_eq!(route(&shared, &request("GET", "/jobs/999/trace")).status, 404);
    }

    #[test]
    fn trace_ingest_round_trips_through_the_job_trace_route() {
        let shared = test_shared();
        let record = crate::persist::TraceRecord {
            trace_id: 0xabcd_0123,
            shard: "dead-shard".to_string(),
            spans: vec![crate::persist::TraceSpan {
                name: "job.run".to_string(),
                tid: 3,
                start_ns: 100,
                dur_ns: 50,
                self_ns: 50,
            }],
        };
        // The trace rides a replayed job so the id resolves.
        let job = crate::persist::encode_record(
            JobState::Submitted,
            Some(&JobSpec::Burn { millis: 0 }),
            None,
            None,
        );
        let mut replay = request("POST", "/internal/replay/7");
        replay.body = job;
        assert_eq!(route(&shared, &replay).status, 200);

        let mut ingest = request("POST", "/internal/trace/7");
        ingest.body = crate::persist::encode_trace(&record);
        assert_eq!(route(&shared, &ingest).status, 200);

        let trace = route(&shared, &request("GET", "/jobs/7/trace"));
        assert_eq!(trace.status, 200);
        let body = String::from_utf8(trace.body).unwrap();
        assert!(body.contains("\"shard\":\"dead-shard\""), "{body}");
        assert!(body.contains("\"name\":\"job.run\""), "{body}");
        assert!(body.contains(&format!("\"trace\":\"{:032x}\"", 0xabcd_0123u128)), "{body}");

        // Garbage bytes: 400. Bad ids: 400. Wrong method: 405.
        let mut garbage = request("POST", "/internal/trace/8");
        garbage.body = b"junk".to_vec();
        assert_eq!(route(&shared, &garbage).status, 400);
        assert_eq!(route(&shared, &request("POST", "/internal/trace/abc")).status, 400);
        assert_eq!(route(&shared, &request("POST", "/internal/trace/0")).status, 400);
        assert_eq!(route(&shared, &request("GET", "/internal/trace/7")).status, 405);
    }

    #[test]
    fn replay_endpoint_ingests_records_idempotently() {
        let shared = test_shared();
        let record = crate::persist::encode_record(
            JobState::Submitted,
            Some(&JobSpec::Burn { millis: 0 }),
            None,
            None,
        );
        let mut replay = request("POST", "/internal/replay/7");
        replay.body = record;
        let first = route(&shared, &replay);
        assert_eq!(first.status, 200);
        assert!(String::from_utf8(first.body).unwrap().contains("\"replay\":\"requeued\""));
        let second = route(&shared, &replay);
        assert_eq!(second.status, 200);
        assert!(String::from_utf8(second.body).unwrap().contains("\"replay\":\"already_known\""));
        assert_eq!(shared.queue.queued(), 1);

        // Garbage bytes: 400. Bad ids: 400. Wrong method: 405.
        let mut garbage = request("POST", "/internal/replay/8");
        garbage.body = b"junk".to_vec();
        assert_eq!(route(&shared, &garbage).status, 400);
        assert_eq!(route(&shared, &request("POST", "/internal/replay/abc")).status, 400);
        assert_eq!(route(&shared, &request("POST", "/internal/replay/0")).status, 400);
        assert_eq!(route(&shared, &request("GET", "/internal/replay/7")).status, 405);
    }
}
