//! A minimal HTTP/1.1 layer over `std::io` streams: request parsing with
//! `Content-Length` bodies, response writing, and keep-alive semantics.
//!
//! This is deliberately a small subset of the protocol — exactly what the
//! planning service needs and nothing more. No chunked transfer encoding
//! (requests carrying `Transfer-Encoding` are rejected with 411/400), no
//! multipart, no TLS. Limits are enforced while reading so a hostile peer
//! cannot make the server buffer unbounded data: the request line and each
//! header line are capped, the header count is capped, and bodies larger
//! than the configured maximum fail *before* allocation with
//! [`HttpError::PayloadTooLarge`].

use std::io::{self, BufRead, Write};
use std::time::Instant;

/// Hard cap on one request/header line (bytes, including CRLF).
const MAX_LINE_BYTES: usize = 8 * 1024;
/// Hard cap on the number of headers per request.
const MAX_HEADERS: usize = 64;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The request method, uppercased (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// The decoded path without the query string (e.g. `/jobs/3/plan`).
    pub path: String,
    /// Query parameters in order of appearance (`?a=1&b=2`).
    pub query: Vec<(String, String)>,
    /// Headers with lowercased names, in order of appearance.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    /// The first query parameter with the given name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The connection closed cleanly before a request line arrived — the
    /// normal end of a keep-alive session, not an error to report.
    Closed,
    /// The bytes on the wire are not a request this layer accepts; the
    /// message is safe to echo back in a 400 body.
    BadRequest(String),
    /// The declared body exceeds the configured limit (maps to 413).
    PayloadTooLarge {
        /// The declared `Content-Length`.
        declared: u64,
        /// The configured maximum body size.
        limit: usize,
    },
    /// The socket read timed out (per-read `set_read_timeout`) or the
    /// request head overran its total deadline (slowloris protection).
    Timeout {
        /// Whether part of a request had already arrived. A timeout on an
        /// idle keep-alive connection (`false`) is a quiet close; a
        /// timeout mid-request (`true`) maps to `408 Request Timeout`.
        mid_request: bool,
    },
    /// The underlying socket failed mid-request.
    Io(io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => f.write_str("connection closed"),
            HttpError::BadRequest(m) => write!(f, "bad request: {m}"),
            HttpError::PayloadTooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds the {limit}-byte limit")
            }
            HttpError::Timeout { mid_request: true } => f.write_str("request timed out"),
            HttpError::Timeout { mid_request: false } => f.write_str("idle connection timed out"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

/// Whether an i/o error is a socket read/write timeout. `set_read_timeout`
/// surfaces as `WouldBlock` on Unix and `TimedOut` on Windows.
fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Reads one line terminated by `\n`, enforcing the line-length cap and —
/// when a deadline is given — the total header deadline. Returns `None`
/// on clean EOF at a line boundary.
fn read_line(
    stream: &mut impl BufRead,
    deadline: Option<Instant>,
) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    loop {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            // The deadline caps the *total* time spent on a request head,
            // so a peer dripping one byte per read (slowloris) cannot
            // dodge the per-read socket timeout indefinitely.
            return Err(HttpError::Timeout { mid_request: !line.is_empty() });
        }
        let buf = stream.fill_buf().map_err(|e| {
            if is_timeout(&e) {
                HttpError::Timeout { mid_request: !line.is_empty() }
            } else {
                HttpError::Io(e)
            }
        })?;
        if buf.is_empty() {
            return if line.is_empty() {
                Ok(None)
            } else {
                Err(HttpError::BadRequest("connection closed mid-line".into()))
            };
        }
        let newline = buf.iter().position(|&b| b == b'\n');
        let take = newline.map_or(buf.len(), |i| i + 1);
        if line.len() + take > MAX_LINE_BYTES {
            return Err(HttpError::BadRequest("header line too long".into()));
        }
        line.extend_from_slice(&buf[..take]);
        stream.consume(take);
        if newline.is_some() {
            while line.last() == Some(&b'\n') || line.last() == Some(&b'\r') {
                line.pop();
            }
            let text = String::from_utf8(line)
                .map_err(|_| HttpError::BadRequest("non-UTF-8 header data".into()))?;
            return Ok(Some(text));
        }
    }
}

/// Decodes `%xx` escapes and `+` (as space) in a query component.
fn url_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 2;
                    }
                    None => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Reads and parses one request from `stream`.
///
/// # Errors
///
/// [`HttpError::Closed`] on clean EOF before any bytes (keep-alive end),
/// [`HttpError::BadRequest`] for malformed or truncated requests,
/// [`HttpError::PayloadTooLarge`] when the declared body exceeds
/// `max_body`, [`HttpError::Timeout`] when a socket read times out, and
/// [`HttpError::Io`] for socket failures.
pub fn read_request(stream: &mut impl BufRead, max_body: usize) -> Result<Request, HttpError> {
    read_request_deadline(stream, max_body, None)
}

/// [`read_request`] with a total deadline on the request head (request
/// line + headers). The deadline defends against slowloris peers that
/// drip bytes slowly enough to reset the per-read socket timeout; body
/// reads are bounded by the socket timeout alone.
pub fn read_request_deadline(
    stream: &mut impl BufRead,
    max_body: usize,
    deadline: Option<Instant>,
) -> Result<Request, HttpError> {
    let request_line = match read_line(stream, deadline)? {
        None => return Err(HttpError::Closed),
        Some(l) => l,
    };
    // Any timeout past this point happens with a request on the wire.
    let mid = |e| match e {
        HttpError::Timeout { .. } => HttpError::Timeout { mid_request: true },
        other => other,
    };
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!("unsupported version {version}")));
    }

    let (path, query_raw) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query: Vec<(String, String)> = query_raw
        .split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (url_decode(k), url_decode(v)),
            None => (url_decode(pair), String::new()),
        })
        .collect();

    let mut headers = Vec::new();
    loop {
        let line = read_line(stream, deadline)
            .map_err(mid)?
            .ok_or_else(|| HttpError::BadRequest("connection closed in headers".into()))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::BadRequest("too many headers".into()));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("malformed header '{line}'")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut request =
        Request { method, path: url_decode(path), query, headers, body: Vec::new() };
    if request.header("transfer-encoding").is_some() {
        return Err(HttpError::BadRequest("chunked bodies are not supported".into()));
    }
    if let Some(cl) = request.header("content-length") {
        let declared: u64 = cl
            .parse()
            .map_err(|_| HttpError::BadRequest(format!("invalid Content-Length '{cl}'")))?;
        if declared > max_body as u64 {
            return Err(HttpError::PayloadTooLarge { declared, limit: max_body });
        }
        let mut body = vec![0u8; declared as usize];
        io::Read::read_exact(stream, &mut body).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                HttpError::BadRequest("request body shorter than Content-Length".into())
            } else if is_timeout(&e) {
                HttpError::Timeout { mid_request: true }
            } else {
                HttpError::Io(e)
            }
        })?;
        request.body = body;
    }
    Ok(request)
}

/// The canonical reason phrase for the status codes the service emits.
pub fn status_reason(code: u16) -> &'static str {
    match code {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// An HTTP response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// The status code.
    pub status: u16,
    /// The `Content-Type` of the body.
    pub content_type: &'static str,
    /// The response body.
    pub body: Vec<u8>,
    /// Extra headers (e.g. `Retry-After`).
    pub extra_headers: Vec<(String, String)>,
    /// Whether the server will close the connection after this response.
    pub close: bool,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            extra_headers: Vec::new(),
            close: false,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
            extra_headers: Vec::new(),
            close: false,
        }
    }

    /// A JSON error envelope: `{"error":"..."}`.
    pub fn error(status: u16, message: &str) -> Response {
        let mut obj = nptsn_format::json::Object::new();
        obj.str("error", message);
        Response::json(status, obj.finish())
    }

    /// Returns this response with an extra header attached.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.extra_headers.push((name.to_string(), value.into()));
        self
    }

    /// Serializes the response (status line, headers, body) to `w`.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len(),
            if self.close { "close" } else { "keep-alive" },
        )?;
        for (name, value) in &self.extra_headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        w.write_all(b"\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()), 1024)
    }

    #[test]
    fn parses_get_with_query() {
        let req = parse("GET /jobs/3?verbose=1&q=a%20b HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/jobs/3");
        assert_eq!(req.query_param("verbose"), Some("1"));
        assert_eq!(req.query_param("q"), Some("a b"));
        assert_eq!(req.header("host"), Some("x"));
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_post_body_exactly() {
        let req =
            parse("POST /jobs/plan HTTP/1.1\r\nContent-Length: 5\r\n\r\nhellotrailing").unwrap();
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn truncated_body_is_a_bad_request() {
        let err = parse("POST /x HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort").unwrap_err();
        assert!(matches!(err, HttpError::BadRequest(m) if m.contains("shorter")));
    }

    #[test]
    fn oversized_body_rejected_before_reading() {
        let err = parse("POST /x HTTP/1.1\r\nContent-Length: 4096\r\n\r\n").unwrap_err();
        assert!(matches!(err, HttpError::PayloadTooLarge { declared: 4096, limit: 1024 }));
    }

    #[test]
    fn clean_eof_reads_as_closed() {
        assert!(matches!(parse(""), Err(HttpError::Closed)));
    }

    #[test]
    fn malformed_requests_rejected() {
        for raw in [
            "GARBAGE\r\n\r\n",
            "GET /x SPDY/3\r\n\r\n",
            "GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ] {
            assert!(
                matches!(parse(raw), Err(HttpError::BadRequest(_))),
                "{raw:?} should be a bad request"
            );
        }
    }

    #[test]
    fn connection_close_honored() {
        let req = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(req.wants_close());
    }

    #[test]
    fn header_limits_enforced() {
        let long = format!("GET / HTTP/1.1\r\nX: {}\r\n\r\n", "a".repeat(9000));
        assert!(matches!(parse(&long), Err(HttpError::BadRequest(m)) if m.contains("too long")));
        let many = format!(
            "GET / HTTP/1.1\r\n{}\r\n",
            (0..70).map(|i| format!("H{i}: v\r\n")).collect::<String>()
        );
        assert!(matches!(parse(&many), Err(HttpError::BadRequest(m)) if m.contains("too many")));
    }

    /// Serves a fixed prefix, then every further read times out — the
    /// shape of a slowloris peer behind `set_read_timeout`.
    struct StallAfter<'a> {
        data: &'a [u8],
    }

    impl io::Read for StallAfter<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let take = self.data.len().min(buf.len());
            if take == 0 {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "stalled"));
            }
            buf[..take].copy_from_slice(&self.data[..take]);
            self.data = &self.data[take..];
            Ok(take)
        }
    }

    impl BufRead for StallAfter<'_> {
        fn fill_buf(&mut self) -> io::Result<&[u8]> {
            if self.data.is_empty() {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "stalled"));
            }
            Ok(self.data)
        }

        fn consume(&mut self, amt: usize) {
            self.data = &self.data[amt..];
        }
    }

    #[test]
    fn expired_deadline_times_out_an_idle_connection_quietly() {
        let past = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let err = read_request_deadline(&mut BufReader::new(&b""[..]), 1024, Some(past))
            .unwrap_err();
        assert!(matches!(err, HttpError::Timeout { mid_request: false }), "{err}");
    }

    #[test]
    fn stall_after_the_request_line_is_a_mid_request_timeout() {
        // Idle stall before any byte: quiet close, no 408.
        let err = read_request(&mut StallAfter { data: b"" }, 1024).unwrap_err();
        assert!(matches!(err, HttpError::Timeout { mid_request: false }), "{err}");
        // Stall once the request line is in: maps to 408.
        let err = read_request(&mut StallAfter { data: b"GET / HTTP/1.1\r\n" }, 1024)
            .unwrap_err();
        assert!(matches!(err, HttpError::Timeout { mid_request: true }), "{err}");
        // Stall inside the declared body: still mid-request.
        let err = read_request(
            &mut StallAfter { data: b"POST /x HTTP/1.1\r\nContent-Length: 9\r\n\r\nhi" },
            1024,
        )
        .unwrap_err();
        assert!(matches!(err, HttpError::Timeout { mid_request: true }), "{err}");
    }

    #[test]
    fn timeout_reason_phrase_exists() {
        assert_eq!(status_reason(408), "Request Timeout");
    }

    #[test]
    fn responses_serialize_with_headers() {
        let mut out = Vec::new();
        Response::json(503, "{}".into())
            .with_header("Retry-After", "1")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn url_decoding_handles_escapes() {
        assert_eq!(url_decode("a+b%2Fc"), "a b/c");
        assert_eq!(url_decode("100%"), "100%");
    }
}
