//! Durability end-to-end: a server with a `data_dir` is stopped and a new
//! process-equivalent (fresh `Server`, same directory) takes over. Job
//! results, the checkpoint registry, and deletions must all survive, and
//! recovered results must be byte-identical to what the first server
//! served.

use std::time::{Duration, Instant};

use nptsn::{Planner, PlannerConfig};
use nptsn_format::parse_problem;
use nptsn_nn::{params_to_bytes, Module};
use nptsn_serve::{Client, ServeConfig, Server};

const DOC: &str = "\
[nodes]
es a
es b
sw s0
sw s1
[links]
a s0
a s1
b s0
b s1
s0 s1
[flows]
a b 500 128
";

fn bind(data_dir: &std::path::Path) -> (Server, Client) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_depth: 8,
        data_dir: Some(data_dir.to_string_lossy().into_owned()),
        ..ServeConfig::default()
    })
    .expect("bind with a data dir");
    let client = Client::new(server.local_addr());
    (server, client)
}

fn json_u64(body: &str, key: &str) -> u64 {
    let marker = format!("\"{key}\":");
    let at = body.find(&marker).unwrap_or_else(|| panic!("no {key} in {body}"));
    body[at + marker.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric {key} in {body}"))
}

fn poll_terminal(client: &mut Client, id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let body = client.get(&format!("/jobs/{id}")).expect("poll").text();
        if ["done", "failed", "cancelled"]
            .iter()
            .any(|s| body.contains(&format!("\"state\":\"{s}\"")))
        {
            return body;
        }
        assert!(Instant::now() < deadline, "job {id} never finished: {body}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn results_registry_and_deletions_survive_a_restart() {
    let dir = std::env::temp_dir().join(format!("nptsn-serve-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // A structurally valid checkpoint for this problem's architecture.
    let parsed = parse_problem(DOC).unwrap();
    let planner = Planner::new(parsed.problem.clone(), PlannerConfig::quick());
    let checkpoint = params_to_bytes(&planner.build_policy().parameters());

    // ---- First server: do real work, then drain cleanly. ----
    let (verify_id, verify_result, deleted_id, max_id) = {
        let (server, mut client) = bind(&dir);

        let put = client.put("/checkpoints/prod", &checkpoint).unwrap();
        assert_eq!(put.status, 200, "{}", put.text());
        assert_eq!(json_u64(&put.text(), "version"), 1);

        let plan = "[switches]\ns0 A\n[plan-links]\na s0\nb s0\n";
        let body = format!("{DOC}{plan}");
        let submit = client.post("/jobs/verify", body.as_bytes()).unwrap();
        assert_eq!(submit.status, 202, "{}", submit.text());
        let verify_id = json_u64(&submit.text(), "id");
        poll_terminal(&mut client, verify_id);
        let verify_result = client.get(&format!("/jobs/{verify_id}/result")).unwrap();
        assert_eq!(verify_result.status, 200);

        // A finished job the operator deletes must stay deleted.
        let doomed = client.post("/jobs/burn?millis=1", &[]).unwrap();
        assert_eq!(doomed.status, 202);
        let deleted_id = json_u64(&doomed.text(), "id");
        poll_terminal(&mut client, deleted_id);
        let deleted = client.delete(&format!("/jobs/{deleted_id}")).unwrap();
        assert_eq!(deleted.status, 200, "{}", deleted.text());
        assert!(deleted.text().contains("\"state\":\"deleted\""), "{}", deleted.text());
        assert_eq!(client.get(&format!("/jobs/{deleted_id}")).unwrap().status, 404);

        let shutdown = client.post("/shutdown", &[]).unwrap();
        assert_eq!(shutdown.status, 200);
        server.wait();
        (verify_id, verify_result.body, deleted_id, deleted_id.max(verify_id))
    };

    // ---- Second server on the same directory. ----
    let (server, mut client) = bind(&dir);

    // The verify job is back, terminal, with a byte-identical result.
    let status = client.get(&format!("/jobs/{verify_id}")).unwrap();
    assert_eq!(status.status, 200, "{}", status.text());
    assert!(status.text().contains("\"state\":\"done\""), "{}", status.text());
    let result = client.get(&format!("/jobs/{verify_id}/result")).unwrap();
    assert_eq!(result.status, 200);
    assert_eq!(result.body, verify_result, "recovered result is not byte-identical");

    // The deletion survived too.
    assert_eq!(client.get(&format!("/jobs/{deleted_id}")).unwrap().status, 404);

    // The registry survived: same bytes, same version, and a named infer
    // job runs against it without re-uploading.
    let fetched = client.get("/checkpoints/prod").unwrap();
    assert_eq!(fetched.status, 200);
    assert_eq!(fetched.header("x-checkpoint-version"), Some("1"));
    assert_eq!(fetched.body, checkpoint);

    let infer = client
        .post("/jobs/infer?checkpoint=prod&attempts=2&seed=0", DOC.as_bytes())
        .unwrap();
    assert_eq!(infer.status, 202, "{}", infer.text());
    let infer_id = json_u64(&infer.text(), "id");
    // Ids never rewind past the pre-restart watermark, even though the
    // highest pre-restart id was deleted.
    assert!(infer_id > max_id, "id {infer_id} reissued at or below watermark {max_id}");
    let body = poll_terminal(&mut client, infer_id);
    // An untrained policy may or may not find a plan; both are clean ends.
    assert!(
        body.contains("\"state\":\"done\"") || body.contains("\"state\":\"failed\""),
        "{body}"
    );

    server.stop();
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
