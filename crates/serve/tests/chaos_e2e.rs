//! Chaos and timeout end-to-end tests over real TCP.
//!
//! Separate test binary: an armed [`nptsn_chaos::FaultPlan`] is
//! process-global, and cargo runs test binaries sequentially, so plans
//! armed here cannot leak into the clean `e2e` tests. Within this binary
//! every test takes `arm_scoped` (with an empty plan when it needs no
//! faults) so the armed state never crosses test threads.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use nptsn_chaos::{arm_scoped, FaultKind, FaultPlan, SiteRule};
use nptsn_serve::{BackoffConfig, Client, JobState, ServeConfig, Server};

fn start(config: ServeConfig) -> Server {
    Server::bind(config).expect("bind an ephemeral port")
}

fn json_u64(body: &str, key: &str) -> u64 {
    let marker = format!("\"{key}\":");
    let at = body.find(&marker).unwrap_or_else(|| panic!("no {key} in {body}"));
    body[at + marker.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric {key} in {body}"))
}

/// Satellite fix: server connections are bounded by socket timeouts and a
/// header deadline — a stalled, idle, or byte-dripping (slowloris) peer
/// cannot pin a connection thread, and the server keeps serving others.
#[test]
fn stalled_and_slowloris_connections_are_timed_out() {
    let _guard = arm_scoped(FaultPlan::new(0)); // serialize only; no faults
    let server = start(ServeConfig {
        workers: 1,
        queue_depth: 4,
        io_timeout_ms: 200,
        header_deadline_ms: 400,
        ..ServeConfig::default()
    });
    let addr = server.local_addr();

    // A peer that sends part of a request line and stalls gets a 408 and
    // a closed connection once the read times out.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(b"GET /healthz HT").unwrap();
        let started = Instant::now();
        let mut response = String::new();
        raw.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 408"), "{response}");
        assert!(started.elapsed() < Duration::from_secs(5), "timeout took too long");
    }

    // An idle connection that never sends a byte is closed quietly — no
    // 408 goes out for a keep-alive session that simply ended.
    {
        let raw = TcpStream::connect(addr).unwrap();
        let mut response = String::new();
        (&raw).read_to_string(&mut response).unwrap();
        assert!(response.is_empty(), "idle close should send nothing: {response}");
    }

    // A slowloris peer drips header bytes fast enough to reset the
    // per-read socket timeout; the total header deadline still kills it.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let started = Instant::now();
        let mut response = Vec::new();
        loop {
            // One header byte every 50ms: each read succeeds well inside
            // the 200ms socket timeout.
            raw.write_all(b"X").ok();
            std::thread::sleep(Duration::from_millis(50));
            let mut buf = [0u8; 512];
            raw.set_nonblocking(true).unwrap();
            match raw.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => response.extend_from_slice(&buf[..n]),
                Err(_) => {}
            }
            raw.set_nonblocking(false).unwrap();
            assert!(
                started.elapsed() < Duration::from_secs(10),
                "slowloris connection was never terminated"
            );
        }
        let text = String::from_utf8_lossy(&response);
        assert!(text.starts_with("HTTP/1.1 408"), "expected 408, got: {text}");
    }

    // Throughout all of that, a well-behaved client is still served.
    let mut client = Client::new(addr);
    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);

    server.stop();
    server.wait();
}

/// The in-tree client's capped jittered backoff turns `503` backpressure
/// into an eventual `202`, honoring `Retry-After` (capped) between tries.
#[test]
fn client_backoff_rides_out_backpressure() {
    let _guard = arm_scoped(FaultPlan::new(0));
    let server = start(ServeConfig { workers: 1, queue_depth: 1, ..ServeConfig::default() });
    let addr = server.local_addr();

    // Occupy the single worker and fill the one queue slot.
    let mut plain = Client::new(addr);
    let running = plain.post("/jobs/burn?millis=400", &[]).unwrap();
    assert_eq!(running.status, 202);
    let deadline = Instant::now() + Duration::from_secs(10);
    let queued = loop {
        let r = plain.post("/jobs/burn?millis=1", &[]).unwrap();
        if r.status == 202 {
            break r;
        }
        // The first job may not be running yet; the slot frees when it is.
        assert!(Instant::now() < deadline, "never got a job queued");
        std::thread::sleep(Duration::from_millis(5));
    };
    let _ = queued;
    // Now the queue is full (one running, one queued) — without backoff
    // this submission is a plain 503.
    let refused = plain.post("/jobs/burn?millis=1", &[]).unwrap();
    assert_eq!(refused.status, 503);
    assert!(refused.header("retry-after").is_some());

    // With backoff, the same submission retries through the 503s and
    // lands once the burn jobs drain.
    let before = nptsn_obs::telemetry().snapshot();
    let mut retrying = Client::new(addr).with_backoff(BackoffConfig {
        max_retries: 40,
        base_ms: 40,
        cap_ms: 200, // also caps the server's 1s Retry-After hint
        seed: 11,
        ..BackoffConfig::default()
    });
    let accepted = retrying.post("/jobs/burn?millis=1", &[]).unwrap();
    assert_eq!(accepted.status, 202, "{}", accepted.text());
    let after = nptsn_obs::telemetry().snapshot();
    assert!(
        after.recovery_client_retries > before.recovery_client_retries,
        "the accepted submission should have gone through at least one retry"
    );

    server.stop();
    server.wait();
}

/// A poisoned job inside a fused infer batch fails alone. Chaos site
/// `infer.batch` fires once per lane before its episodes start; with
/// `every=3 max=1` exactly the third lane of the batch is poisoned. That
/// job fails with the injected error while its two batch-mates complete
/// with identical outcomes — per-job error isolation inside one fused
/// forward.
#[test]
fn poisoned_infer_job_in_a_batch_fails_alone() {
    let _guard = arm_scoped(FaultPlan::new(7).with_rule(SiteRule {
        site: "infer.batch".to_string(),
        kind: FaultKind::Error,
        every: 3,
        rate: 1.0,
        max_count: 1,
    }));
    let server = start(ServeConfig { workers: 1, queue_depth: 16, ..ServeConfig::default() });
    let queue = server.queue();
    let mut client = Client::new(server.local_addr());

    const DOC: &str = "\
[nodes]
es a
es b
sw s0
sw s1
[links]
a s0
a s1
b s0
b s1
s0 s1
[flows]
a b 500 128
";
    let parsed = nptsn_format::parse_problem(DOC).expect("fixture parses");
    let planner = nptsn::Planner::new(parsed.problem.clone(), nptsn::PlannerConfig::quick());
    let bytes = nptsn_nn::params_to_bytes(&nptsn_nn::Module::parameters(&planner.build_policy()));
    let put = client.put("/checkpoints/smoke", &bytes).unwrap();
    assert_eq!(put.status, 200, "{}", put.text());

    // Pile three identical infer jobs behind a burn so the single worker
    // fuses them into one batch.
    let burn = client.post("/jobs/burn?millis=1000", &[]).unwrap();
    assert_eq!(burn.status, 202, "{}", burn.text());
    let burn_id = json_u64(&burn.text(), "id");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let body = client.get(&format!("/jobs/{burn_id}")).unwrap().text();
        if body.contains("\"state\":\"running\"") {
            break;
        }
        assert!(Instant::now() < deadline, "burn job never started: {body}");
        std::thread::sleep(Duration::from_millis(5));
    }
    let ids: Vec<u64> = (0..3)
        .map(|_| {
            let r = client
                .post("/jobs/infer?checkpoint=smoke&attempts=2&seed=5", DOC.as_bytes())
                .unwrap();
            assert_eq!(r.status, 202, "{}", r.text());
            json_u64(&r.text(), "id")
        })
        .collect();

    let deadline = Instant::now() + Duration::from_secs(60);
    for &id in &ids {
        loop {
            let body = client.get(&format!("/jobs/{id}")).unwrap().text();
            let terminal = ["done", "failed", "cancelled"]
                .iter()
                .any(|s| body.contains(&format!("\"state\":\"{s}\"")));
            if terminal {
                break;
            }
            assert!(Instant::now() < deadline, "job {id} never finished: {body}");
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    server.stop();
    server.wait();

    let snaps: Vec<nptsn_serve::JobSnapshot> =
        ids.iter().map(|&id| queue.snapshot(id).expect("job tracked")).collect();
    let poisoned: Vec<&nptsn_serve::JobSnapshot> = snaps
        .iter()
        .filter(|s| {
            s.error.as_deref().is_some_and(|e| e.contains("chaos: injected fault at infer.batch"))
        })
        .collect();
    assert_eq!(
        poisoned.len(),
        1,
        "exactly one lane must carry the injected fault: {:?}",
        snaps.iter().map(|s| (s.state, s.error.clone())).collect::<Vec<_>>()
    );
    let survivors: Vec<&nptsn_serve::JobSnapshot> = snaps
        .iter()
        .filter(|s| !s.error.as_deref().is_some_and(|e| e.contains("chaos")))
        .collect();
    assert_eq!(survivors.len(), 2);
    assert_eq!(
        (survivors[0].state, &survivors[0].outcome, &survivors[0].error),
        (survivors[1].state, &survivors[1].outcome, &survivors[1].error),
        "the two healthy batch-mates diverged"
    );
    // The injection really landed at the batch site, exactly once.
    let counts = nptsn_chaos::injection_counts();
    assert!(
        counts.iter().any(|(site, n)| site == "infer.batch" && *n == 1),
        "no infer.batch injection recorded: {counts:?}"
    );
}

/// Chaos site `obs.flush`: a faulted timeline flush degrades the trace —
/// the job itself completes and is served untouched, the failure is
/// counted, and `GET /jobs/<id>/trace` answers with an empty timeline
/// instead of an error. Observability must never break the job contract.
#[test]
fn a_faulted_trace_flush_degrades_the_timeline_never_the_job() {
    let _guard = arm_scoped(FaultPlan::new(3).with_rule(SiteRule {
        site: "obs.flush".to_string(),
        kind: FaultKind::Error,
        every: 0,
        rate: 1.0,
        max_count: 0,
    }));
    let failures = nptsn_obs::telemetry().registry.counter(
        "nptsn_obs_trace_flush_failures_total",
        "Job trace timelines that failed to persist (degraded, job unaffected)",
    );
    let before = failures.get();
    let server = start(ServeConfig { workers: 1, ..ServeConfig::default() });
    let mut client = Client::new(server.local_addr());

    // Stamp a trace context onto the submission, as the router would —
    // without one there is no timeline to flush and the site never runs.
    let trace = nptsn_obs::TraceContext::from_seed(0xfaded);
    let accepted = client
        .post_with_headers(
            "/jobs/burn?millis=1",
            &[(nptsn_obs::TRACE_HEADER, trace.header_value())],
            &[],
        )
        .unwrap();
    assert_eq!(accepted.status, 202, "{}", accepted.text());
    let id = json_u64(&accepted.text(), "id");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let body = client.get(&format!("/jobs/{id}")).unwrap().text();
        if body.contains("\"state\":\"done\"") {
            break;
        }
        assert!(Instant::now() < deadline, "the job never finished: {body}");
        std::thread::sleep(Duration::from_millis(5));
    }

    // The flush runs just after the job goes terminal; wait for its
    // failure to be counted rather than racing it.
    let deadline = Instant::now() + Duration::from_secs(10);
    while failures.get() == before {
        assert!(Instant::now() < deadline, "no flush failure was counted");
        std::thread::sleep(Duration::from_millis(5));
    }
    let counts = nptsn_chaos::injection_counts();
    assert!(
        counts.iter().any(|(site, n)| site == "obs.flush" && *n > 0),
        "no obs.flush injection recorded: {counts:?}"
    );

    // The timeline degraded to empty; the trace route still answers 200.
    let timeline = client.get(&format!("/jobs/{id}/trace")).unwrap();
    assert_eq!(timeline.status, 200, "{}", timeline.text());
    assert!(timeline.text().contains("\"spans\":[]"), "{}", timeline.text());

    server.stop();
    server.wait();
}

/// A seeded fault storm over the full serve stack: dropped accepts,
/// dropped response writes, and failing jobs. The retrying client makes
/// progress through all of it, nothing hangs, and at drain time every
/// accepted job has a terminal state — zero lost jobs.
#[test]
fn seeded_storm_loses_no_jobs_and_drains_clean() {
    let _guard = arm_scoped(
        FaultPlan::new(1337)
            .with_rule(SiteRule {
                site: "serve.accept".to_string(),
                kind: FaultKind::Error,
                every: 0,
                rate: 0.25,
                max_count: 0,
            })
            .with_rule(SiteRule {
                site: "serve.conn.write".to_string(),
                kind: FaultKind::Error,
                every: 0,
                rate: 0.15,
                max_count: 0,
            })
            .with_rule(SiteRule {
                site: "serve.job".to_string(),
                kind: FaultKind::Error,
                every: 0,
                rate: 0.4,
                max_count: 0,
            }),
    );
    let before = nptsn_obs::telemetry().snapshot();
    let server = start(ServeConfig { workers: 2, queue_depth: 8, ..ServeConfig::default() });
    let queue = server.queue();
    let metrics = server.metrics();

    let mut client = Client::new(server.local_addr()).with_backoff(BackoffConfig {
        max_retries: 12,
        base_ms: 5,
        cap_ms: 50,
        seed: 99,
        ..BackoffConfig::default()
    });

    // Drive a stream of jobs through the storm. Connection-level faults
    // are invisible here thanks to the retries; job-level faults surface
    // as `failed` — a recorded outcome, not a loss.
    let mut ids = Vec::new();
    for _ in 0..12 {
        let response = client.post("/jobs/burn?millis=1", &[]).expect("submit through storm");
        if response.status == 202 {
            ids.push(json_u64(&response.text(), "id"));
        } else {
            assert_eq!(response.status, 503, "{}", response.text());
        }
    }
    assert!(!ids.is_empty(), "no job made it through the storm");

    // Every accepted job reaches a terminal state — polling through the
    // same faulty stack.
    let deadline = Instant::now() + Duration::from_secs(30);
    for &id in &ids {
        loop {
            let body = client.get(&format!("/jobs/{id}")).expect("poll through storm").text();
            let done = ["done", "failed", "cancelled"]
                .iter()
                .any(|s| body.contains(&format!("\"state\":\"{s}\"")));
            if done {
                break;
            }
            assert!(Instant::now() < deadline, "job {id} hung in the storm: {body}");
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    server.stop();
    server.wait();

    // Accounting: submitted == completed + failed + cancelled, exactly.
    let submitted = metrics.jobs_submitted.get();
    let terminal =
        metrics.jobs_completed.get() + metrics.jobs_failed.get() + metrics.jobs_cancelled.get();
    assert_eq!(submitted, terminal, "a job was lost in the storm");
    for &id in &ids {
        let snap = queue.snapshot(id).expect("job tracked after drain");
        assert!(snap.state.is_terminal(), "job {id} not terminal after drain");
        if snap.state == JobState::Failed {
            assert!(snap.error.is_some(), "failed job {id} has no error message");
        }
    }

    // The storm actually stormed, and the injections reached telemetry.
    let after = nptsn_obs::telemetry().snapshot();
    assert!(after.chaos_faults > before.chaos_faults, "no faults were injected");
    let counts = nptsn_chaos::injection_counts();
    assert!(
        counts.iter().any(|(site, n)| site == "serve.job" && *n > 0),
        "no job faults recorded: {counts:?}"
    );
}
