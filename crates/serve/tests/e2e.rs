//! End-to-end tests over real TCP: a bound server, the in-tree client, and
//! the full submit → poll → fetch → verify loop, plus backpressure,
//! drain-on-shutdown and checkpoint-upload hardening.

use std::sync::Arc;
use std::time::{Duration, Instant};

use nptsn::{FailureAnalyzer, Planner, PlannerConfig, Solution, Verdict};
use nptsn_format::{parse_plan, parse_problem, write_plan};
use nptsn_nn::{params_from_bytes, params_to_bytes, Module};
use nptsn_serve::{Client, ClientResponse, JobState, ServeConfig, Server};

const DOC: &str = "\
[nodes]
es a
es b
sw s0
sw s1
[links]
a s0
a s1
b s0
b s1
s0 s1
[flows]
a b 500 128
";

fn start(workers: usize, queue_depth: usize) -> (Server, Client) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_depth,
        ..ServeConfig::default()
    })
    .expect("bind an ephemeral port");
    let client = Client::new(server.local_addr());
    (server, client)
}

/// Pulls the number following `"key":` out of a flat JSON document.
fn json_u64(body: &str, key: &str) -> u64 {
    let marker = format!("\"{key}\":");
    let at = body.find(&marker).unwrap_or_else(|| panic!("no {key} in {body}"));
    body[at + marker.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric {key} in {body}"))
}

fn submit(client: &mut Client, path: &str, body: &[u8]) -> u64 {
    let response = client.post(path, body).expect("submit");
    assert_eq!(response.status, 202, "{}", response.text());
    json_u64(&response.text(), "id")
}

/// Polls `GET /jobs/<id>` until the job reaches a terminal state,
/// returning the final status body and the largest `epochs_completed`
/// observed across the polls.
fn poll_until_done(client: &mut Client, id: u64) -> (String, u64) {
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut max_epochs = 0;
    loop {
        let response = client.get(&format!("/jobs/{id}")).expect("poll");
        assert_eq!(response.status, 200, "{}", response.text());
        let body = response.text();
        max_epochs = max_epochs.max(json_u64(&body, "epochs_completed"));
        let terminal = [
            JobState::Done.label(),
            JobState::Failed.label(),
            JobState::Cancelled.label(),
        ]
        .iter()
        .any(|s| body.contains(&format!("\"state\":\"{s}\"")));
        if terminal {
            return (body, max_epochs);
        }
        assert!(Instant::now() < deadline, "job {id} never finished: {body}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn state_of(body: &str) -> &str {
    for state in ["submitted", "running", "done", "failed", "cancelled"] {
        if body.contains(&format!("\"state\":\"{state}\"")) {
            return state;
        }
    }
    panic!("no state in {body}");
}

#[test]
fn plan_poll_fetch_verify_roundtrip() {
    let (server, mut client) = start(2, 8);

    // Submit an RL plan job with a tiny training budget.
    let id = submit(&mut client, "/jobs/plan?epochs=2&steps=48&seed=1", DOC.as_bytes());

    // Poll until done; the status stream must surface live epoch stats.
    let (body, max_epochs) = poll_until_done(&mut client, id);
    assert_eq!(state_of(&body), "done", "{body}");
    assert!(max_epochs >= 1, "no EpochStats update observed while polling: {body}");
    assert!(body.contains("\"latest_epoch\":{"), "{body}");
    assert!(body.contains("\"mean_episode_return\":"), "{body}");
    assert!(body.contains("\"checkpoint_available\":true"), "{body}");

    // Fetch the plan file.
    let plan = client.get(&format!("/jobs/{id}/plan")).unwrap();
    assert_eq!(plan.status, 200);
    let plan_text = plan.text();
    assert!(plan_text.contains("[switches]"), "{plan_text}");

    // The service's verify endpoint and a direct in-process analysis (the
    // CLI's `verify` code path) must agree on the verdict.
    let parsed = parse_problem(DOC).unwrap();
    let topology = parse_plan(&parsed, &plan_text).unwrap();
    let direct = FailureAnalyzer::new().analyze(&parsed.problem, &topology);
    assert_eq!(direct, Verdict::Reliable);

    let verify_body = format!("{DOC}{plan_text}");
    let verify_id = submit(&mut client, "/jobs/verify", verify_body.as_bytes());
    let (status, _) = poll_until_done(&mut client, verify_id);
    assert_eq!(state_of(&status), "done", "{status}");
    assert!(status.contains("\"reliable\":true"), "{status}");
    let result = client.get(&format!("/jobs/{verify_id}/result")).unwrap();
    assert_eq!(result.status, 200);
    let report = result.text();
    assert!(report.contains("\"verdict\":\"reliable\""), "{report}");
    assert!(report.contains("\"scenarios_checked\":"), "{report}");

    // The trained policy checkpoint round-trips through the infer
    // endpoint: download it, upload it, plan without learning.
    let checkpoint = client.get(&format!("/jobs/{id}/checkpoint")).unwrap();
    assert_eq!(checkpoint.status, 200);
    assert!(checkpoint.body.starts_with(b"NPTSNCK"), "not a checkpoint");

    let mut infer_body = DOC.as_bytes().to_vec();
    infer_body.extend_from_slice(&checkpoint.body);
    let infer = client
        .post_with_headers(
            "/jobs/infer?attempts=4&seed=1",
            &[("X-Problem-Length", DOC.len().to_string())],
            &infer_body,
        )
        .unwrap();
    assert_eq!(infer.status, 202, "{}", infer.text());
    let infer_id = json_u64(&infer.text(), "id");
    let (infer_status, _) = poll_until_done(&mut client, infer_id);
    assert_eq!(state_of(&infer_status), "done", "{infer_status}");
    let inferred_plan = client.get(&format!("/jobs/{infer_id}/plan")).unwrap();
    assert_eq!(inferred_plan.status, 200);
    assert!(inferred_plan.text().contains("[switches]"));

    // Metrics reflect the work done, over the same keep-alive connection.
    let metrics = client.get("/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    assert!(text.contains("nptsn_jobs_completed_total 3"), "{text}");
    assert!(text.contains("nptsn_planner_epochs_total 2"), "{text}");
    assert!(text.contains("nptsn_analyzer_scenarios_checked_total"), "{text}");
    assert!(text.contains("nptsn_http_request_seconds_bucket"), "{text}");

    server.stop();
    server.wait();
}

#[test]
fn full_queue_answers_503_with_retry_after() {
    let (server, mut client) = start(1, 2);

    // Occupy the single worker, then wait until the job is running so the
    // queue occupancy is deterministic.
    let running = submit(&mut client, "/jobs/burn?millis=60000", &[]);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let body = client.get(&format!("/jobs/{running}")).unwrap().text();
        if state_of(&body) == "running" {
            break;
        }
        assert!(Instant::now() < deadline, "burn job never started: {body}");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Fill the queue to its depth...
    let queued_a = submit(&mut client, "/jobs/burn?millis=1", &[]);
    let queued_b = submit(&mut client, "/jobs/burn?millis=1", &[]);

    // ...and the next submission is backpressure, not an error.
    let rejected = client.post("/jobs/burn?millis=1", &[]).unwrap();
    assert_eq!(rejected.status, 503, "{}", rejected.text());
    assert_eq!(rejected.header("retry-after"), Some("1"));
    assert!(rejected.text().contains("queue full"), "{}", rejected.text());

    // Cancelling a queued job frees a slot immediately.
    let cancelled = client.delete(&format!("/jobs/{queued_a}")).unwrap();
    assert_eq!(cancelled.status, 200);
    assert!(cancelled.text().contains("\"state\":\"cancelled\""));
    let accepted = client.post("/jobs/burn?millis=1", &[]).unwrap();
    assert_eq!(accepted.status, 202, "{}", accepted.text());

    // Cancelling the running job signals it; it winds down at the next
    // cancellation point.
    let signalled = client.delete(&format!("/jobs/{running}")).unwrap();
    assert_eq!(signalled.status, 202);
    assert!(signalled.text().contains("cancelling"));
    let (final_status, _) = poll_until_done(&mut client, running);
    assert_eq!(state_of(&final_status), "cancelled", "{final_status}");

    // Fetching the plan of a cancelled job is a 409, not a hang or crash.
    let conflict = client.get(&format!("/jobs/{running}/plan")).unwrap();
    assert_eq!(conflict.status, 409);
    let _ = queued_b;

    server.stop();
    server.wait();
}

#[test]
fn shutdown_drains_accepted_jobs_without_dropping_results() {
    let (server, mut client) = start(1, 8);
    let queue = server.queue();
    let metrics = server.metrics();

    let ids: Vec<u64> = (0..3)
        .map(|_| submit(&mut client, "/jobs/burn?millis=100", &[]))
        .collect();

    // Shutdown over HTTP: the response arrives and the connection closes.
    let response = client.post("/shutdown", &[]).unwrap();
    assert_eq!(response.status, 200);
    assert!(response.text().contains("shutting down"));

    // wait() returns only after the queue is fully drained.
    server.wait();

    for id in &ids {
        let snapshot = queue.snapshot(*id).expect("job still tracked after drain");
        assert_eq!(snapshot.state, JobState::Done, "job {id} was dropped by shutdown");
    }
    assert_eq!(metrics.jobs_completed.get(), 3);
    assert_eq!(metrics.jobs_queued.get(), 0);
}

#[test]
fn checkpoint_uploads_are_hardened() {
    let (server, mut client) = start(1, 4);

    // A structurally valid checkpoint for this problem's architecture.
    let parsed = parse_problem(DOC).unwrap();
    let planner = Planner::new(parsed.problem.clone(), PlannerConfig::quick());
    let policy = planner.build_policy();
    let valid = params_to_bytes(&policy.parameters());

    let post_infer = |client: &mut Client, checkpoint: &[u8]| -> ClientResponse {
        let mut body = DOC.as_bytes().to_vec();
        body.extend_from_slice(checkpoint);
        client
            .post_with_headers(
                "/jobs/infer?attempts=2&seed=0",
                &[("X-Problem-Length", DOC.len().to_string())],
                &body,
            )
            .expect("request completes")
    };

    // Truncated body: checksum/framing fails, clean 422.
    let truncated = post_infer(&mut client, &valid[..valid.len() - 5]);
    assert_eq!(truncated.status, 422, "{}", truncated.text());
    assert!(truncated.text().contains("checkpoint"), "{}", truncated.text());

    // Flipped payload bit: the CRC-32 trailer catches it.
    let mut corrupt = valid.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x40;
    let bad_crc = post_infer(&mut client, &corrupt);
    assert_eq!(bad_crc.status, 422, "{}", bad_crc.text());

    // Garbage magic.
    let garbage = post_infer(&mut client, b"GARBAGE-not-a-checkpoint");
    assert_eq!(garbage.status, 422, "{}", garbage.text());

    // Missing framing header.
    let mut body = DOC.as_bytes().to_vec();
    body.extend_from_slice(&valid);
    let unframed = client.post("/jobs/infer", &body).unwrap();
    assert_eq!(unframed.status, 400, "{}", unframed.text());

    // Oversized upload: rejected before the body is buffered.
    let (small_server, mut small_client) = {
        let server = Server::bind(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            queue_depth: 4,
            max_body_bytes: 16 * 1024,
            ..ServeConfig::default()
        })
        .unwrap();
        let client = Client::new(server.local_addr());
        (server, client)
    };
    let oversized = small_client.post("/jobs/infer", &vec![0u8; 64 * 1024]).unwrap();
    assert_eq!(oversized.status, 413, "{}", oversized.text());
    let health = small_client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    small_server.stop();
    small_server.wait();

    // No partial state: after every rejection, zero jobs were submitted
    // and a valid upload still works end to end.
    let metrics_text = client.get("/metrics").unwrap().text();
    assert!(metrics_text.contains("nptsn_jobs_submitted_total 0"), "{metrics_text}");

    let ok = post_infer(&mut client, &valid);
    assert_eq!(ok.status, 202, "{}", ok.text());
    let id = json_u64(&ok.text(), "id");
    let (status, _) = poll_until_done(&mut client, id);
    // An untrained policy may or may not find a plan; either way the job
    // terminates cleanly rather than poisoning the worker.
    assert!(
        matches!(state_of(&status), "done" | "failed"),
        "unexpected terminal state: {status}"
    );

    server.stop();
    server.wait();
}

#[test]
fn keep_alive_and_malformed_requests() {
    let (server, mut client) = start(1, 4);

    // Many requests over one connection.
    for _ in 0..5 {
        let health = client.get("/healthz").unwrap();
        assert_eq!(health.status, 200);
    }
    let metrics = client.get("/metrics").unwrap().text();
    let requests: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("nptsn_http_requests_total "))
        .and_then(|v| v.parse().ok())
        .expect("request counter present");
    assert!(requests >= 6, "expected keep-alive requests to accumulate: {requests}");

    // Unknown endpoints and wrong methods are clean errors...
    assert_eq!(client.get("/nope").unwrap().status, 404);
    assert_eq!(client.delete("/metrics").unwrap().status, 405);
    assert_eq!(client.get("/jobs/12345").unwrap().status, 404);

    // ...and raw garbage gets a 400 and a closed connection, while the
    // server keeps serving everyone else.
    {
        use std::io::{Read, Write};
        let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
        raw.write_all(b"NOT-HTTP\r\n\r\n").unwrap();
        let mut response = String::new();
        raw.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    }
    assert_eq!(client.get("/healthz").unwrap().status, 200);

    server.stop();
    server.wait();
}

/// Tentpole e2e: concurrent infer jobs against *mixed* checkpoints. The
/// single worker coalesces compatible jobs per checkpoint into fused
/// batched forwards, and every job's result is identical to a solo
/// in-process run of the same (checkpoint, attempts, seed) — batching
/// never cross-contaminates results between groups.
#[test]
fn concurrent_mixed_checkpoint_infer_jobs_batch_without_contamination() {
    const DOC2: &str = "\
[nodes]
es a
es b
sw s0
sw s1
sw s2
[links]
a s0
a s1
a s2
b s0
b s1
b s2
s0 s1
[flows]
a b 500 128
a b 1000 256
";
    // One worker, so everything submitted behind the burn job piles up
    // and the leader finds its batch-mates already queued.
    let (server, mut client) = start(1, 16);

    // Register one checkpoint per problem architecture.
    for (name, doc) in [("ck-a", DOC), ("ck-b", DOC2)] {
        let parsed = parse_problem(doc).unwrap();
        let planner = Planner::new(parsed.problem.clone(), PlannerConfig::quick());
        let bytes = params_to_bytes(&planner.build_policy().parameters());
        let put = client.put(&format!("/checkpoints/{name}"), &bytes).unwrap();
        assert_eq!(put.status, 200, "{}", put.text());
    }

    // The exact solo deployment the service performs for one infer job,
    // run in-process: restore the registered checkpoint, plan greedily.
    let reference = |doc: &str, attempts: usize, seed: u64| -> Option<Solution> {
        let parsed = parse_problem(doc).unwrap();
        let config = PlannerConfig {
            max_epochs: 1,
            steps_per_epoch: 1,
            seed,
            analyzer_workers: 1,
            ..PlannerConfig::quick()
        };
        let planner = Planner::new(parsed.problem.clone(), config);
        let policy = planner.build_policy();
        let bytes = params_to_bytes(
            &Planner::new(parsed.problem.clone(), PlannerConfig::quick())
                .build_policy()
                .parameters(),
        );
        params_from_bytes(&policy.parameters(), &bytes).unwrap();
        planner.plan_with_policy(&policy, attempts, seed)
    };

    // Occupy the worker so the infer submissions queue up behind it.
    let burn = submit(&mut client, "/jobs/burn?millis=1500", &[]);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let body = client.get(&format!("/jobs/{burn}")).unwrap().text();
        if state_of(&body) == "running" {
            break;
        }
        assert!(Instant::now() < deadline, "burn job never started: {body}");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Interleaved submissions against both checkpoints, with a duplicate
    // pair that must come back identical.
    let specs: Vec<(&str, &str, usize, u64)> = vec![
        ("ck-a", DOC, 2, 9),
        ("ck-b", DOC2, 2, 9),
        ("ck-a", DOC, 3, 21),
        ("ck-b", DOC2, 3, 21),
        ("ck-a", DOC, 2, 9), // duplicate of the first job
        ("ck-b", DOC2, 2, 9),
    ];
    let ids: Vec<u64> = specs
        .iter()
        .map(|(name, doc, attempts, seed)| {
            submit(
                &mut client,
                &format!("/jobs/infer?checkpoint={name}&attempts={attempts}&seed={seed}"),
                doc.as_bytes(),
            )
        })
        .collect();

    // Every job terminates with exactly its solo reference result.
    let mut bodies = Vec::new();
    for (&id, (_, doc, attempts, seed)) in ids.iter().zip(&specs) {
        let (body, _) = poll_until_done(&mut client, id);
        match reference(doc, *attempts, *seed) {
            Some(solution) => {
                assert_eq!(state_of(&body), "done", "job {id}: {body}");
                let plan = client.get(&format!("/jobs/{id}/plan")).unwrap();
                assert_eq!(plan.status, 200);
                assert_eq!(
                    plan.text(),
                    write_plan(&solution.topology),
                    "job {id} diverged from its solo reference"
                );
            }
            None => {
                assert_eq!(state_of(&body), "failed", "job {id}: {body}");
                assert!(body.contains("no valid plan"), "job {id}: {body}");
            }
        }
        bodies.push(body);
    }
    // The duplicate pair (same checkpoint, attempts, seed) agrees even
    // though the two jobs may have landed in different batches.
    assert_eq!(
        bodies[0].replace(&format!("\"id\":{}", ids[0]), ""),
        bodies[4].replace(&format!("\"id\":{}", ids[4]), ""),
        "identical submissions diverged"
    );

    // The worker actually fused batches: one per checkpoint group.
    let metrics = client.get("/metrics").unwrap().text();
    let batched: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("nptsn_infer_batched_forwards_total "))
        .and_then(|v| v.parse().ok())
        .expect("batched-forwards counter present");
    assert!(batched >= 2, "expected at least two fused batches: {batched}\n{metrics}");
    assert!(
        metrics.contains("nptsn_infer_batch_size_bucket"),
        "batch-size histogram missing:\n{metrics}"
    );

    server.stop();
    server.wait();
}

/// The shared JSON serializer is what both the CLI `--json` flag and the
/// verify endpoint emit — spot-check the document against a direct
/// analysis so the schema cannot drift silently.
#[test]
fn verify_endpoint_matches_direct_analysis() {
    let (server, mut client) = start(1, 4);

    // A deliberately fragile plan: one ASIL-A switch carries everything.
    let plan = "[switches]\ns0 A\n[plan-links]\na s0\nb s0\n";
    let body = format!("{DOC}{plan}");
    let id = submit(&mut client, "/jobs/verify", body.as_bytes());
    let (status, _) = poll_until_done(&mut client, id);
    assert_eq!(state_of(&status), "done", "{status}");
    assert!(status.contains("\"reliable\":false"), "{status}");

    let report = client.get(&format!("/jobs/{id}/result")).unwrap().text();
    assert!(report.contains("\"verdict\":\"unreliable\""), "{report}");
    assert!(report.contains("\"failed_switches\":[\"s0\"]"), "{report}");

    let parsed = parse_problem(DOC).unwrap();
    let topology = parse_plan(&parsed, plan).unwrap();
    let direct = FailureAnalyzer::new()
        .with_shared_cache(Arc::new(nptsn::ScenarioCache::new()))
        .try_analyze(&parsed.problem, &topology)
        .unwrap();
    assert!(!direct.verdict.is_reliable());
    let expected = nptsn_format::json::analysis_report_json(
        &parsed.problem,
        &direct,
        Some(topology.network_cost(parsed.problem.library())),
    );
    assert_eq!(report, expected, "endpoint and CLI serializers diverged");

    server.stop();
    server.wait();
}

/// Pins `/metrics` compatibility across the serve→obs registry move: every
/// pre-existing series name still renders, each with its `# HELP`/`# TYPE`
/// block, and the response declares the Prometheus text exposition
/// content type. A scrape config written against the pre-move service
/// must keep working unchanged.
#[test]
fn metrics_exposition_survives_the_registry_move() {
    let (server, mut client) = start(1, 4);

    // Drive one verify job through the queue so the planner/analyzer
    // telemetry series carry real samples, not just registrations.
    let plan = "[switches]\ns0 A\ns1 A\n[plan-links]\na s0\na s1\nb s0\nb s1\ns0 s1\n";
    let body = format!("{DOC}{plan}");
    let id = submit(&mut client, "/jobs/verify", body.as_bytes());
    poll_until_done(&mut client, id);

    let response = client.get("/metrics").unwrap();
    assert_eq!(response.status, 200);
    assert_eq!(
        response.header("content-type"),
        Some("text/plain; version=0.0.4"),
        "{:?}",
        response.headers
    );
    let text = response.text();

    // Every series name the pre-move registry exported, by family kind.
    let counters = [
        "nptsn_http_requests_total",
        "nptsn_jobs_submitted_total",
        "nptsn_jobs_completed_total",
        "nptsn_jobs_failed_total",
        "nptsn_jobs_cancelled_total",
        "nptsn_jobs_rejected_total",
        "nptsn_planner_epochs_total",
        "nptsn_planner_solutions_total",
        "nptsn_analyzer_scenarios_checked_total",
        "nptsn_analyzer_cache_hits_total",
        "nptsn_analyzer_cache_misses_total",
    ];
    let gauges = ["nptsn_jobs_queued", "nptsn_jobs_running"];
    for name in counters {
        assert!(text.contains(&format!("# HELP {name} ")), "{name} lost its HELP:\n{text}");
        assert!(text.contains(&format!("# TYPE {name} counter")), "{name} lost its TYPE");
        assert!(text.contains(&format!("\n{name} ")), "{name} lost its sample line");
    }
    for name in gauges {
        assert!(text.contains(&format!("# HELP {name} ")), "{name} lost its HELP");
        assert!(text.contains(&format!("# TYPE {name} gauge")), "{name} lost its TYPE");
        assert!(text.contains(&format!("\n{name} ")), "{name} lost its sample line");
    }
    // Labeled counter family: per-status-code responses.
    assert!(text.contains("# TYPE nptsn_http_responses_total counter"), "{text}");
    assert!(text.contains("nptsn_http_responses_total{code=\"200\"}"), "{text}");
    // Histogram family: bucket/sum/count triplet with a +Inf bound.
    assert!(text.contains("# TYPE nptsn_http_request_seconds histogram"), "{text}");
    assert!(text.contains("nptsn_http_request_seconds_bucket{le=\"+Inf\"}"), "{text}");
    assert!(text.contains("nptsn_http_request_seconds_sum "), "{text}");
    assert!(text.contains("nptsn_http_request_seconds_count "), "{text}");
    // The analyzer work done by the verify job reached the shared
    // registry (one source of truth for jobs, CLI and embedders).
    let scenarios: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("nptsn_analyzer_scenarios_checked_total "))
        .and_then(|v| v.parse().ok())
        .expect("analyzer scenario counter present");
    assert!(scenarios > 0, "verify job recorded no scenarios:\n{text}");
    // New-in-this-PR series ride along in the same exposition.
    assert!(text.contains("# TYPE nptsn_planner_poisoned_workers_total counter"), "{text}");
    assert!(text.contains("# TYPE nptsn_analyzer_budget_exhausted_total counter"), "{text}");

    server.stop();
    server.wait();
}
