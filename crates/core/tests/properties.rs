//! Randomized tests of the planner's invariants: SOAG masks, the
//! environment's reward accounting, encoding shapes and analyzer
//! monotonicity.
//!
//! Formerly proptest-based; now seeded deterministic sweeps driven by
//! `nptsn-rand` so the workspace needs no external dev-dependencies.

use std::sync::Arc;

use nptsn::{
    encode_observation, verify_topology, PlanningEnv, PlanningProblem, Soag, Verdict,
};
use nptsn_rand::rngs::StdRng;
use nptsn_rand::{Rng, RngCore, SeedableRng};
use nptsn_sched::{ErrorReport, FlowSet, FlowSpec, ShortestPathRecovery, TasConfig};
use nptsn_topo::{Asil, ComponentLibrary, ConnectionGraph, FailureScenario, NodeId};

const CASES: u64 = 32;

/// A random planning problem over a dual-homed candidate mesh.
fn random_problem(rng: &mut StdRng) -> PlanningProblem {
    let es = rng.gen_range(3usize..6);
    let sw = rng.gen_range(2usize..5);
    let nflows = rng.gen_range(1usize..6);
    let mut gc = ConnectionGraph::new();
    let stations: Vec<NodeId> = (0..es).map(|i| gc.add_end_station(format!("es{i}"))).collect();
    let switches: Vec<NodeId> = (0..sw).map(|i| gc.add_switch(format!("sw{i}"))).collect();
    for &e in &stations {
        for &s in &switches {
            gc.add_candidate_link(e, s, 1.0).unwrap();
        }
    }
    for i in 0..switches.len() {
        for j in i + 1..switches.len() {
            gc.add_candidate_link(switches[i], switches[j], 1.0).unwrap();
        }
    }
    let mut flows = Vec::new();
    for _ in 0..nflows {
        let s = stations[rng.gen_range(0..stations.len())];
        let mut d = stations[rng.gen_range(0..stations.len())];
        if d == s {
            d = stations[(s.index() + 1) % stations.len()];
        }
        flows.push(FlowSpec::new(s, d, 500, 256));
    }
    PlanningProblem::new(
        Arc::new(gc),
        ComponentLibrary::automotive(),
        TasConfig::default(),
        FlowSet::new(flows).unwrap(),
        1e-6,
        Arc::new(ShortestPathRecovery::new()),
    )
    .unwrap()
}

/// Every masked-in SOAG action applies successfully and preserves the
/// degree constraints; the action space layout is stable.
#[test]
fn valid_soag_actions_always_apply() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xc04e_0000 + case);
        let problem = random_problem(&mut rng);
        let seed = rng.next_u64();
        let k = rng.gen_range(2usize..12);
        let gc = problem.connection_graph();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut env = PlanningEnv::new(problem.clone(), k, 1e3, 64, &mut rng);
        assert_eq!(env.action_count(), gc.switches().len() + k);
        for _ in 0..12 {
            let valid: Vec<usize> = (0..env.action_count()).filter(|&i| env.mask()[i]).collect();
            if valid.is_empty() {
                break;
            }
            let idx = valid[rng.gen_range(0..valid.len())];
            let out = env.step(idx, &mut rng);
            // Degree constraints hold after every step.
            for node in gc.nodes() {
                assert!(env.topology().degree(node) <= gc.max_degree(node));
            }
            if out.done {
                if let Some(sol) = out.solution {
                    assert!(verify_topology(&problem, &sol.topology).is_reliable());
                }
                break;
            }
        }
    }
}

/// Rewards track the cost delta exactly (dead-end penalty aside), so an
/// episode's return telescopes to -final_cost / scale.
#[test]
fn episode_return_telescopes_to_cost() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xc04e_1000 + case);
        let problem = random_problem(&mut rng);
        let seed = rng.next_u64();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut env = PlanningEnv::new(problem.clone(), 6, 1e3, 64, &mut rng);
        let lib = problem.library();
        let mut ret = 0.0f32;
        for _ in 0..40 {
            let Some(idx) = (0..env.action_count()).find(|&i| env.mask()[i]) else { break };
            let out = env.step(idx, &mut rng);
            ret += out.reward;
            if out.done {
                let cost = env.topology().network_cost(lib) as f32;
                if out.solution.is_some() {
                    assert!(
                        (ret + cost / 1e3).abs() < 1e-4,
                        "case {case}: return {ret} vs -cost/1e3 {}",
                        -cost / 1e3
                    );
                } else if !out.truncated {
                    // Dead end: return = -cost/1e3 - 1.
                    assert!((ret + cost / 1e3 + 1.0).abs() < 1e-4, "case {case}");
                }
                break;
            }
        }
    }
}

/// Observation shapes always match the declared layout, and the
/// features are finite.
#[test]
fn encoding_shapes_are_consistent() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xc04e_2000 + case);
        let problem = random_problem(&mut rng);
        let seed = rng.next_u64();
        let k = rng.gen_range(1usize..10);
        let gc = problem.connection_graph();
        let soag = Soag::new(k);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut er = ErrorReport::empty();
        er.record(gc.end_stations()[0], gc.end_stations()[1]);
        let mut topo = problem.connection_graph().empty_topology();
        // Random partial construction.
        for (i, &sw) in gc.switches().iter().enumerate() {
            if i % 2 == 0 {
                topo.add_switch(sw, Asil::A).unwrap();
            }
        }
        let set = soag.generate(&problem, &topo, &FailureScenario::none(), &er, &mut rng);
        let obs = encode_observation(&problem, &topo, &set);
        let n = gc.node_count();
        assert_eq!(obs.node_count, n);
        assert_eq!(obs.feature_count, 1 + n + gc.end_stations().len() + k);
        assert_eq!(obs.ahat.len(), n * n);
        assert_eq!(obs.features.len(), n * obs.feature_count);
        assert!(obs.ahat.iter().chain(obs.features.iter()).all(|v| v.is_finite()));
        // Â is symmetric.
        for i in 0..n {
            for j in 0..i {
                assert!((obs.ahat[i * n + j] - obs.ahat[j * n + i]).abs() < 1e-6);
            }
        }
    }
}

/// Upgrading any switch of a reliable topology keeps it reliable:
/// upgrades only shrink the set of non-safe faults and never change
/// recovery behavior.
#[test]
fn upgrades_preserve_reliability() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xc04e_3000 + case);
        let problem = random_problem(&mut rng);
        let seed = rng.next_u64();
        // Build some reliable topology via the environment with a scripted
        // policy; skip the case if none is found quickly.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut env = PlanningEnv::new(problem.clone(), 8, 1e3, 64, &mut rng);
        let mut reliable = None;
        for _ in 0..40 {
            let Some(idx) = (0..env.action_count()).find(|&i| env.mask()[i]) else { break };
            let out = env.step(idx, &mut rng);
            if let Some(sol) = out.solution {
                reliable = Some(sol.topology);
                break;
            }
            if out.done {
                break;
            }
        }
        if let Some(mut topo) = reliable {
            assert!(verify_topology(&problem, &topo).is_reliable());
            for &sw in topo.selected_switches().to_vec().iter() {
                let _ = topo.upgrade_switch(sw);
            }
            assert!(
                verify_topology(&problem, &topo).is_reliable(),
                "case {case}: upgrades must never break reliability"
            );
        }
    }
}

/// The analyzer's verdict agrees with a brute-force check over all
/// switch subsets (tiny instances).
#[test]
fn analyzer_matches_brute_force() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xc04e_4000 + case);
        let problem = random_problem(&mut rng);
        let seed = rng.next_u64();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabc);
        // A random mid-construction topology.
        let mut env = PlanningEnv::new(problem.clone(), 6, 1e3, 64, &mut rng);
        for _ in 0..6 {
            let Some(idx) = (0..env.action_count()).find(|&i| env.mask()[i]) else { break };
            if env.step(idx, &mut rng).done {
                break;
            }
        }
        let topo = env.topology().clone();
        let verdict = verify_topology(&problem, &topo);
        // Brute force: every subset of selected switches (incl. empty).
        let switches = topo.selected_switches().to_vec();
        let r = problem.reliability_goal();
        let mut all_pass = true;
        for bits in 0..(1u32 << switches.len()) {
            let subset: Vec<NodeId> = switches
                .iter()
                .enumerate()
                .filter(|(i, _)| bits & (1 << i) != 0)
                .map(|(_, &s)| s)
                .collect();
            let fault = FailureScenario::switches(subset);
            if topo.failure_probability(&fault) < r {
                continue;
            }
            let out = problem.nbf().recover(&topo, &fault, problem.tas(), problem.flows());
            if !out.errors.is_empty() {
                all_pass = false;
                break;
            }
        }
        assert_eq!(matches!(verdict, Verdict::Reliable), all_pass, "case {case}");
    }
}
