//! Crash-resume: a training run killed at a (seeded) random epoch boundary
//! restores from its periodic atomic checkpoint and continues.

use std::sync::Arc;

use nptsn::{Planner, PlannerConfig, PlanningProblem};
use nptsn_rand::rngs::StdRng;
use nptsn_rand::{Rng, SeedableRng};
use nptsn_rl::ActorCritic;
use nptsn_sched::{FlowSet, FlowSpec, ShortestPathRecovery, TasConfig};
use nptsn_topo::{ComponentLibrary, ConnectionGraph};

fn theta_problem() -> PlanningProblem {
    let mut gc = ConnectionGraph::new();
    let a = gc.add_end_station("a");
    let b = gc.add_end_station("b");
    let s0 = gc.add_switch("s0");
    let s1 = gc.add_switch("s1");
    for (u, v) in [(a, s0), (s0, b), (a, s1), (s1, b), (s0, s1)] {
        gc.add_candidate_link(u, v, 1.0).unwrap();
    }
    let flows = FlowSet::new(vec![FlowSpec::new(a, b, 500, 128)]).unwrap();
    PlanningProblem::new(
        Arc::new(gc),
        ComponentLibrary::automotive(),
        TasConfig::default(),
        flows,
        1e-6,
        Arc::new(ShortestPathRecovery::new()),
    )
    .unwrap()
}

#[test]
fn killed_run_resumes_from_the_atomic_checkpoint() {
    let path = std::env::temp_dir()
        .join(format!("nptsn-crash-resume-{}.ck", std::process::id()));
    let _ = std::fs::remove_file(&path);

    // Pick the kill epoch from a seeded stream: any boundary must work.
    let mut rng = StdRng::seed_from_u64(2024);
    let cfg = PlannerConfig {
        checkpoint_path: Some(path.clone()),
        ..PlannerConfig::smoke_test()
    };
    let kill_after: usize = rng.gen_range(1..cfg.max_epochs);

    // "Kill" the run at the chosen epoch boundary: run_until stopping is
    // observationally identical to a crash right after the periodic save.
    let planner = Planner::new(theta_problem(), cfg.clone());
    let partial = planner.run_until(|s| s.epoch + 1 < kill_after);
    assert_eq!(partial.epochs.len(), kill_after);

    // The atomic checkpoint on disk is byte-identical to the report's.
    let saved = std::fs::read(&path).expect("periodic checkpoint exists");
    assert_eq!(saved, partial.policy_checkpoint, "disk and in-memory checkpoints agree");

    // The restored policy behaves identically to the saved one.
    let from_disk = planner.build_policy();
    nptsn_nn::load_params(&nptsn_nn::Module::parameters(&from_disk), &path)
        .expect("checkpoint restores");
    let from_report = planner.build_policy();
    nptsn_nn::params_from_bytes(
        &nptsn_nn::Module::parameters(&from_report),
        &partial.policy_checkpoint,
    )
    .expect("report checkpoint restores");
    let mut obs_rng = StdRng::seed_from_u64(0);
    let env = nptsn::PlanningEnv::new(theta_problem(), 4, 1e3, 64, &mut obs_rng);
    let mask = env.mask().to_vec();
    let (la, va) = from_disk.evaluate(env.observation(), &mask);
    let (lb, vb) = from_report.evaluate(env.observation(), &mask);
    assert_eq!(la.to_vec(), lb.to_vec());
    assert_eq!(va.item(), vb.item());

    // Resume from the saved bytes: training continues and the resume is
    // visible in telemetry.
    let before = nptsn_obs::telemetry().snapshot();
    let resumed = planner
        .run_until_resumed(&saved, |_| false)
        .expect("resume from a valid checkpoint");
    assert_eq!(resumed.epochs.len(), 1, "resumed run trains further epochs");
    let after = nptsn_obs::telemetry().snapshot();
    assert!(after.recovery_checkpoint_resumes > before.recovery_checkpoint_resumes);

    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_rejects_corrupt_or_foreign_checkpoints() {
    let planner = Planner::new(theta_problem(), PlannerConfig::smoke_test());
    // Corrupt: a truncated checkpoint must be refused, not half-loaded.
    let report = planner.run_until(|_| false);
    let mut torn = report.policy_checkpoint.clone();
    torn.truncate(torn.len() / 2);
    let err = planner.run_until_resumed(&torn, |_| true).unwrap_err();
    assert!(err.contains("resume checkpoint"), "unexpected error: {err}");
    // Foreign bytes are refused the same way.
    assert!(planner.run_until_resumed(b"not a checkpoint", |_| true).is_err());
}
