//! Chaos-driven planner self-healing tests.
//!
//! Separate test binary: an armed [`nptsn_chaos::FaultPlan`] is
//! process-global, and cargo runs test binaries sequentially, so plans
//! armed here cannot leak into the planner unit tests. Within this binary,
//! `arm_scoped` serializes the tests.

use std::sync::Arc;

use nptsn::{Planner, PlannerConfig, PlanningProblem};
use nptsn_chaos::{arm_scoped, FaultKind, FaultPlan, SiteRule};
use nptsn_sched::{FlowSet, FlowSpec, ShortestPathRecovery, TasConfig};
use nptsn_topo::{ComponentLibrary, ConnectionGraph};

fn theta_problem() -> PlanningProblem {
    let mut gc = ConnectionGraph::new();
    let a = gc.add_end_station("a");
    let b = gc.add_end_station("b");
    let s0 = gc.add_switch("s0");
    let s1 = gc.add_switch("s1");
    for (u, v) in [(a, s0), (s0, b), (a, s1), (s1, b), (s0, s1)] {
        gc.add_candidate_link(u, v, 1.0).unwrap();
    }
    let flows = FlowSet::new(vec![FlowSpec::new(a, b, 500, 128)]).unwrap();
    PlanningProblem::new(
        Arc::new(gc),
        ComponentLibrary::automotive(),
        TasConfig::default(),
        flows,
        1e-6,
        Arc::new(ShortestPathRecovery::new()),
    )
    .unwrap()
}

#[test]
fn injected_nan_update_rolls_back_and_training_survives() {
    // `every=2` fires exactly on the second ppo_update call (epoch 1).
    let _guard = arm_scoped(FaultPlan::new(7).with_rule(SiteRule {
        site: "planner.ppo_update".to_string(),
        kind: FaultKind::Error,
        every: 2,
        rate: 1.0,
        max_count: 1,
    }));
    let before = nptsn_obs::telemetry().snapshot();
    let cfg = PlannerConfig::smoke_test();
    let planner = Planner::new(theta_problem(), cfg.clone());
    let report = planner.run_until(|_| true);

    // The run completes every epoch; exactly the poisoned epoch rolled back.
    assert_eq!(report.epochs.len(), cfg.max_epochs);
    let rollbacks: Vec<usize> = report.epochs.iter().map(|e| e.ppo_rollbacks).collect();
    assert_eq!(rollbacks, vec![0, 1, 0], "only the injected epoch rolls back");
    // The rolled-back epoch reports neutral PPO stats, not NaN.
    assert!(report.epochs[1].policy_loss.is_finite());

    // The final checkpoint restores to an all-finite policy.
    let policy = planner.build_policy();
    nptsn_nn::params_from_bytes(&nptsn_nn::Module::parameters(&policy), &report.policy_checkpoint)
        .expect("checkpoint restores");
    for p in nptsn_nn::Module::parameters(&policy) {
        assert!(p.to_vec().iter().all(|v| v.is_finite()), "non-finite weight survived rollback");
    }

    let after = nptsn_obs::telemetry().snapshot();
    assert!(after.recovery_ppo_rollbacks > before.recovery_ppo_rollbacks);
    assert!(after.chaos_faults > before.chaos_faults);
}

#[test]
fn rollback_recovers_the_pre_update_policy_exactly() {
    // A clean one-epoch run pins what the parameters look like before the
    // second epoch's update...
    let cfg = PlannerConfig { max_epochs: 1, ..PlannerConfig::smoke_test() };
    let clean_one = Planner::new(theta_problem(), cfg).run_until(|_| true);

    // ...then a two-epoch run whose second update is poisoned must end on
    // exactly those parameters: the rollback restored the snapshot taken at
    // the top of epoch 1, which is the end of epoch 0.
    let _guard = arm_scoped(FaultPlan::new(3).with_rule(SiteRule {
        site: "planner.ppo_update".to_string(),
        kind: FaultKind::Error,
        every: 2,
        rate: 1.0,
        max_count: 1,
    }));
    let cfg2 = PlannerConfig { max_epochs: 2, ..PlannerConfig::smoke_test() };
    let poisoned_two = Planner::new(theta_problem(), cfg2).run_until(|_| true);
    assert_eq!(poisoned_two.epochs[1].ppo_rollbacks, 1);
    assert_eq!(
        poisoned_two.policy_checkpoint, clean_one.policy_checkpoint,
        "rollback must restore the exact pre-update parameters"
    );
}

#[test]
fn injected_rollout_faults_poison_workers_not_the_run() {
    let _guard = arm_scoped(
        FaultPlan::new(5)
            .with_rule(SiteRule::always("planner.rollout", FaultKind::Panic)),
    );
    let cfg = PlannerConfig { workers: 2, max_epochs: 2, ..PlannerConfig::smoke_test() };
    let report = Planner::new(theta_problem(), cfg.clone()).run_until(|_| true);
    assert_eq!(report.epochs.len(), cfg.max_epochs);
    for epoch in &report.epochs {
        assert_eq!(epoch.poisoned_workers, cfg.workers);
        assert_eq!(epoch.episodes, 0);
    }
    assert!(report.best.is_none());
}
