//! Seeded equivalence sweep for the parallel, memoized failure analyzer.
//!
//! The contract under test: for every problem, topology, worker count,
//! cache configuration and budget, [`FailureAnalyzer`] returns a verdict
//! **bit-identical** to the sequential unbounded enumeration of
//! Algorithm 3 — same `Verdict` variant, same counterexample scenario,
//! same error pairs, same `scenarios_checked`. Parallelism and
//! memoization are pure go-faster knobs; they may never change a result.

use std::sync::Arc;

use nptsn::{
    AnalysisBudget, FailureAnalyzer, PlanningEnv, PlanningProblem, ScenarioCache, Verdict,
};
use nptsn_rand::rngs::StdRng;
use nptsn_rand::{Rng, RngCore, SeedableRng};
use nptsn_sched::{FlowSet, FlowSpec, ShortestPathRecovery, TasConfig};
use nptsn_topo::{ComponentLibrary, ConnectionGraph, NodeId, Topology};

const CASES: u64 = 24;

/// A random dual-homed candidate mesh. `reliability_goal` is drawn from
/// the caller so sweeps cover both lenient goals (most faults safe,
/// little work) and strict ones (maxord high enough that the parallel
/// fan-out and the superset memo actually engage).
fn random_problem(rng: &mut StdRng, reliability_goal: f64) -> PlanningProblem {
    let es = rng.gen_range(3usize..5);
    let sw = rng.gen_range(2usize..6);
    let nflows = rng.gen_range(1usize..5);
    let mut gc = ConnectionGraph::new();
    let stations: Vec<NodeId> = (0..es).map(|i| gc.add_end_station(format!("es{i}"))).collect();
    let switches: Vec<NodeId> = (0..sw).map(|i| gc.add_switch(format!("sw{i}"))).collect();
    for &e in &stations {
        for &s in &switches {
            gc.add_candidate_link(e, s, 1.0).unwrap();
        }
    }
    for i in 0..switches.len() {
        for j in i + 1..switches.len() {
            gc.add_candidate_link(switches[i], switches[j], 1.0).unwrap();
        }
    }
    let mut flows = Vec::new();
    for _ in 0..nflows {
        let s = stations[rng.gen_range(0..stations.len())];
        let mut d = stations[rng.gen_range(0..stations.len())];
        if d == s {
            d = stations[(s.index() + 1) % stations.len()];
        }
        flows.push(FlowSpec::new(s, d, 500, 256));
    }
    PlanningProblem::new(
        Arc::new(gc),
        ComponentLibrary::automotive(),
        TasConfig::default(),
        FlowSet::new(flows).unwrap(),
        reliability_goal,
        Arc::new(ShortestPathRecovery::new()),
    )
    .unwrap()
}

/// A random mid-construction topology reached by stepping the environment
/// with a scripted policy — the same state distribution the analyzer sees
/// during training.
fn random_topology(problem: &PlanningProblem, seed: u64, steps: usize) -> Topology {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut env = PlanningEnv::new(problem.clone(), 6, 1e3, 64, &mut rng);
    for _ in 0..steps {
        let valid: Vec<usize> = (0..env.action_count()).filter(|&i| env.mask()[i]).collect();
        if valid.is_empty() {
            break;
        }
        let idx = valid[rng.gen_range(0..valid.len())];
        if env.step(idx, &mut rng).done {
            break;
        }
    }
    env.topology().clone()
}

fn assert_reports_identical(
    reference: &nptsn::AnalysisReport,
    candidate: &nptsn::AnalysisReport,
    label: &str,
) {
    assert_eq!(reference.verdict, candidate.verdict, "{label}: verdict diverged");
    assert_eq!(
        reference.scenarios_checked, candidate.scenarios_checked,
        "{label}: scenarios_checked diverged"
    );
    assert_eq!(reference.exhausted, candidate.exhausted, "{label}: exhausted diverged");
}

/// Parallel and cached analyzers agree bit-for-bit with the sequential
/// unbounded reference across random problems and construction states.
#[test]
fn parallel_cached_analyzer_is_bit_identical_to_sequential() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xe9a0_0000 + case);
        // Strict goals force high maxord (deep enumeration); lenient ones
        // exercise the safe-fault fast path.
        let goal = [1e-6, 1e-9, 1e-12][case as usize % 3];
        let problem = random_problem(&mut rng, goal);
        let topo_seed = rng.next_u64();
        let steps = rng.gen_range(0usize..10);
        let topology = random_topology(&problem, topo_seed, steps);

        let reference = FailureAnalyzer::new()
            .try_analyze(&problem, &topology)
            .expect("consistent topology");

        for workers in [2usize, 4, 8] {
            // Parallel, no cache.
            let parallel = FailureAnalyzer::new()
                .with_workers(workers)
                .try_analyze(&problem, &topology)
                .unwrap();
            assert_reports_identical(
                &reference,
                &parallel,
                &format!("case {case} workers {workers} uncached"),
            );

            // Parallel + shared cache, run twice: the warm second run must
            // still agree even though it answers from the cache.
            let cache = Arc::new(ScenarioCache::new());
            let cached = FailureAnalyzer::new()
                .with_workers(workers)
                .with_shared_cache(Arc::clone(&cache));
            let cold = cached.try_analyze(&problem, &topology).unwrap();
            let warm = cached.try_analyze(&problem, &topology).unwrap();
            assert_reports_identical(
                &reference,
                &cold,
                &format!("case {case} workers {workers} cold cache"),
            );
            assert_reports_identical(
                &reference,
                &warm,
                &format!("case {case} workers {workers} warm cache"),
            );
            if cold.cache_misses > 0 {
                assert!(
                    warm.cache_hits > 0,
                    "case {case}: warm run should reuse cold run's NBF outcomes"
                );
            }
        }
    }
}

/// Budgeted analyzers agree too: the parallel merge charges the budget
/// exactly as sequential enumeration would, for every cutoff point.
#[test]
fn budgeted_parallel_matches_budgeted_sequential() {
    for case in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(0x6b5d_0000 + case);
        let goal = [1e-9, 1e-12][case as usize % 2];
        let problem = random_problem(&mut rng, goal);
        let topology = random_topology(&problem, rng.next_u64(), rng.gen_range(0usize..8));

        // The total work of an unbounded run bounds the interesting budgets.
        let total = FailureAnalyzer::new()
            .try_analyze(&problem, &topology)
            .unwrap()
            .scenarios_checked;
        for budget in 0..=total + 1 {
            let seq = FailureAnalyzer::new()
                .with_budget(AnalysisBudget::scenarios(budget))
                .try_analyze(&problem, &topology)
                .unwrap();
            let par = FailureAnalyzer::new()
                .with_budget(AnalysisBudget::scenarios(budget))
                .with_workers(4)
                .with_shared_cache(Arc::new(ScenarioCache::new()))
                .try_analyze(&problem, &topology)
                .unwrap();
            assert_reports_identical(
                &seq,
                &par,
                &format!("case {case} budget {budget}/{total}"),
            );
        }
    }
}

/// The counterexample itself — scenario and error pairs — is identical,
/// not merely the verdict discriminant. An unreliable topology must yield
/// the *first* failing scenario in lexicographic enumeration order from
/// every configuration.
#[test]
fn counterexamples_are_identical_not_just_verdicts() {
    let mut seen_unreliable = 0u32;
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xceed_0000 + case);
        // Strict goal: empty and shallow topologies are all unreliable.
        let problem = random_problem(&mut rng, 1e-12);
        let topology = random_topology(&problem, rng.next_u64(), rng.gen_range(0usize..4));
        let reference = FailureAnalyzer::new().analyze(&problem, &topology);
        if let Verdict::Unreliable { failure, errors } = &reference {
            seen_unreliable += 1;
            for workers in [2usize, 8] {
                let candidate = FailureAnalyzer::new()
                    .with_workers(workers)
                    .with_shared_cache(Arc::new(ScenarioCache::new()))
                    .analyze(&problem, &topology);
                let Verdict::Unreliable { failure: f2, errors: e2 } = candidate else {
                    panic!("case {case}: parallel analyzer flipped an Unreliable verdict");
                };
                assert_eq!(failure, &f2, "case {case}: different counterexample scenario");
                assert_eq!(errors, &e2, "case {case}: different error report");
            }
        }
    }
    assert!(seen_unreliable > 0, "the sweep never exercised the Unreliable arm");
}
