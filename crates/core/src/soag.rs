//! The Survival-Oriented Action Generator (Algorithm 1, Section IV-B).

use nptsn_sched::ErrorReport;
use nptsn_topo::{k_shortest_paths, FailureScenario, NodeId, Path, Topology};
use nptsn_rand::Rng;

use crate::problem::PlanningProblem;

/// One coarse-grained construction action.
///
/// NPTSN constructs the TSSDN monotonically: switch degradation and link
/// removal are deliberately absent (Section IV-B).
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Add the switch with ASIL A if unselected, otherwise raise its ASIL
    /// by one level.
    UpgradeSwitch(NodeId),
    /// Add every missing link of the path.
    AddPath(Path),
    /// A padding slot (fewer than K candidate paths were found); always
    /// masked out.
    Unavailable,
}

/// The dynamic action space of one step: `|V^c_sw|` switch-upgrade actions
/// followed by `K` path-addition slots, plus the validity mask.
///
/// The RL agent only ever selects actions whose mask bit is `true`
/// (invalid actions are pruned before sampling, which is the point of the
/// SOAG: feasible solutions become likely under stochastic exploration).
#[derive(Debug, Clone, PartialEq)]
pub struct ActionSet {
    actions: Vec<Action>,
    mask: Vec<bool>,
}

impl ActionSet {
    /// An empty placeholder set (no slots); used only while an environment
    /// initializes, never produced by the SOAG.
    pub(crate) fn placeholder() -> ActionSet {
        ActionSet { actions: Vec::new(), mask: Vec::new() }
    }

    /// The actions, switch upgrades first, then the K path slots.
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// The validity mask, aligned with [`actions`](ActionSet::actions).
    pub fn mask(&self) -> &[bool] {
        &self.mask
    }

    /// Total number of action slots (`|V^c_sw| + K`).
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether the set has zero slots (never true for SOAG output).
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Whether every action is masked out — the dead-end condition of
    /// Algorithm 2 line 14 (reset with penalty).
    pub fn all_masked(&self) -> bool {
        self.mask.iter().all(|&m| !m)
    }

    /// The action at `index`, if valid (mask bit set).
    pub fn valid_action(&self, index: usize) -> Option<&Action> {
        if *self.mask.get(index)? {
            Some(&self.actions[index])
        } else {
            None
        }
    }
}

/// The Survival-Oriented Action Generator.
///
/// Given the failure scenario `Gf` and error message `ER` reported by the
/// failure analyzer, the SOAG proposes actions that can help the TSSDN
/// survive `Gf` (Section IV-B):
///
/// * **Switch upgrade** — one slot per candidate switch: adds it at ASIL A,
///   or raises an existing switch one level; ASIL-D switches are masked.
/// * **Path addition** — `K` slots filled with the K shortest paths
///   between one endpoint pair drawn from `ER`, computed on the candidate
///   graph minus failed nodes, minus unselected switches, minus failed
///   links (Algorithm 1 lines 2–5). Paths violating a degree constraint,
///   and paths whose links are all already present, are masked
///   (lines 6–12).
#[derive(Debug, Clone)]
pub struct Soag {
    k: usize,
}

impl Soag {
    /// Creates a generator producing `k` path-addition slots (Table II
    /// default: 16).
    pub fn new(k: usize) -> Soag {
        Soag { k }
    }

    /// The number of path slots K.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Generates the action space for the current TSSDN given the last
    /// failure analysis outcome (Algorithm 1).
    ///
    /// `rng` selects the endpoint pair from `errors` (line 1); everything
    /// else is deterministic.
    pub fn generate(
        &self,
        problem: &PlanningProblem,
        topology: &Topology,
        failure: &FailureScenario,
        errors: &ErrorReport,
        rng: &mut impl Rng,
    ) -> ActionSet {
        let _span = nptsn_obs::span("soag.generate");
        let gc = problem.connection_graph();
        let mut actions = Vec::with_capacity(gc.switches().len() + self.k);
        let mut mask = Vec::with_capacity(gc.switches().len() + self.k);

        // Switch upgrade actions: one per candidate switch.
        for &sw in gc.switches() {
            actions.push(Action::UpgradeSwitch(sw));
            let valid = match topology.switch_asil(sw) {
                None => true,                         // add at ASIL A
                Some(asil) => asil.upgraded().is_some(), // raise one level
            };
            mask.push(valid);
        }

        // Path addition actions for one endpoint pair from ER.
        let mut paths: Vec<Path> = Vec::new();
        if !errors.is_empty() {
            let (s, d) = errors.pairs()[rng.gen_range(0..errors.len())];
            // Build the filtered candidate adjacency: remove failed nodes,
            // unselected switches and failed links (lines 2-4). Paths may
            // only traverse previously added switches.
            let n = gc.node_count();
            let mut adj: Vec<Vec<(NodeId, nptsn_topo::LinkId, f64)>> = vec![Vec::new(); n];
            for link in gc.links() {
                if failure.contains_link(link) {
                    continue;
                }
                let (u, v) = gc.link_endpoints(link);
                let blocked = |x: NodeId| {
                    failure.contains_switch(x)
                        || (gc.is_switch(x) && !topology.contains_switch(x))
                };
                if blocked(u) || blocked(v) {
                    continue;
                }
                let len = gc.link_length(link);
                adj[u.index()].push((v, link, len));
                adj[v.index()].push((u, link, len));
            }
            paths = k_shortest_paths(&adj, s, d, self.k);
        }
        for i in 0..self.k {
            match paths.get(i) {
                Some(path) => {
                    // Degree feasibility (lines 6-12), plus: the path must
                    // add at least one new link, otherwise the action would
                    // be a no-op and episodes could loop forever.
                    let adds_link = path.edges().any(|(u, v)| !topology.contains_link_between(u, v));
                    mask.push(adds_link && topology.can_add_path(path));
                    actions.push(Action::AddPath(path.clone()));
                }
                None => {
                    actions.push(Action::Unavailable);
                    mask.push(false);
                }
            }
        }
        ActionSet { actions, mask }
    }
}

/// Applies `action` to `topology` (the `Apply_Action` of Algorithm 2
/// line 8). Returns an error string for invalid applications — the SOAG
/// masks prevent these for RL-selected actions.
pub(crate) fn apply_action(topology: &mut Topology, action: &Action) -> Result<(), String> {
    match action {
        Action::UpgradeSwitch(sw) => {
            if topology.contains_switch(*sw) {
                topology.upgrade_switch(*sw).map(|_| ()).map_err(|e| e.to_string())
            } else {
                topology.add_switch(*sw, nptsn_topo::Asil::A).map_err(|e| e.to_string())
            }
        }
        Action::AddPath(path) => {
            if !topology.can_add_path(path) {
                return Err("path violates a degree constraint".to_string());
            }
            topology.add_path(path).map(|_| ()).map_err(|e| e.to_string())
        }
        Action::Unavailable => Err("padding action selected".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nptsn_sched::{FlowSet, FlowSpec, ShortestPathRecovery, TasConfig};
    use nptsn_topo::{Asil, ComponentLibrary, ConnectionGraph};
    use nptsn_rand::rngs::StdRng;
    use nptsn_rand::SeedableRng;
    use std::sync::Arc;

    fn theta() -> (PlanningProblem, NodeId, NodeId, NodeId, NodeId) {
        let mut gc = ConnectionGraph::new();
        let a = gc.add_end_station("a");
        let b = gc.add_end_station("b");
        let s0 = gc.add_switch("s0");
        let s1 = gc.add_switch("s1");
        for (u, v) in [(a, s0), (s0, b), (a, s1), (s1, b), (s0, s1)] {
            gc.add_candidate_link(u, v, 1.0).unwrap();
        }
        let flows = FlowSet::new(vec![FlowSpec::new(a, b, 500, 128)]).unwrap();
        let problem = PlanningProblem::new(
            Arc::new(gc),
            ComponentLibrary::automotive(),
            TasConfig::default(),
            flows,
            1e-6,
            Arc::new(ShortestPathRecovery::new()),
        )
        .unwrap();
        (problem, a, b, s0, s1)
    }

    fn er(a: NodeId, b: NodeId) -> ErrorReport {
        let mut e = ErrorReport::empty();
        e.record(a, b);
        e
    }

    #[test]
    fn action_space_layout_is_switches_then_paths() {
        let (problem, a, b, ..) = theta();
        let topo = problem.connection_graph().empty_topology();
        let soag = Soag::new(4);
        assert_eq!(soag.k(), 4);
        let set = soag.generate(
            &problem,
            &topo,
            &FailureScenario::none(),
            &er(a, b),
            &mut StdRng::seed_from_u64(0),
        );
        assert_eq!(set.len(), 2 + 4);
        assert!(matches!(set.actions()[0], Action::UpgradeSwitch(_)));
        assert!(matches!(set.actions()[1], Action::UpgradeSwitch(_)));
    }

    #[test]
    fn empty_topology_offers_switch_additions_only() {
        let (problem, a, b, ..) = theta();
        let topo = problem.connection_graph().empty_topology();
        let set = Soag::new(4).generate(
            &problem,
            &topo,
            &FailureScenario::none(),
            &er(a, b),
            &mut StdRng::seed_from_u64(0),
        );
        // No switches are selected, so no path can traverse anything and
        // no direct ES-ES candidate link exists.
        assert!(set.mask()[0] && set.mask()[1], "switch additions valid");
        assert!(set.mask()[2..].iter().all(|&m| !m), "no path is routable yet");
        assert!(!set.all_masked());
    }

    #[test]
    fn paths_only_traverse_selected_switches() {
        let (problem, a, b, s0, s1) = theta();
        let mut topo = problem.connection_graph().empty_topology();
        topo.add_switch(s0, Asil::A).unwrap();
        let set = Soag::new(8).generate(
            &problem,
            &topo,
            &FailureScenario::none(),
            &er(a, b),
            &mut StdRng::seed_from_u64(0),
        );
        let paths: Vec<&Path> = set
            .actions()
            .iter()
            .filter_map(|ac| match ac {
                Action::AddPath(p) => Some(p),
                _ => None,
            })
            .collect();
        assert!(!paths.is_empty());
        for p in paths {
            assert!(!p.contains_node(s1), "unselected switch on path {p:?}");
        }
    }

    #[test]
    fn failed_switch_is_avoided() {
        let (problem, a, b, s0, s1) = theta();
        let mut topo = problem.connection_graph().empty_topology();
        topo.add_switch(s0, Asil::A).unwrap();
        topo.add_switch(s1, Asil::A).unwrap();
        let failure = FailureScenario::switches(vec![s0]);
        let set = Soag::new(8).generate(
            &problem,
            &topo,
            &failure,
            &er(a, b),
            &mut StdRng::seed_from_u64(0),
        );
        for ac in set.actions() {
            if let Action::AddPath(p) = ac {
                assert!(!p.contains_node(s0), "path should survive the failure of s0");
            }
        }
    }

    #[test]
    fn asil_d_switch_upgrade_is_masked() {
        let (problem, a, b, s0, _) = theta();
        let mut topo = problem.connection_graph().empty_topology();
        topo.add_switch(s0, Asil::D).unwrap();
        let set = Soag::new(2).generate(
            &problem,
            &topo,
            &FailureScenario::none(),
            &er(a, b),
            &mut StdRng::seed_from_u64(0),
        );
        // s0 is the first switch slot.
        assert!(!set.mask()[0], "ASIL-D upgrade must be masked");
        assert!(set.mask()[1], "the other switch can still be added");
    }

    #[test]
    fn no_op_paths_are_masked() {
        let (problem, a, b, s0, _) = theta();
        let mut topo = problem.connection_graph().empty_topology();
        topo.add_switch(s0, Asil::A).unwrap();
        topo.add_link(a, s0).unwrap();
        topo.add_link(s0, b).unwrap();
        let set = Soag::new(1).generate(
            &problem,
            &topo,
            &FailureScenario::none(),
            &er(a, b),
            &mut StdRng::seed_from_u64(0),
        );
        // The single shortest path a-s0-b is fully present: masked.
        let path_slot = problem.connection_graph().switches().len();
        assert!(matches!(set.actions()[path_slot], Action::AddPath(_)));
        assert!(!set.mask()[path_slot]);
        assert_eq!(set.valid_action(path_slot), None);
    }

    #[test]
    fn padding_slots_are_unavailable() {
        let (problem, a, b, s0, _) = theta();
        let mut topo = problem.connection_graph().empty_topology();
        topo.add_switch(s0, Asil::A).unwrap();
        // Only two loopless a-b paths exist through s0 alone; ask for 6.
        let set = Soag::new(6).generate(
            &problem,
            &topo,
            &FailureScenario::none(),
            &er(a, b),
            &mut StdRng::seed_from_u64(0),
        );
        let pad = set
            .actions()
            .iter()
            .filter(|a| matches!(a, Action::Unavailable))
            .count();
        assert!(pad >= 5, "expected padding slots, got {pad}");
    }

    #[test]
    fn apply_action_add_then_upgrade() {
        let (problem, a, _, s0, _) = theta();
        let mut topo = problem.connection_graph().empty_topology();
        apply_action(&mut topo, &Action::UpgradeSwitch(s0)).unwrap();
        assert_eq!(topo.switch_asil(s0), Some(Asil::A));
        apply_action(&mut topo, &Action::UpgradeSwitch(s0)).unwrap();
        assert_eq!(topo.switch_asil(s0), Some(Asil::B));
        apply_action(&mut topo, &Action::AddPath(Path::new(vec![a, s0]))).unwrap();
        assert!(topo.contains_link_between(a, s0));
        assert!(apply_action(&mut topo, &Action::Unavailable).is_err());
    }

    #[test]
    fn degree_saturation_masks_paths() {
        let (problem, a, b, s0, s1) = theta();
        let mut topo = problem.connection_graph().empty_topology();
        topo.add_switch(s0, Asil::A).unwrap();
        topo.add_switch(s1, Asil::A).unwrap();
        // Saturate a's degree (max ES degree 2).
        topo.add_link(a, s0).unwrap();
        topo.add_link(a, s1).unwrap();
        let set = Soag::new(8).generate(
            &problem,
            &topo,
            &FailureScenario::none(),
            &er(a, b),
            &mut StdRng::seed_from_u64(0),
        );
        for (i, ac) in set.actions().iter().enumerate() {
            if let Action::AddPath(p) = ac {
                if set.mask()[i] {
                    // Any valid path must reuse a's existing links.
                    let first_hop = (p.nodes()[0], p.nodes()[1]);
                    assert!(
                        topo.contains_link_between(first_hop.0, first_hop.1),
                        "valid path must not need a third link at a"
                    );
                }
            }
        }
    }
}
