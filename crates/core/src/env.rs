//! The RL environment: Algorithm 2's inner-loop semantics.

use nptsn_sched::ErrorReport;
use nptsn_topo::{FailureScenario, Topology};
use nptsn_rand::Rng;

use std::sync::Arc;

use crate::analyzer::{FailureAnalyzer, Verdict};
use crate::encode::{encode_observation, Observation};
use crate::problem::PlanningProblem;
use crate::scenario_cache::ScenarioCache;
use crate::soag::{apply_action, ActionSet, Soag};
use crate::solution::Solution;

/// Result of one environment step.
#[derive(Debug, Clone)]
pub struct StepOutcome {
    /// The scaled reward: previous cost minus new cost, divided by the
    /// reward scaling factor, minus 1 on dead ends (Section IV-C).
    pub reward: f32,
    /// Whether the episode ended (solution found, dead end, or step cap).
    pub done: bool,
    /// Whether the episode was cut by the step cap rather than a terminal
    /// state; callers should bootstrap the return with the critic value.
    pub truncated: bool,
    /// A verified solution, when this step completed one.
    pub solution: Option<Solution>,
}

/// The TSSDN construction environment.
///
/// State is the TSSDN under construction plus the current dynamic action
/// set; a step applies one SOAG action, re-runs the failure analysis and
/// regenerates actions (Fig. 2). Episodes start from the empty TSSDN (end
/// stations only) and end when the reliability requirement is met, when
/// every action is masked (dead end, −1 penalty), or at the step cap.
///
/// # Examples
///
/// ```
/// use nptsn::{PlanningEnv, PlanningProblem};
/// use nptsn_sched::{FlowSet, FlowSpec, ShortestPathRecovery, TasConfig};
/// use nptsn_topo::{ComponentLibrary, ConnectionGraph};
/// use nptsn_rand::{rngs::StdRng, SeedableRng};
/// use std::sync::Arc;
///
/// let mut gc = ConnectionGraph::new();
/// let a = gc.add_end_station("a");
/// let b = gc.add_end_station("b");
/// let s = gc.add_switch("s");
/// gc.add_candidate_link(a, s, 1.0).unwrap();
/// gc.add_candidate_link(b, s, 1.0).unwrap();
/// let flows = FlowSet::new(vec![FlowSpec::new(a, b, 500, 128)]).unwrap();
/// let problem = PlanningProblem::new(
///     Arc::new(gc), ComponentLibrary::automotive(), TasConfig::default(),
///     flows, 1e-6, Arc::new(ShortestPathRecovery::new()),
/// ).unwrap();
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut env = PlanningEnv::new(problem, 4, 1e3, 64, &mut rng);
/// assert_eq!(env.action_count(), 1 + 4);
/// assert!(!env.mask().iter().all(|&m| !m));
/// ```
#[derive(Debug, Clone)]
pub struct PlanningEnv {
    problem: PlanningProblem,
    soag: Soag,
    analyzer: FailureAnalyzer,
    reward_scaling: f32,
    max_episode_steps: usize,
    topology: Topology,
    actions: ActionSet,
    observation: Observation,
    last_cost: f64,
    episode_steps: usize,
    scenarios_checked: u64,
}

impl PlanningEnv {
    /// Creates the environment and performs the first reset.
    ///
    /// The failure analyzer runs sequentially with a fresh per-environment
    /// [`ScenarioCache`], so NBF outcomes are reused across the steps and
    /// episode resets of this environment (every reset re-analyzes the
    /// empty topology, and episodes revisit construction prefixes). Use
    /// [`with_analyzer`](PlanningEnv::with_analyzer) to configure worker
    /// threads or share a cache explicitly.
    pub fn new(
        problem: PlanningProblem,
        k_paths: usize,
        reward_scaling: f32,
        max_episode_steps: usize,
        rng: &mut impl Rng,
    ) -> PlanningEnv {
        let analyzer =
            FailureAnalyzer::new().with_shared_cache(Arc::new(ScenarioCache::new()));
        PlanningEnv::with_analyzer(
            problem,
            k_paths,
            reward_scaling,
            max_episode_steps,
            analyzer,
            rng,
        )
    }

    /// Creates the environment with an explicit failure analyzer — the
    /// seam for worker-thread fan-out ([`FailureAnalyzer::with_workers`]),
    /// budgets and cache sharing. Performs the first reset.
    pub fn with_analyzer(
        problem: PlanningProblem,
        k_paths: usize,
        reward_scaling: f32,
        max_episode_steps: usize,
        analyzer: FailureAnalyzer,
        rng: &mut impl Rng,
    ) -> PlanningEnv {
        let topology = problem.connection_graph().empty_topology();
        let soag = Soag::new(k_paths);
        let mut env = PlanningEnv {
            problem,
            soag,
            analyzer,
            reward_scaling,
            max_episode_steps,
            topology: topology.clone(),
            // Placeholders, replaced by reset below.
            actions: ActionSet::placeholder(),
            observation: Observation {
                node_count: 0,
                feature_count: 0,
                ahat: Vec::new().into(),
                features: Vec::new(),
                aux: Vec::new(),
            },
            last_cost: 0.0,
            episode_steps: 0,
            scenarios_checked: 0,
        };
        env.reset(rng);
        env
    }

    /// Runs the failure analysis on the current topology, accumulating the
    /// environment's scenario counter (the analyzer itself feeds the
    /// process-wide telemetry).
    fn analyze_counted(&mut self) -> Verdict {
        let report = self
            .analyzer
            .try_analyze(&self.problem, &self.topology)
            .expect("environment topologies are consistent by construction");
        self.scenarios_checked += report.scenarios_checked;
        report.verdict
    }

    /// Failure scenarios checked by this environment's analyzer since
    /// construction (across steps and resets). Bit-identical for a given
    /// seed regardless of analyzer worker/cache configuration.
    pub fn scenarios_checked(&self) -> u64 {
        self.scenarios_checked
    }

    /// Resets the TSSDN to end stations only and regenerates the action
    /// space from a fresh failure analysis (Algorithm 2 line 3).
    pub fn reset(&mut self, rng: &mut impl Rng) {
        self.topology = self.problem.connection_graph().empty_topology();
        self.last_cost = 0.0;
        self.episode_steps = 0;
        let (failure, errors) = match self.analyze_counted() {
            Verdict::Unreliable { failure, errors } => (failure, errors),
            // Degenerate: an empty network already meets the goal. Offer
            // switch actions only; the caller will record the zero-cost
            // solution on its first analysis. A budget-truncated verdict
            // likewise has no counterexample to steer the SOAG with.
            Verdict::Reliable | Verdict::Inconclusive { .. } => {
                (FailureScenario::none(), ErrorReport::empty())
            }
        };
        self.actions =
            self.soag.generate(&self.problem, &self.topology, &failure, &errors, rng);
        self.observation = encode_observation(&self.problem, &self.topology, &self.actions);
    }

    /// The current observation.
    pub fn observation(&self) -> &Observation {
        &self.observation
    }

    /// The current action mask.
    pub fn mask(&self) -> &[bool] {
        self.actions.mask()
    }

    /// The current action set.
    pub fn actions(&self) -> &ActionSet {
        &self.actions
    }

    /// The topology under construction.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The planning problem.
    pub fn problem(&self) -> &PlanningProblem {
        &self.problem
    }

    /// The failure analyzer in use — its cache exposes hit/miss counters
    /// for diagnosing how much NBF work memoization is saving.
    pub fn analyzer(&self) -> &FailureAnalyzer {
        &self.analyzer
    }

    /// Total number of action slots (`|V^c_sw| + K`).
    pub fn action_count(&self) -> usize {
        self.problem.connection_graph().switches().len() + self.soag.k()
    }

    /// Applies action `index` (Algorithm 2 lines 8–16). The caller must
    /// pick a masked-in action (the RL sampler guarantees this).
    ///
    /// # Panics
    ///
    /// Panics when `index` is masked out or out of range.
    pub fn step(&mut self, index: usize, rng: &mut impl Rng) -> StepOutcome {
        let action = self
            .actions
            .valid_action(index)
            .unwrap_or_else(|| panic!("action {index} is masked out"))
            .clone();
        apply_action(&mut self.topology, &action).expect("masked actions are applicable");
        self.episode_steps += 1;

        let new_cost = self.topology.network_cost(self.problem.library());
        let mut reward = ((self.last_cost - new_cost) as f32) / self.reward_scaling;
        self.last_cost = new_cost;

        let (failure, errors) = match self.analyze_counted() {
            Verdict::Reliable => {
                let solution =
                    Solution { topology: self.topology.clone(), cost: new_cost };
                return StepOutcome {
                    reward,
                    done: true,
                    truncated: false,
                    solution: Some(solution),
                };
            }
            Verdict::Unreliable { failure, errors } => (failure, errors),
            // Inconclusive (budgeted analyzer, no counterexample found):
            // not verified reliable, so keep building, steering the SOAG
            // with an empty failure/error report.
            Verdict::Inconclusive { .. } => (FailureScenario::none(), ErrorReport::empty()),
        };
        self.actions =
            self.soag.generate(&self.problem, &self.topology, &failure, &errors, rng);
        if self.actions.all_masked() {
            // Dead end: no valid action can repair the network.
            reward -= 1.0;
            return StepOutcome { reward, done: true, truncated: false, solution: None };
        }
        self.observation = encode_observation(&self.problem, &self.topology, &self.actions);
        if self.episode_steps >= self.max_episode_steps {
            return StepOutcome { reward, done: true, truncated: true, solution: None };
        }
        StepOutcome { reward, done: false, truncated: false, solution: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nptsn_sched::{FlowSet, FlowSpec, ShortestPathRecovery, TasConfig};
    use nptsn_topo::{Asil, ComponentLibrary, ConnectionGraph, NodeId};
    use nptsn_rand::rngs::StdRng;
    use nptsn_rand::SeedableRng;
    use std::sync::Arc;

    fn theta_problem() -> (PlanningProblem, NodeId, NodeId, NodeId, NodeId) {
        let mut gc = ConnectionGraph::new();
        let a = gc.add_end_station("a");
        let b = gc.add_end_station("b");
        let s0 = gc.add_switch("s0");
        let s1 = gc.add_switch("s1");
        for (u, v) in [(a, s0), (s0, b), (a, s1), (s1, b), (s0, s1)] {
            gc.add_candidate_link(u, v, 1.0).unwrap();
        }
        let flows = FlowSet::new(vec![FlowSpec::new(a, b, 500, 128)]).unwrap();
        let problem = PlanningProblem::new(
            Arc::new(gc),
            ComponentLibrary::automotive(),
            TasConfig::default(),
            flows,
            1e-6,
            Arc::new(ShortestPathRecovery::new()),
        )
        .unwrap();
        (problem, a, b, s0, s1)
    }

    fn env() -> (PlanningEnv, StdRng) {
        let (problem, ..) = theta_problem();
        let mut rng = StdRng::seed_from_u64(42);
        let env = PlanningEnv::new(problem, 6, 1e3, 64, &mut rng);
        (env, rng)
    }

    /// Index of the first masked-in action matching `pred`.
    fn find_action(
        env: &PlanningEnv,
        pred: impl Fn(&crate::soag::Action) -> bool,
    ) -> Option<usize> {
        (0..env.action_count())
            .find(|&i| env.actions().valid_action(i).map(&pred).unwrap_or(false))
    }

    #[test]
    fn rewards_are_negative_scaled_cost_deltas() {
        let (mut env, mut rng) = env();
        let add_switch = find_action(&env, |a| matches!(a, crate::soag::Action::UpgradeSwitch(_)))
            .expect("switch addition available");
        let out = env.step(add_switch, &mut rng);
        // Adding an ASIL-A 4-port switch costs 8: reward = -8/1000.
        assert!((out.reward + 8.0 / 1000.0).abs() < 1e-6, "reward {}", out.reward);
        assert!(!out.done);
        assert!(out.solution.is_none());
    }

    #[test]
    fn constructing_a_redundant_network_completes_an_episode() {
        // Scripted episode: add both switches, then keep adding paths until
        // the verdict flips to reliable.
        let (mut env, mut rng) = env();
        let mut episode_reward = 0.0;
        let mut solution = None;
        for _ in 0..32 {
            // Prefer path additions once available, otherwise add a switch.
            let idx = find_action(&env, |a| matches!(a, crate::soag::Action::AddPath(_)))
                .or_else(|| find_action(&env, |_| true))
                .expect("some action must be valid");
            let out = env.step(idx, &mut rng);
            episode_reward += out.reward;
            if out.done {
                solution = out.solution;
                break;
            }
        }
        let solution = solution.expect("the theta graph admits a reliable plan");
        assert!(solution.cost > 0.0);
        // Episode return approximates -cost / 1000 (Section IV-C).
        assert!((episode_reward + (solution.cost as f32) / 1000.0).abs() < 1e-4);
        // Either redundancy (two ASIL-A switches) or a single ASIL-D
        // switch whose failure is a safe fault; both are valid plans.
        let hist = solution.asil_histogram();
        assert!(
            solution.switch_count() == 2 || hist[3] == 1,
            "unexpected plan: {solution}"
        );
    }

    #[test]
    fn episode_resets_hit_the_scenario_cache() {
        // Every reset re-analyzes the empty topology; from the second
        // reset on, those NBF checks come from the per-env cache.
        let (mut env, mut rng) = env();
        let cache = Arc::clone(env.analyzer().cache().expect("default env has a cache"));
        let after_first = cache.stats();
        env.reset(&mut rng);
        let after_second = cache.stats();
        assert!(
            after_second.hits > after_first.hits,
            "second reset should reuse cached NBF outcomes: {after_second:?}"
        );
    }

    #[test]
    fn custom_analyzer_is_honored() {
        let (problem, ..) = theta_problem();
        let mut rng = StdRng::seed_from_u64(7);
        let analyzer = FailureAnalyzer::new().with_workers(2);
        let env = PlanningEnv::with_analyzer(problem, 6, 1e3, 64, analyzer, &mut rng);
        assert_eq!(env.analyzer().workers(), 2);
        assert!(env.analyzer().cache().is_none());
    }

    #[test]
    fn reset_restores_the_empty_network() {
        let (mut env, mut rng) = env();
        let idx = find_action(&env, |_| true).unwrap();
        let _ = env.step(idx, &mut rng);
        assert!(env.topology().selected_switches().len() + env.topology().link_count() > 0);
        env.reset(&mut rng);
        assert_eq!(env.topology().selected_switches().len(), 0);
        assert_eq!(env.topology().link_count(), 0);
    }

    #[test]
    #[should_panic(expected = "masked out")]
    fn masked_actions_panic() {
        let (mut env, mut rng) = env();
        let masked = (0..env.action_count())
            .find(|&i| !env.mask()[i])
            .expect("some action is masked at reset");
        let _ = env.step(masked, &mut rng);
    }

    #[test]
    fn truncation_flag_set_at_step_cap() {
        let (problem, ..) = theta_problem();
        let mut rng = StdRng::seed_from_u64(0);
        // Step cap of 1: the very first (non-terminal) step truncates.
        let mut env = PlanningEnv::new(problem, 6, 1e3, 1, &mut rng);
        let idx = (0..env.action_count()).find(|&i| env.mask()[i]).unwrap();
        let out = env.step(idx, &mut rng);
        assert!(out.done && out.truncated);
    }

    #[test]
    fn dead_end_applies_penalty() {
        // A problem where reliability is unreachable: a single switch and a
        // reliability goal stricter than any ASIL can deliver. All upgrade
        // actions exhaust at ASIL-D and no redundant path exists.
        let mut gc = ConnectionGraph::new();
        let a = gc.add_end_station("a");
        let b = gc.add_end_station("b");
        let s = gc.add_switch("s");
        gc.add_candidate_link(a, s, 1.0).unwrap();
        gc.add_candidate_link(b, s, 1.0).unwrap();
        let flows = FlowSet::new(vec![FlowSpec::new(a, b, 500, 128)]).unwrap();
        let problem = PlanningProblem::new(
            Arc::new(gc),
            ComponentLibrary::automotive(),
            TasConfig::default(),
            flows,
            1e-12, // even an ASIL-D failure is non-safe
            Arc::new(ShortestPathRecovery::new()),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let mut env = PlanningEnv::new(problem, 4, 1e3, 64, &mut rng);
        let mut last = None;
        for _ in 0..64 {
            let Some(idx) = (0..env.action_count()).find(|&i| env.mask()[i]) else {
                break;
            };
            let out = env.step(idx, &mut rng);
            last = Some(out.clone());
            if out.done {
                break;
            }
        }
        let last = last.expect("steps were taken");
        assert!(last.done);
        assert!(last.solution.is_none());
        assert!(last.reward <= -1.0, "dead-end penalty missing: {}", last.reward);
        let _ = Asil::D;
    }
}
