//! The network planning problem instance.

use std::fmt;
use std::sync::Arc;

use nptsn_sched::{FlowSet, NetworkBehavior, TasConfig};
use nptsn_topo::{ComponentLibrary, ConnectionGraph};

/// A complete TSSDN network planning problem (Section II-C): the graph of
/// possible connections `Gc`, the component library, the TAS base period
/// `B`, the flow specifications `FS`, the reliability goal `R` and the
/// stateless NBF `Φ` of the selected recovery mechanism.
///
/// Cloning is cheap; the graph and NBF are shared through [`Arc`], which
/// also makes problems `Send + Sync` for the parallel rollout workers.
#[derive(Clone)]
pub struct PlanningProblem {
    gc: Arc<ConnectionGraph>,
    library: ComponentLibrary,
    tas: TasConfig,
    flows: FlowSet,
    reliability_goal: f64,
    nbf: Arc<dyn NetworkBehavior>,
}

impl PlanningProblem {
    /// Assembles a planning problem.
    ///
    /// # Errors
    ///
    /// Returns a message when the inputs are inconsistent: a flow endpoint
    /// that is not an end station of `gc`, a non-positive reliability goal,
    /// or a candidate graph whose degree bound exceeds the largest switch
    /// in the library (no feasible switch would exist, Section II-C).
    pub fn new(
        gc: Arc<ConnectionGraph>,
        library: ComponentLibrary,
        tas: TasConfig,
        flows: FlowSet,
        reliability_goal: f64,
        nbf: Arc<dyn NetworkBehavior>,
    ) -> Result<PlanningProblem, String> {
        if !(reliability_goal > 0.0 && reliability_goal < 1.0) {
            return Err(format!(
                "reliability goal must be in (0, 1), got {reliability_goal}"
            ));
        }
        if gc.max_switch_degree() > library.max_switch_degree() {
            return Err(format!(
                "graph allows switch degree {} but the largest library switch has {} ports",
                gc.max_switch_degree(),
                library.max_switch_degree()
            ));
        }
        for (id, spec) in flows.iter() {
            for node in [spec.source(), spec.destination()] {
                if node.index() >= gc.node_count() || !gc.is_end_station(node) {
                    return Err(format!("flow {id} endpoint {node} is not an end station"));
                }
            }
        }
        Ok(PlanningProblem { gc, library, tas, flows, reliability_goal, nbf })
    }

    /// The graph of possible connections `Gc`.
    pub fn connection_graph(&self) -> &ConnectionGraph {
        &self.gc
    }

    /// Shared handle to the connection graph.
    pub fn connection_graph_arc(&self) -> Arc<ConnectionGraph> {
        Arc::clone(&self.gc)
    }

    /// The component library.
    pub fn library(&self) -> &ComponentLibrary {
        &self.library
    }

    /// The TAS configuration (base period and slots).
    pub fn tas(&self) -> &TasConfig {
        &self.tas
    }

    /// The TT flow specifications `FS`.
    pub fn flows(&self) -> &FlowSet {
        &self.flows
    }

    /// The reliability goal `R`: the maximum probability of safe faults.
    /// Any failure scenario with probability ≥ `R` must be survivable.
    pub fn reliability_goal(&self) -> f64 {
        self.reliability_goal
    }

    /// The recovery mechanism's stateless NBF.
    pub fn nbf(&self) -> &dyn NetworkBehavior {
        self.nbf.as_ref()
    }

    /// Shared handle to the NBF.
    pub fn nbf_arc(&self) -> Arc<dyn NetworkBehavior> {
        Arc::clone(&self.nbf)
    }
}

// `Debug` by hand because `dyn NetworkBehavior` is not `Debug`; shows the
// NBF's name instead.
impl fmt::Debug for PlanningProblem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PlanningProblem")
            .field("nodes", &self.gc.node_count())
            .field("candidate_links", &self.gc.candidate_link_count())
            .field("flows", &self.flows.len())
            .field("reliability_goal", &self.reliability_goal)
            .field("nbf", &self.nbf.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nptsn_sched::{FlowSpec, ShortestPathRecovery};

    fn base() -> (Arc<ConnectionGraph>, FlowSet) {
        let mut gc = ConnectionGraph::new();
        let a = gc.add_end_station("a");
        let b = gc.add_end_station("b");
        let s = gc.add_switch("s");
        gc.add_candidate_link(a, s, 1.0).unwrap();
        gc.add_candidate_link(b, s, 1.0).unwrap();
        let flows = FlowSet::new(vec![FlowSpec::new(a, b, 500, 128)]).unwrap();
        (Arc::new(gc), flows)
    }

    #[test]
    fn valid_problem_builds() {
        let (gc, flows) = base();
        let p = PlanningProblem::new(
            gc,
            ComponentLibrary::automotive(),
            TasConfig::default(),
            flows,
            1e-6,
            Arc::new(ShortestPathRecovery::new()),
        )
        .unwrap();
        assert_eq!(p.flows().len(), 1);
        assert_eq!(p.reliability_goal(), 1e-6);
        assert_eq!(p.nbf().name(), "shortest-path");
        assert!(format!("{p:?}").contains("shortest-path"));
    }

    #[test]
    fn bad_reliability_goal_rejected() {
        let (gc, flows) = base();
        for r in [0.0, -1.0, 1.0, 2.0] {
            assert!(PlanningProblem::new(
                Arc::clone(&gc),
                ComponentLibrary::automotive(),
                TasConfig::default(),
                flows.clone(),
                r,
                Arc::new(ShortestPathRecovery::new()),
            )
            .is_err());
        }
    }

    #[test]
    fn flow_endpoint_must_be_end_station() {
        let mut gc = ConnectionGraph::new();
        let a = gc.add_end_station("a");
        let s = gc.add_switch("s");
        gc.add_candidate_link(a, s, 1.0).unwrap();
        // Flow targeting the switch: invalid.
        let flows = FlowSet::new(vec![FlowSpec::new(a, s, 500, 128)]).unwrap();
        assert!(PlanningProblem::new(
            Arc::new(gc),
            ComponentLibrary::automotive(),
            TasConfig::default(),
            flows,
            1e-6,
            Arc::new(ShortestPathRecovery::new()),
        )
        .is_err());
    }

    #[test]
    fn degree_bound_must_fit_library() {
        let (gc, flows) = base();
        let mut gc2 = (*gc).clone();
        gc2.set_max_switch_degree(12); // larger than any Table I switch
        assert!(PlanningProblem::new(
            Arc::new(gc2),
            ComponentLibrary::automotive(),
            TasConfig::default(),
            flows,
            1e-6,
            Arc::new(ShortestPathRecovery::new()),
        )
        .is_err());
    }
}
