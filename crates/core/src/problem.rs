//! The network planning problem instance.

use std::fmt;
use std::sync::Arc;

use nptsn_sched::{FlowSet, NetworkBehavior, TasConfig};
use nptsn_topo::{ComponentLibrary, ConnectionGraph};

/// A complete TSSDN network planning problem (Section II-C): the graph of
/// possible connections `Gc`, the component library, the TAS base period
/// `B`, the flow specifications `FS`, the reliability goal `R` and the
/// stateless NBF `Φ` of the selected recovery mechanism.
///
/// Cloning is cheap; the graph and NBF are shared through [`Arc`], which
/// also makes problems `Send + Sync` for the parallel rollout workers.
#[derive(Clone)]
pub struct PlanningProblem {
    gc: Arc<ConnectionGraph>,
    library: ComponentLibrary,
    tas: TasConfig,
    flows: FlowSet,
    reliability_goal: f64,
    nbf: Arc<dyn NetworkBehavior>,
    graph_fingerprint: u128,
}

impl PlanningProblem {
    /// Assembles a planning problem.
    ///
    /// # Errors
    ///
    /// Returns a message when the inputs are inconsistent: a flow endpoint
    /// that is not an end station of `gc`, a non-positive reliability goal,
    /// or a candidate graph whose degree bound exceeds the largest switch
    /// in the library (no feasible switch would exist, Section II-C).
    pub fn new(
        gc: Arc<ConnectionGraph>,
        library: ComponentLibrary,
        tas: TasConfig,
        flows: FlowSet,
        reliability_goal: f64,
        nbf: Arc<dyn NetworkBehavior>,
    ) -> Result<PlanningProblem, String> {
        if !(reliability_goal > 0.0 && reliability_goal < 1.0) {
            return Err(format!(
                "reliability goal must be in (0, 1), got {reliability_goal}"
            ));
        }
        if gc.max_switch_degree() > library.max_switch_degree() {
            return Err(format!(
                "graph allows switch degree {} but the largest library switch has {} ports",
                gc.max_switch_degree(),
                library.max_switch_degree()
            ));
        }
        for (id, spec) in flows.iter() {
            for node in [spec.source(), spec.destination()] {
                if node.index() >= gc.node_count() || !gc.is_end_station(node) {
                    return Err(format!("flow {id} endpoint {node} is not an end station"));
                }
            }
        }
        let graph_fingerprint = fingerprint_graph(&gc);
        Ok(PlanningProblem { gc, library, tas, flows, reliability_goal, nbf, graph_fingerprint })
    }

    /// The graph of possible connections `Gc`.
    pub fn connection_graph(&self) -> &ConnectionGraph {
        &self.gc
    }

    /// Shared handle to the connection graph.
    pub fn connection_graph_arc(&self) -> Arc<ConnectionGraph> {
        Arc::clone(&self.gc)
    }

    /// The component library.
    pub fn library(&self) -> &ComponentLibrary {
        &self.library
    }

    /// The TAS configuration (base period and slots).
    pub fn tas(&self) -> &TasConfig {
        &self.tas
    }

    /// The TT flow specifications `FS`.
    pub fn flows(&self) -> &FlowSet {
        &self.flows
    }

    /// The reliability goal `R`: the maximum probability of safe faults.
    /// Any failure scenario with probability ≥ `R` must be survivable.
    pub fn reliability_goal(&self) -> f64 {
        self.reliability_goal
    }

    /// The recovery mechanism's stateless NBF.
    pub fn nbf(&self) -> &dyn NetworkBehavior {
        self.nbf.as_ref()
    }

    /// Shared handle to the NBF.
    pub fn nbf_arc(&self) -> Arc<dyn NetworkBehavior> {
        Arc::clone(&self.nbf)
    }

    /// A 128-bit fingerprint of the candidate graph's structure (node
    /// kinds, candidate link endpoints and lengths), computed once at
    /// construction.
    ///
    /// `Topology::fingerprint` covers only the *selection state* (which
    /// switches/links are active), so it can collide across different
    /// problems; mixing in this value makes a `(graph, selection)` pair
    /// globally unique — the key the process-wide normalized-adjacency
    /// cache uses.
    pub fn graph_fingerprint(&self) -> u128 {
        self.graph_fingerprint
    }
}

/// FNV-1a over the structural facts that determine a topology's raw
/// adjacency matrix, two independent 64-bit streams like
/// `Topology::fingerprint`.
fn fingerprint_graph(gc: &ConnectionGraph) -> u128 {
    let mut lo: u64 = 0xcbf2_9ce4_8422_2325;
    let mut hi: u64 = 0x6c62_272e_07bb_0142;
    let mut mix = |byte: u8| {
        lo = (lo ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
        hi = (hi ^ u64::from(byte).rotate_left(17)).wrapping_mul(0x0000_01b3_0000_0193);
    };
    let mix_u64 = |v: u64, mix: &mut dyn FnMut(u8)| {
        for b in v.to_le_bytes() {
            mix(b);
        }
    };
    mix_u64(gc.node_count() as u64, &mut mix);
    for node in gc.nodes() {
        mix(u8::from(gc.is_switch(node)));
    }
    for link in gc.links() {
        let (u, v) = gc.link_endpoints(link);
        mix_u64(u.index() as u64, &mut mix);
        mix_u64(v.index() as u64, &mut mix);
        mix_u64(gc.link_length(link).to_bits(), &mut mix);
    }
    (u128::from(hi) << 64) | u128::from(lo)
}

// `Debug` by hand because `dyn NetworkBehavior` is not `Debug`; shows the
// NBF's name instead.
impl fmt::Debug for PlanningProblem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PlanningProblem")
            .field("nodes", &self.gc.node_count())
            .field("candidate_links", &self.gc.candidate_link_count())
            .field("flows", &self.flows.len())
            .field("reliability_goal", &self.reliability_goal)
            .field("nbf", &self.nbf.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nptsn_sched::{FlowSpec, ShortestPathRecovery};

    fn base() -> (Arc<ConnectionGraph>, FlowSet) {
        let mut gc = ConnectionGraph::new();
        let a = gc.add_end_station("a");
        let b = gc.add_end_station("b");
        let s = gc.add_switch("s");
        gc.add_candidate_link(a, s, 1.0).unwrap();
        gc.add_candidate_link(b, s, 1.0).unwrap();
        let flows = FlowSet::new(vec![FlowSpec::new(a, b, 500, 128)]).unwrap();
        (Arc::new(gc), flows)
    }

    #[test]
    fn valid_problem_builds() {
        let (gc, flows) = base();
        let p = PlanningProblem::new(
            gc,
            ComponentLibrary::automotive(),
            TasConfig::default(),
            flows,
            1e-6,
            Arc::new(ShortestPathRecovery::new()),
        )
        .unwrap();
        assert_eq!(p.flows().len(), 1);
        assert_eq!(p.reliability_goal(), 1e-6);
        assert_eq!(p.nbf().name(), "shortest-path");
        assert!(format!("{p:?}").contains("shortest-path"));
    }

    #[test]
    fn bad_reliability_goal_rejected() {
        let (gc, flows) = base();
        for r in [0.0, -1.0, 1.0, 2.0] {
            assert!(PlanningProblem::new(
                Arc::clone(&gc),
                ComponentLibrary::automotive(),
                TasConfig::default(),
                flows.clone(),
                r,
                Arc::new(ShortestPathRecovery::new()),
            )
            .is_err());
        }
    }

    #[test]
    fn flow_endpoint_must_be_end_station() {
        let mut gc = ConnectionGraph::new();
        let a = gc.add_end_station("a");
        let s = gc.add_switch("s");
        gc.add_candidate_link(a, s, 1.0).unwrap();
        // Flow targeting the switch: invalid.
        let flows = FlowSet::new(vec![FlowSpec::new(a, s, 500, 128)]).unwrap();
        assert!(PlanningProblem::new(
            Arc::new(gc),
            ComponentLibrary::automotive(),
            TasConfig::default(),
            flows,
            1e-6,
            Arc::new(ShortestPathRecovery::new()),
        )
        .is_err());
    }

    #[test]
    fn graph_fingerprint_tracks_structure() {
        let (gc, flows) = base();
        let build = |gc: Arc<ConnectionGraph>, flows: FlowSet| {
            PlanningProblem::new(
                gc,
                ComponentLibrary::automotive(),
                TasConfig::default(),
                flows,
                1e-6,
                Arc::new(ShortestPathRecovery::new()),
            )
            .unwrap()
        };
        let a = build(Arc::clone(&gc), flows.clone());
        let b = build(Arc::clone(&gc), flows.clone());
        assert_eq!(a.graph_fingerprint(), b.graph_fingerprint());
        // A structurally different graph gets a different fingerprint.
        let mut gc2 = (*gc).clone();
        let s2 = gc2.add_switch("s2");
        let first = gc2.end_stations()[0];
        gc2.add_candidate_link(first, s2, 2.0).unwrap();
        let c = build(Arc::new(gc2), flows);
        assert_ne!(a.graph_fingerprint(), c.graph_fingerprint());
    }

    #[test]
    fn degree_bound_must_fit_library() {
        let (gc, flows) = base();
        let mut gc2 = (*gc).clone();
        gc2.set_max_switch_degree(12); // larger than any Table I switch
        assert!(PlanningProblem::new(
            Arc::new(gc2),
            ComponentLibrary::automotive(),
            TasConfig::default(),
            flows,
            1e-6,
            Arc::new(ShortestPathRecovery::new()),
        )
        .is_err());
    }
}
