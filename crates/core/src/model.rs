//! The GCN + actor/critic policy network (Fig. 3).

use nptsn_nn::{Activation, Gcn, GcnBatchItem, Mlp, Module, ShapeError};
use nptsn_rl::{masked_log_probs, ActorCritic};
use nptsn_tensor::{kernels, Tensor};
use nptsn_rand::rngs::StdRng;
use nptsn_rand::SeedableRng;

use crate::config::PlannerConfig;
use crate::encode::{Observation, AUX_LEN};
use crate::error::NptsnError;

/// Logit offset for masked actions, identical to the one
/// `nptsn_rl::masked_log_probs` applies (NeuroPlan's −1e9 technique).
const MASK_OFFSET: f32 = -1e9;

/// The RL decision maker's neural networks: a GCN extracting a graph
/// embedding from the encoded TSSDN, mean-pooled and concatenated with the
/// auxiliary parameter vector, feeding an actor MLP (action logits) and a
/// critic MLP (value estimate).
///
/// Not `Send`: tensors are `Rc`-based. Parallel rollout workers construct
/// their own replica (same seed) and synchronize values with
/// [`export_params`](nptsn_nn::export_params) /
/// [`import_params`](nptsn_nn::import_params).
#[derive(Debug)]
pub struct PolicyNetwork {
    gcn: Gcn,
    actor: Mlp,
    critic: Mlp,
    node_count: usize,
    feature_count: usize,
}

impl PolicyNetwork {
    /// Builds the network for a problem with `node_count` candidate nodes,
    /// `feature_count` node features and `action_count` action slots,
    /// deterministically from `seed`.
    pub fn new(
        config: &PlannerConfig,
        node_count: usize,
        feature_count: usize,
        action_count: usize,
        seed: u64,
    ) -> PolicyNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        let emb = config.embedding_dim_for(node_count);
        // GCN dims: feature_count -> emb -> ... (gcn_layers times).
        let mut dims = vec![feature_count];
        dims.extend(std::iter::repeat_n(emb, config.gcn_layers));
        let gcn = Gcn::new(&mut rng, &dims);
        let pooled = gcn.output_dim(feature_count) + AUX_LEN;
        let mut actor_sizes = vec![pooled];
        actor_sizes.extend_from_slice(&config.mlp_hidden);
        actor_sizes.push(action_count);
        let actor = Mlp::new(&mut rng, &actor_sizes, Activation::Tanh, Activation::Identity);
        let mut critic_sizes = vec![pooled];
        critic_sizes.extend_from_slice(&config.mlp_hidden);
        critic_sizes.push(1);
        let critic = Mlp::new(&mut rng, &critic_sizes, Activation::Tanh, Activation::Identity);
        PolicyNetwork { gcn, actor, critic, node_count, feature_count }
    }

    /// The GCN embedding + auxiliary input for one observation.
    fn embed(&self, obs: &Observation) -> Tensor {
        debug_assert_eq!(obs.node_count, self.node_count);
        debug_assert_eq!(obs.feature_count, self.feature_count);
        let ahat = Tensor::from_vec(obs.node_count, obs.node_count, obs.ahat.to_vec());
        let h = Tensor::from_vec(obs.node_count, obs.feature_count, obs.features.clone());
        let node_embeddings = self.gcn.forward(&ahat, &h);
        let graph_embedding = node_embeddings.mean_rows();
        let aux = Tensor::from_vec(1, obs.aux.len(), obs.aux.clone());
        Tensor::concat_cols(&[graph_embedding, aux])
    }

    /// Parameters trained by the actor update: GCN + actor MLP
    /// (Algorithm 2 line 20).
    pub fn actor_parameters(&self) -> Vec<Tensor> {
        let mut p = self.gcn.parameters();
        p.extend(self.actor.parameters());
        p
    }

    /// Parameters trained by the critic update: GCN + critic MLP
    /// (Algorithm 2 line 21; the GCN is updated twice per epoch).
    pub fn critic_parameters(&self) -> Vec<Tensor> {
        let mut p = self.gcn.parameters();
        p.extend(self.critic.parameters());
        p
    }

    /// Number of candidate nodes this network was built for.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Batched deployment forward: evaluates K `(observation, mask)` pairs
    /// in one pass and returns each pair's `(log-probs, value)` exactly as
    /// [`ActorCritic::evaluate`] would.
    ///
    /// The K GCNs run as one fused block-diagonal forward
    /// ([`Gcn::forward_many`]), the actor and critic MLPs each run once on
    /// the K stacked pooled embeddings (their layers are row-independent)
    /// and the mask/log-softmax applies row-wise — every step reuses the
    /// solo path's kernels on the same per-row data, so the outputs are
    /// **bitwise identical** to K solo `evaluate` calls (pinned by this
    /// crate's equivalence tests). The returned tensors carry no autograd
    /// graph; this is the inference path.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches or an all-false mask;
    /// [`PolicyNetwork::try_evaluate_many`] is the panic-free twin.
    pub fn evaluate_many(&self, batch: &[(&Observation, &[bool])]) -> Vec<(Tensor, Tensor)> {
        match self.try_evaluate_many(batch) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Panic-free twin of [`PolicyNetwork::evaluate_many`]: any shape
    /// mismatch or all-false mask fails the whole call with an
    /// [`NptsnError`] instead of panicking (the serve micro-batcher
    /// pre-validates per job, so one bad job never reaches this point
    /// alongside good ones).
    pub fn try_evaluate_many(
        &self,
        batch: &[(&Observation, &[bool])],
    ) -> Result<Vec<(Tensor, Tensor)>, NptsnError> {
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        let action_count = match batch.first() {
            Some((_, mask)) => mask.len(),
            None => 0,
        };
        for (i, (obs, mask)) in batch.iter().enumerate() {
            if obs.node_count != self.node_count || obs.feature_count != self.feature_count {
                return Err(NptsnError::Shape(ShapeError {
                    op: "evaluate_many",
                    detail: format!(
                        "item {i}: observation is {} x {}, network expects {} x {}",
                        obs.node_count, obs.feature_count, self.node_count, self.feature_count
                    ),
                }));
            }
            if obs.aux.len() != AUX_LEN {
                return Err(NptsnError::Shape(ShapeError {
                    op: "evaluate_many",
                    detail: format!("item {i}: aux has {} entries, expected {AUX_LEN}", obs.aux.len()),
                }));
            }
            if mask.len() != action_count {
                return Err(NptsnError::Shape(ShapeError {
                    op: "evaluate_many",
                    detail: format!(
                        "item {i}: mask has {} bits, item 0 has {action_count}",
                        mask.len()
                    ),
                }));
            }
            if !mask.iter().any(|&m| m) {
                return Err(NptsnError::Shape(ShapeError {
                    op: "evaluate_many",
                    detail: format!("item {i}: all actions masked; the episode must reset"),
                }));
            }
        }

        // One fused block-diagonal GCN forward over all K topologies.
        let items: Vec<GcnBatchItem<'_>> = batch
            .iter()
            .map(|(obs, _)| GcnBatchItem {
                ahat: &obs.ahat,
                n: obs.node_count,
                h: &obs.features,
            })
            .collect();
        let embedded = self.gcn.try_forward_many(&items)?;

        // Mean-pool each block and append its aux vector: the stacked
        // (K, pooled + AUX_LEN) input both MLP heads consume at once.
        let pooled = embedded.out_dim;
        let width = pooled + AUX_LEN;
        let mut input = vec![0.0f32; batch.len() * width];
        for (i, (obs, _)) in batch.iter().enumerate() {
            let row = &mut input[i * width..(i + 1) * width];
            kernels::mean_rows(embedded.block(i), embedded.block_rows(i), pooled, &mut row[..pooled]);
            row[pooled..].copy_from_slice(&obs.aux);
        }
        let input = Tensor::from_vec(batch.len(), width, input);
        let logits = self.actor.forward(&input);
        let values = self.critic.forward(&input);

        // Mask + row log-softmax, K rows at once; the add is elementwise
        // and the softmax per-row, so each row matches its solo
        // `masked_log_probs` bit for bit.
        let offsets: Vec<f32> = batch
            .iter()
            .flat_map(|(_, mask)| {
                mask.iter().map(|&m| if m { 0.0 } else { MASK_OFFSET })
            })
            .collect();
        let mask_rows = Tensor::from_vec(batch.len(), action_count, offsets);
        let log_probs = logits.add(&mask_rows).log_softmax_rows();

        // Split back into per-item (1, actions) / (1, 1) leaf tensors.
        let lp = log_probs.data();
        let vals = values.data();
        let out = (0..batch.len())
            .map(|i| {
                (
                    Tensor::from_vec(
                        1,
                        action_count,
                        lp[i * action_count..(i + 1) * action_count].to_vec(),
                    ),
                    Tensor::from_vec(1, 1, vec![vals[i]]),
                )
            })
            .collect();
        Ok(out)
    }
}

impl Module for PolicyNetwork {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.gcn.parameters();
        p.extend(self.actor.parameters());
        p.extend(self.critic.parameters());
        p
    }
}

impl ActorCritic<Observation> for PolicyNetwork {
    fn evaluate(&self, obs: &Observation, mask: &[bool]) -> (Tensor, Tensor) {
        let input = self.embed(obs);
        let logits = self.actor.forward(&input);
        let value = self.critic.forward(&input);
        (masked_log_probs(&logits, mask), value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nptsn_nn::{export_params, import_params};

    fn toy_obs(n: usize, f: usize) -> Observation {
        let mut ahat = vec![0.0f32; n * n];
        for i in 0..n {
            ahat[i * n + i] = 1.0;
        }
        Observation {
            node_count: n,
            feature_count: f,
            ahat: ahat.into(),
            features: (0..n * f).map(|i| (i % 7) as f32 * 0.1).collect(),
            aux: vec![0.5; AUX_LEN],
        }
    }

    fn toy_config() -> PlannerConfig {
        PlannerConfig {
            mlp_hidden: vec![16, 16],
            embedding_dim: Some(8),
            ..PlannerConfig::default()
        }
    }

    #[test]
    fn evaluate_produces_masked_distribution_and_value() {
        let cfg = toy_config();
        let net = PolicyNetwork::new(&cfg, 4, 10, 6, 0);
        let obs = toy_obs(4, 10);
        let mask = vec![true, false, true, true, false, true];
        let (logps, value) = net.evaluate(&obs, &mask);
        assert_eq!(logps.shape(), (1, 6));
        assert_eq!(value.shape(), (1, 1));
        let p: Vec<f32> = logps.to_vec().iter().map(|x| x.exp()).collect();
        assert!(p[1] < 1e-12 && p[4] < 1e-12);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        assert_eq!(net.node_count(), 4);
    }

    #[test]
    fn same_seed_same_network() {
        let cfg = toy_config();
        let a = PolicyNetwork::new(&cfg, 4, 10, 6, 7);
        let b = PolicyNetwork::new(&cfg, 4, 10, 6, 7);
        let obs = toy_obs(4, 10);
        let mask = vec![true; 6];
        assert_eq!(a.evaluate(&obs, &mask).0.to_vec(), b.evaluate(&obs, &mask).0.to_vec());
    }

    #[test]
    fn param_transfer_replicates_behavior() {
        let cfg = toy_config();
        let a = PolicyNetwork::new(&cfg, 4, 10, 6, 1);
        let b = PolicyNetwork::new(&cfg, 4, 10, 6, 2);
        let obs = toy_obs(4, 10);
        let mask = vec![true; 6];
        assert_ne!(a.evaluate(&obs, &mask).0.to_vec(), b.evaluate(&obs, &mask).0.to_vec());
        import_params(&b.parameters(), &export_params(&a.parameters()));
        assert_eq!(a.evaluate(&obs, &mask).0.to_vec(), b.evaluate(&obs, &mask).0.to_vec());
    }

    #[test]
    fn gcn_is_shared_between_heads() {
        let cfg = toy_config();
        let net = PolicyNetwork::new(&cfg, 3, 8, 4, 0);
        let actor_p = net.actor_parameters();
        let critic_p = net.critic_parameters();
        // The two GCN layers appear in both lists (same underlying data).
        assert_eq!(cfg.gcn_layers, 2);
        for i in 0..cfg.gcn_layers {
            let before = actor_p[i].to_vec();
            assert_eq!(before, critic_p[i].to_vec());
            actor_p[i].set_data(&vec![0.123; actor_p[i].len()]);
            assert_eq!(critic_p[i].to_vec(), vec![0.123; critic_p[i].len()]);
        }
    }

    #[test]
    fn evaluate_many_bit_identical_to_solo_evaluates() {
        let cfg = toy_config();
        let net = PolicyNetwork::new(&cfg, 4, 10, 6, 3);
        // Distinct observations and masks per lane.
        let mut observations = Vec::new();
        let mut masks = Vec::new();
        for lane in 0..5usize {
            let mut obs = toy_obs(4, 10);
            obs.features.iter_mut().for_each(|v| *v += lane as f32 * 0.01);
            observations.push(obs);
            let mut mask = vec![true; 6];
            mask[lane % 6] = false;
            masks.push(mask);
        }
        let batch: Vec<(&Observation, &[bool])> = observations
            .iter()
            .zip(&masks)
            .map(|(o, m)| (o, m.as_slice()))
            .collect();
        let many = net.evaluate_many(&batch);
        assert_eq!(many.len(), 5);
        for (i, (obs, mask)) in batch.iter().enumerate() {
            let (solo_lp, solo_v) = net.evaluate(obs, mask);
            // Bitwise equality with the solo path.
            assert_eq!(many[i].0.to_vec(), solo_lp.to_vec(), "lane {i} log-probs");
            assert_eq!(many[i].1.item().to_bits(), solo_v.item().to_bits(), "lane {i} value");
        }
    }

    #[test]
    fn try_evaluate_many_isolates_bad_items() {
        let cfg = toy_config();
        let net = PolicyNetwork::new(&cfg, 4, 10, 6, 3);
        let obs = toy_obs(4, 10);
        let good: &[bool] = &[true; 6];
        assert!(net.try_evaluate_many(&[(&obs, good)]).is_ok());
        // All-false mask rejected with the item index.
        let all_false: &[bool] = &[false; 6];
        let err = net.try_evaluate_many(&[(&obs, good), (&obs, all_false)]).unwrap_err();
        assert!(err.to_string().contains("item 1"), "got: {err}");
        // Wrong node count rejected.
        let small = toy_obs(3, 10);
        assert!(net.try_evaluate_many(&[(&small, good)]).is_err());
        // Empty batch is a no-op.
        assert!(net.evaluate_many(&[]).is_empty());
    }

    #[test]
    fn zero_layer_gcn_supported() {
        let cfg = PlannerConfig { gcn_layers: 0, ..toy_config() };
        let net = PolicyNetwork::new(&cfg, 4, 10, 6, 0);
        let obs = toy_obs(4, 10);
        let (logps, _) = net.evaluate(&obs, &[true; 6]);
        assert_eq!(logps.cols(), 6);
        // Actor parameters = 0 GCN weights + 3 Linear layers x 2.
        assert_eq!(net.actor_parameters().len(), 6);
    }
}
