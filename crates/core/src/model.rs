//! The GCN + actor/critic policy network (Fig. 3).

use nptsn_nn::{Activation, Gcn, Mlp, Module};
use nptsn_rl::{masked_log_probs, ActorCritic};
use nptsn_tensor::Tensor;
use nptsn_rand::rngs::StdRng;
use nptsn_rand::SeedableRng;

use crate::config::PlannerConfig;
use crate::encode::{Observation, AUX_LEN};

/// The RL decision maker's neural networks: a GCN extracting a graph
/// embedding from the encoded TSSDN, mean-pooled and concatenated with the
/// auxiliary parameter vector, feeding an actor MLP (action logits) and a
/// critic MLP (value estimate).
///
/// Not `Send`: tensors are `Rc`-based. Parallel rollout workers construct
/// their own replica (same seed) and synchronize values with
/// [`export_params`](nptsn_nn::export_params) /
/// [`import_params`](nptsn_nn::import_params).
#[derive(Debug)]
pub struct PolicyNetwork {
    gcn: Gcn,
    actor: Mlp,
    critic: Mlp,
    node_count: usize,
    feature_count: usize,
}

impl PolicyNetwork {
    /// Builds the network for a problem with `node_count` candidate nodes,
    /// `feature_count` node features and `action_count` action slots,
    /// deterministically from `seed`.
    pub fn new(
        config: &PlannerConfig,
        node_count: usize,
        feature_count: usize,
        action_count: usize,
        seed: u64,
    ) -> PolicyNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        let emb = config.embedding_dim_for(node_count);
        // GCN dims: feature_count -> emb -> ... (gcn_layers times).
        let mut dims = vec![feature_count];
        dims.extend(std::iter::repeat_n(emb, config.gcn_layers));
        let gcn = Gcn::new(&mut rng, &dims);
        let pooled = gcn.output_dim(feature_count) + AUX_LEN;
        let mut actor_sizes = vec![pooled];
        actor_sizes.extend_from_slice(&config.mlp_hidden);
        actor_sizes.push(action_count);
        let actor = Mlp::new(&mut rng, &actor_sizes, Activation::Tanh, Activation::Identity);
        let mut critic_sizes = vec![pooled];
        critic_sizes.extend_from_slice(&config.mlp_hidden);
        critic_sizes.push(1);
        let critic = Mlp::new(&mut rng, &critic_sizes, Activation::Tanh, Activation::Identity);
        PolicyNetwork { gcn, actor, critic, node_count, feature_count }
    }

    /// The GCN embedding + auxiliary input for one observation.
    fn embed(&self, obs: &Observation) -> Tensor {
        debug_assert_eq!(obs.node_count, self.node_count);
        debug_assert_eq!(obs.feature_count, self.feature_count);
        let ahat = Tensor::from_vec(obs.node_count, obs.node_count, obs.ahat.clone());
        let h = Tensor::from_vec(obs.node_count, obs.feature_count, obs.features.clone());
        let node_embeddings = self.gcn.forward(&ahat, &h);
        let graph_embedding = node_embeddings.mean_rows();
        let aux = Tensor::from_vec(1, obs.aux.len(), obs.aux.clone());
        Tensor::concat_cols(&[graph_embedding, aux])
    }

    /// Parameters trained by the actor update: GCN + actor MLP
    /// (Algorithm 2 line 20).
    pub fn actor_parameters(&self) -> Vec<Tensor> {
        let mut p = self.gcn.parameters();
        p.extend(self.actor.parameters());
        p
    }

    /// Parameters trained by the critic update: GCN + critic MLP
    /// (Algorithm 2 line 21; the GCN is updated twice per epoch).
    pub fn critic_parameters(&self) -> Vec<Tensor> {
        let mut p = self.gcn.parameters();
        p.extend(self.critic.parameters());
        p
    }

    /// Number of candidate nodes this network was built for.
    pub fn node_count(&self) -> usize {
        self.node_count
    }
}

impl Module for PolicyNetwork {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.gcn.parameters();
        p.extend(self.actor.parameters());
        p.extend(self.critic.parameters());
        p
    }
}

impl ActorCritic<Observation> for PolicyNetwork {
    fn evaluate(&self, obs: &Observation, mask: &[bool]) -> (Tensor, Tensor) {
        let input = self.embed(obs);
        let logits = self.actor.forward(&input);
        let value = self.critic.forward(&input);
        (masked_log_probs(&logits, mask), value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nptsn_nn::{export_params, import_params};

    fn toy_obs(n: usize, f: usize) -> Observation {
        let mut ahat = vec![0.0f32; n * n];
        for i in 0..n {
            ahat[i * n + i] = 1.0;
        }
        Observation {
            node_count: n,
            feature_count: f,
            ahat,
            features: (0..n * f).map(|i| (i % 7) as f32 * 0.1).collect(),
            aux: vec![0.5; AUX_LEN],
        }
    }

    fn toy_config() -> PlannerConfig {
        PlannerConfig {
            mlp_hidden: vec![16, 16],
            embedding_dim: Some(8),
            ..PlannerConfig::default()
        }
    }

    #[test]
    fn evaluate_produces_masked_distribution_and_value() {
        let cfg = toy_config();
        let net = PolicyNetwork::new(&cfg, 4, 10, 6, 0);
        let obs = toy_obs(4, 10);
        let mask = vec![true, false, true, true, false, true];
        let (logps, value) = net.evaluate(&obs, &mask);
        assert_eq!(logps.shape(), (1, 6));
        assert_eq!(value.shape(), (1, 1));
        let p: Vec<f32> = logps.to_vec().iter().map(|x| x.exp()).collect();
        assert!(p[1] < 1e-12 && p[4] < 1e-12);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        assert_eq!(net.node_count(), 4);
    }

    #[test]
    fn same_seed_same_network() {
        let cfg = toy_config();
        let a = PolicyNetwork::new(&cfg, 4, 10, 6, 7);
        let b = PolicyNetwork::new(&cfg, 4, 10, 6, 7);
        let obs = toy_obs(4, 10);
        let mask = vec![true; 6];
        assert_eq!(a.evaluate(&obs, &mask).0.to_vec(), b.evaluate(&obs, &mask).0.to_vec());
    }

    #[test]
    fn param_transfer_replicates_behavior() {
        let cfg = toy_config();
        let a = PolicyNetwork::new(&cfg, 4, 10, 6, 1);
        let b = PolicyNetwork::new(&cfg, 4, 10, 6, 2);
        let obs = toy_obs(4, 10);
        let mask = vec![true; 6];
        assert_ne!(a.evaluate(&obs, &mask).0.to_vec(), b.evaluate(&obs, &mask).0.to_vec());
        import_params(&b.parameters(), &export_params(&a.parameters()));
        assert_eq!(a.evaluate(&obs, &mask).0.to_vec(), b.evaluate(&obs, &mask).0.to_vec());
    }

    #[test]
    fn gcn_is_shared_between_heads() {
        let cfg = toy_config();
        let net = PolicyNetwork::new(&cfg, 3, 8, 4, 0);
        let actor_p = net.actor_parameters();
        let critic_p = net.critic_parameters();
        // The two GCN layers appear in both lists (same underlying data).
        assert_eq!(cfg.gcn_layers, 2);
        for i in 0..cfg.gcn_layers {
            let before = actor_p[i].to_vec();
            assert_eq!(before, critic_p[i].to_vec());
            actor_p[i].set_data(&vec![0.123; actor_p[i].len()]);
            assert_eq!(critic_p[i].to_vec(), vec![0.123; critic_p[i].len()]);
        }
    }

    #[test]
    fn zero_layer_gcn_supported() {
        let cfg = PlannerConfig { gcn_layers: 0, ..toy_config() };
        let net = PolicyNetwork::new(&cfg, 4, 10, 6, 0);
        let obs = toy_obs(4, 10);
        let (logps, _) = net.evaluate(&obs, &[true; 6]);
        assert_eq!(logps.cols(), 6);
        // Actor parameters = 0 GCN weights + 3 Linear layers x 2.
        assert_eq!(net.actor_parameters().len(), 6);
    }
}
