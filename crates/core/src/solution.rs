//! Planning solutions.

use std::fmt;

use nptsn_topo::{Asil, Topology};

/// A verified planning solution: a topology whose reliability guarantee has
/// been established by the failure analyzer, with its network cost (Eq. 1).
#[derive(Debug, Clone)]
pub struct Solution {
    /// The planned topology including the ASIL allocation.
    pub topology: Topology,
    /// The network cost at the time of verification.
    pub cost: f64,
}

impl Solution {
    /// Number of selected switches.
    pub fn switch_count(&self) -> usize {
        self.topology.selected_switches().len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.topology.link_count()
    }

    /// Histogram of switch ASILs `[A, B, C, D]` — the data behind the ASIL
    /// allocation comparison of Fig. 4(c).
    pub fn asil_histogram(&self) -> [usize; 4] {
        let mut hist = [0usize; 4];
        for &sw in self.topology.selected_switches() {
            let asil = self.topology.switch_asil(sw).expect("selected");
            hist[asil.index()] += 1;
        }
        hist
    }

    /// Fraction of switches at each ASIL `[A, B, C, D]`; zeros when the
    /// solution has no switches.
    pub fn asil_fractions(&self) -> [f64; 4] {
        let hist = self.asil_histogram();
        let total: usize = hist.iter().sum();
        if total == 0 {
            return [0.0; 4];
        }
        let mut out = [0.0; 4];
        for (o, h) in out.iter_mut().zip(hist.iter()) {
            *o = *h as f64 / total as f64;
        }
        out
    }
}

impl fmt::Display for Solution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hist = self.asil_histogram();
        write!(
            f,
            "cost {:.1}: {} switches (A:{} B:{} C:{} D:{}), {} links",
            self.cost,
            self.switch_count(),
            hist[0],
            hist[1],
            hist[2],
            hist[3],
            self.link_count()
        )
    }
}

/// Keeps the lower-cost of two optional solutions (the "record the best
/// solution" step of Algorithm 2 line 11).
pub(crate) fn keep_best(best: &mut Option<Solution>, candidate: Solution) {
    match best {
        Some(b) if b.cost <= candidate.cost => {}
        _ => *best = Some(candidate),
    }
}

/// Short single-letter ASIL label for compact reports.
pub fn asil_label(asil: Asil) -> &'static str {
    match asil {
        Asil::A => "A",
        Asil::B => "B",
        Asil::C => "C",
        Asil::D => "D",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nptsn_topo::{Asil, ConnectionGraph};

    fn solution_with(asils: &[Asil]) -> Solution {
        let mut gc = ConnectionGraph::new();
        let a = gc.add_end_station("a");
        let switches: Vec<_> =
            (0..asils.len()).map(|i| gc.add_switch(format!("s{i}"))).collect();
        for &s in &switches {
            gc.add_candidate_link(a, s, 1.0).ok();
        }
        let mut topo = gc.empty_topology();
        for (&s, &asil) in switches.iter().zip(asils) {
            topo.add_switch(s, asil).unwrap();
        }
        let cost = topo.network_cost(&nptsn_topo::ComponentLibrary::automotive());
        Solution { topology: topo, cost }
    }

    #[test]
    fn histogram_counts_levels() {
        let s = solution_with(&[Asil::A, Asil::A, Asil::D, Asil::B]);
        assert_eq!(s.asil_histogram(), [2, 1, 0, 1]);
        assert_eq!(s.switch_count(), 4);
        let frac = s.asil_fractions();
        assert!((frac[0] - 0.5).abs() < 1e-12);
        assert!((frac[3] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_solution_fractions_are_zero() {
        let s = solution_with(&[]);
        assert_eq!(s.asil_fractions(), [0.0; 4]);
        assert_eq!(s.link_count(), 0);
    }

    #[test]
    fn keep_best_prefers_lower_cost() {
        let cheap = solution_with(&[Asil::A]);
        let pricey = solution_with(&[Asil::D, Asil::D]);
        let mut best = None;
        keep_best(&mut best, pricey.clone());
        assert_eq!(best.as_ref().unwrap().cost, pricey.cost);
        keep_best(&mut best, cheap.clone());
        assert_eq!(best.as_ref().unwrap().cost, cheap.cost);
        keep_best(&mut best, pricey);
        assert_eq!(best.as_ref().unwrap().cost, cheap.cost);
    }

    #[test]
    fn display_mentions_cost_and_counts() {
        let s = solution_with(&[Asil::B]);
        let text = s.to_string();
        assert!(text.contains("B:1"));
        assert!(text.contains("switches"));
        assert_eq!(asil_label(Asil::C), "C");
    }
}
