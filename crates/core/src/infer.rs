//! Batched policy deployment: K infer requests against one checkpoint run
//! their episodes in lockstep so every step's K forwards fuse into a
//! single [`PolicyNetwork::evaluate_many`] call.
//!
//! Each lane replays the exact semantics of
//! [`Planner::plan_with_policy`] — same per-attempt RNG stream, same
//! environment construction, same greedy action selection — so a lane's
//! result is bitwise independent of who else shares its batch (pinned by
//! this crate's `batched_plan` tests). Lanes are isolated: a panic or
//! injected fault (chaos site `infer.batch`) fails one lane while its
//! batch-mates run to completion.

use nptsn_rand::rngs::StdRng;
use nptsn_rand::SeedableRng;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::encode::Observation;
use crate::env::PlanningEnv;
use crate::model::PolicyNetwork;
use crate::planner::{worker_analyzer, Planner};
use crate::solution::{keep_best, Solution};

/// One request of a batched deployment run: which planner (problem +
/// config) to plan, how many greedy attempts, and the attempt seed —
/// the exact argument set of [`Planner::plan_with_policy`].
pub struct InferLane<'a> {
    /// The problem and configuration this lane plans.
    pub planner: &'a Planner,
    /// Number of greedy episodes to run.
    pub attempts: usize,
    /// Base seed; attempt `i` uses `seed.wrapping_add(i)`.
    pub seed: u64,
}

/// Internal per-lane episode state.
struct LaneState<'a> {
    lane: &'a InferLane<'a>,
    attempt: usize,
    rng: StdRng,
    env: Option<PlanningEnv>,
    best: Option<Solution>,
    outcome: Option<Result<Option<Solution>, String>>,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    let detail = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "unknown panic".to_string());
    format!("infer episode panicked: {detail}")
}

/// Plans all `lanes` with one shared `policy`, coalescing each lockstep
/// round's policy forwards into a single batched evaluation.
///
/// Per lane this is exactly [`Planner::plan_with_policy`] — same RNG
/// streams, same environments, same greedy action choice, and (because
/// [`PolicyNetwork::evaluate_many`] is bitwise identical to solo
/// evaluation) the same `Solution` — so coalescing never changes a
/// request's answer. Error isolation per lane:
///
/// - chaos site `infer.batch` fires once per lane before its first
///   episode; an injected fault fails that lane alone,
/// - a panic inside a lane's environment (construction or stepping)
///   fails that lane alone,
/// - a lane whose problem dimensions disagree with lane 0 (the batch
///   leader the caller validated against `policy`) fails up front with a
///   shape message.
///
/// Returns one `Result` per lane, in order: `Ok(Some)` with the cheapest
/// verified solution, `Ok(None)` when no attempt found a plan, `Err` with
/// a description when the lane failed.
pub fn plan_with_policy_batch(
    policy: &PolicyNetwork,
    lanes: &[InferLane<'_>],
) -> Vec<Result<Option<Solution>, String>> {
    let _span = nptsn_obs::span("infer.batch");
    let mut states: Vec<LaneState<'_>> = lanes
        .iter()
        .map(|lane| LaneState {
            lane,
            attempt: 0,
            rng: StdRng::seed_from_u64(lane.seed),
            env: None,
            best: None,
            outcome: None,
        })
        .collect();

    // Up-front per-lane gates: the chaos site, then dimensional agreement
    // with the batch leader (whose dims the caller validated against the
    // checkpoint). Both fail one lane without touching its batch-mates.
    let leader_dims = lanes.first().map(|l| l.planner.network_dims());
    for state in &mut states {
        match catch_unwind(|| nptsn_chaos::point("infer.batch")) {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                state.outcome = Some(Err(e.to_string()));
                continue;
            }
            Err(payload) => {
                state.outcome = Some(Err(panic_message(payload)));
                continue;
            }
        }
        let dims = state.lane.planner.network_dims();
        if Some(dims) != leader_dims {
            state.outcome = Some(Err(format!(
                "infer batch shape mismatch: lane dims {dims:?} differ from leader {:?}",
                leader_dims.expect("non-empty batch")
            )));
        }
    }

    while states.iter().any(|s| s.outcome.is_none()) {
        // Ensure every unfinished lane has a live episode, retiring lanes
        // whose attempts are exhausted. A fresh environment whose mask is
        // already all-false ends that attempt immediately, exactly like
        // the solo loop's leading mask check.
        for state in &mut states {
            if state.outcome.is_some() || state.env.is_some() {
                continue;
            }
            loop {
                if state.attempt >= state.lane.attempts {
                    state.outcome = Some(Ok(state.best.take()));
                    break;
                }
                let planner = state.lane.planner;
                let mut rng = StdRng::seed_from_u64(
                    state.lane.seed.wrapping_add(state.attempt as u64),
                );
                let built = catch_unwind(AssertUnwindSafe(|| {
                    PlanningEnv::with_analyzer(
                        planner.problem.clone(),
                        planner.config.k_paths,
                        planner.config.reward_scaling,
                        planner.config.max_episode_steps,
                        worker_analyzer(&planner.config),
                        &mut rng,
                    )
                }));
                let env = match built {
                    Ok(env) => env,
                    Err(payload) => {
                        state.outcome = Some(Err(panic_message(payload)));
                        break;
                    }
                };
                if env.mask().iter().all(|&m| !m) {
                    state.attempt += 1;
                    continue;
                }
                state.rng = rng;
                state.env = Some(env);
                break;
            }
        }

        // One fused forward for every live lane.
        let active: Vec<usize> = states
            .iter()
            .enumerate()
            .filter(|(_, s)| s.outcome.is_none() && s.env.is_some())
            .map(|(i, _)| i)
            .collect();
        if active.is_empty() {
            continue;
        }
        let evaluated = {
            let batch: Vec<(&Observation, &[bool])> = active
                .iter()
                .map(|&i| {
                    let env = states[i].env.as_ref().expect("active lane has an env");
                    (env.observation(), env.mask())
                })
                .collect();
            policy.try_evaluate_many(&batch)
        };
        let actions: Vec<usize> = match evaluated {
            Ok(outs) => outs
                .iter()
                .map(|(logps, _)| nptsn_rl::best_action(&logps.to_vec()).0)
                .collect(),
            Err(e) => {
                // Pre-validation makes this unreachable for well-formed
                // lanes; if it fires anyway, no lane can be stepped.
                for &i in &active {
                    states[i].outcome = Some(Err(e.to_string()));
                }
                continue;
            }
        };

        // Step each lane with its own RNG stream, isolating panics.
        for (&i, &action) in active.iter().zip(&actions) {
            let state = &mut states[i];
            let env = state.env.as_mut().expect("active lane has an env");
            let stepped =
                catch_unwind(AssertUnwindSafe(|| env.step(action, &mut state.rng)));
            match stepped {
                Ok(outcome) => {
                    if let Some(sol) = outcome.solution {
                        keep_best(&mut state.best, sol);
                    }
                    let episode_over = outcome.done
                        || state
                            .env
                            .as_ref()
                            .is_some_and(|e| e.mask().iter().all(|&m| !m));
                    if episode_over {
                        state.env = None;
                        state.attempt += 1;
                    }
                }
                Err(payload) => {
                    state.env = None;
                    state.outcome = Some(Err(panic_message(payload)));
                }
            }
        }
    }

    states
        .into_iter()
        .map(|s| s.outcome.expect("loop exits only when every lane finished"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlannerConfig;
    use crate::problem::PlanningProblem;
    use nptsn_sched::{FlowSet, FlowSpec, ShortestPathRecovery, TasConfig};
    use nptsn_topo::{ComponentLibrary, ConnectionGraph};
    use std::sync::Arc;

    fn theta_problem(extra_switch: bool) -> PlanningProblem {
        let mut gc = ConnectionGraph::new();
        let a = gc.add_end_station("a");
        let b = gc.add_end_station("b");
        let s0 = gc.add_switch("s0");
        let s1 = gc.add_switch("s1");
        for (u, v) in [(a, s0), (s0, b), (a, s1), (s1, b), (s0, s1)] {
            gc.add_candidate_link(u, v, 1.0).unwrap();
        }
        if extra_switch {
            let s2 = gc.add_switch("s2");
            gc.add_candidate_link(a, s2, 1.0).unwrap();
            gc.add_candidate_link(s2, b, 1.0).unwrap();
        }
        let flows = FlowSet::new(vec![FlowSpec::new(a, b, 500, 128)]).unwrap();
        PlanningProblem::new(
            Arc::new(gc),
            ComponentLibrary::automotive(),
            TasConfig::default(),
            flows,
            1e-6,
            Arc::new(ShortestPathRecovery::new()),
        )
        .unwrap()
    }

    #[test]
    fn batched_plans_identical_to_solo_plans() {
        let planner = Planner::new(theta_problem(false), PlannerConfig::smoke_test());
        let policy = planner.build_policy();
        // Mixed attempts and seeds: lanes at different episode lengths
        // keep entering/leaving the batch mid-run.
        let specs = [(3usize, 11u64), (1, 99), (2, 7), (4, 11)];
        let lanes: Vec<InferLane<'_>> = specs
            .iter()
            .map(|&(attempts, seed)| InferLane { planner: &planner, attempts, seed })
            .collect();
        let batched = plan_with_policy_batch(&policy, &lanes);
        for (i, &(attempts, seed)) in specs.iter().enumerate() {
            let solo = planner.plan_with_policy(&policy, attempts, seed);
            let got = batched[i].as_ref().expect("lane should not fail");
            assert_eq!(
                got.as_ref().map(|s| (s.cost, s.topology.clone())),
                solo.as_ref().map(|s| (s.cost, s.topology.clone())),
                "lane {i} diverged from its solo twin"
            );
        }
    }

    #[test]
    fn mismatched_lane_fails_alone() {
        let small = Planner::new(theta_problem(false), PlannerConfig::smoke_test());
        let big = Planner::new(theta_problem(true), PlannerConfig::smoke_test());
        let policy = small.build_policy();
        let lanes = [
            InferLane { planner: &small, attempts: 1, seed: 5 },
            InferLane { planner: &big, attempts: 1, seed: 5 },
        ];
        let results = plan_with_policy_batch(&policy, &lanes);
        let solo = small.plan_with_policy(&policy, 1, 5);
        assert_eq!(
            results[0].as_ref().unwrap().as_ref().map(|s| s.cost),
            solo.as_ref().map(|s| s.cost),
            "good lane must still match its solo result"
        );
        let err = results[1].as_ref().unwrap_err();
        assert!(err.contains("shape mismatch"), "got: {err}");
    }

    #[test]
    fn empty_batch_returns_nothing() {
        let planner = Planner::new(theta_problem(false), PlannerConfig::smoke_test());
        let policy = planner.build_policy();
        assert!(plan_with_policy_batch(&policy, &[]).is_empty());
    }
}
