//! The workspace-wide error type.
//!
//! Error-handling policy (see also `DESIGN.md`):
//!
//! - **Library internals return `Result`.** Anything that can fail because
//!   of the *problem instance* — malformed topologies, unschedulable flow
//!   sets, inconsistent analyzer state — surfaces as a structured error so
//!   a long planning run can skip or degrade rather than abort.
//! - **API-boundary contract violations may panic**, and say so in their
//!   doc comments (e.g. [`crate::PlanningEnv::step`] on a masked action,
//!   `Topology::network_cost` when `try_network_cost` would error). These
//!   are programming errors, not data errors.
//! - **Training episodes are isolated**: `Planner::run` wraps each rollout
//!   worker in `catch_unwind`, so a panic escaping a single episode is
//!   counted and skipped instead of killing the run.

use std::error::Error;
use std::fmt;

use nptsn_sched::SchedError;
use nptsn_topo::TopoError;

/// The unified error for planning operations, wrapping the layer-specific
/// [`TopoError`] and [`SchedError`] types.
///
/// # Examples
///
/// ```
/// use nptsn::NptsnError;
/// use nptsn_topo::{ConnectionGraph, TopoError};
///
/// let mut gc = ConnectionGraph::new();
/// let a = gc.add_end_station("a");
/// let err: NptsnError = gc.add_candidate_link(a, a, 1.0).unwrap_err().into();
/// assert!(matches!(err, NptsnError::Topo(TopoError::SelfLoop(_))));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum NptsnError {
    /// A graph or topology operation failed.
    Topo(TopoError),
    /// A scheduling or flow-set operation failed.
    Sched(SchedError),
    /// An action index was invalid for the current environment state.
    InvalidAction {
        /// The offending action index.
        index: usize,
        /// Why the action could not be applied.
        reason: String,
    },
    /// A neural-network input had the wrong shape (batched inference
    /// validates shapes instead of panicking a serve worker).
    Shape(nptsn_nn::ShapeError),
    /// An internal invariant did not hold; carries a description. Seeing
    /// this is a bug, but callers still get a `Result` instead of an abort.
    Internal(String),
}

impl NptsnError {
    /// Shorthand for an [`NptsnError::Internal`] with a formatted message.
    pub fn internal(msg: impl Into<String>) -> NptsnError {
        NptsnError::Internal(msg.into())
    }
}

impl fmt::Display for NptsnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NptsnError::Topo(e) => write!(f, "topology error: {e}"),
            NptsnError::Sched(e) => write!(f, "scheduling error: {e}"),
            NptsnError::InvalidAction { index, reason } => {
                write!(f, "invalid action {index}: {reason}")
            }
            NptsnError::Shape(e) => write!(f, "shape error: {e}"),
            NptsnError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl Error for NptsnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NptsnError::Topo(e) => Some(e),
            NptsnError::Sched(e) => Some(e),
            NptsnError::Shape(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TopoError> for NptsnError {
    fn from(e: TopoError) -> NptsnError {
        NptsnError::Topo(e)
    }
}

impl From<SchedError> for NptsnError {
    fn from(e: SchedError) -> NptsnError {
        NptsnError::Sched(e)
    }
}

impl From<nptsn_nn::ShapeError> for NptsnError {
    fn from(e: nptsn_nn::ShapeError) -> NptsnError {
        NptsnError::Shape(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nptsn_topo::ConnectionGraph;

    #[test]
    fn display_and_source() {
        let mut gc = ConnectionGraph::new();
        let a = gc.add_end_station("a");
        let topo_err = gc.add_candidate_link(a, a, 1.0).unwrap_err();
        let e = NptsnError::from(topo_err);
        assert!(e.to_string().contains("topology error"));
        assert!(e.source().is_some());

        let e = NptsnError::from(SchedError::NoFlows);
        assert!(e.to_string().contains("scheduling error"));
        assert!(e.source().is_some());

        let e = NptsnError::InvalidAction { index: 7, reason: "masked out".into() };
        assert!(e.to_string().contains("invalid action 7"));
        assert!(e.source().is_none());

        let e = NptsnError::internal("oops");
        assert!(e.to_string().contains("oops"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NptsnError>();
    }
}
