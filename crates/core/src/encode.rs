//! Observation encoding (Section IV-C): network status *and* the dynamic
//! actions are folded into the GCN input so training stays stable on the
//! dynamic action space.

use std::sync::Arc;

use nptsn_topo::Topology;

use crate::problem::PlanningProblem;
use crate::soag::{Action, ActionSet};

/// Length of the auxiliary (non-graph) parameter vector appended to the
/// graph embedding: flow count, mean period ratio, mean frame/slot ratio
/// and the slot count.
pub const AUX_LEN: usize = 4;

/// A fully encoded RL observation: the data behind Algorithm 2's `Obs`.
///
/// Stored as plain `f32` buffers (not tensors) so rollout workers can ship
/// observations across threads and the PPO update can rebuild the graph on
/// its own thread.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Number of graph nodes `|V^c|`.
    pub node_count: usize,
    /// Node feature width: `1 + |V^c| + |V_es| + K`.
    pub feature_count: usize,
    /// Row-major `n x n` *normalized* adjacency `D^-1/2 (A+I) D^-1/2`
    /// (Eq. 4's constant). Shared: normalized once per `(graph, topology)`
    /// fingerprint in the process-wide
    /// [`adjacency_cache`](nptsn_nn::adjacency_cache), so observations of
    /// the same topology alias one buffer instead of renormalizing.
    pub ahat: Arc<[f32]>,
    /// Row-major `n x feature_count` node features: switch-cost column,
    /// link-cost block, flow-count block, dynamic-action block.
    pub features: Vec<f32>,
    /// Auxiliary parameters (flow statistics, base period) concatenated
    /// with the graph embedding before the actor/critic MLPs.
    pub aux: Vec<f32>,
}

/// Encodes the current TSSDN and dynamic action set into an observation.
///
/// The four feature categories of Section IV-C:
///
/// 1. **Switch features** (1 column): the cost `csw(deg(v), ASIL_v)` of
///    each selected switch, zero for end stations and unselected switches.
/// 2. **Link features** (`|V^c|` columns): entry `(u, v)` is the cost of
///    topology link `(u, v)`, zero when absent.
/// 3. **Flow features** (`|V_es|` columns): entry `(u, e)` is the number
///    of flows between `u` and the `e`-th end station (zero for switches).
/// 4. **Dynamic actions** (`K` columns): entry `(u, k)` is one when path
///    slot `k` holds a path traversing `u`.
///
/// Costs are divided by the library's largest switch cost so every feature
/// is O(1) for the network.
pub fn encode_observation(
    problem: &PlanningProblem,
    topology: &Topology,
    actions: &ActionSet,
) -> Observation {
    let gc = problem.connection_graph();
    let n = gc.node_count();
    let es = gc.end_stations();
    let k = actions.len() - gc.switches().len();
    let f = 1 + n + es.len() + k;
    let lib = problem.library();
    let cost_norm = lib
        .switch_cost(lib.max_switch_degree(), nptsn_topo::Asil::D)
        .unwrap_or(1.0)
        .max(1.0) as f32;

    // Raw adjacency for Â. Normalization is pure and topologies recur
    // constantly (every episode step re-encodes the current topology), so
    // Â is memoized per (graph, selection) fingerprint: the graph part
    // disambiguates across problems, the topology part covers exactly the
    // links the raw adjacency is built from.
    let mut adjacency = vec![0.0f32; n * n];
    for link in topology.links() {
        let (u, v) = gc.link_endpoints(link);
        adjacency[u.index() * n + v.index()] = 1.0;
        adjacency[v.index() * n + u.index()] = 1.0;
    }
    let key = problem.graph_fingerprint() ^ topology.fingerprint().rotate_left(1);
    let ahat = nptsn_nn::adjacency_cache().get_or_insert(key, &adjacency, n);

    let mut features = vec![0.0f32; n * f];
    // 1. Switch cost column.
    for &sw in topology.selected_switches() {
        let asil = topology.switch_asil(sw).expect("selected");
        let cost = lib
            .switch_cost(topology.degree(sw), asil)
            .expect("degree constraint holds") as f32;
        features[sw.index() * f] = cost / cost_norm;
    }
    // 2. Link cost block.
    for link in topology.links() {
        let (u, v) = gc.link_endpoints(link);
        let cost =
            lib.link_cost(topology.link_asil(link), gc.link_length(link)) as f32 / cost_norm;
        features[u.index() * f + 1 + v.index()] = cost;
        features[v.index() * f + 1 + u.index()] = cost;
    }
    // 3. Flow count block.
    for (e, &station) in es.iter().enumerate() {
        for u in gc.nodes() {
            if u == station || gc.is_switch(u) {
                continue;
            }
            let count = problem.flows().count_between(u, station) as f32;
            if count > 0.0 {
                features[u.index() * f + 1 + n + e] = count;
            }
        }
    }
    // 4. Dynamic action block.
    let switch_slots = gc.switches().len();
    for (slot, action) in actions.actions().iter().enumerate().skip(switch_slots) {
        let kcol = slot - switch_slots;
        if let Action::AddPath(path) = action {
            for &node in path.nodes() {
                features[node.index() * f + 1 + n + es.len() + kcol] = 1.0;
            }
        }
    }

    // Auxiliary parameters.
    let flows = problem.flows();
    let tas = problem.tas();
    let mean_period: f32 = flows
        .specs()
        .iter()
        .map(|s| s.period_us() as f32 / tas.base_period_us() as f32)
        .sum::<f32>()
        / flows.len() as f32;
    let mean_frame: f32 = flows
        .specs()
        .iter()
        .map(|s| s.frame_bytes() as f32 / tas.slot_capacity_bytes() as f32)
        .sum::<f32>()
        / flows.len() as f32;
    let aux = vec![
        flows.len() as f32 / es.len().max(1) as f32,
        mean_period,
        mean_frame,
        tas.slots() as f32 / 32.0,
    ];
    debug_assert_eq!(aux.len(), AUX_LEN);

    Observation { node_count: n, feature_count: f, ahat, features, aux }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soag::Soag;
    use nptsn_sched::{ErrorReport, FlowSet, FlowSpec, ShortestPathRecovery, TasConfig};
    use nptsn_topo::{Asil, ComponentLibrary, ConnectionGraph, FailureScenario, NodeId};
    use nptsn_rand::rngs::StdRng;
    use nptsn_rand::SeedableRng;
    use std::sync::Arc;

    fn setup() -> (PlanningProblem, NodeId, NodeId, NodeId) {
        let mut gc = ConnectionGraph::new();
        let a = gc.add_end_station("a");
        let b = gc.add_end_station("b");
        let s = gc.add_switch("s");
        gc.add_candidate_link(a, s, 1.0).unwrap();
        gc.add_candidate_link(b, s, 1.0).unwrap();
        let flows = FlowSet::new(vec![
            FlowSpec::new(a, b, 500, 128),
            FlowSpec::new(b, a, 500, 128),
        ])
        .unwrap();
        let problem = PlanningProblem::new(
            Arc::new(gc),
            ComponentLibrary::automotive(),
            TasConfig::default(),
            flows,
            1e-6,
            Arc::new(ShortestPathRecovery::new()),
        )
        .unwrap();
        (problem, a, b, s)
    }

    fn obs_for(problem: &PlanningProblem, topo: &Topology, k: usize) -> Observation {
        let mut er = ErrorReport::empty();
        let es = problem.connection_graph().end_stations();
        er.record(es[0], es[1]);
        let set = Soag::new(k).generate(
            problem,
            topo,
            &FailureScenario::none(),
            &er,
            &mut StdRng::seed_from_u64(0),
        );
        encode_observation(problem, topo, &set)
    }

    #[test]
    fn shapes_match_the_paper_layout() {
        let (problem, ..) = setup();
        let topo = problem.connection_graph().empty_topology();
        let obs = obs_for(&problem, &topo, 4);
        let n = 3;
        assert_eq!(obs.node_count, n);
        assert_eq!(obs.feature_count, 1 + n + 2 + 4);
        assert_eq!(obs.ahat.len(), n * n);
        assert_eq!(obs.features.len(), n * obs.feature_count);
        assert_eq!(obs.aux.len(), AUX_LEN);
    }

    #[test]
    fn empty_topology_has_identity_ahat_and_zero_costs() {
        let (problem, ..) = setup();
        let topo = problem.connection_graph().empty_topology();
        let obs = obs_for(&problem, &topo, 2);
        // No links: Â = I.
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert_eq!(obs.ahat[i * 3 + j], expect);
            }
        }
        // Switch cost column all zero.
        for i in 0..3 {
            assert_eq!(obs.features[i * obs.feature_count], 0.0);
        }
    }

    #[test]
    fn switch_and_link_costs_appear_after_construction() {
        let (problem, a, b, s) = setup();
        let mut topo = problem.connection_graph().empty_topology();
        topo.add_switch(s, Asil::B).unwrap();
        topo.add_link(a, s).unwrap();
        let obs = obs_for(&problem, &topo, 2);
        let f = obs.feature_count;
        // Switch cost: degree 1, ASIL B = 12; normalized by 54.
        assert!((obs.features[s.index() * f] - 12.0 / 54.0).abs() < 1e-6);
        // Link (a, s): ASIL B link cost 2 / 54, symmetric.
        let expected = 2.0 / 54.0;
        assert!((obs.features[a.index() * f + 1 + s.index()] - expected).abs() < 1e-6);
        assert!((obs.features[s.index() * f + 1 + a.index()] - expected).abs() < 1e-6);
        // Absent link (b, s) stays zero.
        assert_eq!(obs.features[b.index() * f + 1 + s.index()], 0.0);
    }

    #[test]
    fn flow_features_count_pairs_symmetrically() {
        let (problem, a, b, s) = setup();
        let topo = problem.connection_graph().empty_topology();
        let obs = obs_for(&problem, &topo, 2);
        let f = obs.feature_count;
        let n = obs.node_count;
        // Two flows between a and b (one per direction): feature 2 both ways.
        // End stations are inserted first, so column index of a is 0, b is 1.
        assert_eq!(obs.features[a.index() * f + 1 + n + 1], 2.0);
        assert_eq!(obs.features[b.index() * f + 1 + n], 2.0);
        // Switch rows carry no flow features.
        assert_eq!(obs.features[s.index() * f + 1 + n], 0.0);
        assert_eq!(obs.features[s.index() * f + 1 + n + 1], 0.0);
    }

    #[test]
    fn action_paths_mark_traversed_nodes() {
        let (problem, a, b, s) = setup();
        let mut topo = problem.connection_graph().empty_topology();
        topo.add_switch(s, Asil::A).unwrap();
        let obs = obs_for(&problem, &topo, 2);
        let f = obs.feature_count;
        let n = obs.node_count;
        let es = 2;
        // Path slot 0 holds a-s-b (the only path): all three nodes marked.
        let col = 1 + n + es;
        let marked: Vec<bool> =
            (0..3).map(|i| obs.features[i * f + col] == 1.0).collect();
        assert_eq!(marked, vec![true, true, true]);
        let _ = (a, b);
    }

    #[test]
    fn aux_captures_flow_statistics() {
        let (problem, ..) = setup();
        let topo = problem.connection_graph().empty_topology();
        let obs = obs_for(&problem, &topo, 2);
        assert_eq!(obs.aux[0], 1.0); // 2 flows / 2 stations
        assert_eq!(obs.aux[1], 1.0); // period == base period
        assert!(obs.aux[2] > 0.0 && obs.aux[2] < 1.0);
        assert_eq!(obs.aux[3], 20.0 / 32.0);
    }
}
