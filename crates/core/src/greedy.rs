//! A greedy ablation planner: SOAG actions without the learned policy.

use nptsn_rand::rngs::StdRng;
use nptsn_rand::SeedableRng;

use crate::analyzer::{FailureAnalyzer, Verdict};
use crate::env::PlanningEnv;
use crate::problem::PlanningProblem;
use crate::soag::Action;
use crate::solution::{keep_best, Solution};

/// Plans by always taking the valid SOAG action with the smallest immediate
/// cost increase (ties: paths before switch upgrades, then lowest index).
///
/// This isolates the contribution of the RL decision maker: the greedy
/// planner enjoys the same pruned action space and failure-analysis
/// feedback, but makes myopic choices — the kind of "human expert"
/// heuristic the paper argues RL outperforms on delayed-reward structure
/// (Section IV-A). Used by the ablation bench.
///
/// # Examples
///
/// ```
/// use nptsn::{GreedyPlanner, PlanningProblem};
/// use nptsn_sched::{FlowSet, FlowSpec, ShortestPathRecovery, TasConfig};
/// use nptsn_topo::{ComponentLibrary, ConnectionGraph};
/// use std::sync::Arc;
///
/// let mut gc = ConnectionGraph::new();
/// let a = gc.add_end_station("a");
/// let b = gc.add_end_station("b");
/// let s0 = gc.add_switch("s0");
/// let s1 = gc.add_switch("s1");
/// for (u, v) in [(a, s0), (a, s1), (b, s0), (b, s1), (s0, s1)] {
///     gc.add_candidate_link(u, v, 1.0).unwrap();
/// }
/// let flows = FlowSet::new(vec![FlowSpec::new(a, b, 500, 128)]).unwrap();
/// let problem = PlanningProblem::new(
///     Arc::new(gc), ComponentLibrary::automotive(), TasConfig::default(),
///     flows, 1e-6, Arc::new(ShortestPathRecovery::new()),
/// ).unwrap();
/// let best = GreedyPlanner::new(problem, 8).run(4, 0);
/// assert!(best.is_some());
/// ```
#[derive(Debug)]
pub struct GreedyPlanner {
    problem: PlanningProblem,
    k_paths: usize,
}

impl GreedyPlanner {
    /// Creates a greedy planner with `k_paths` SOAG path slots.
    pub fn new(problem: PlanningProblem, k_paths: usize) -> GreedyPlanner {
        GreedyPlanner { problem, k_paths }
    }

    /// Runs up to `attempts` greedy construction episodes (the SOAG's
    /// random endpoint selection differentiates attempts) and returns the
    /// cheapest verified solution found.
    pub fn run(&self, attempts: usize, seed: u64) -> Option<Solution> {
        let mut best: Option<Solution> = None;
        let analyzer = FailureAnalyzer::new();
        for attempt in 0..attempts {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(attempt as u64));
            let mut env =
                PlanningEnv::new(self.problem.clone(), self.k_paths, 1e3, 256, &mut rng);
            loop {
                // Pick the valid action with the smallest cost increase.
                let library = self.problem.library();
                let current_cost = env.topology().network_cost(library);
                let mut choice: Option<(usize, f64, bool)> = None;
                for index in 0..env.action_count() {
                    let Some(action) = env.actions().valid_action(index) else {
                        continue;
                    };
                    let mut probe = env.topology().clone();
                    if crate::soag::apply_action(&mut probe, action).is_err() {
                        continue;
                    }
                    let delta = probe.network_cost(library) - current_cost;
                    let is_path = matches!(action, Action::AddPath(_));
                    let better = match &choice {
                        None => true,
                        Some((_, best_delta, best_is_path)) => {
                            delta < *best_delta - 1e-9
                                || ((delta - *best_delta).abs() <= 1e-9
                                    && is_path
                                    && !*best_is_path)
                        }
                    };
                    if better {
                        choice = Some((index, delta, is_path));
                    }
                }
                let Some((index, ..)) = choice else {
                    break; // dead end
                };
                let outcome = env.step(index, &mut rng);
                if let Some(sol) = outcome.solution {
                    debug_assert!(analyzer.analyze(&self.problem, &sol.topology).is_reliable());
                    keep_best(&mut best, sol);
                    break;
                }
                if outcome.done {
                    break;
                }
            }
        }
        best
    }
}

/// Verifies an externally produced topology against a problem — the entry
/// point baselines use to check their reliability guarantee with the same
/// Algorithm 3 analysis as NPTSN itself.
pub fn verify_topology(problem: &PlanningProblem, topology: &nptsn_topo::Topology) -> Verdict {
    FailureAnalyzer::new().analyze(problem, topology)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nptsn_sched::{FlowSet, FlowSpec, ShortestPathRecovery, TasConfig};
    use nptsn_topo::{ComponentLibrary, ConnectionGraph};
    use std::sync::Arc;

    fn theta_problem() -> PlanningProblem {
        let mut gc = ConnectionGraph::new();
        let a = gc.add_end_station("a");
        let b = gc.add_end_station("b");
        let s0 = gc.add_switch("s0");
        let s1 = gc.add_switch("s1");
        for (u, v) in [(a, s0), (s0, b), (a, s1), (s1, b), (s0, s1)] {
            gc.add_candidate_link(u, v, 1.0).unwrap();
        }
        let flows = FlowSet::new(vec![FlowSpec::new(a, b, 500, 128)]).unwrap();
        PlanningProblem::new(
            Arc::new(gc),
            ComponentLibrary::automotive(),
            TasConfig::default(),
            flows,
            1e-6,
            Arc::new(ShortestPathRecovery::new()),
        )
        .unwrap()
    }

    #[test]
    fn greedy_finds_a_verified_plan() {
        let problem = theta_problem();
        let best = GreedyPlanner::new(problem.clone(), 8).run(3, 0).expect("plan exists");
        assert!(verify_topology(&problem, &best.topology).is_reliable());
        assert_eq!(best.switch_count(), 2, "needs both switches for redundancy");
    }

    #[test]
    fn more_attempts_never_worsen_the_result() {
        let problem = theta_problem();
        let planner = GreedyPlanner::new(problem, 8);
        let one = planner.run(1, 7).map(|s| s.cost);
        let many = planner.run(5, 7).map(|s| s.cost);
        match (one, many) {
            (Some(a), Some(b)) => assert!(b <= a),
            (None, _) => {}
            (Some(_), None) => panic!("losing a found solution is impossible"),
        }
    }

    #[test]
    fn unsolvable_problem_returns_none() {
        let mut gc = ConnectionGraph::new();
        let a = gc.add_end_station("a");
        let b = gc.add_end_station("b");
        let s = gc.add_switch("s");
        gc.add_candidate_link(a, s, 1.0).unwrap();
        gc.add_candidate_link(b, s, 1.0).unwrap();
        let flows = FlowSet::new(vec![FlowSpec::new(a, b, 500, 128)]).unwrap();
        let problem = PlanningProblem::new(
            Arc::new(gc),
            ComponentLibrary::automotive(),
            TasConfig::default(),
            flows,
            1e-12,
            Arc::new(ShortestPathRecovery::new()),
        )
        .unwrap();
        assert!(GreedyPlanner::new(problem, 4).run(2, 0).is_none());
    }
}
