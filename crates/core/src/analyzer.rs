//! The failure analyzer: Algorithm 3, the failure injection check.

use nptsn_sched::ErrorReport;
use nptsn_topo::{FailureScenario, NodeId, Topology};

use crate::error::NptsnError;
use crate::problem::PlanningProblem;

/// Which nodes the analyzer injects failures into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeScope {
    /// Only selected switches — sound for networks without flow-level
    /// redundancy thanks to the link-ASIL invariant and the reduction of
    /// Eq. 6 (Section V).
    SwitchesOnly,
    /// Every node including end stations — required when flows carry
    /// redundant instances and the NBF only reports errors once all
    /// instances fail (Section V, complexity `O(|V^t|^maxord)`).
    AllNodes,
}

/// The analyzer's verdict for one topology.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Every non-safe fault is survivable: the reliability guarantee holds.
    Reliable,
    /// A non-safe fault the recovery cannot handle, with the NBF's error
    /// message — the input to the SOAG for the next action generation.
    Unreliable {
        /// The non-recoverable failure scenario found first.
        failure: FailureScenario,
        /// The endpoint pairs the NBF failed to restore under it.
        errors: ErrorReport,
    },
    /// The analysis budget ran out before every non-safe fault was checked:
    /// no counterexample was found, but reliability is *not* guaranteed.
    /// Only produced by budgeted analyzers (never by the unbounded
    /// default).
    Inconclusive {
        /// How many failure scenarios were injected before the budget ran
        /// out.
        scenarios_checked: u64,
    },
}

impl Verdict {
    /// Whether the reliability guarantee holds.
    pub fn is_reliable(&self) -> bool {
        matches!(self, Verdict::Reliable)
    }
}

/// A deterministic work budget for [`FailureAnalyzer::analyze`], measured
/// in failure scenarios injected (NBF invocations) — not wall-clock time,
/// so budgeted runs stay reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisBudget(Option<u64>);

impl AnalysisBudget {
    /// No limit: Algorithm 3 runs to completion (the default).
    pub const UNBOUNDED: AnalysisBudget = AnalysisBudget(None);

    /// At most `n` failure scenarios are injected; the verdict degrades to
    /// [`Verdict::Inconclusive`] if enumeration is cut short.
    pub fn scenarios(n: u64) -> AnalysisBudget {
        AnalysisBudget(Some(n))
    }

    /// The scenario limit, or `None` when unbounded.
    pub fn limit(&self) -> Option<u64> {
        self.0
    }
}

impl Default for AnalysisBudget {
    fn default() -> AnalysisBudget {
        AnalysisBudget::UNBOUNDED
    }
}

/// The outcome of one analysis run with coverage statistics, so callers
/// that trade soundness-of-claim for latency can see exactly what they
/// bought.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisReport {
    /// The verdict (anytime: [`Verdict::Inconclusive`] when the budget ran
    /// out).
    pub verdict: Verdict,
    /// How many failure scenarios were injected (NBF invocations).
    pub scenarios_checked: u64,
    /// Whether the enumeration ran to completion. `true` means the verdict
    /// is exactly what the unbounded analyzer would have produced; `false`
    /// means the budget was exhausted first.
    pub exhausted: bool,
}

/// Failure injection per Algorithm 3: checks every switch-failure subset
/// with probability ≥ `R`, from the highest possible order (`maxord`) down
/// to the empty failure (nominal schedulability), skipping subsets of
/// scenarios that already survived.
///
/// Soundness of checking switches only: any non-safe fault containing link
/// failures maps (Eq. 6) to the switch-only fault obtained by replacing
/// each failed link with its lower-ASIL endpoint; since link ASIL equals
/// the minimum endpoint ASIL, the mapped fault is at least as probable, and
/// its residual network is a subgraph — so surviving it implies surviving
/// the original.
///
/// # Examples
///
/// ```
/// use nptsn::{FailureAnalyzer, PlanningProblem, Verdict};
/// use nptsn_sched::{FlowSet, FlowSpec, ShortestPathRecovery, TasConfig};
/// use nptsn_topo::{Asil, ComponentLibrary, ConnectionGraph};
/// use std::sync::Arc;
///
/// let mut gc = ConnectionGraph::new();
/// let a = gc.add_end_station("a");
/// let b = gc.add_end_station("b");
/// let s = gc.add_switch("s");
/// gc.add_candidate_link(a, s, 1.0).unwrap();
/// gc.add_candidate_link(b, s, 1.0).unwrap();
/// let flows = FlowSet::new(vec![FlowSpec::new(a, b, 500, 128)]).unwrap();
/// let problem = PlanningProblem::new(
///     Arc::new(gc), ComponentLibrary::automotive(), TasConfig::default(),
///     flows, 1e-6, Arc::new(ShortestPathRecovery::new()),
/// ).unwrap();
/// let analyzer = FailureAnalyzer::new();
///
/// // A single ASIL-A switch: its failure (probability ~1e-3 >= R) kills
/// // the only path.
/// let mut topo = problem.connection_graph().empty_topology();
/// topo.add_switch(s, Asil::A).unwrap();
/// topo.add_link(a, s).unwrap();
/// topo.add_link(b, s).unwrap();
/// assert!(!analyzer.analyze(&problem, &topo).is_reliable());
///
/// // Upgrading it to ASIL-D makes the failure a safe fault (< 1e-6).
/// for _ in 0..3 { topo.upgrade_switch(s).unwrap(); }
/// assert!(analyzer.analyze(&problem, &topo).is_reliable());
/// ```
#[derive(Debug, Clone)]
pub struct FailureAnalyzer {
    scope: NodeScope,
    budget: AnalysisBudget,
}

impl FailureAnalyzer {
    /// An analyzer over switch failures only with an unbounded budget (the
    /// default, sound without flow-level redundancy).
    pub fn new() -> FailureAnalyzer {
        FailureAnalyzer { scope: NodeScope::SwitchesOnly, budget: AnalysisBudget::UNBOUNDED }
    }

    /// An analyzer with an explicit node scope.
    pub fn with_scope(scope: NodeScope) -> FailureAnalyzer {
        FailureAnalyzer { scope, budget: AnalysisBudget::UNBOUNDED }
    }

    /// Returns this analyzer with the given work budget (builder-style).
    pub fn with_budget(mut self, budget: AnalysisBudget) -> FailureAnalyzer {
        self.budget = budget;
        self
    }

    /// The configured node scope.
    pub fn scope(&self) -> NodeScope {
        self.scope
    }

    /// The configured work budget.
    pub fn budget(&self) -> AnalysisBudget {
        self.budget
    }

    /// Runs Algorithm 3 on `topology`.
    ///
    /// With the default unbounded budget the result is exact; with a
    /// [`AnalysisBudget::scenarios`] budget it may be
    /// [`Verdict::Inconclusive`]. For coverage statistics use
    /// [`try_analyze`](FailureAnalyzer::try_analyze).
    ///
    /// # Panics
    ///
    /// Panics if the topology is internally inconsistent (a selected switch
    /// without an ASIL) — impossible through the public `Topology` API.
    pub fn analyze(&self, problem: &PlanningProblem, topology: &Topology) -> Verdict {
        self.try_analyze(problem, topology).expect("inconsistent topology").verdict
    }

    /// Runs Algorithm 3 and returns the verdict with coverage statistics,
    /// surfacing internal inconsistencies as errors instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`NptsnError::Topo`] if the topology is internally
    /// inconsistent (e.g. a selected switch without an ASIL).
    pub fn try_analyze(
        &self,
        problem: &PlanningProblem,
        topology: &Topology,
    ) -> Result<AnalysisReport, NptsnError> {
        let r = problem.reliability_goal();
        // Candidate fault nodes with their failure probabilities, sorted by
        // decreasing probability (line 1).
        let mut nodes: Vec<(NodeId, f64)> = Vec::new();
        for &s in topology.selected_switches() {
            let asil = topology.switch_asil(s).ok_or_else(|| {
                NptsnError::internal(format!("selected switch {s} has no ASIL"))
            })?;
            nodes.push((s, asil.failure_probability()));
        }
        if self.scope == NodeScope::AllNodes {
            let gc = topology.connection_graph();
            nodes.extend(
                gc.end_stations().iter().map(|&e| (e, gc.end_station_asil(e).failure_probability())),
            );
        }
        nodes.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });

        // maxord: the largest k whose k most probable failures still have a
        // combined probability >= R (line 1).
        let mut maxord = 0;
        let mut product = 1.0;
        for &(_, p) in &nodes {
            product *= p;
            if product >= r {
                maxord += 1;
            } else {
                break;
            }
        }

        // Lines 2-14: check subsets from maxord down to the empty failure.
        // The budget caps the number of NBF invocations; safe faults and
        // superset-pruned subsets are free (no recovery is attempted).
        let limit = self.budget.limit().unwrap_or(u64::MAX);
        let mut scenarios_checked: u64 = 0;
        let mut out_of_budget = false;
        let mut checked: Vec<FailureScenario> = Vec::new();
        for order in (0..=maxord).rev() {
            let mut verdict = None;
            for_each_combination(nodes.len(), order, &mut |indices| {
                if verdict.is_some() || out_of_budget {
                    return;
                }
                let probability: f64 = indices.iter().map(|&i| nodes[i].1).product();
                if probability < r {
                    return; // safe fault
                }
                let failure =
                    FailureScenario::switches(indices.iter().map(|&i| nodes[i].0).collect());
                if checked.iter().any(|bigger| failure.is_subset_of(bigger)) {
                    return; // a superset already survived
                }
                if scenarios_checked >= limit {
                    out_of_budget = true;
                    return;
                }
                scenarios_checked += 1;
                let outcome = problem.nbf().recover(
                    topology,
                    &failure,
                    problem.tas(),
                    problem.flows(),
                );
                if outcome.errors.is_empty() {
                    checked.push(failure);
                } else {
                    verdict = Some(Verdict::Unreliable { failure, errors: outcome.errors });
                }
            });
            if let Some(v) = verdict {
                return Ok(AnalysisReport { verdict: v, scenarios_checked, exhausted: true });
            }
            if out_of_budget {
                return Ok(AnalysisReport {
                    verdict: Verdict::Inconclusive { scenarios_checked },
                    scenarios_checked,
                    exhausted: false,
                });
            }
        }
        Ok(AnalysisReport { verdict: Verdict::Reliable, scenarios_checked, exhausted: true })
    }
}

impl Default for FailureAnalyzer {
    fn default() -> FailureAnalyzer {
        FailureAnalyzer::new()
    }
}

/// Calls `f` with every `k`-element index combination of `0..n`, in
/// lexicographic order.
fn for_each_combination(n: usize, k: usize, f: &mut impl FnMut(&[usize])) {
    if k > n {
        return;
    }
    let mut indices: Vec<usize> = (0..k).collect();
    loop {
        f(&indices);
        // Advance to the next combination.
        let mut i = k;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            if indices[i] != i + n - k {
                break;
            }
            if i == 0 {
                return;
            }
        }
        indices[i] += 1;
        for j in i + 1..k {
            indices[j] = indices[j - 1] + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nptsn_sched::{FlowSet, FlowSpec, ShortestPathRecovery, TasConfig};
    use nptsn_topo::{Asil, ComponentLibrary, ConnectionGraph};
    use std::sync::Arc;

    fn combos(n: usize, k: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        for_each_combination(n, k, &mut |c| out.push(c.to_vec()));
        out
    }

    #[test]
    fn combination_enumeration() {
        assert_eq!(combos(3, 0), vec![Vec::<usize>::new()]);
        assert_eq!(combos(3, 1), vec![vec![0], vec![1], vec![2]]);
        assert_eq!(combos(4, 2).len(), 6);
        assert_eq!(combos(4, 2)[0], vec![0, 1]);
        assert_eq!(combos(4, 2)[5], vec![2, 3]);
        assert_eq!(combos(2, 3), Vec::<Vec<usize>>::new());
        assert_eq!(combos(3, 3), vec![vec![0, 1, 2]]);
    }

    /// Theta network: a and b connected via two parallel switches.
    fn theta_problem() -> (PlanningProblem, Topology, NodeId, NodeId) {
        let mut gc = ConnectionGraph::new();
        let a = gc.add_end_station("a");
        let b = gc.add_end_station("b");
        let s0 = gc.add_switch("s0");
        let s1 = gc.add_switch("s1");
        for (u, v) in [(a, s0), (s0, b), (a, s1), (s1, b)] {
            gc.add_candidate_link(u, v, 1.0).unwrap();
        }
        let gc = Arc::new(gc);
        let flows = FlowSet::new(vec![FlowSpec::new(a, b, 500, 128)]).unwrap();
        let problem = PlanningProblem::new(
            Arc::clone(&gc),
            ComponentLibrary::automotive(),
            TasConfig::default(),
            flows,
            1e-6,
            Arc::new(ShortestPathRecovery::new()),
        )
        .unwrap();
        let mut topo = gc.empty_topology();
        topo.add_switch(s0, Asil::A).unwrap();
        topo.add_switch(s1, Asil::A).unwrap();
        for (u, v) in [(a, s0), (s0, b), (a, s1), (s1, b)] {
            topo.add_link(u, v).unwrap();
        }
        (problem, topo, s0, s1)
    }

    #[test]
    fn redundant_asil_a_topology_is_reliable_at_1e6() {
        // Two ASIL-A switches: each single failure (1e-3) must be
        // survivable and is (parallel paths); the dual failure has
        // probability (1-e^-1e-3)^2 < 1e-6 and is a safe fault.
        let (problem, topo, ..) = theta_problem();
        assert_eq!(FailureAnalyzer::new().analyze(&problem, &topo), Verdict::Reliable);
    }

    #[test]
    fn stricter_goal_activates_dual_failures() {
        // At R = 1e-9 the dual-A failure (~1e-6) is non-safe and the theta
        // network cannot survive it.
        let (problem, topo, s0, s1) = theta_problem();
        let strict = PlanningProblem::new(
            problem.connection_graph_arc(),
            problem.library().clone(),
            *problem.tas(),
            problem.flows().clone(),
            1e-9,
            problem.nbf_arc(),
        )
        .unwrap();
        match FailureAnalyzer::new().analyze(&strict, &topo) {
            Verdict::Unreliable { failure, errors } => {
                assert_eq!(failure.failed_switches(), &[s0, s1]);
                assert!(!errors.is_empty());
            }
            other => panic!("dual failure should not be survivable: {other:?}"),
        }
    }

    #[test]
    fn single_attachment_needs_asil_d() {
        // One switch, single-attached stations: reliable iff the switch is
        // ASIL-D (its failure becomes a safe fault).
        let mut gc = ConnectionGraph::new();
        let a = gc.add_end_station("a");
        let b = gc.add_end_station("b");
        let s = gc.add_switch("s");
        gc.add_candidate_link(a, s, 1.0).unwrap();
        gc.add_candidate_link(b, s, 1.0).unwrap();
        let gc = Arc::new(gc);
        let flows = FlowSet::new(vec![FlowSpec::new(a, b, 500, 128)]).unwrap();
        let problem = PlanningProblem::new(
            Arc::clone(&gc),
            ComponentLibrary::automotive(),
            TasConfig::default(),
            flows,
            1e-6,
            Arc::new(ShortestPathRecovery::new()),
        )
        .unwrap();
        let analyzer = FailureAnalyzer::new();
        for asil in [Asil::A, Asil::B, Asil::C] {
            let mut topo = gc.empty_topology();
            topo.add_switch(s, asil).unwrap();
            topo.add_link(a, s).unwrap();
            topo.add_link(b, s).unwrap();
            assert!(
                !analyzer.analyze(&problem, &topo).is_reliable(),
                "{asil} should not suffice"
            );
        }
        let mut topo = gc.empty_topology();
        topo.add_switch(s, Asil::D).unwrap();
        topo.add_link(a, s).unwrap();
        topo.add_link(b, s).unwrap();
        assert!(analyzer.analyze(&problem, &topo).is_reliable());
    }

    #[test]
    fn empty_topology_reports_nominal_failure() {
        let (problem, ..) = theta_problem();
        let topo = problem.connection_graph().empty_topology();
        match FailureAnalyzer::new().analyze(&problem, &topo) {
            Verdict::Unreliable { failure, errors } => {
                assert!(failure.is_empty(), "the empty failure is the culprit");
                assert_eq!(errors.len(), 1);
            }
            other => panic!("no links: nominal scheduling must fail: {other:?}"),
        }
    }

    #[test]
    fn unschedulable_nominal_network_is_unreliable() {
        // Connected but with a 2-slot cycle and three flows on one path:
        // nominal scheduling fails (line 9 at order 0).
        let mut gc = ConnectionGraph::new();
        let a = gc.add_end_station("a");
        let b = gc.add_end_station("b");
        let s = gc.add_switch("s");
        gc.add_candidate_link(a, s, 1.0).unwrap();
        gc.add_candidate_link(b, s, 1.0).unwrap();
        let gc = Arc::new(gc);
        let flows = FlowSet::new(vec![
            FlowSpec::new(a, b, 500, 128),
            FlowSpec::new(a, b, 500, 128),
            FlowSpec::new(a, b, 500, 128),
        ])
        .unwrap();
        let problem = PlanningProblem::new(
            Arc::clone(&gc),
            ComponentLibrary::automotive(),
            TasConfig::new(500, 2, 1000),
            flows,
            1e-6,
            Arc::new(ShortestPathRecovery::new()),
        )
        .unwrap();
        let mut topo = gc.empty_topology();
        topo.add_switch(s, Asil::D).unwrap();
        topo.add_link(a, s).unwrap();
        topo.add_link(b, s).unwrap();
        assert!(!FailureAnalyzer::new().analyze(&problem, &topo).is_reliable());
    }

    #[test]
    fn all_nodes_scope_includes_end_stations() {
        // With AllNodes scope and a strict goal, even an end-station
        // failure (ASIL-D, ~1e-6 >= 1e-9) is injected, and the flow's own
        // source failing is never recoverable.
        let (problem, topo, ..) = theta_problem();
        let strict = PlanningProblem::new(
            problem.connection_graph_arc(),
            problem.library().clone(),
            *problem.tas(),
            problem.flows().clone(),
            1e-9,
            problem.nbf_arc(),
        )
        .unwrap();
        let analyzer = FailureAnalyzer::with_scope(NodeScope::AllNodes);
        assert_eq!(analyzer.scope(), NodeScope::AllNodes);
        match analyzer.analyze(&strict, &topo) {
            Verdict::Unreliable { failure, .. } => {
                assert!(!failure.is_empty());
            }
            other => panic!("source failure cannot be survived: {other:?}"),
        }
    }

    #[test]
    fn verdict_helpers() {
        assert!(Verdict::Reliable.is_reliable());
        let v = Verdict::Unreliable {
            failure: FailureScenario::none(),
            errors: ErrorReport::empty(),
        };
        assert!(!v.is_reliable());
        assert!(!Verdict::Inconclusive { scenarios_checked: 3 }.is_reliable());
    }

    #[test]
    fn unbounded_report_is_exhausted_and_matches_analyze() {
        let (problem, topo, ..) = theta_problem();
        let analyzer = FailureAnalyzer::new();
        assert_eq!(analyzer.budget(), AnalysisBudget::UNBOUNDED);
        let report = analyzer.try_analyze(&problem, &topo).unwrap();
        assert!(report.exhausted);
        assert!(report.scenarios_checked > 0);
        assert_eq!(report.verdict, analyzer.analyze(&problem, &topo));
    }

    #[test]
    fn small_budget_returns_inconclusive_with_coverage() {
        // The theta network needs 2 NBF invocations (the two single
        // failures; the nominal check is superset-pruned after they
        // survive), so a budget of 1 must cut enumeration short.
        let (problem, topo, ..) = theta_problem();
        let analyzer = FailureAnalyzer::new().with_budget(AnalysisBudget::scenarios(1));
        let report = analyzer.try_analyze(&problem, &topo).unwrap();
        assert!(!report.exhausted);
        assert_eq!(report.scenarios_checked, 1);
        assert_eq!(report.verdict, Verdict::Inconclusive { scenarios_checked: 1 });
        // The anytime verdict also comes through the panicking wrapper.
        assert!(!analyzer.analyze(&problem, &topo).is_reliable());
    }

    #[test]
    fn sufficient_budget_matches_unbounded_verdict() {
        let (problem, topo, ..) = theta_problem();
        let unbounded = FailureAnalyzer::new().try_analyze(&problem, &topo).unwrap();
        let budgeted = FailureAnalyzer::new()
            .with_budget(AnalysisBudget::scenarios(unbounded.scenarios_checked))
            .try_analyze(&problem, &topo)
            .unwrap();
        assert!(budgeted.exhausted);
        assert_eq!(budgeted.verdict, unbounded.verdict);
        assert_eq!(budgeted.scenarios_checked, unbounded.scenarios_checked);
    }

    #[test]
    fn budget_counts_only_nbf_invocations() {
        // Safe faults and superset-pruned scenarios must not consume
        // budget: with exactly the unbounded run's scenario count, the
        // verdict stays exact even though many more subsets exist.
        let (problem, topo, s0, s1) = theta_problem();
        let strict = PlanningProblem::new(
            problem.connection_graph_arc(),
            problem.library().clone(),
            *problem.tas(),
            problem.flows().clone(),
            1e-9,
            problem.nbf_arc(),
        )
        .unwrap();
        let unbounded = FailureAnalyzer::new().try_analyze(&strict, &topo).unwrap();
        let budgeted = FailureAnalyzer::new()
            .with_budget(AnalysisBudget::scenarios(unbounded.scenarios_checked))
            .try_analyze(&strict, &topo)
            .unwrap();
        match budgeted.verdict {
            Verdict::Unreliable { failure, .. } => {
                assert_eq!(failure.failed_switches(), &[s0, s1]);
            }
            other => panic!("expected the dual failure, got {other:?}"),
        }
    }

    #[test]
    fn budget_accessors() {
        assert_eq!(AnalysisBudget::default().limit(), None);
        assert_eq!(AnalysisBudget::scenarios(7).limit(), Some(7));
        let a = FailureAnalyzer::new().with_budget(AnalysisBudget::scenarios(7));
        assert_eq!(a.budget().limit(), Some(7));
    }
}
