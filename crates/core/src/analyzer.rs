//! The failure analyzer: Algorithm 3, the failure injection check.
//!
//! This is the planner's hot path — every RL environment step runs it —
//! so the enumeration engine is built for speed without changing a single
//! verdict (see `DESIGN.md` §8):
//!
//! * scenarios are [`ScenarioBits`] bitsets and survivors live in an
//!   order-bucketed [`SupersetMemo`], so the superset-pruning test is a
//!   few word operations instead of a linear element-wise scan;
//! * the NBF invocations of each failure order can fan out across worker
//!   threads ([`FailureAnalyzer::with_workers`]) with a deterministic
//!   merge: the first counterexample in lexicographic enumeration order
//!   wins and the budget is charged exactly as sequential enumeration
//!   would, so verdicts and `scenarios_checked` are bit-identical;
//! * NBF outcomes can be memoized across runs in a shared, bounded
//!   [`ScenarioCache`] keyed by `(topology fingerprint, scenario)`
//!   ([`FailureAnalyzer::with_shared_cache`]) — sound because the NBF is
//!   stateless, and implicitly invalidated by topology mutation because
//!   the fingerprint changes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use nptsn_sched::ErrorReport;
use nptsn_topo::{FailureScenario, NodeId, Topology};

use crate::error::NptsnError;
use crate::problem::PlanningProblem;
use crate::scenario_cache::{ScenarioBits, ScenarioCache, SupersetMemo};

/// Which nodes the analyzer injects failures into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeScope {
    /// Only selected switches — sound for networks without flow-level
    /// redundancy thanks to the link-ASIL invariant and the reduction of
    /// Eq. 6 (Section V).
    SwitchesOnly,
    /// Every node including end stations — required when flows carry
    /// redundant instances and the NBF only reports errors once all
    /// instances fail (Section V, complexity `O(|V^t|^maxord)`).
    AllNodes,
}

/// The analyzer's verdict for one topology.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Every non-safe fault is survivable: the reliability guarantee holds.
    Reliable,
    /// A non-safe fault the recovery cannot handle, with the NBF's error
    /// message — the input to the SOAG for the next action generation.
    Unreliable {
        /// The non-recoverable failure scenario found first.
        failure: FailureScenario,
        /// The endpoint pairs the NBF failed to restore under it.
        errors: ErrorReport,
    },
    /// The analysis budget ran out before every non-safe fault was checked:
    /// no counterexample was found, but reliability is *not* guaranteed.
    /// Only produced by budgeted analyzers (never by the unbounded
    /// default).
    Inconclusive {
        /// How many failure scenarios were injected before the budget ran
        /// out.
        scenarios_checked: u64,
    },
}

impl Verdict {
    /// Whether the reliability guarantee holds.
    pub fn is_reliable(&self) -> bool {
        matches!(self, Verdict::Reliable)
    }
}

/// A deterministic work budget for [`FailureAnalyzer::analyze`], measured
/// in failure scenarios injected (NBF invocations) — not wall-clock time,
/// so budgeted runs stay reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisBudget(Option<u64>);

impl AnalysisBudget {
    /// No limit: Algorithm 3 runs to completion (the default).
    pub const UNBOUNDED: AnalysisBudget = AnalysisBudget(None);

    /// At most `n` failure scenarios are injected; the verdict degrades to
    /// [`Verdict::Inconclusive`] if enumeration is cut short.
    pub fn scenarios(n: u64) -> AnalysisBudget {
        AnalysisBudget(Some(n))
    }

    /// The scenario limit, or `None` when unbounded.
    pub fn limit(&self) -> Option<u64> {
        self.0
    }
}

impl Default for AnalysisBudget {
    fn default() -> AnalysisBudget {
        AnalysisBudget::UNBOUNDED
    }
}

/// The outcome of one analysis run with coverage statistics, so callers
/// that trade soundness-of-claim for latency can see exactly what they
/// bought.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisReport {
    /// The verdict (anytime: [`Verdict::Inconclusive`] when the budget ran
    /// out).
    pub verdict: Verdict,
    /// How many failure scenarios were injected. Scenarios answered from
    /// the shared cache count too — the scenario was *checked*, the NBF
    /// work was just already paid for — so this figure is identical with
    /// and without a cache, and the budget stays configuration-independent.
    pub scenarios_checked: u64,
    /// Whether the enumeration ran to completion. `true` means the verdict
    /// is exactly what the unbounded analyzer would have produced; `false`
    /// means the budget was exhausted first.
    pub exhausted: bool,
    /// Scenario checks answered from the shared [`ScenarioCache`] during
    /// this run (0 without a cache).
    pub cache_hits: u64,
    /// Scenario checks that invoked the NBF and recorded the outcome in
    /// the shared cache (0 without a cache).
    pub cache_misses: u64,
}

/// Failure injection per Algorithm 3: checks every switch-failure subset
/// with probability ≥ `R`, from the highest possible order (`maxord`) down
/// to the empty failure (nominal schedulability), skipping subsets of
/// scenarios that already survived.
///
/// Soundness of checking switches only: any non-safe fault containing link
/// failures maps (Eq. 6) to the switch-only fault obtained by replacing
/// each failed link with its lower-ASIL endpoint; since link ASIL equals
/// the minimum endpoint ASIL, the mapped fault is at least as probable, and
/// its residual network is a subgraph — so surviving it implies surviving
/// the original.
///
/// # Examples
///
/// ```
/// use nptsn::{FailureAnalyzer, PlanningProblem, Verdict};
/// use nptsn_sched::{FlowSet, FlowSpec, ShortestPathRecovery, TasConfig};
/// use nptsn_topo::{Asil, ComponentLibrary, ConnectionGraph};
/// use std::sync::Arc;
///
/// let mut gc = ConnectionGraph::new();
/// let a = gc.add_end_station("a");
/// let b = gc.add_end_station("b");
/// let s = gc.add_switch("s");
/// gc.add_candidate_link(a, s, 1.0).unwrap();
/// gc.add_candidate_link(b, s, 1.0).unwrap();
/// let flows = FlowSet::new(vec![FlowSpec::new(a, b, 500, 128)]).unwrap();
/// let problem = PlanningProblem::new(
///     Arc::new(gc), ComponentLibrary::automotive(), TasConfig::default(),
///     flows, 1e-6, Arc::new(ShortestPathRecovery::new()),
/// ).unwrap();
/// let analyzer = FailureAnalyzer::new();
///
/// // A single ASIL-A switch: its failure (probability ~1e-3 >= R) kills
/// // the only path.
/// let mut topo = problem.connection_graph().empty_topology();
/// topo.add_switch(s, Asil::A).unwrap();
/// topo.add_link(a, s).unwrap();
/// topo.add_link(b, s).unwrap();
/// assert!(!analyzer.analyze(&problem, &topo).is_reliable());
///
/// // Upgrading it to ASIL-D makes the failure a safe fault (< 1e-6).
/// for _ in 0..3 { topo.upgrade_switch(s).unwrap(); }
/// assert!(analyzer.analyze(&problem, &topo).is_reliable());
/// ```
#[derive(Debug, Clone)]
pub struct FailureAnalyzer {
    scope: NodeScope,
    budget: AnalysisBudget,
    workers: usize,
    cache: Option<Arc<ScenarioCache>>,
}

impl FailureAnalyzer {
    /// An analyzer over switch failures only with an unbounded budget (the
    /// default, sound without flow-level redundancy), sequential and
    /// uncached.
    pub fn new() -> FailureAnalyzer {
        FailureAnalyzer {
            scope: NodeScope::SwitchesOnly,
            budget: AnalysisBudget::UNBOUNDED,
            workers: 1,
            cache: None,
        }
    }

    /// An analyzer with an explicit node scope.
    pub fn with_scope(scope: NodeScope) -> FailureAnalyzer {
        FailureAnalyzer { scope, ..FailureAnalyzer::new() }
    }

    /// Returns this analyzer with the given work budget (builder-style).
    pub fn with_budget(mut self, budget: AnalysisBudget) -> FailureAnalyzer {
        self.budget = budget;
        self
    }

    /// Returns this analyzer with NBF invocations fanned out over
    /// `workers` threads (builder-style; values below 1 are clamped to 1,
    /// which keeps everything on the calling thread).
    ///
    /// The parallel engine returns bit-identical verdicts and
    /// `scenarios_checked` to sequential enumeration: within one failure
    /// order the superset memo is frozen (distinct equal-order scenarios
    /// are never subsets of each other), so the set of scenarios to check
    /// is fixed up front; workers may race ahead of a counterexample, but
    /// the merge picks the first one in lexicographic enumeration order
    /// and charges the budget as if enumeration had stopped right there.
    pub fn with_workers(mut self, workers: usize) -> FailureAnalyzer {
        self.workers = workers.max(1);
        self
    }

    /// Returns this analyzer with a shared NBF-outcome cache
    /// (builder-style). The cache must only ever be shared between
    /// analyzers over the *same* planning problem and node scope — the
    /// environment attaches one cache per episode worker.
    pub fn with_shared_cache(mut self, cache: Arc<ScenarioCache>) -> FailureAnalyzer {
        self.cache = Some(cache);
        self
    }

    /// The configured node scope.
    pub fn scope(&self) -> NodeScope {
        self.scope
    }

    /// The configured work budget.
    pub fn budget(&self) -> AnalysisBudget {
        self.budget
    }

    /// The configured worker-thread count (1 = sequential).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The shared NBF-outcome cache, when one is attached.
    pub fn cache(&self) -> Option<&Arc<ScenarioCache>> {
        self.cache.as_ref()
    }

    /// Runs Algorithm 3 on `topology`.
    ///
    /// With the default unbounded budget the result is exact; with a
    /// [`AnalysisBudget::scenarios`] budget it may be
    /// [`Verdict::Inconclusive`]. For coverage statistics use
    /// [`try_analyze`](FailureAnalyzer::try_analyze).
    ///
    /// # Panics
    ///
    /// Panics if the topology is internally inconsistent (a selected switch
    /// without an ASIL) — impossible through the public `Topology` API.
    pub fn analyze(&self, problem: &PlanningProblem, topology: &Topology) -> Verdict {
        self.try_analyze(problem, topology).expect("inconsistent topology").verdict
    }

    /// Runs Algorithm 3 and returns the verdict with coverage statistics,
    /// surfacing internal inconsistencies as errors instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`NptsnError::Topo`] if the topology is internally
    /// inconsistent (e.g. a selected switch without an ASIL).
    pub fn try_analyze(
        &self,
        problem: &PlanningProblem,
        topology: &Topology,
    ) -> Result<AnalysisReport, NptsnError> {
        let _span = nptsn_obs::span("analyzer.analyze");
        let report = self.try_analyze_inner(problem, topology)?;
        let telemetry = nptsn_obs::telemetry();
        telemetry.analyzer_scenarios_checked.add(report.scenarios_checked);
        telemetry.analyzer_cache_hits.add(report.cache_hits);
        telemetry.analyzer_cache_misses.add(report.cache_misses);
        if !report.exhausted {
            telemetry.analyzer_budget_exhausted.inc();
        }
        if nptsn_obs::enabled() {
            nptsn_obs::counter("analyzer.cache_hits", report.cache_hits as f64);
            nptsn_obs::counter("analyzer.cache_misses", report.cache_misses as f64);
        }
        Ok(report)
    }

    fn try_analyze_inner(
        &self,
        problem: &PlanningProblem,
        topology: &Topology,
    ) -> Result<AnalysisReport, NptsnError> {
        let r = problem.reliability_goal();
        // Candidate fault nodes with their failure probabilities, sorted by
        // decreasing probability (line 1).
        let mut nodes: Vec<(NodeId, f64)> = Vec::new();
        for &s in topology.selected_switches() {
            let asil = topology.switch_asil(s).ok_or_else(|| {
                NptsnError::internal(format!("selected switch {s} has no ASIL"))
            })?;
            nodes.push((s, asil.failure_probability()));
        }
        if self.scope == NodeScope::AllNodes {
            let gc = topology.connection_graph();
            nodes.extend(
                gc.end_stations().iter().map(|&e| (e, gc.end_station_asil(e).failure_probability())),
            );
        }
        nodes.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });

        // maxord: the largest k whose k most probable failures still have a
        // combined probability >= R (line 1).
        let mut maxord = 0;
        let mut product = 1.0;
        for &(_, p) in &nodes {
            product *= p;
            if product >= r {
                maxord += 1;
            } else {
                break;
            }
        }

        // Lines 2-14: check subsets from maxord down to the empty failure.
        // The budget caps the number of scenario checks; safe faults and
        // superset-pruned subsets are free (no recovery is attempted).
        //
        // Per order, enumeration proceeds in two phases. Phase A walks the
        // combinations lexicographically and collects the *chargeable*
        // scenarios — non-safe and not covered by a higher-order survivor.
        // The memo is frozen during an order (equal-order scenarios never
        // prune each other), so this set matches what sequential
        // enumeration would inject. Phase B evaluates the NBF for the
        // first `budget-remaining` of them, sequentially or across worker
        // threads, and merges deterministically: the earliest
        // counterexample wins and the budget is charged up to it.
        let limit = self.budget.limit().unwrap_or(u64::MAX);
        let fingerprint = self.cache.as_deref().map(|_| topology.fingerprint());
        let cache_ctx: Option<(&ScenarioCache, u128)> =
            self.cache.as_deref().zip(fingerprint);
        let mut scenarios_checked: u64 = 0;
        let mut cache_hits: u64 = 0;
        let mut cache_misses: u64 = 0;
        let mut memo = SupersetMemo::new();
        let mut combo_buf: Vec<usize> = Vec::new();
        let mut scratch = ScenarioBits::with_capacity(nodes.len());
        let mut chargeable: Vec<ScenarioBits> = Vec::new();
        for order in (0..=maxord).rev() {
            // Phase A: the chargeable scenarios of this order, in
            // lexicographic enumeration order. Pruned and safe scenarios
            // never materialize a `FailureScenario` (no allocation).
            chargeable.clear();
            for_each_combination(nodes.len(), order, &mut combo_buf, &mut |indices| {
                let probability: f64 = indices.iter().map(|&i| nodes[i].1).product();
                if probability < r {
                    return; // safe fault
                }
                scratch.clear();
                for &i in indices {
                    scratch.insert(i);
                }
                if memo.covers(&scratch, order) {
                    return; // a superset already survived
                }
                chargeable.push(scratch.clone());
            });

            // Phase B: evaluate what the budget allows.
            let allowed =
                usize::try_from((limit - scenarios_checked).min(chargeable.len() as u64))
                    .unwrap_or(chargeable.len());
            let outcome = if self.workers > 1 && allowed >= 2 {
                self.evaluate_parallel(problem, topology, &nodes, cache_ctx, &chargeable[..allowed])
            } else {
                evaluate_sequential(problem, topology, &nodes, cache_ctx, &chargeable[..allowed])
            };
            cache_hits += outcome.cache_hits;
            cache_misses += outcome.cache_misses;
            if let Some((position, errors)) = outcome.first_failure {
                // Sequential enumeration would have injected exactly the
                // scenarios up to and including the counterexample.
                scenarios_checked += position as u64 + 1;
                let failure = scenario_of(&nodes, &chargeable[position]);
                return Ok(AnalysisReport {
                    verdict: Verdict::Unreliable { failure, errors },
                    scenarios_checked,
                    exhausted: true,
                    cache_hits,
                    cache_misses,
                });
            }
            scenarios_checked += allowed as u64;
            if allowed < chargeable.len() {
                return Ok(AnalysisReport {
                    verdict: Verdict::Inconclusive { scenarios_checked },
                    scenarios_checked,
                    exhausted: false,
                    cache_hits,
                    cache_misses,
                });
            }
            // Every scenario of this order survived: it can prune strict
            // subsets in the lower orders still to come.
            for bits in chargeable.drain(..) {
                memo.insert(bits, order);
            }
        }
        Ok(AnalysisReport {
            verdict: Verdict::Reliable,
            scenarios_checked,
            exhausted: true,
            cache_hits,
            cache_misses,
        })
    }

    /// Evaluates one order's chargeable scenarios across worker threads.
    ///
    /// Work is dealt round-robin (worker `w` takes indices `w`, `w + W`,
    /// …); a shared atomic records the earliest counterexample index found
    /// so far, letting workers skip scenarios that can no longer matter.
    /// Every index below the final minimum is guaranteed to have been
    /// evaluated (a skip requires a recorded failure at a smaller index),
    /// so the merged first-failure position equals the sequential one.
    fn evaluate_parallel(
        &self,
        problem: &PlanningProblem,
        topology: &Topology,
        nodes: &[(NodeId, f64)],
        cache_ctx: Option<(&ScenarioCache, u128)>,
        scenarios: &[ScenarioBits],
    ) -> OrderOutcome {
        let workers = self.workers.min(scenarios.len());
        let first_fail = AtomicUsize::new(usize::MAX);
        // Worker threads start without the caller's trace context; carry
        // it across so their spans land in the same per-job timeline.
        let trace = nptsn_obs::current_trace();
        let per_worker: Vec<WorkerOutcome> =
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(workers);
                for w in 0..workers {
                    let first_fail = &first_fail;
                    handles.push(scope.spawn(move || {
                        let _trace = nptsn_obs::with_trace(trace);
                        let mut earliest: Option<(usize, ErrorReport)> = None;
                        let mut hits = 0u64;
                        let mut misses = 0u64;
                        let mut index = w;
                        while index < scenarios.len() {
                            if index <= first_fail.load(Ordering::Relaxed) {
                                let errors = evaluate_scenario(
                                    problem,
                                    topology,
                                    nodes,
                                    cache_ctx,
                                    &scenarios[index],
                                    &mut hits,
                                    &mut misses,
                                );
                                if !errors.is_empty() {
                                    first_fail.fetch_min(index, Ordering::Relaxed);
                                    if earliest.as_ref().is_none_or(|(p, _)| index < *p) {
                                        earliest = Some((index, errors));
                                    }
                                }
                            }
                            index += workers;
                        }
                        (earliest, hits, misses)
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                    .collect()
            });

        let mut merged = OrderOutcome::default();
        for (earliest, hits, misses) in per_worker {
            merged.cache_hits += hits;
            merged.cache_misses += misses;
            if let Some((index, errors)) = earliest {
                if merged.first_failure.as_ref().is_none_or(|(p, _)| index < *p) {
                    merged.first_failure = Some((index, errors));
                }
            }
        }
        merged
    }
}

/// One worker's share of a parallel order evaluation: the earliest
/// counterexample it found (if any) plus its cache hit/miss counts.
type WorkerOutcome = (Option<(usize, ErrorReport)>, u64, u64);

/// The result of evaluating one failure order's chargeable scenarios.
#[derive(Debug, Default)]
struct OrderOutcome {
    /// Position (within the chargeable slice) and error report of the
    /// lexicographically first counterexample, if any.
    first_failure: Option<(usize, ErrorReport)>,
    cache_hits: u64,
    cache_misses: u64,
}

/// Sequential Phase B: evaluate scenarios in order, stopping at the first
/// counterexample exactly like the seed enumeration did.
fn evaluate_sequential(
    problem: &PlanningProblem,
    topology: &Topology,
    nodes: &[(NodeId, f64)],
    cache_ctx: Option<(&ScenarioCache, u128)>,
    scenarios: &[ScenarioBits],
) -> OrderOutcome {
    let mut outcome = OrderOutcome::default();
    for (index, bits) in scenarios.iter().enumerate() {
        let errors = evaluate_scenario(
            problem,
            topology,
            nodes,
            cache_ctx,
            bits,
            &mut outcome.cache_hits,
            &mut outcome.cache_misses,
        );
        if !errors.is_empty() {
            outcome.first_failure = Some((index, errors));
            break;
        }
    }
    outcome
}

/// One scenario check: cache lookup first, NBF invocation on a miss.
fn evaluate_scenario(
    problem: &PlanningProblem,
    topology: &Topology,
    nodes: &[(NodeId, f64)],
    cache_ctx: Option<(&ScenarioCache, u128)>,
    bits: &ScenarioBits,
    hits: &mut u64,
    misses: &mut u64,
) -> ErrorReport {
    if let Some((cache, fingerprint)) = cache_ctx {
        if let Some(errors) = cache.lookup(fingerprint, bits) {
            *hits += 1;
            return errors;
        }
    }
    let failure = scenario_of(nodes, bits);
    let outcome = problem.nbf().recover(topology, &failure, problem.tas(), problem.flows());
    if let Some((cache, fingerprint)) = cache_ctx {
        *misses += 1;
        cache.insert(fingerprint, bits.clone(), outcome.errors.clone());
    }
    outcome.errors
}

/// Materializes the `FailureScenario` for a candidate-index bitset — only
/// ever called for scenarios that actually reach the NBF or the verdict.
fn scenario_of(nodes: &[(NodeId, f64)], bits: &ScenarioBits) -> FailureScenario {
    FailureScenario::switches(bits.iter().map(|i| nodes[i].0).collect())
}

impl Default for FailureAnalyzer {
    fn default() -> FailureAnalyzer {
        FailureAnalyzer::new()
    }
}

/// Calls `f` with every `k`-element index combination of `0..n`, in
/// lexicographic order. `indices` is the caller's scratch buffer, reused
/// across orders so per-order enumeration allocates nothing.
fn for_each_combination(
    n: usize,
    k: usize,
    indices: &mut Vec<usize>,
    f: &mut impl FnMut(&[usize]),
) {
    if k > n {
        return;
    }
    indices.clear();
    indices.extend(0..k);
    loop {
        f(indices);
        // Advance to the next combination.
        let mut i = k;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            if indices[i] != i + n - k {
                break;
            }
            if i == 0 {
                return;
            }
        }
        indices[i] += 1;
        for j in i + 1..k {
            indices[j] = indices[j - 1] + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nptsn_sched::{FlowSet, FlowSpec, ShortestPathRecovery, TasConfig};
    use nptsn_topo::{Asil, ComponentLibrary, ConnectionGraph};
    use std::sync::Arc;

    fn combos(n: usize, k: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut buf = Vec::new();
        for_each_combination(n, k, &mut buf, &mut |c| out.push(c.to_vec()));
        out
    }

    #[test]
    fn combination_enumeration() {
        assert_eq!(combos(3, 0), vec![Vec::<usize>::new()]);
        assert_eq!(combos(3, 1), vec![vec![0], vec![1], vec![2]]);
        assert_eq!(combos(4, 2).len(), 6);
        assert_eq!(combos(4, 2)[0], vec![0, 1]);
        assert_eq!(combos(4, 2)[5], vec![2, 3]);
        assert_eq!(combos(2, 3), Vec::<Vec<usize>>::new());
        assert_eq!(combos(3, 3), vec![vec![0, 1, 2]]);
    }

    /// Theta network: a and b connected via two parallel switches.
    fn theta_problem() -> (PlanningProblem, Topology, NodeId, NodeId) {
        let mut gc = ConnectionGraph::new();
        let a = gc.add_end_station("a");
        let b = gc.add_end_station("b");
        let s0 = gc.add_switch("s0");
        let s1 = gc.add_switch("s1");
        for (u, v) in [(a, s0), (s0, b), (a, s1), (s1, b)] {
            gc.add_candidate_link(u, v, 1.0).unwrap();
        }
        let gc = Arc::new(gc);
        let flows = FlowSet::new(vec![FlowSpec::new(a, b, 500, 128)]).unwrap();
        let problem = PlanningProblem::new(
            Arc::clone(&gc),
            ComponentLibrary::automotive(),
            TasConfig::default(),
            flows,
            1e-6,
            Arc::new(ShortestPathRecovery::new()),
        )
        .unwrap();
        let mut topo = gc.empty_topology();
        topo.add_switch(s0, Asil::A).unwrap();
        topo.add_switch(s1, Asil::A).unwrap();
        for (u, v) in [(a, s0), (s0, b), (a, s1), (s1, b)] {
            topo.add_link(u, v).unwrap();
        }
        (problem, topo, s0, s1)
    }

    #[test]
    fn redundant_asil_a_topology_is_reliable_at_1e6() {
        // Two ASIL-A switches: each single failure (1e-3) must be
        // survivable and is (parallel paths); the dual failure has
        // probability (1-e^-1e-3)^2 < 1e-6 and is a safe fault.
        let (problem, topo, ..) = theta_problem();
        assert_eq!(FailureAnalyzer::new().analyze(&problem, &topo), Verdict::Reliable);
    }

    #[test]
    fn stricter_goal_activates_dual_failures() {
        // At R = 1e-9 the dual-A failure (~1e-6) is non-safe and the theta
        // network cannot survive it.
        let (problem, topo, s0, s1) = theta_problem();
        let strict = PlanningProblem::new(
            problem.connection_graph_arc(),
            problem.library().clone(),
            *problem.tas(),
            problem.flows().clone(),
            1e-9,
            problem.nbf_arc(),
        )
        .unwrap();
        match FailureAnalyzer::new().analyze(&strict, &topo) {
            Verdict::Unreliable { failure, errors } => {
                assert_eq!(failure.failed_switches(), &[s0, s1]);
                assert!(!errors.is_empty());
            }
            other => panic!("dual failure should not be survivable: {other:?}"),
        }
    }

    #[test]
    fn single_attachment_needs_asil_d() {
        // One switch, single-attached stations: reliable iff the switch is
        // ASIL-D (its failure becomes a safe fault).
        let mut gc = ConnectionGraph::new();
        let a = gc.add_end_station("a");
        let b = gc.add_end_station("b");
        let s = gc.add_switch("s");
        gc.add_candidate_link(a, s, 1.0).unwrap();
        gc.add_candidate_link(b, s, 1.0).unwrap();
        let gc = Arc::new(gc);
        let flows = FlowSet::new(vec![FlowSpec::new(a, b, 500, 128)]).unwrap();
        let problem = PlanningProblem::new(
            Arc::clone(&gc),
            ComponentLibrary::automotive(),
            TasConfig::default(),
            flows,
            1e-6,
            Arc::new(ShortestPathRecovery::new()),
        )
        .unwrap();
        let analyzer = FailureAnalyzer::new();
        for asil in [Asil::A, Asil::B, Asil::C] {
            let mut topo = gc.empty_topology();
            topo.add_switch(s, asil).unwrap();
            topo.add_link(a, s).unwrap();
            topo.add_link(b, s).unwrap();
            assert!(
                !analyzer.analyze(&problem, &topo).is_reliable(),
                "{asil} should not suffice"
            );
        }
        let mut topo = gc.empty_topology();
        topo.add_switch(s, Asil::D).unwrap();
        topo.add_link(a, s).unwrap();
        topo.add_link(b, s).unwrap();
        assert!(analyzer.analyze(&problem, &topo).is_reliable());
    }

    #[test]
    fn empty_topology_reports_nominal_failure() {
        let (problem, ..) = theta_problem();
        let topo = problem.connection_graph().empty_topology();
        match FailureAnalyzer::new().analyze(&problem, &topo) {
            Verdict::Unreliable { failure, errors } => {
                assert!(failure.is_empty(), "the empty failure is the culprit");
                assert_eq!(errors.len(), 1);
            }
            other => panic!("no links: nominal scheduling must fail: {other:?}"),
        }
    }

    #[test]
    fn unschedulable_nominal_network_is_unreliable() {
        // Connected but with a 2-slot cycle and three flows on one path:
        // nominal scheduling fails (line 9 at order 0).
        let mut gc = ConnectionGraph::new();
        let a = gc.add_end_station("a");
        let b = gc.add_end_station("b");
        let s = gc.add_switch("s");
        gc.add_candidate_link(a, s, 1.0).unwrap();
        gc.add_candidate_link(b, s, 1.0).unwrap();
        let gc = Arc::new(gc);
        let flows = FlowSet::new(vec![
            FlowSpec::new(a, b, 500, 128),
            FlowSpec::new(a, b, 500, 128),
            FlowSpec::new(a, b, 500, 128),
        ])
        .unwrap();
        let problem = PlanningProblem::new(
            Arc::clone(&gc),
            ComponentLibrary::automotive(),
            TasConfig::new(500, 2, 1000),
            flows,
            1e-6,
            Arc::new(ShortestPathRecovery::new()),
        )
        .unwrap();
        let mut topo = gc.empty_topology();
        topo.add_switch(s, Asil::D).unwrap();
        topo.add_link(a, s).unwrap();
        topo.add_link(b, s).unwrap();
        assert!(!FailureAnalyzer::new().analyze(&problem, &topo).is_reliable());
    }

    #[test]
    fn all_nodes_scope_includes_end_stations() {
        // With AllNodes scope and a strict goal, even an end-station
        // failure (ASIL-D, ~1e-6 >= 1e-9) is injected, and the flow's own
        // source failing is never recoverable.
        let (problem, topo, ..) = theta_problem();
        let strict = PlanningProblem::new(
            problem.connection_graph_arc(),
            problem.library().clone(),
            *problem.tas(),
            problem.flows().clone(),
            1e-9,
            problem.nbf_arc(),
        )
        .unwrap();
        let analyzer = FailureAnalyzer::with_scope(NodeScope::AllNodes);
        assert_eq!(analyzer.scope(), NodeScope::AllNodes);
        match analyzer.analyze(&strict, &topo) {
            Verdict::Unreliable { failure, .. } => {
                assert!(!failure.is_empty());
            }
            other => panic!("source failure cannot be survived: {other:?}"),
        }
    }

    #[test]
    fn verdict_helpers() {
        assert!(Verdict::Reliable.is_reliable());
        let v = Verdict::Unreliable {
            failure: FailureScenario::none(),
            errors: ErrorReport::empty(),
        };
        assert!(!v.is_reliable());
        assert!(!Verdict::Inconclusive { scenarios_checked: 3 }.is_reliable());
    }

    #[test]
    fn unbounded_report_is_exhausted_and_matches_analyze() {
        let (problem, topo, ..) = theta_problem();
        let analyzer = FailureAnalyzer::new();
        assert_eq!(analyzer.budget(), AnalysisBudget::UNBOUNDED);
        let report = analyzer.try_analyze(&problem, &topo).unwrap();
        assert!(report.exhausted);
        assert!(report.scenarios_checked > 0);
        assert_eq!(report.verdict, analyzer.analyze(&problem, &topo));
    }

    #[test]
    fn small_budget_returns_inconclusive_with_coverage() {
        // The theta network needs 2 NBF invocations (the two single
        // failures; the nominal check is superset-pruned after they
        // survive), so a budget of 1 must cut enumeration short.
        let (problem, topo, ..) = theta_problem();
        let analyzer = FailureAnalyzer::new().with_budget(AnalysisBudget::scenarios(1));
        let report = analyzer.try_analyze(&problem, &topo).unwrap();
        assert!(!report.exhausted);
        assert_eq!(report.scenarios_checked, 1);
        assert_eq!(report.verdict, Verdict::Inconclusive { scenarios_checked: 1 });
        // The anytime verdict also comes through the panicking wrapper.
        assert!(!analyzer.analyze(&problem, &topo).is_reliable());
    }

    #[test]
    fn sufficient_budget_matches_unbounded_verdict() {
        let (problem, topo, ..) = theta_problem();
        let unbounded = FailureAnalyzer::new().try_analyze(&problem, &topo).unwrap();
        let budgeted = FailureAnalyzer::new()
            .with_budget(AnalysisBudget::scenarios(unbounded.scenarios_checked))
            .try_analyze(&problem, &topo)
            .unwrap();
        assert!(budgeted.exhausted);
        assert_eq!(budgeted.verdict, unbounded.verdict);
        assert_eq!(budgeted.scenarios_checked, unbounded.scenarios_checked);
    }

    #[test]
    fn budget_counts_only_nbf_invocations() {
        // Safe faults and superset-pruned scenarios must not consume
        // budget: with exactly the unbounded run's scenario count, the
        // verdict stays exact even though many more subsets exist.
        let (problem, topo, s0, s1) = theta_problem();
        let strict = PlanningProblem::new(
            problem.connection_graph_arc(),
            problem.library().clone(),
            *problem.tas(),
            problem.flows().clone(),
            1e-9,
            problem.nbf_arc(),
        )
        .unwrap();
        let unbounded = FailureAnalyzer::new().try_analyze(&strict, &topo).unwrap();
        let budgeted = FailureAnalyzer::new()
            .with_budget(AnalysisBudget::scenarios(unbounded.scenarios_checked))
            .try_analyze(&strict, &topo)
            .unwrap();
        match budgeted.verdict {
            Verdict::Unreliable { failure, .. } => {
                assert_eq!(failure.failed_switches(), &[s0, s1]);
            }
            other => panic!("expected the dual failure, got {other:?}"),
        }
    }

    #[test]
    fn budget_accessors() {
        assert_eq!(AnalysisBudget::default().limit(), None);
        assert_eq!(AnalysisBudget::scenarios(7).limit(), Some(7));
        let a = FailureAnalyzer::new().with_budget(AnalysisBudget::scenarios(7));
        assert_eq!(a.budget().limit(), Some(7));
    }

    #[test]
    fn worker_and_cache_accessors() {
        let a = FailureAnalyzer::new();
        assert_eq!(a.workers(), 1);
        assert!(a.cache().is_none());
        let a = a.with_workers(0);
        assert_eq!(a.workers(), 1, "worker counts clamp to 1");
        let cache = Arc::new(ScenarioCache::new());
        let a = a.with_workers(4).with_shared_cache(Arc::clone(&cache));
        assert_eq!(a.workers(), 4);
        assert!(Arc::ptr_eq(a.cache().unwrap(), &cache));
    }

    /// Every (workers, cache) configuration must produce bit-identical
    /// verdicts and scenario counts on the same inputs.
    fn assert_all_configs_agree(problem: &PlanningProblem, topo: &Topology) {
        let reference = FailureAnalyzer::new().try_analyze(problem, topo).unwrap();
        for workers in [1, 2, 3, 8] {
            for with_cache in [false, true] {
                let mut analyzer = FailureAnalyzer::new().with_workers(workers);
                if with_cache {
                    analyzer = analyzer.with_shared_cache(Arc::new(ScenarioCache::new()));
                }
                // Twice on purpose: the second run hits the warm cache.
                for round in 0..2 {
                    let report = analyzer.try_analyze(problem, topo).unwrap();
                    assert_eq!(
                        report.verdict, reference.verdict,
                        "workers={workers} cache={with_cache} round={round}"
                    );
                    assert_eq!(
                        report.scenarios_checked, reference.scenarios_checked,
                        "workers={workers} cache={with_cache} round={round}"
                    );
                    assert_eq!(report.exhausted, reference.exhausted);
                    if !with_cache {
                        assert_eq!((report.cache_hits, report.cache_misses), (0, 0));
                    } else if round == 1 {
                        assert!(
                            report.cache_hits > 0,
                            "a repeated analysis must hit the warm cache"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_and_cached_match_sequential_on_reliable_topology() {
        let (problem, topo, ..) = theta_problem();
        assert_all_configs_agree(&problem, &topo);
    }

    #[test]
    fn parallel_and_cached_match_sequential_on_counterexamples() {
        let (problem, topo, ..) = theta_problem();
        let strict = PlanningProblem::new(
            problem.connection_graph_arc(),
            problem.library().clone(),
            *problem.tas(),
            problem.flows().clone(),
            1e-9,
            problem.nbf_arc(),
        )
        .unwrap();
        assert_all_configs_agree(&strict, &topo);
        // And on a nominally unschedulable (empty) network.
        let empty = problem.connection_graph().empty_topology();
        assert_all_configs_agree(&problem, &empty);
    }

    #[test]
    fn cache_survives_across_runs_and_counts_checks() {
        let (problem, topo, ..) = theta_problem();
        let cache = Arc::new(ScenarioCache::new());
        let analyzer = FailureAnalyzer::new().with_shared_cache(Arc::clone(&cache));
        let cold = analyzer.try_analyze(&problem, &topo).unwrap();
        assert_eq!(cold.cache_hits, 0);
        assert_eq!(cold.cache_misses, cold.scenarios_checked);
        let warm = analyzer.try_analyze(&problem, &topo).unwrap();
        assert_eq!(warm.cache_hits, warm.scenarios_checked, "warm run is all hits");
        assert_eq!(warm.cache_misses, 0);
        assert_eq!(warm.verdict, cold.verdict);
        assert_eq!(cache.stats().hits, warm.cache_hits);
        // Mutating the topology changes the fingerprint: no stale reuse.
        let mut upgraded = topo.clone();
        upgraded.upgrade_switch(upgraded.selected_switches()[0]).unwrap();
        let fresh = analyzer.try_analyze(&problem, &upgraded).unwrap();
        assert_eq!(fresh.cache_hits, 0, "different topology must not hit");
    }

    #[test]
    fn budgeted_parallel_matches_budgeted_sequential() {
        let (problem, topo, ..) = theta_problem();
        let strict = PlanningProblem::new(
            problem.connection_graph_arc(),
            problem.library().clone(),
            *problem.tas(),
            problem.flows().clone(),
            1e-9,
            problem.nbf_arc(),
        )
        .unwrap();
        let total = FailureAnalyzer::new()
            .try_analyze(&strict, &topo)
            .unwrap()
            .scenarios_checked;
        for budget in 0..=total + 1 {
            let seq = FailureAnalyzer::new()
                .with_budget(AnalysisBudget::scenarios(budget))
                .try_analyze(&strict, &topo)
                .unwrap();
            let par = FailureAnalyzer::new()
                .with_budget(AnalysisBudget::scenarios(budget))
                .with_workers(4)
                .with_shared_cache(Arc::new(ScenarioCache::new()))
                .try_analyze(&strict, &topo)
                .unwrap();
            assert_eq!(par.verdict, seq.verdict, "budget={budget}");
            assert_eq!(par.scenarios_checked, seq.scenarios_checked, "budget={budget}");
            assert_eq!(par.exhausted, seq.exhausted, "budget={budget}");
        }
    }
}
