//! Scenario bitsets, the order-bucketed superset memo and the bounded
//! NBF-outcome cache behind the failure analyzer's hot path.
//!
//! Algorithm 3 spends almost all of its time on two operations: deciding
//! whether a candidate failure scenario is a subset of one that already
//! survived (the memoization of Section V), and invoking the NBF when it
//! is not. This module makes both cheap:
//!
//! * [`ScenarioBits`] represents a scenario as a fixed-width bitset over
//!   the analyzer's candidate-node indices, so the subset test collapses
//!   to a handful of word operations (`sub & !sup == 0`).
//! * [`SupersetMemo`] buckets survivors by failure order. A scenario of
//!   order `k` can only be a strict subset of a survivor of order `> k`,
//!   so lookups touch exactly the buckets that can matter instead of
//!   scanning every survivor ever recorded.
//! * [`ScenarioCache`] memoizes NBF outcomes across analyzer runs, keyed
//!   by `(topology fingerprint, scenario bitset)`. The RL environment
//!   re-analyzes the empty topology at every episode reset and re-visits
//!   identical construction prefixes across episodes; those NBF calls are
//!   answered from the cache. Keys embed [`Topology::fingerprint`], so a
//!   topology mutation implicitly invalidates every stale entry — it can
//!   simply never be looked up again.
//!
//! [`Topology::fingerprint`]: nptsn_topo::Topology::fingerprint

use std::collections::HashMap;
use std::sync::Mutex;

use nptsn_sched::ErrorReport;

/// Bits stored inline for scenarios over up to 128 candidate nodes — every
/// realistic in-vehicle network — with a heap spill for larger problems.
const INLINE_WORDS: usize = 2;

/// A failure scenario as a bitset over the analyzer's candidate-node
/// indices (`0..n` for `n` fault candidates, most-probable-first).
///
/// The representation is fixed-width per analyzer run: all scenarios of a
/// run share the same capacity, so subset tests and equality are pure word
/// operations with no length bookkeeping.
///
/// # Examples
///
/// ```
/// use nptsn::ScenarioBits;
///
/// let mut small = ScenarioBits::with_capacity(70);
/// let mut big = ScenarioBits::with_capacity(70);
/// small.insert(3);
/// big.insert(3);
/// big.insert(69);
/// assert!(small.is_subset_of(&big));
/// assert!(!big.is_subset_of(&small));
/// assert_eq!(big.count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ScenarioBits {
    words: Words,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Words {
    Inline([u64; INLINE_WORDS]),
    Heap(Box<[u64]>),
}

impl ScenarioBits {
    /// The empty scenario over `capacity` candidate indices.
    pub fn with_capacity(capacity: usize) -> ScenarioBits {
        let words = capacity.div_ceil(64);
        ScenarioBits {
            words: if words <= INLINE_WORDS {
                Words::Inline([0; INLINE_WORDS])
            } else {
                Words::Heap(vec![0; words].into_boxed_slice())
            },
        }
    }

    fn words(&self) -> &[u64] {
        match &self.words {
            Words::Inline(w) => w,
            Words::Heap(w) => w,
        }
    }

    fn words_mut(&mut self) -> &mut [u64] {
        match &mut self.words {
            Words::Inline(w) => w,
            Words::Heap(w) => w,
        }
    }

    /// Marks candidate `index` as failed.
    ///
    /// # Panics
    ///
    /// Panics when `index` is beyond the capacity given at construction.
    pub fn insert(&mut self, index: usize) {
        self.words_mut()[index / 64] |= 1 << (index % 64);
    }

    /// Clears every bit, keeping the capacity.
    pub fn clear(&mut self) {
        self.words_mut().fill(0);
    }

    /// Number of failed candidates (the scenario order).
    pub fn count(&self) -> usize {
        self.words().iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether every candidate failed here also fails in `other`.
    ///
    /// Both bitsets must come from the same analyzer run (same capacity);
    /// for inline scenarios this is two AND-NOT word ops.
    pub fn is_subset_of(&self, other: &ScenarioBits) -> bool {
        self.words()
            .iter()
            .zip(other.words())
            .all(|(&sub, &sup)| sub & !sup == 0)
    }

    /// The failed candidate indices, ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words().iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(wi * 64 + b)
            })
        })
    }
}

/// Survived scenarios bucketed by failure order, replacing the seed's
/// linear scan over a `Vec<FailureScenario>`.
///
/// Algorithm 3 walks orders from `maxord` down to 0 and skips any scenario
/// that is a subset of an already-survived one. Two distinct scenarios of
/// equal order can never be subsets of each other, so a lookup for an
/// order-`k` scenario only needs the buckets of order `> k` — the memo
/// check costs `O(survivors of higher order)` word-ops instead of
/// `O(all survivors · order)` element-wise scans.
#[derive(Debug, Default)]
pub struct SupersetMemo {
    /// `buckets[k]` holds the survivors of order `k`.
    buckets: Vec<Vec<ScenarioBits>>,
}

impl SupersetMemo {
    /// An empty memo.
    pub fn new() -> SupersetMemo {
        SupersetMemo::default()
    }

    /// Records a survivor of the given order.
    pub fn insert(&mut self, bits: ScenarioBits, order: usize) {
        if self.buckets.len() <= order {
            self.buckets.resize_with(order + 1, Vec::new);
        }
        self.buckets[order].push(bits);
    }

    /// Whether an order-`order` scenario is a subset of any recorded
    /// survivor of strictly higher order (and therefore already known to
    /// be survivable).
    pub fn covers(&self, bits: &ScenarioBits, order: usize) -> bool {
        self.buckets
            .iter()
            .skip(order + 1)
            .any(|bucket| bucket.iter().any(|sup| bits.is_subset_of(sup)))
    }
}

/// Key of one memoized NBF outcome: the topology's selection-state
/// fingerprint plus the scenario bitset.
type CacheKey = (u128, ScenarioBits);

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<CacheKey, ErrorReport>,
    hits: u64,
    misses: u64,
}

/// A bounded memo of NBF outcomes shared across analyzer runs — typically
/// across the environment steps and episode resets of one RL worker.
///
/// The NBF `Φ` is stateless (Section II-B): its outcome depends only on
/// `(Gt, Gf)` for a fixed problem, so one cached [`ErrorReport`] per
/// `(topology fingerprint, scenario)` pair reproduces the exact verdict
/// the NBF would produce. Entries are never explicitly invalidated;
/// mutating a topology changes its fingerprint, so outdated entries are
/// unreachable and age out when the capacity bound triggers a reset.
///
/// One cache must only ever see one planning problem and one analyzer
/// configuration (node scope), since those determine the candidate-index
/// space the scenario bitsets live in.
///
/// Interior mutability (a [`Mutex`]) keeps the shared cache usable from
/// the analyzer's worker threads; the critical sections are single lookups
/// and inserts.
#[derive(Debug)]
pub struct ScenarioCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

/// Cumulative hit/miss counters of a [`ScenarioCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// NBF invocations answered from the cache.
    pub hits: u64,
    /// NBF invocations that had to run and were then recorded.
    pub misses: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups, or 0 when none happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl ScenarioCache {
    /// The default entry bound: plenty for a training episode's working
    /// set while keeping worst-case memory in the tens of megabytes.
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// A cache bounded to [`DEFAULT_CAPACITY`](Self::DEFAULT_CAPACITY)
    /// entries.
    pub fn new() -> ScenarioCache {
        ScenarioCache::with_capacity(ScenarioCache::DEFAULT_CAPACITY)
    }

    /// A cache bounded to `capacity` entries. When an insert would exceed
    /// the bound, the cache resets wholesale — a deterministic, O(1)
    /// amortized eviction that suits the workload (episodes revisit recent
    /// topologies, so a full reset loses little reusable state).
    pub fn with_capacity(capacity: usize) -> ScenarioCache {
        ScenarioCache {
            inner: Mutex::new(CacheInner::default()),
            capacity: capacity.max(1),
        }
    }

    /// The configured entry bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up the memoized NBF outcome for `(fingerprint, bits)`,
    /// bumping the hit/miss counters.
    pub fn lookup(&self, fingerprint: u128, bits: &ScenarioBits) -> Option<ErrorReport> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        // The probe key clones the bitset: for inline scenarios (networks
        // up to 128 fault candidates) that is a stack copy, no allocation.
        match inner.map.get(&(fingerprint, bits.clone())) {
            Some(errors) => {
                let errors = errors.clone();
                inner.hits += 1;
                Some(errors)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Records an NBF outcome. Resets the cache first when full.
    pub fn insert(&self, fingerprint: u128, bits: ScenarioBits, errors: ErrorReport) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.map.len() >= self.capacity {
            inner.map.clear();
        }
        inner.map.insert((fingerprint, bits), errors);
    }

    /// Cumulative hit/miss counters since construction.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        CacheStats { hits: inner.hits, misses: inner.misses }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for ScenarioCache {
    fn default() -> ScenarioCache {
        ScenarioCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nptsn_topo::NodeId;

    fn bits(capacity: usize, indices: &[usize]) -> ScenarioBits {
        let mut b = ScenarioBits::with_capacity(capacity);
        for &i in indices {
            b.insert(i);
        }
        b
    }

    #[test]
    fn inline_and_heap_agree() {
        for capacity in [5, 64, 128, 129, 700] {
            let small = bits(capacity, &[0, 3]);
            let big = bits(capacity, &[0, 3, 4]);
            assert!(small.is_subset_of(&big), "capacity {capacity}");
            assert!(!big.is_subset_of(&small), "capacity {capacity}");
            assert!(small.is_subset_of(&small));
            assert_eq!(big.count(), 3);
            assert_eq!(big.iter().collect::<Vec<_>>(), vec![0, 3, 4]);
            let mut cleared = big.clone();
            cleared.clear();
            assert_eq!(cleared.count(), 0);
            assert!(cleared.is_subset_of(&small), "empty is a subset of all");
        }
    }

    #[test]
    fn boundary_bits_work() {
        let b = bits(129, &[63, 64, 127, 128]);
        assert_eq!(b.count(), 4);
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![63, 64, 127, 128]);
        assert!(bits(129, &[64]).is_subset_of(&b));
        assert!(!bits(129, &[65]).is_subset_of(&b));
    }

    #[test]
    fn memo_buckets_by_order() {
        let mut memo = SupersetMemo::new();
        memo.insert(bits(10, &[1, 2, 3]), 3);
        // A strict subset of a higher-order survivor is covered.
        assert!(memo.covers(&bits(10, &[1, 3]), 2));
        assert!(memo.covers(&bits(10, &[]), 0));
        // A non-subset of the same order is not.
        assert!(!memo.covers(&bits(10, &[1, 4]), 2));
        // Equal order never covers (distinct equal-order sets are never
        // subsets; the scenario itself is not re-checked).
        assert!(!memo.covers(&bits(10, &[1, 2, 3]), 3));
        // Lower-order survivors are ignored for higher-order queries.
        memo.insert(bits(10, &[5]), 1);
        assert!(!memo.covers(&bits(10, &[5, 6]), 2));
        assert!(memo.covers(&bits(10, &[5]), 0) || !memo.covers(&bits(10, &[6]), 0));
    }

    #[test]
    fn cache_hits_after_insert_and_respects_fingerprint() {
        let cache = ScenarioCache::with_capacity(8);
        let key = bits(4, &[1]);
        assert!(cache.lookup(7, &key).is_none());
        let mut errors = ErrorReport::empty();
        errors.record(NodeId::from_dense_index(0), NodeId::from_dense_index(1));
        cache.insert(7, key.clone(), errors.clone());
        assert_eq!(cache.lookup(7, &key), Some(errors));
        // A different topology fingerprint misses: implicit invalidation.
        assert!(cache.lookup(8, &key).is_none());
        let stats = cache.stats();
        assert_eq!(stats, CacheStats { hits: 1, misses: 2 });
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn cache_bound_triggers_reset() {
        let cache = ScenarioCache::with_capacity(2);
        assert_eq!(cache.capacity(), 2);
        for i in 0..3 {
            cache.insert(i as u128, bits(4, &[i]), ErrorReport::empty());
        }
        // The third insert reset the map first: only it remains.
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(2, &bits(4, &[2])).is_some());
        assert!(cache.lookup(0, &bits(4, &[0])).is_none());
        assert!(!cache.is_empty());
    }
}
