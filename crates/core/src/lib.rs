//! NPTSN: RL-based network planning with guaranteed reliability for
//! in-vehicle TSSDN — a reproduction of the DSN 2023 paper by Kong, Nabi
//! and Goossens.
//!
//! Given a graph of possible connections, a component library, the TT flow
//! specifications and a reliability goal `R`, the planner outputs a
//! topology plus a per-switch ASIL allocation such that the run-time
//! recovery mechanism (an arbitrary stateless [`NetworkBehavior`]) can
//! re-establish every flow for every failure scenario of probability ≥ `R`,
//! at minimized network cost.
//!
//! The crate implements the full NPTSN architecture (Fig. 2):
//!
//! * [`FailureAnalyzer`] — the failure-injection check of Algorithm 3 with
//!   the switch-only reduction (Eq. 6), bitset superset memoization
//!   ([`SupersetMemo`]), optional worker-thread fan-out and a shared
//!   NBF-outcome cache ([`ScenarioCache`]) — all verdict-preserving.
//! * [`Soag`] — the Survival-Oriented Action Generator of Algorithm 1:
//!   a dynamic action space of switch upgrades and K shortest-path
//!   additions targeting the last non-recoverable failure, with validity
//!   masks.
//! * [`Observation`] / [`encode_observation`] — the GCN encoding of
//!   Section IV-C (adjacency + switch/link/flow/action feature matrices).
//! * [`PolicyNetwork`] — GCN + actor/critic MLPs (Fig. 3).
//! * [`PlanningEnv`] — the RL environment semantics of Algorithm 2's inner
//!   loop (reward = scaled cost decrease, dead-end penalty, resets).
//! * [`Planner`] — the parallel actor-critic training loop (Algorithm 2)
//!   returning the best solution found plus per-epoch diagnostics.
//! * [`GreedyPlanner`] — an ablation that uses the SOAG actions with a
//!   greedy cost rule instead of the learned policy.
//!
//! # Examples
//!
//! ```
//! use nptsn::{Planner, PlannerConfig, PlanningProblem};
//! use nptsn_sched::{FlowSet, FlowSpec, ShortestPathRecovery, TasConfig};
//! use nptsn_topo::{ComponentLibrary, ConnectionGraph};
//! use std::sync::Arc;
//!
//! // Two end stations, two optional switches, full candidate mesh.
//! let mut gc = ConnectionGraph::new();
//! let a = gc.add_end_station("a");
//! let b = gc.add_end_station("b");
//! let s0 = gc.add_switch("s0");
//! let s1 = gc.add_switch("s1");
//! for (u, v) in [(a, s0), (a, s1), (b, s0), (b, s1), (s0, s1)] {
//!     gc.add_candidate_link(u, v, 1.0).unwrap();
//! }
//! let flows = FlowSet::new(vec![FlowSpec::new(a, b, 500, 128)]).unwrap();
//! let problem = PlanningProblem::new(
//!     Arc::new(gc),
//!     ComponentLibrary::automotive(),
//!     TasConfig::default(),
//!     flows,
//!     1e-6,
//!     Arc::new(ShortestPathRecovery::new()),
//! ).unwrap();
//!
//! let config = PlannerConfig::smoke_test();
//! let report = Planner::new(problem, config).run();
//! let best = report.best.expect("a valid plan exists");
//! assert!(best.cost > 0.0);
//! ```

#![warn(missing_docs)]

mod analyzer;
mod config;
mod encode;
mod env;
mod error;
mod greedy;
mod infer;
mod model;
mod planner;
mod problem;
mod scenario_cache;
mod soag;
mod solution;

pub use analyzer::{AnalysisBudget, AnalysisReport, FailureAnalyzer, NodeScope, Verdict};
pub use config::PlannerConfig;
pub use encode::{encode_observation, Observation};
pub use env::{PlanningEnv, StepOutcome};
pub use error::NptsnError;
pub use greedy::{verify_topology, GreedyPlanner};
pub use infer::{plan_with_policy_batch, InferLane};
pub use model::PolicyNetwork;
pub use planner::{EpochStats, Planner, PlannerReport};
pub use problem::PlanningProblem;
pub use scenario_cache::{CacheStats, ScenarioBits, ScenarioCache, SupersetMemo};
pub use soag::{Action, ActionSet, Soag};
pub use solution::{asil_label, Solution};

// Re-export the recovery trait so downstream code can plug in mechanisms
// without depending on nptsn-sched directly.
pub use nptsn_sched::NetworkBehavior;
