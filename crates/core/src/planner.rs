//! The NPTSN training loop: Algorithm 2 with parallel rollout workers.

use nptsn_nn::{export_params, import_params, Adam, Module};
use nptsn_rl::{ppo_update, sample_action, ActorCritic, Batch, PpoConfig, RolloutBuffer};
use nptsn_rand::rngs::StdRng;
use nptsn_rand::SeedableRng;

use std::sync::Arc;

use crate::analyzer::FailureAnalyzer;
use crate::config::PlannerConfig;
use crate::encode::Observation;
use crate::env::PlanningEnv;
use crate::model::PolicyNetwork;
use crate::problem::PlanningProblem;
use crate::scenario_cache::ScenarioCache;
use crate::solution::{keep_best, Solution};

/// Builds the per-environment failure analyzer a rollout or deployment
/// worker uses: `config.analyzer_workers` threads plus a fresh
/// [`ScenarioCache`] so NBF outcomes are shared across the env's steps and
/// episode resets (construction prefixes recur constantly during training).
pub(crate) fn worker_analyzer(config: &PlannerConfig) -> FailureAnalyzer {
    FailureAnalyzer::new()
        .with_workers(config.analyzer_workers)
        .with_shared_cache(Arc::new(ScenarioCache::new()))
}

/// Per-epoch training diagnostics.
///
/// `mean_episode_return` is the "epoch reward" plotted in Fig. 5: the
/// average sum of (scaled) rewards over the episodes completed during the
/// epoch, which approximates `-cost / reward_scaling` for successful
/// episodes and includes the −1 dead-end penalty otherwise.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Epoch index, starting at 0.
    pub epoch: usize,
    /// Average episode return over the epoch (the Fig. 5 metric).
    pub mean_episode_return: f32,
    /// Episodes completed during the epoch.
    pub episodes: usize,
    /// Verified solutions found during the epoch.
    pub solutions_found: usize,
    /// Best cost discovered so far, if any.
    pub best_cost: Option<f64>,
    /// Final PPO policy loss.
    pub policy_loss: f32,
    /// Final critic loss.
    pub value_loss: f32,
    /// Approximate KL divergence at the last actor step.
    pub approx_kl: f32,
    /// Mean policy entropy.
    pub entropy: f32,
    /// Rollout workers whose episode panicked this epoch. Poisoned workers
    /// contribute no experience; the epoch continues with the rest (see the
    /// error-handling policy in `DESIGN.md`).
    pub poisoned_workers: usize,
    /// Failure scenarios the analyzer checked across this epoch's rollouts.
    /// Bit-identical across analyzer worker/cache configurations (cache
    /// hits count as checked), so it participates in the determinism
    /// guarantees like every other field.
    pub scenarios_checked: u64,
    /// 1 when this epoch's PPO update produced a non-finite loss or
    /// parameter and was rolled back to the pre-update snapshot (both Adam
    /// optimizers reset); 0 for a clean update. The epoch's experience is
    /// discarded, the run continues.
    pub ppo_rollbacks: usize,
}

/// The outcome of a planning run.
#[derive(Debug, Clone)]
pub struct PlannerReport {
    /// The best verified solution across all epochs, if any was found.
    pub best: Option<Solution>,
    /// Per-epoch diagnostics (the reward curves of Fig. 5).
    pub epochs: Vec<EpochStats>,
    /// Checkpoint of the final policy parameters; restore it into a fresh
    /// network from [`Planner::build_policy`] with
    /// [`nptsn_nn::params_from_bytes`].
    pub policy_checkpoint: Vec<u8>,
}

impl PlannerReport {
    /// The per-epoch mean episode returns, ready for plotting.
    pub fn reward_curve(&self) -> Vec<f32> {
        self.epochs.iter().map(|e| e.mean_episode_return).collect()
    }
}

/// The NPTSN planner: trains the RL decision maker on the planning problem
/// and returns the best TSSDN discovered (Algorithm 2).
///
/// Rollouts are collected by `config.workers` threads, each running its own
/// replica of the policy (parameters synchronized at every epoch boundary)
/// and its own environment — the thread-based equivalent of the paper's
/// 8-way MPI parallelization. Gradients are computed once over the merged
/// batch, which equals averaging the per-worker gradient estimators.
pub struct Planner {
    pub(crate) problem: PlanningProblem,
    pub(crate) config: PlannerConfig,
}

impl Planner {
    /// Creates a planner.
    pub fn new(problem: PlanningProblem, config: PlannerConfig) -> Planner {
        Planner { problem, config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// The `(node_count, feature_count, action_count)` dimensions of the
    /// policy network for this problem.
    pub fn network_dims(&self) -> (usize, usize, usize) {
        let gc = self.problem.connection_graph();
        let n = gc.node_count();
        (
            n,
            1 + n + gc.end_stations().len() + self.config.k_paths,
            gc.switches().len() + self.config.k_paths,
        )
    }

    /// Constructs an untrained policy network of the right dimensions;
    /// restore a [`PlannerReport::policy_checkpoint`] into it with
    /// [`nptsn_nn::params_from_bytes`] to reuse a trained decision maker.
    pub fn build_policy(&self) -> PolicyNetwork {
        let (n, f, a) = self.network_dims();
        PolicyNetwork::new(&self.config, n, f, a, self.config.seed)
    }

    /// Runs the full training loop.
    pub fn run(&self) -> PlannerReport {
        self.run_with_progress(|_| {})
    }

    /// Plans with an already-trained policy, no learning: runs `attempts`
    /// episodes selecting the policy's most probable valid action at every
    /// step and returns the cheapest verified solution found.
    ///
    /// This is the deployment path for a restored
    /// [`PlannerReport::policy_checkpoint`] (see
    /// [`Planner::build_policy`]): planning a variant problem, or
    /// re-planning after a specification change, without re-training. The
    /// SOAG still randomizes which error pair it targets, so `attempts`
    /// with different seeds explore different construction orders.
    pub fn plan_with_policy(
        &self,
        policy: &PolicyNetwork,
        attempts: usize,
        seed: u64,
    ) -> Option<Solution> {
        let mut best: Option<Solution> = None;
        for attempt in 0..attempts {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(attempt as u64));
            let mut env = PlanningEnv::with_analyzer(
                self.problem.clone(),
                self.config.k_paths,
                self.config.reward_scaling,
                self.config.max_episode_steps,
                worker_analyzer(&self.config),
                &mut rng,
            );
            loop {
                let mask = env.mask().to_vec();
                if mask.iter().all(|&m| !m) {
                    break;
                }
                let (logps, _) = policy.evaluate(env.observation(), &mask);
                let (action, _) = nptsn_rl::best_action(&logps.to_vec());
                let outcome = env.step(action, &mut rng);
                if let Some(sol) = outcome.solution {
                    keep_best(&mut best, sol);
                }
                if outcome.done {
                    break;
                }
            }
        }
        best
    }

    /// Runs the full training loop, invoking `progress` after every epoch.
    pub fn run_with_progress(&self, mut progress: impl FnMut(&EpochStats)) -> PlannerReport {
        self.run_until(move |stats| {
            progress(stats);
            true
        })
    }

    /// Runs the training loop until completion or until `progress` returns
    /// `false`, which stops training cleanly at the end of that epoch (the
    /// epoch's stats are still recorded and the report carries everything
    /// learned so far, including the policy checkpoint).
    ///
    /// This is the cancellation hook of the serving layer: a `DELETE` on a
    /// running plan job flips a flag the callback observes, and the run
    /// winds down at the next epoch boundary instead of being killed
    /// mid-update.
    pub fn run_until(&self, progress: impl FnMut(&EpochStats) -> bool) -> PlannerReport {
        self.train(None, progress).expect("training without a resume checkpoint cannot fail")
    }

    /// Resumes training from a previously saved policy checkpoint (the
    /// bytes of a [`PlannerReport::policy_checkpoint`] or of the file a
    /// [`PlannerConfig::checkpoint_path`] run wrote): the master policy
    /// starts from the saved parameters instead of a fresh initialization,
    /// then trains exactly like [`Planner::run_until`]. This is the
    /// crash-resume path — a run killed mid-training continues from its
    /// last completed epoch.
    ///
    /// # Errors
    ///
    /// Returns a description of the failure when the checkpoint does not
    /// validate against this problem's policy shape (corrupted, truncated,
    /// or from a different problem/configuration).
    pub fn run_until_resumed(
        &self,
        checkpoint: &[u8],
        progress: impl FnMut(&EpochStats) -> bool,
    ) -> Result<PlannerReport, String> {
        self.train(Some(checkpoint), progress)
    }

    fn train(
        &self,
        resume: Option<&[u8]>,
        mut progress: impl FnMut(&EpochStats) -> bool,
    ) -> Result<PlannerReport, String> {
        let _run_span = nptsn_obs::span("planner.run");
        let (n, feature_count, action_count) = self.network_dims();

        let master =
            PolicyNetwork::new(&self.config, n, feature_count, action_count, self.config.seed);
        if let Some(bytes) = resume {
            nptsn_nn::params_from_bytes(&master.parameters(), bytes)
                .map_err(|e| format!("resume checkpoint: {e}"))?;
            nptsn_obs::telemetry().recovery_checkpoint_resumes.inc();
        }
        let mut actor_opt = Adam::new(master.actor_parameters(), self.config.actor_lr);
        let mut critic_opt = Adam::new(master.critic_parameters(), self.config.critic_lr);
        let ppo = PpoConfig {
            clip_ratio: self.config.clip_ratio,
            gamma: self.config.discount,
            lambda: self.config.gae_lambda,
            train_pi_iters: self.config.train_pi_iters,
            train_v_iters: self.config.train_v_iters,
            target_kl: self.config.target_kl,
        };

        let mut best: Option<Solution> = None;
        let mut epochs = Vec::with_capacity(self.config.max_epochs);

        for epoch in 0..self.config.max_epochs {
            let _epoch_span = nptsn_obs::span("planner.epoch");
            let snapshot = export_params(&master.parameters());
            let workers = self.config.workers.max(1);
            let steps_per_worker = (self.config.steps_per_epoch / workers).max(1);

            // Each worker's rollout runs under `catch_unwind`: a panic in
            // one episode (a poisoned NBF, a malformed scenario) poisons
            // only that worker's share of the epoch, never the run.
            // Rollout threads start bare; install the epoch's trace
            // context so their spans join the same per-job timeline.
            let trace = nptsn_obs::current_trace();
            let results: Vec<Option<WorkerResult>> = std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(workers);
                for worker in 0..workers {
                    let snapshot = &snapshot;
                    let problem = self.problem.clone();
                    let config = &self.config;
                    handles.push(scope.spawn(move || {
                        let _trace = nptsn_obs::with_trace(trace);
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            collect_rollout(
                                problem,
                                config,
                                snapshot,
                                n,
                                feature_count,
                                action_count,
                                steps_per_worker,
                                // Distinct stream per (epoch, worker).
                                config.seed.wrapping_add(
                                    1 + epoch as u64 * workers as u64 + worker as u64,
                                ),
                            )
                        }))
                        .ok();
                        // The scope's implicit join does not wait for TLS
                        // destructors; flush trace buffers explicitly.
                        nptsn_obs::flush_thread();
                        result
                    }));
                }
                // A join error means the panic escaped `catch_unwind`
                // (possible for foreign exceptions): count it as poisoned
                // too instead of propagating.
                handles.into_iter().map(|h| h.join().ok().flatten()).collect()
            });

            let mut batches = Vec::new();
            let mut episode_returns = Vec::new();
            let mut solutions_found = 0;
            let mut poisoned_workers = 0;
            let mut scenarios_checked = 0u64;
            for r in results {
                match r {
                    Some(r) => {
                        batches.push(r.batch);
                        episode_returns.extend(r.episode_returns);
                        solutions_found += r.solutions_found;
                        scenarios_checked += r.scenarios_checked;
                        if let Some(sol) = r.best {
                            keep_best(&mut best, sol);
                        }
                    }
                    None => poisoned_workers += 1,
                }
            }
            let batch = Batch::merge(batches);
            // With every worker poisoned there is no experience to learn
            // from; record the epoch and move on.
            let mut stats = if batch.is_empty() {
                nptsn_rl::PpoStats::default()
            } else {
                let _ppo_span = nptsn_obs::span("planner.ppo_update");
                ppo_update(&master, &mut actor_opt, &mut critic_opt, &batch, &ppo)
            };
            // Chaos site `planner.ppo_update`: a firing rule poisons this
            // epoch's update exactly like a NaN gradient would, so storms
            // exercise the rollback guard below.
            if nptsn_chaos::point("planner.ppo_update").is_err() {
                stats.policy_loss = f32::NAN;
                if let Some(p) = master.parameters().first() {
                    p.set_data(&vec![f32::NAN; p.len()]);
                }
            }

            // Divergence guard: a non-finite loss/KL or a non-finite master
            // parameter means this update cannot be trusted. Roll back to
            // the pre-update snapshot, reset both Adam optimizers (their
            // moments may share the contamination) and carry on — the next
            // epoch draws fresh rollout streams, so training re-seeds
            // instead of dying.
            let update_is_finite = stats.policy_loss.is_finite()
                && stats.value_loss.is_finite()
                && stats.approx_kl.is_finite()
                && master
                    .parameters()
                    .iter()
                    .all(|p| p.data().iter().all(|v| v.is_finite()));
            let ppo_rollbacks = if update_is_finite {
                0
            } else {
                import_params(&master.parameters(), &snapshot);
                actor_opt = Adam::new(master.actor_parameters(), self.config.actor_lr);
                critic_opt = Adam::new(master.critic_parameters(), self.config.critic_lr);
                stats = nptsn_rl::PpoStats::default();
                if nptsn_obs::enabled() {
                    nptsn_obs::event(
                        nptsn_obs::Level::Error,
                        "planner.rollback",
                        &format!("epoch {epoch}: non-finite PPO update rolled back"),
                    );
                }
                1
            };

            let mean_return = if episode_returns.is_empty() {
                0.0
            } else {
                episode_returns.iter().sum::<f32>() / episode_returns.len() as f32
            };
            let epoch_stats = EpochStats {
                epoch,
                mean_episode_return: mean_return,
                episodes: episode_returns.len(),
                solutions_found,
                best_cost: best.as_ref().map(|s| s.cost),
                policy_loss: stats.policy_loss,
                value_loss: stats.value_loss,
                approx_kl: stats.approx_kl,
                entropy: stats.entropy,
                poisoned_workers,
                scenarios_checked,
                ppo_rollbacks,
            };
            let telemetry = nptsn_obs::telemetry();
            telemetry.planner_epochs.inc();
            telemetry.planner_solutions.add(solutions_found as u64);
            telemetry.planner_poisoned_workers.add(poisoned_workers as u64);
            telemetry.recovery_ppo_rollbacks.add(ppo_rollbacks as u64);
            // Periodic crash checkpoint: after this epoch's (possibly
            // rolled-back) update the master parameters are exactly what
            // the final report would carry if the run stopped now, so the
            // file always restores to a state the run actually reached.
            if let Some(path) = &self.config.checkpoint_path {
                if let Err(e) = nptsn_nn::save_params_atomic(&master.parameters(), path) {
                    if nptsn_obs::enabled() {
                        nptsn_obs::event(
                            nptsn_obs::Level::Error,
                            "planner.checkpoint",
                            &format!("epoch {epoch}: periodic checkpoint failed: {e}"),
                        );
                    }
                }
            }
            if nptsn_obs::enabled() {
                nptsn_obs::event(
                    nptsn_obs::Level::Info,
                    "planner.epoch",
                    &format!(
                        "epoch {epoch}: return {mean_return:.3}, {} episodes, \
                         {solutions_found} solutions, {scenarios_checked} scenarios",
                        episode_returns.len()
                    ),
                );
            }
            let keep_going = progress(&epoch_stats);
            epochs.push(epoch_stats);
            if !keep_going {
                break;
            }
        }

        let policy_checkpoint = nptsn_nn::params_to_bytes(&master.parameters());
        Ok(PlannerReport { best, epochs, policy_checkpoint })
    }
}

struct WorkerResult {
    batch: Batch<Observation>,
    episode_returns: Vec<f32>,
    solutions_found: usize,
    best: Option<Solution>,
    scenarios_checked: u64,
}

/// Collects `steps` environment steps with a frozen policy replica
/// (Algorithm 2 lines 3–18, one worker's share).
#[allow(clippy::too_many_arguments)]
fn collect_rollout(
    problem: PlanningProblem,
    config: &PlannerConfig,
    snapshot: &[Vec<f32>],
    n: usize,
    feature_count: usize,
    action_count: usize,
    steps: usize,
    seed: u64,
) -> WorkerResult {
    let _rollout_span = nptsn_obs::span("planner.rollout");
    // Chaos site `planner.rollout`: the worker runs under `catch_unwind`,
    // so both `panic` and `error` rules surface the same way a buggy NBF
    // would — this worker poisoned, the epoch continuing without it.
    if let Err(e) = nptsn_chaos::point("planner.rollout") {
        panic!("{e}");
    }
    // Same seed as the master so shapes match; values overwritten.
    let net = PolicyNetwork::new(config, n, feature_count, action_count, config.seed);
    import_params(&net.parameters(), snapshot);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut env = PlanningEnv::with_analyzer(
        problem,
        config.k_paths,
        config.reward_scaling,
        config.max_episode_steps,
        worker_analyzer(config),
        &mut rng,
    );
    let mut buffer = RolloutBuffer::new(config.discount, config.gae_lambda);
    let mut episode_returns = Vec::new();
    let mut episode_return = 0.0f32;
    let mut solutions_found = 0;
    let mut best: Option<Solution> = None;

    for step in 0..steps {
        let obs = env.observation().clone();
        let mask = env.mask().to_vec();
        let (logps, value) = net.evaluate(&obs, &mask);
        let (action, logp) = sample_action(&logps.to_vec(), &mut rng);
        let outcome = env.step(action, &mut rng);
        buffer.store(obs, action, mask, outcome.reward, value.item(), logp);
        episode_return += outcome.reward;

        if let Some(sol) = outcome.solution {
            solutions_found += 1;
            keep_best(&mut best, sol);
        }
        if outcome.done {
            // Truncated episodes bootstrap with the critic's estimate of
            // the successor state; terminal ones close at zero.
            let boot = if outcome.truncated {
                let (_, v) = net.evaluate(env.observation(), env.mask());
                v.item()
            } else {
                0.0
            };
            buffer.finish_path(boot);
            episode_returns.push(episode_return);
            episode_return = 0.0;
            env.reset(&mut rng);
        } else if step + 1 == steps {
            // Epoch cut mid-episode: bootstrap.
            let (_, v) = net.evaluate(env.observation(), env.mask());
            buffer.finish_path(v.item());
        }
    }

    WorkerResult {
        batch: buffer.drain(),
        episode_returns,
        solutions_found,
        best,
        scenarios_checked: env.scenarios_checked(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nptsn_sched::{FlowSet, FlowSpec, ShortestPathRecovery, TasConfig};
    use nptsn_topo::{ComponentLibrary, ConnectionGraph};
    use std::sync::Arc;

    fn theta_problem() -> PlanningProblem {
        let mut gc = ConnectionGraph::new();
        let a = gc.add_end_station("a");
        let b = gc.add_end_station("b");
        let s0 = gc.add_switch("s0");
        let s1 = gc.add_switch("s1");
        for (u, v) in [(a, s0), (s0, b), (a, s1), (s1, b), (s0, s1)] {
            gc.add_candidate_link(u, v, 1.0).unwrap();
        }
        let flows = FlowSet::new(vec![FlowSpec::new(a, b, 500, 128)]).unwrap();
        PlanningProblem::new(
            Arc::new(gc),
            ComponentLibrary::automotive(),
            TasConfig::default(),
            flows,
            1e-6,
            Arc::new(ShortestPathRecovery::new()),
        )
        .unwrap()
    }

    #[test]
    fn worker_analyzer_reflects_config() {
        let cfg = PlannerConfig { analyzer_workers: 3, ..PlannerConfig::smoke_test() };
        let analyzer = worker_analyzer(&cfg);
        assert_eq!(analyzer.workers(), 3);
        assert!(analyzer.cache().is_some(), "rollout envs memoize NBF outcomes");
    }

    #[test]
    fn analyzer_workers_do_not_change_training_results() {
        // The parallel analyzer is verdict-identical, so the whole training
        // run — every sampled action, reward and checkpoint byte — must be
        // unchanged by the analyzer thread count.
        let base = PlannerConfig { workers: 2, max_epochs: 2, ..PlannerConfig::smoke_test() };
        let seq = Planner::new(theta_problem(), base.clone()).run();
        let par = Planner::new(
            theta_problem(),
            PlannerConfig { analyzer_workers: 4, ..base },
        )
        .run();
        assert_eq!(seq.reward_curve(), par.reward_curve());
        assert_eq!(seq.epochs, par.epochs);
        assert_eq!(seq.policy_checkpoint, par.policy_checkpoint);
        assert_eq!(
            seq.best.as_ref().map(|s| &s.topology),
            par.best.as_ref().map(|s| &s.topology)
        );
    }

    #[test]
    fn smoke_training_finds_a_valid_plan() {
        let planner = Planner::new(theta_problem(), PlannerConfig::smoke_test());
        let mut calls = 0;
        let report = planner.run_with_progress(|s| {
            calls += 1;
            assert!(s.episodes > 0, "every epoch should complete episodes");
        });
        assert_eq!(calls, report.epochs.len());
        assert_eq!(report.epochs.len(), PlannerConfig::smoke_test().max_epochs);
        let best = report.best.expect("the theta graph has reliable plans");
        // Valid plans range from the cheapest (two ASIL-A switches + 4
        // links = 20) to a single ASIL-D switch (27 + 2x8 = 43) and
        // costlier mixtures.
        assert!(best.cost >= 20.0, "cost {}", best.cost);
        assert!(best.cost <= 80.0, "smoke training should avoid absurd plans: {best}");
        // And it verifies.
        let analyzer = crate::analyzer::FailureAnalyzer::new();
        assert!(analyzer.analyze(&planner.problem, &best.topology).is_reliable());
    }

    #[test]
    fn run_until_stops_at_the_epoch_boundary() {
        let planner = Planner::new(theta_problem(), PlannerConfig::smoke_test());
        // Cancel after the second epoch: exactly two epochs are recorded
        // and the checkpoint still restores into a fresh network.
        let report = planner.run_until(|stats| stats.epoch < 1);
        assert_eq!(report.epochs.len(), 2);
        assert_eq!(report.epochs[1].epoch, 1);
        let policy = planner.build_policy();
        nptsn_nn::params_from_bytes(
            &nptsn_nn::Module::parameters(&policy),
            &report.policy_checkpoint,
        )
        .unwrap();
        // An always-continue run_until matches run_with_progress exactly.
        let full = planner.run_until(|_| true);
        let reference = planner.run();
        assert_eq!(full.reward_curve(), reference.reward_curve());
        assert_eq!(full.policy_checkpoint, reference.policy_checkpoint);
    }

    #[test]
    fn reward_curve_has_one_point_per_epoch() {
        let planner = Planner::new(theta_problem(), PlannerConfig::smoke_test());
        let report = planner.run();
        assert_eq!(report.reward_curve().len(), report.epochs.len());
        // Returns land in the documented range: roughly [-1.15, 0).
        for r in report.reward_curve() {
            assert!(r < 0.0 && r > -2.0, "epoch return {r} out of range");
        }
    }

    #[test]
    fn trained_policy_plans_deterministically_without_learning() {
        let planner = Planner::new(theta_problem(), PlannerConfig::smoke_test());
        let report = planner.run();
        let trained_best = report.best.as_ref().expect("training found a plan").cost;
        // Restore the policy and deploy it greedily.
        let policy = planner.build_policy();
        nptsn_nn::params_from_bytes(
            &nptsn_nn::Module::parameters(&policy),
            &report.policy_checkpoint,
        )
        .unwrap();
        let deployed = planner
            .plan_with_policy(&policy, 4, 123)
            .expect("a trained policy should reconstruct a plan");
        assert!(
            crate::analyzer::FailureAnalyzer::new()
                .analyze(&planner.problem, &deployed.topology)
                .is_reliable()
        );
        // Deployment should be in the same cost ballpark as training's best
        // (identical is not guaranteed: argmax vs sampled exploration).
        assert!(deployed.cost <= trained_best * 3.0, "{} vs {}", deployed.cost, trained_best);
    }

    #[test]
    fn checkpoint_restores_the_trained_policy() {
        let planner = Planner::new(theta_problem(), PlannerConfig::smoke_test());
        let report = planner.run();
        assert!(!report.policy_checkpoint.is_empty());
        // Restore into a fresh network and compare behavior on a fixed
        // observation.
        let restored = planner.build_policy();
        nptsn_nn::params_from_bytes(
            &nptsn_nn::Module::parameters(&restored),
            &report.policy_checkpoint,
        )
        .unwrap();
        // A second restore into another fresh network must agree exactly.
        let twin = planner.build_policy();
        nptsn_nn::params_from_bytes(
            &nptsn_nn::Module::parameters(&twin),
            &report.policy_checkpoint,
        )
        .unwrap();
        use nptsn_rl::ActorCritic;
        let mut rng = nptsn_rand::rngs::StdRng::seed_from_u64(0);
        let env = crate::env::PlanningEnv::new(planner.problem.clone(), 4, 1e3, 64, &mut rng);
        let mask = env.mask().to_vec();
        let (a, va) = restored.evaluate(env.observation(), &mask);
        let (b, vb) = twin.evaluate(env.observation(), &mask);
        assert_eq!(a.to_vec(), b.to_vec());
        assert_eq!(va.item(), vb.item());
    }

    #[test]
    fn deterministic_given_a_seed() {
        let cfg = PlannerConfig { workers: 2, ..PlannerConfig::smoke_test() };
        let a = Planner::new(theta_problem(), cfg.clone()).run();
        let b = Planner::new(theta_problem(), cfg).run();
        assert_eq!(a.reward_curve(), b.reward_curve());
        assert_eq!(a.epochs, b.epochs);
        assert_eq!(
            a.best.as_ref().map(|s| s.cost),
            b.best.as_ref().map(|s| s.cost)
        );
        // Structural equality of the planned networks, not just cost.
        assert_eq!(
            a.best.as_ref().map(|s| &s.topology),
            b.best.as_ref().map(|s| &s.topology)
        );
        assert_eq!(a.policy_checkpoint, b.policy_checkpoint);
    }

    #[test]
    fn panicking_episodes_poison_workers_not_the_run() {
        // An NBF that panics on every invocation — a stand-in for a buggy
        // controller plug-in (the NBF is an externally supplied black box).
        struct PanickingNbf;
        impl nptsn_sched::NetworkBehavior for PanickingNbf {
            fn recover(
                &self,
                _: &nptsn_topo::Topology,
                _: &nptsn_topo::FailureScenario,
                _: &TasConfig,
                _: &FlowSet,
            ) -> nptsn_sched::RecoveryOutcome {
                panic!("injected NBF fault");
            }
            fn name(&self) -> &str {
                "panicking"
            }
        }

        let base = theta_problem();
        let problem = PlanningProblem::new(
            base.connection_graph_arc(),
            base.library().clone(),
            *base.tas(),
            base.flows().clone(),
            1e-6,
            Arc::new(PanickingNbf),
        )
        .unwrap();
        let cfg =
            PlannerConfig { workers: 2, max_epochs: 2, ..PlannerConfig::smoke_test() };
        let report = Planner::new(problem, cfg.clone()).run();
        // The run completes every epoch instead of aborting the process;
        // each poisoned worker is accounted for and no plan is reported.
        assert_eq!(report.epochs.len(), cfg.max_epochs);
        for epoch in &report.epochs {
            assert_eq!(epoch.poisoned_workers, cfg.workers);
            assert_eq!(epoch.episodes, 0);
        }
        assert!(report.best.is_none());
    }
}
