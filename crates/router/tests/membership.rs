//! End-to-end elastic membership: a restarted shard rejoins a live
//! fleet, a new shard joins it, and replication promotes passive copies
//! on a death — in every case without losing an acked job.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use nptsn_router::{Router, RouterConfig, ShardSpec};
use nptsn_serve::client::Client;
use nptsn_serve::{ServeConfig, Server};

fn temp_dir(test: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("nptsn-router-mem-{}-{test}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn shard(dir: &Path, name: &str) -> Server {
    Server::bind(ServeConfig {
        workers: 1,
        data_dir: Some(dir.to_string_lossy().into_owned()),
        shard_name: Some(name.to_string()),
        ..ServeConfig::default()
    })
    .expect("bind shard")
}

fn fleet_router(shards: Vec<ShardSpec>, replication_factor: u32) -> Router {
    Router::bind(RouterConfig {
        shards,
        replication_factor,
        health_interval_ms: 20,
        health_failures: 2,
        forward_deadline_ms: 1_000,
        ..RouterConfig::default()
    })
    .expect("bind router")
}

/// Polls `f` until it returns `Some`, panicking after `secs` seconds.
fn poll<T>(secs: u64, what: &str, mut f: impl FnMut() -> Option<T>) -> T {
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        if let Some(v) = f() {
            return v;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn json_id(body: &str) -> u64 {
    let start = body.find("\"id\":").expect("id field") + 5;
    body[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

fn submit_burns(client: &mut Client, n: usize) -> Vec<u64> {
    (0..n)
        .map(|_| {
            let accepted = client.post("/jobs/burn?millis=1", &[]).unwrap();
            assert_eq!(accepted.status, 202, "{}", accepted.text());
            json_id(&accepted.text())
        })
        .collect()
}

fn wait_done(client: &mut Client, ids: &[u64]) -> Vec<String> {
    ids.iter()
        .map(|&id| {
            poll(15, "job to finish", || {
                let status = client.get(&format!("/jobs/{id}")).ok()?;
                let body = status.text();
                body.contains("\"state\":\"done\"").then_some(body)
            })
        })
        .collect()
}

#[test]
fn a_restarted_shard_rejoins_and_catches_up() {
    let a_dir = temp_dir("rejoin-a");
    let b_dir = temp_dir("rejoin-b");
    let a = shard(&a_dir, "s0");
    let b = shard(&b_dir, "s1");
    let router = fleet_router(
        vec![
            ShardSpec {
                name: "s0".to_string(),
                addr: a.local_addr(),
                data_dir: Some(a_dir.clone()),
            },
            ShardSpec {
                name: "s1".to_string(),
                addr: b.local_addr(),
                data_dir: Some(b_dir.clone()),
            },
        ],
        1,
    );
    let mut client = Client::new(router.local_addr());
    let rejoins_before = nptsn_obs::telemetry().router_rejoins.get();
    let migrated_before = nptsn_obs::telemetry().router_migrated_jobs.get();

    // Phase 1: a healthy fleet accepts and finishes a batch.
    let first = submit_burns(&mut client, 16);
    let first_bodies = wait_done(&mut client, &first);

    // Phase 2: s0 goes away; the router declares it dead and replays.
    a.stop();
    a.wait();
    poll(15, "the router to declare s0 dead", || {
        let health = client.get("/healthz").ok()?;
        health.text().contains("\"live_shards\":1").then_some(())
    });

    // Phase 3: the degraded fleet keeps accepting; these are the records
    // the rejoiner will have missed.
    let second = submit_burns(&mut client, 16);
    wait_done(&mut client, &second);

    // Phase 4: restart s0 on the same data dir. The OS hands the new
    // process a different port, so it must be re-announced.
    let a2 = shard(&a_dir, "s0");
    let announce = format!(
        "{{\"name\":\"s0\",\"addr\":\"{}\",\"data_dir\":\"{}\"}}",
        a2.local_addr(),
        a_dir.to_string_lossy()
    );
    let rejoined = poll(15, "the re-announcement to be accepted", || {
        let response = client.post("/admin/shards", announce.as_bytes()).ok()?;
        (response.status == 200).then(|| response.text())
    });
    assert!(rejoined.contains("\"status\":\"rejoined\""), "{rejoined}");
    poll(15, "the fleet to be whole again", || {
        let health = client.get("/healthz").ok()?;
        health.text().contains("\"live_shards\":2").then_some(())
    });
    // init(1) → death(2) → rejoin(3).
    assert!(router.ring_generation() >= 3, "generation {}", router.ring_generation());
    assert!(nptsn_obs::telemetry().router_rejoins.get() > rejoins_before);
    // The rejoiner owns some of the while-dead batch, so the synchronous
    // catch-up must have actually moved records.
    assert!(nptsn_obs::telemetry().router_migrated_jobs.get() > migrated_before);

    // Every job from before the death still serves byte-identically, and
    // every while-dead job serves from wherever it now lives.
    for (&id, expected) in first.iter().zip(&first_bodies) {
        poll(15, "a pre-death job to serve", || {
            let status = client.get(&format!("/jobs/{id}")).ok()?;
            (status.status == 200 && status.text() == *expected).then_some(())
        });
    }
    for &id in &second {
        poll(15, "a while-dead job to serve", || {
            let status = client.get(&format!("/jobs/{id}")).ok()?;
            (status.status == 200 && status.text().contains("\"state\":\"done\""))
                .then_some(())
        });
    }
    // And the whole fleet keeps taking work.
    let third = submit_burns(&mut client, 4);
    wait_done(&mut client, &third);

    router.stop();
    a2.stop();
    a2.wait();
    b.stop();
    b.wait();
}

#[test]
fn a_new_shard_joins_a_running_fleet_and_drains_its_share() {
    let a_dir = temp_dir("join-a");
    let a = shard(&a_dir, "s0");
    let router = fleet_router(
        vec![ShardSpec {
            name: "s0".to_string(),
            addr: a.local_addr(),
            data_dir: Some(a_dir.clone()),
        }],
        1,
    );
    let mut client = Client::new(router.local_addr());

    let ids = submit_burns(&mut client, 16);
    let bodies = wait_done(&mut client, &ids);

    // Scale out: a brand-new shard with an empty store joins live.
    let b_dir = temp_dir("join-b");
    let b = shard(&b_dir, "s1");
    let announce = format!(
        "{{\"name\":\"s1\",\"addr\":\"{}\",\"data_dir\":\"{}\"}}",
        b.local_addr(),
        b_dir.to_string_lossy()
    );
    let joined = poll(15, "the join to be accepted", || {
        let response = client.post("/admin/shards", announce.as_bytes()).ok()?;
        (response.status == 200).then(|| response.text())
    });
    assert!(joined.contains("\"status\":\"joined\""), "{joined}");
    assert!(router.ring_generation() >= 2);

    // The ring must actually hand the newcomer a share of the old batch
    // (deterministic placement — this cannot flake), and each of those
    // records must migrate over and serve byte-identically through the
    // router, which now routes them to s1.
    let ring = router.ring();
    let stolen = ids.iter().filter(|&&id| ring.place(id) == Some("s1")).count();
    assert!(stolen > 0, "the newcomer stole no keys from a 16-job batch");
    for (&id, expected) in ids.iter().zip(&bodies) {
        poll(15, "a migrated job to serve", || {
            let status = client.get(&format!("/jobs/{id}")).ok()?;
            (status.status == 200 && status.text() == *expected).then_some(())
        });
    }
    // New submissions land on both shards.
    let fresh = submit_burns(&mut client, 8);
    wait_done(&mut client, &fresh);

    router.stop();
    a.stop();
    a.wait();
    b.stop();
    b.wait();
}

#[test]
fn replication_promotes_passive_copies_when_the_primary_dies() {
    let a_dir = temp_dir("rf2-a");
    let b_dir = temp_dir("rf2-b");
    let a = shard(&a_dir, "s0");
    let b = shard(&b_dir, "s1");
    let router = fleet_router(
        vec![
            ShardSpec {
                name: "s0".to_string(),
                addr: a.local_addr(),
                data_dir: Some(a_dir.clone()),
            },
            ShardSpec {
                name: "s1".to_string(),
                addr: b.local_addr(),
                data_dir: Some(b_dir.clone()),
            },
        ],
        2,
    );
    let mut client = Client::new(router.local_addr());
    let promotions_before = nptsn_obs::telemetry().router_replica_promotions.get();

    let ids = submit_burns(&mut client, 16);
    wait_done(&mut client, &ids);
    // With two shards, every submission's successor is the other shard,
    // so each shard holds a passive copy of the other's batch.
    let ring = router.ring();
    let on_s0 = ids.iter().filter(|&&id| ring.place(id) == Some("s0")).count();
    assert!(on_s0 > 0, "no sampled job landed on s0");

    a.stop();
    a.wait();
    poll(15, "the router to declare s0 dead", || {
        let health = client.get("/healthz").ok()?;
        health.text().contains("\"live_shards\":1").then_some(())
    });

    // The survivor promoted its passive copies; every acked job reaches a
    // terminal state through the router with zero loss. (Promoted
    // non-terminal copies re-run — burn results are deterministic.)
    for &id in &ids {
        poll(15, "a promoted job to serve", || {
            let status = client.get(&format!("/jobs/{id}")).ok()?;
            (status.status == 200 && status.text().contains("\"state\":\"done\""))
                .then_some(())
        });
    }
    assert!(
        nptsn_obs::telemetry().router_replica_promotions.get() >= promotions_before + on_s0 as u64,
        "expected at least {on_s0} promotions"
    );

    router.stop();
    b.stop();
    b.wait();
}
