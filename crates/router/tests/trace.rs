//! End-to-end fleet observability: the router mints one trace id per
//! job, the owning shard's spans adopt it, the merged timeline shows
//! both processes on their own rows, and a dead shard's timeline
//! survives replay onto the survivor.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use nptsn_obs::json::{self, Value};
use nptsn_router::{trace_for_job, Router, RouterConfig, ShardSpec};
use nptsn_serve::client::Client;
use nptsn_serve::{ServeConfig, Server};

fn temp_dir(test: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("nptsn-router-tr-{}-{test}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn shard(dir: &Path, name: &str) -> Server {
    Server::bind(ServeConfig {
        workers: 1,
        data_dir: Some(dir.to_string_lossy().into_owned()),
        shard_name: Some(name.to_string()),
        ..ServeConfig::default()
    })
    .expect("bind shard")
}

fn fleet_router(shards: Vec<ShardSpec>) -> Router {
    Router::bind(RouterConfig {
        shards,
        health_interval_ms: 20,
        health_failures: 2,
        forward_deadline_ms: 1_000,
        ..RouterConfig::default()
    })
    .expect("bind router")
}

/// Polls `f` until it returns `Some`, panicking after `secs` seconds.
fn poll<T>(secs: u64, what: &str, mut f: impl FnMut() -> Option<T>) -> T {
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        if let Some(v) = f() {
            return v;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn json_id(body: &str) -> u64 {
    let start = body.find("\"id\":").expect("id field") + 5;
    body[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

/// The `pid → process name` pairs from a merged trace's metadata events.
fn process_names(doc: &Value) -> Vec<(f64, String)> {
    doc.get("traceEvents")
        .and_then(Value::as_arr)
        .map(|events| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(Value::as_str) == Some("M"))
                .filter_map(|e| {
                    let pid = e.get("pid").and_then(Value::as_num)?;
                    let name = e
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Value::as_str)?
                        .to_string();
                    Some((pid, name))
                })
                .collect()
        })
        .unwrap_or_default()
}

/// The `"X"` span events of a merged trace as (pid, name, trace) tuples.
fn spans_of(doc: &Value) -> Vec<(f64, String, String)> {
    doc.get("traceEvents")
        .and_then(Value::as_arr)
        .map(|events| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
                .map(|e| {
                    (
                        e.get("pid").and_then(Value::as_num).unwrap_or(0.0),
                        e.get("name").and_then(Value::as_str).unwrap_or("").to_string(),
                        e.get("args")
                            .and_then(|a| a.get("trace"))
                            .and_then(Value::as_str)
                            .unwrap_or("")
                            .to_string(),
                    )
                })
                .collect()
        })
        .unwrap_or_default()
}

#[test]
fn a_routed_job_s_spans_share_the_router_minted_trace_id() {
    let a_dir = temp_dir("mint-a");
    let b_dir = temp_dir("mint-b");
    let a = shard(&a_dir, "s0");
    let b = shard(&b_dir, "s1");
    let router = fleet_router(vec![
        ShardSpec { name: "s0".to_string(), addr: a.local_addr(), data_dir: Some(a_dir.clone()) },
        ShardSpec { name: "s1".to_string(), addr: b.local_addr(), data_dir: Some(b_dir.clone()) },
    ]);
    let mut client = Client::new(router.local_addr());

    let accepted = client.post("/jobs/burn?millis=1", &[]).unwrap();
    assert_eq!(accepted.status, 202, "{}", accepted.text());
    let id = json_id(&accepted.text());
    poll(10, "the job to finish", || {
        let status = client.get(&format!("/jobs/{id}")).ok()?;
        status.text().contains("\"state\":\"done\"").then_some(())
    });
    let hex = format!("{:032x}", trace_for_job(id).trace_id);

    // The owning shard's persisted fragment carries the router-minted
    // trace id — the header crossed the process boundary and the worker
    // thread recorded its spans under it.
    let ring = router.ring();
    let owner = ring.place(id).expect("placement");
    let mut direct = Client::new(if owner == "s0" { a.local_addr() } else { b.local_addr() });
    let fragment = poll(10, "the shard to persist the timeline", || {
        let status = direct.get(&format!("/jobs/{id}/trace")).ok()?;
        let body = status.text();
        body.contains("job.run").then_some(body)
    });
    assert!(fragment.contains(&format!("\"trace\":\"{hex}\"")), "{fragment}");
    assert!(fragment.contains(&format!("\"shard\":\"{owner}\"")), "{fragment}");

    // The merged document names every fleet member and holds spans from
    // both processes — router and shard — under the one trace id.
    let merged = poll(10, "the merged trace", || {
        let status = client.get(&format!("/jobs/{id}/trace")).ok()?;
        let body = status.text();
        (status.status == 200 && body.contains("job.run") && body.contains("router.forward"))
            .then_some(body)
    });
    let doc = json::parse(&merged).expect("merged trace parses");
    let names = process_names(&doc);
    for name in ["router", "s0", "s1"] {
        assert!(names.iter().any(|(_, n)| n == name), "{merged}");
    }
    let router_pid = names.iter().find(|(_, n)| n == "router").unwrap().0;
    let owner_pid = names.iter().find(|(_, n)| n == owner).unwrap().0;
    let spans = spans_of(&doc);
    assert!(
        spans.iter().any(|(pid, name, trace)| *pid == router_pid
            && name == "router.forward"
            && trace == &hex),
        "{merged}"
    );
    assert!(
        spans
            .iter()
            .any(|(pid, name, trace)| *pid == owner_pid && name == "job.run" && trace == &hex),
        "{merged}"
    );

    // An id nobody has ever seen merges to nothing.
    let missing = client.get("/jobs/999983/trace").unwrap();
    assert_eq!(missing.status, 404, "{}", missing.text());

    router.stop();
    a.stop();
    a.wait();
    b.stop();
    b.wait();
}

#[test]
fn the_router_federates_shard_metrics_and_serves_its_flight_ring() {
    let a_dir = temp_dir("fed-a");
    let b_dir = temp_dir("fed-b");
    let a = shard(&a_dir, "s0");
    let b = shard(&b_dir, "s1");
    let router = fleet_router(vec![
        ShardSpec { name: "s0".to_string(), addr: a.local_addr(), data_dir: Some(a_dir.clone()) },
        ShardSpec { name: "s1".to_string(), addr: b.local_addr(), data_dir: Some(b_dir.clone()) },
    ]);
    let mut client = Client::new(router.local_addr());

    let accepted = client.post("/jobs/burn?millis=1", &[]).unwrap();
    assert_eq!(accepted.status, 202, "{}", accepted.text());
    let id = json_id(&accepted.text());
    poll(10, "the job to finish", || {
        let status = client.get(&format!("/jobs/{id}")).ok()?;
        status.text().contains("\"state\":\"done\"").then_some(())
    });

    // Both shards are scraped and re-labeled; the fleet alias sums the
    // shard-side submission counters; the router's own histograms render.
    let metrics = poll(10, "a federated scrape", || {
        let response = client.get("/metrics").ok()?;
        let text = response.text();
        (text.contains("shard=\"s0\"") && text.contains("shard=\"s1\"")).then_some(text)
    });
    assert!(metrics.contains("nptsn_fleet_jobs_total"), "{metrics}");
    assert!(metrics.contains("nptsn_router_forward_duration_seconds_bucket"), "{metrics}");
    assert!(metrics.contains("nptsn_router_replay_duration_seconds"), "{metrics}");

    // The always-on flight ring answers with structure: a capacity and
    // recorded entries (the forwards above at minimum).
    let flight = client.get("/debug/flight").unwrap();
    assert_eq!(flight.status, 200, "{}", flight.text());
    let doc = json::parse(&flight.text()).expect("flight json parses");
    assert!(doc.get("capacity").and_then(Value::as_num).unwrap_or(0.0) >= 1.0);
    assert!(
        !doc.get("entries").and_then(Value::as_arr).expect("entries array").is_empty(),
        "flight ring recorded nothing"
    );

    router.stop();
    a.stop();
    a.wait();
    b.stop();
    b.wait();
}

#[test]
fn a_dead_shard_s_timeline_survives_in_the_merged_trace() {
    let a_dir = temp_dir("dead-a");
    let b_dir = temp_dir("dead-b");
    let a = shard(&a_dir, "s0");
    let b = shard(&b_dir, "s1");
    let router = fleet_router(vec![
        ShardSpec { name: "s0".to_string(), addr: a.local_addr(), data_dir: Some(a_dir.clone()) },
        ShardSpec { name: "s1".to_string(), addr: b.local_addr(), data_dir: Some(b_dir.clone()) },
    ]);
    let mut client = Client::new(router.local_addr());

    let ids: Vec<u64> = (0..16)
        .map(|_| {
            let accepted = client.post("/jobs/burn?millis=1", &[]).unwrap();
            assert_eq!(accepted.status, 202, "{}", accepted.text());
            json_id(&accepted.text())
        })
        .collect();
    let ring = router.ring();
    let victim =
        *ids.iter().find(|&&id| ring.place(id) == Some("s0")).expect("a job placed on s0");
    for &id in &ids {
        poll(10, "a job to finish", || {
            let status = client.get(&format!("/jobs/{id}")).ok()?;
            status.text().contains("\"state\":\"done\"").then_some(())
        });
    }
    // The victim's timeline must be in s0's durable log before the loss.
    // Ask the shard directly: in this in-process fleet all three
    // "processes" share one flight ring, so the router's merged view
    // shows job.run spans on its own row and cannot witness persistence.
    let mut direct_a = Client::new(a.local_addr());
    poll(10, "s0 to persist the victim's timeline", || {
        let status = direct_a.get(&format!("/jobs/{victim}/trace")).ok()?;
        status.text().contains("job.run").then_some(())
    });

    a.stop();
    a.wait();
    poll(15, "the router to declare s0 dead", || {
        let health = client.get("/healthz").ok()?;
        health.text().contains("\"live_shards\":1").then_some(())
    });

    // Replay carries the trace record to the survivor, still naming the
    // shard that recorded it.
    let mut direct_b = Client::new(b.local_addr());
    poll(15, "the survivor to ingest the replayed timeline", || {
        let status = direct_b.get(&format!("/jobs/{victim}/trace")).ok()?;
        let body = status.text();
        (body.contains("\"shard\":\"s0\"") && body.contains("job.run")).then_some(())
    });

    // The merged timeline still attributes the spans to the dead shard,
    // under the job's original trace id.
    let hex = format!("{:032x}", trace_for_job(victim).trace_id);
    let merged = {
        let response = client.get(&format!("/jobs/{victim}/trace")).unwrap();
        assert_eq!(response.status, 200, "{}", response.text());
        response.text()
    };
    let doc = json::parse(&merged).expect("merged trace parses");
    let names = process_names(&doc);
    let s0_pid = names.iter().find(|(_, n)| n == "s0").expect("s0 process row").0;
    let spans = spans_of(&doc);
    assert!(
        spans
            .iter()
            .any(|(pid, name, trace)| *pid == s0_pid && name == "job.run" && trace == &hex),
        "{merged}"
    );

    router.stop();
    b.stop();
    b.wait();
}
