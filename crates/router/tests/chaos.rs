//! Router chaos: a faulted shard scrape degrades the federation, never
//! the exposition. Separate test binary: an armed
//! [`nptsn_chaos::FaultPlan`] is process-global, and cargo runs test
//! binaries sequentially, so the plan cannot leak into the clean
//! failover and trace tests.

use nptsn_chaos::{arm_scoped, FaultKind, FaultPlan, SiteRule};
use nptsn_router::{Router, RouterConfig, ShardSpec};
use nptsn_serve::client::Client;
use nptsn_serve::{ServeConfig, Server};

fn shard(name: &str) -> Server {
    Server::bind(ServeConfig {
        workers: 1,
        shard_name: Some(name.to_string()),
        ..ServeConfig::default()
    })
    .expect("bind shard")
}

#[test]
fn a_faulted_scrape_degrades_the_federation_never_the_exposition() {
    let a = shard("s0");
    let b = shard("s1");
    let router = Router::bind(RouterConfig {
        shards: vec![
            ShardSpec { name: "s0".to_string(), addr: a.local_addr(), data_dir: None },
            ShardSpec { name: "s1".to_string(), addr: b.local_addr(), data_dir: None },
        ],
        ..RouterConfig::default()
    })
    .expect("bind router");
    let mut client = Client::new(router.local_addr());

    {
        let _guard = arm_scoped(FaultPlan::new(5).with_rule(SiteRule {
            site: "router.scrape".to_string(),
            kind: FaultKind::Error,
            every: 0,
            rate: 1.0,
            max_count: 0,
        }));
        // Every scrape faults: the exposition still renders — router-local
        // series only, no shard rows — and the misses are counted.
        let degraded = client.get("/metrics").unwrap();
        assert_eq!(degraded.status, 200, "{}", degraded.text());
        let text = degraded.text();
        assert!(!text.contains("shard=\"s0\""), "{text}");
        assert!(!text.contains("shard=\"s1\""), "{text}");
        let errors = text
            .lines()
            .find_map(|line| line.strip_prefix("nptsn_router_scrape_errors_total "))
            .and_then(|v| v.trim().parse::<f64>().ok())
            .expect("scrape error counter in the exposition");
        assert!(errors >= 2.0, "both shard scrapes should have faulted: {text}");
        let counts = nptsn_chaos::injection_counts();
        assert!(
            counts.iter().any(|(site, n)| site == "router.scrape" && *n >= 2),
            "no router.scrape injection recorded: {counts:?}"
        );
    }

    // Disarmed, the very next scrape federates both shards again.
    let healed = client.get("/metrics").unwrap();
    assert_eq!(healed.status, 200, "{}", healed.text());
    let text = healed.text();
    assert!(text.contains("shard=\"s0\""), "{text}");
    assert!(text.contains("shard=\"s1\""), "{text}");

    router.stop();
    a.stop();
    a.wait();
    b.stop();
    b.wait();
}
