//! End-to-end failover: losing a shard loses no acked job.
//!
//! Two in-process shards with durable stores sit behind one router. When
//! a shard goes away, the router must declare it dead, rebalance the ring
//! and replay the dead shard's segment log onto the survivor — after
//! which every job the fleet ever acked is served through the router with
//! a byte-identical status document.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use nptsn_router::{Router, RouterConfig, ShardSpec};
use nptsn_serve::client::Client;
use nptsn_serve::jobs::{JobOutcome, JobState};
use nptsn_serve::persist::{encode_next_id, encode_record, job_key, JobSpec, NEXT_ID_KEY};
use nptsn_serve::{ServeConfig, Server};
use nptsn_store::{LogStore, Storage};

fn temp_dir(test: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("nptsn-router-fo-{}-{test}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn shard(dir: &Path, name: &str) -> Server {
    Server::bind(ServeConfig {
        workers: 1,
        data_dir: Some(dir.to_string_lossy().into_owned()),
        shard_name: Some(name.to_string()),
        ..ServeConfig::default()
    })
    .expect("bind shard")
}

fn fleet_router(shards: Vec<ShardSpec>) -> Router {
    Router::bind(RouterConfig {
        shards,
        health_interval_ms: 20,
        health_failures: 2,
        forward_deadline_ms: 1_000,
        ..RouterConfig::default()
    })
    .expect("bind router")
}

/// Polls `f` until it returns `Some`, panicking after `secs` seconds.
fn poll<T>(secs: u64, what: &str, mut f: impl FnMut() -> Option<T>) -> T {
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        if let Some(v) = f() {
            return v;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn json_id(body: &str) -> u64 {
    let start = body.find("\"id\":").expect("id field") + 5;
    body[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

#[test]
fn a_lost_shard_replays_onto_the_survivor_byte_identically() {
    let a_dir = temp_dir("lost-a");
    let b_dir = temp_dir("lost-b");
    let a = shard(&a_dir, "s0");
    let b = shard(&b_dir, "s1");
    let router = fleet_router(vec![
        ShardSpec { name: "s0".to_string(), addr: a.local_addr(), data_dir: Some(a_dir.clone()) },
        ShardSpec { name: "s1".to_string(), addr: b.local_addr(), data_dir: Some(b_dir.clone()) },
    ]);
    let mut client = Client::new(router.local_addr());

    let ids: Vec<u64> = (0..16)
        .map(|_| {
            let accepted = client.post("/jobs/burn?millis=1", &[]).unwrap();
            assert_eq!(accepted.status, 202, "{}", accepted.text());
            json_id(&accepted.text())
        })
        .collect();
    // The sample must actually exercise both shards or the test is
    // vacuous. Placement is deterministic, so this cannot flake.
    let ring = router.ring();
    for name in ["s0", "s1"] {
        assert!(
            ids.iter().any(|&id| ring.place(id) == Some(name)),
            "no sampled job landed on {name}"
        );
    }

    let before: Vec<String> = ids
        .iter()
        .map(|&id| {
            poll(10, "job to finish", || {
                let status = client.get(&format!("/jobs/{id}")).ok()?;
                let body = status.text();
                body.contains("\"state\":\"done\"").then_some(body)
            })
        })
        .collect();

    // Take down shard s0. A graceful stop still exercises the full
    // failover path: the port closes, probes fail, the ring rebalances
    // and the log replays (kill -9 is covered by the process-level smoke
    // and bench, which this test mirrors in-process).
    a.stop();
    a.wait();

    poll(15, "the router to declare s0 dead", || {
        let health = client.get("/healthz").ok()?;
        health.text().contains("\"live_shards\":1").then_some(())
    });

    // Every acked job — including those that lived on s0 — must come back
    // through the router with the exact bytes it served before the loss.
    for (&id, expected) in ids.iter().zip(&before) {
        poll(15, "a replayed job to reappear", || {
            let status = client.get(&format!("/jobs/{id}")).ok()?;
            (status.status == 200 && status.text() == *expected).then_some(())
        });
    }
    assert!(router.next_id_watermark() >= 16);
    assert!(nptsn_obs::telemetry().router_failovers.get() >= 1);

    router.stop();
    b.stop();
    b.wait();
}

#[test]
fn a_prebuilt_dead_log_replays_through_the_validation_gate() {
    // Hand-build a dead shard's log: one interrupted job with a spec, one
    // interrupted job without (unrecoverable), one terminal job.
    let dead_dir = temp_dir("gate-dead");
    {
        let store = LogStore::open(&dead_dir).unwrap();
        store.put(NEXT_ID_KEY, &encode_next_id(9)).unwrap();
        store
            .put(
                &job_key(7),
                &encode_record(
                    JobState::Submitted,
                    Some(&JobSpec::Burn { millis: 1 }),
                    None,
                    None,
                ),
            )
            .unwrap();
        store.put(&job_key(8), &encode_record(JobState::Running, None, None, None)).unwrap();
        store
            .put(
                &job_key(9),
                &encode_record(
                    JobState::Done,
                    Some(&JobSpec::Burn { millis: 1 }),
                    Some(&JobOutcome::Burn),
                    None,
                ),
            )
            .unwrap();
    }

    let live_dir = temp_dir("gate-live");
    let live = shard(&live_dir, "s0");
    // The dead shard's address is a port nothing listens on.
    let vacant = {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap()
    };
    let router = fleet_router(vec![
        ShardSpec {
            name: "s0".to_string(),
            addr: live.local_addr(),
            data_dir: Some(live_dir.clone()),
        },
        ShardSpec { name: "s1".to_string(), addr: vacant, data_dir: Some(dead_dir.clone()) },
    ]);
    let mut client = Client::new(router.local_addr());

    // The interrupted job with a spec re-validates, re-enqueues and runs
    // to completion on the survivor.
    poll(15, "job 7 to replay and finish", || {
        let status = client.get("/jobs/7").ok()?;
        status.text().contains("\"state\":\"done\"").then_some(())
    });
    // The spec-less interrupted job cannot be re-run; the replay records
    // it failed rather than losing it or faking a result.
    let eight = poll(15, "job 8 to replay", || {
        let status = client.get("/jobs/8").ok()?;
        (status.status == 200).then(|| status.text())
    });
    assert!(eight.contains("\"state\":\"failed\""), "{eight}");
    // The terminal job replays verbatim.
    let nine = poll(15, "job 9 to replay", || {
        let status = client.get("/jobs/9").ok()?;
        (status.status == 200).then(|| status.text())
    });
    assert!(nine.contains("\"state\":\"done\""), "{nine}");

    // The watermark cleared the replayed ids: a fresh submission through
    // the router must not collide with them.
    assert!(router.next_id_watermark() >= 9);
    let accepted = client.post("/jobs/burn?millis=1", &[]).unwrap();
    assert_eq!(accepted.status, 202, "{}", accepted.text());
    assert!(json_id(&accepted.text()) >= 10);

    router.stop();
    live.stop();
    live.wait();
}
