//! Ring stability properties.
//!
//! Consistent hashing's whole value is what it does *not* move: taking a
//! shard off an N-shard ring may remap only the keys that shard owned —
//! about 1/N of them — and adding one may steal keys only for the
//! newcomer. These tests pin both directions over a seeded 10k-key
//! sample, plus byte-stability: the ring is rebuilt independently by
//! every router process, so identical inputs must yield identical
//! placement.

use nptsn_router::Ring;

const SAMPLE: usize = 10_000;
const VNODES: u32 = 64;

fn names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("s{i}")).collect()
}

/// A seeded splitmix64 stream — the key sample is fixed across runs.
fn sample_keys(seed: u64) -> Vec<u64> {
    let mut state = seed;
    (0..SAMPLE)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        })
        .collect()
}

fn placements(ring: &Ring, keys: &[u64]) -> Vec<String> {
    keys.iter().map(|&k| ring.place(k).unwrap().to_string()).collect()
}

#[test]
fn removing_one_shard_remaps_only_its_own_keys() {
    let keys = sample_keys(0xA11C);
    for n in [3usize, 5, 8] {
        let full = Ring::build(&names(n), VNODES);
        let removed = "s1";
        let survivors: Vec<String> =
            names(n).into_iter().filter(|s| s != removed).collect();
        let shrunk = full.retain(&survivors);
        let before = placements(&full, &keys);
        let after = placements(&shrunk, &keys);
        let mut moved = 0usize;
        for (b, a) in before.iter().zip(&after) {
            if b == removed {
                moved += 1;
                assert_ne!(a, removed);
            } else {
                // The defining property: a key not owned by the removed
                // shard must not move at all.
                assert_eq!(a, b, "a surviving shard's key moved on removal (n={n})");
            }
        }
        // The removed shard's share is ~1/n of the sample; allow vnode
        // variance but reject anything resembling a reshuffle.
        let ceiling = (18 * SAMPLE) / (10 * n);
        assert!(moved > 0, "shard {removed} owned nothing (n={n})");
        assert!(
            moved <= ceiling,
            "removal remapped {moved} of {SAMPLE} keys, ceiling {ceiling} (n={n})"
        );
    }
}

#[test]
fn adding_one_shard_steals_only_for_the_newcomer() {
    let keys = sample_keys(0xBEE5);
    for n in [3usize, 5, 8] {
        let small = Ring::build(&names(n - 1), VNODES);
        let grown = Ring::build(&names(n), VNODES);
        let newcomer = format!("s{}", n - 1);
        let before = placements(&small, &keys);
        let after = placements(&grown, &keys);
        let mut moved = 0usize;
        for (b, a) in before.iter().zip(&after) {
            if a != b {
                moved += 1;
                assert_eq!(a, &newcomer, "a key moved to a pre-existing shard (n={n})");
            }
        }
        let ceiling = (18 * SAMPLE) / (10 * n);
        assert!(moved > 0, "the new shard {newcomer} stole nothing (n={n})");
        assert!(
            moved <= ceiling,
            "growth remapped {moved} of {SAMPLE} keys, ceiling {ceiling} (n={n})"
        );
    }
}

#[test]
fn placement_is_byte_stable_across_builds() {
    let keys = sample_keys(0xCAFE);
    let one = Ring::build(&names(6), VNODES);
    let two = Ring::build(&names(6), VNODES);
    assert_eq!(one, two, "identical inputs must build identical rings");
    assert_eq!(placements(&one, &keys), placements(&two, &keys));
    // A failover rebuild (retain) equals a from-scratch build over the
    // survivors — the replay engine and a freshly restarted router agree.
    let survivors: Vec<String> =
        names(6).into_iter().filter(|s| s != "s3").collect();
    assert_eq!(one.retain(&survivors), Ring::build(&survivors, VNODES));
}
