//! Record transfer between shards: dead-shard replay, rejoin catch-up
//! and scale-out migration all move durable job records through the same
//! idempotent shard-side gate.
//!
//! The shard-side contract makes this safe to run at any time, any number
//! of times:
//!
//! * the records come from [`nptsn_store::LogStore::export_live`] (or its
//!   cursor-bounded sibling `export_live_since`), a read-only fold over a
//!   shard's segment log — the directory is never mutated, so a half-dead
//!   process (or a later forensic read) sees exactly the bytes it wrote;
//! * each record goes through `POST /internal/replay/<id>` on the target,
//!   which feeds the **same validation gate** as HTTP submission — a
//!   corrupt or malformed record is recorded as failed, never executed;
//! * ingest is idempotent by job id: a terminal record is stored verbatim
//!   (byte-identical result bytes), a non-terminal record is re-validated
//!   and re-enqueued, and an id the target already knows is a no-op — so
//!   retrying a whole replay after a mid-replay crash cannot duplicate
//!   work or flip a result.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use nptsn_serve::persist::{job_id_from_key, trace_id_from_key};
use nptsn_store::LogStore;

use crate::ring::{key_hash, Ring};
use crate::server::{trace_for_job, Shard, Shared};

/// What one replay accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Records ingested onto a survivor (terminal, requeued or recorded
    /// failed).
    pub replayed: u64,
    /// Records the survivor already knew — no-ops.
    pub already_known: u64,
    /// Records that could not be ingested (malformed, or the owner stayed
    /// unreachable through every retry).
    pub failed: u64,
    /// Ingest attempts that needed a retry.
    pub retries: u64,
}

/// Attempts to ingest one record on `target`, retrying transient
/// failures. The chaos site (`router.replay` for dead-shard replay,
/// `router.migrate` for catch-up and migration drains) fires per attempt.
/// Returns `Some(replay_kind)` on a `200`.
fn ingest_one(
    shared: &Arc<Shared>,
    target: &Arc<Shard>,
    id: u64,
    bytes: &[u8],
    report: &mut ReplayReport,
    site: &'static str,
) -> Option<String> {
    let telemetry = nptsn_obs::telemetry();
    for attempt in 0..5u32 {
        if attempt > 0 {
            report.retries += 1;
            telemetry.router_replay_retries.inc();
        }
        // Chaos: a faulted attempt is a transient ingest failure — the
        // loop retries, exactly as it would for a flaky survivor.
        if nptsn_chaos::point(site).is_err() {
            continue;
        }
        let mut client = shared.forward_client(target.addr(), key_hash(id) ^ 0x5265_706c_6179);
        // Re-stamp the job's deterministic trace context: the successor's
        // ingest (and any re-run) joins the timeline the job started.
        let headers = [(nptsn_obs::TRACE_HEADER, trace_for_job(id).header_value())];
        let Ok(response) =
            client.send("POST", &format!("/internal/replay/{id}"), &headers, bytes)
        else {
            continue;
        };
        match response.status {
            200 => {
                let text = response.text();
                let kind = text
                    .split("\"replay\":\"")
                    .nth(1)
                    .and_then(|rest| rest.split('"').next())
                    .unwrap_or("unknown")
                    .to_string();
                return Some(kind);
            }
            // A 400 is a verdict, not a transient: the record itself does
            // not decode. Nothing a retry could change.
            400 => return None,
            _ => continue,
        }
    }
    None
}

/// Replays the dead shard's segment log onto the survivors, placing each
/// job on its current ring owner. Called with the ring already rebuilt
/// over the survivors.
pub(crate) fn replay_dead_shard(shared: &Arc<Shared>, dead: &Arc<Shard>) -> ReplayReport {
    let _span = nptsn_obs::span("router.replay");
    let telemetry = nptsn_obs::telemetry();
    let mut report = ReplayReport::default();
    let Some(dir) = dead.data_dir() else {
        return report;
    };
    let records = match LogStore::export_live(&dir) {
        Ok(records) => records,
        Err(e) => {
            if nptsn_obs::enabled() {
                nptsn_obs::event(
                    nptsn_obs::Level::Error,
                    "router.replay",
                    &format!("export of {} failed: {e:?}", dir.display()),
                );
            }
            return report;
        }
    };
    for (key, bytes) in records {
        // Trace timelines replay alongside their jobs — best effort, so a
        // dead shard's spans survive in the merged fleet trace. Everything
        // else that is not a job record (the watermark, the checkpoint
        // registry, passive-replica markers) is shard-local bookkeeping
        // and stays behind.
        if let Some(id) = trace_id_from_key(&key) {
            if let Some(owner) =
                shared.current_ring().place(id).and_then(|name| shared.routable_shard(name))
            {
                replay_trace(shared, &owner, id, &bytes, &mut report);
            }
            continue;
        }
        let Some(id) = job_id_from_key(&key) else { continue };
        let ring = shared.current_ring();
        let Some(owner) = ring.place(id).and_then(|name| shared.routable_shard(name)) else {
            report.failed += 1;
            continue;
        };
        let trace = trace_for_job(id);
        let _trace = nptsn_obs::with_trace(Some(trace));
        let _span = nptsn_obs::span("router.replay.job");
        let started = Instant::now();
        match ingest_one(shared, &owner, id, &bytes, &mut report, "router.replay") {
            Some(kind) if kind == "already_known" => report.already_known += 1,
            Some(_) => {
                report.replayed += 1;
                telemetry.router_replayed_jobs.inc();
            }
            None => report.failed += 1,
        }
        shared.metrics.replay_seconds.observe(started.elapsed().as_secs_f64());
        shared.next_id.fetch_max(id, Ordering::SeqCst);
    }
    report
}

/// Transfers onto `target` every record in `records` that `ring` places
/// on it — the work unit of rejoin catch-up and scale-out migration
/// drains. Records placed elsewhere are skipped without a network round
/// trip; records the target already holds count as no-ops. Returns the
/// number of job records actually moved (what
/// `nptsn_router_migrated_jobs_total` counts).
pub(crate) fn transfer_owned(
    shared: &Arc<Shared>,
    target: &Arc<Shard>,
    ring: &Ring,
    records: &[(String, Vec<u8>)],
) -> u64 {
    let telemetry = nptsn_obs::telemetry();
    let mut report = ReplayReport::default();
    let mut moved = 0u64;
    for (key, bytes) in records {
        if let Some(id) = trace_id_from_key(key) {
            if ring.place(id) == Some(target.name.as_str()) {
                replay_trace(shared, target, id, bytes, &mut report);
            }
            continue;
        }
        let Some(id) = job_id_from_key(key) else { continue };
        if ring.place(id) != Some(target.name.as_str()) {
            continue;
        }
        let trace = trace_for_job(id);
        let _trace = nptsn_obs::with_trace(Some(trace));
        let _span = nptsn_obs::span("router.migrate.job");
        let started = Instant::now();
        match ingest_one(shared, target, id, bytes, &mut report, "router.migrate") {
            Some(kind) if kind == "already_known" => {}
            Some(_) => {
                moved += 1;
                telemetry.router_migrated_jobs.inc();
            }
            None => {}
        }
        shared.metrics.replay_seconds.observe(started.elapsed().as_secs_f64());
        shared.next_id.fetch_max(id, Ordering::SeqCst);
    }
    moved
}

/// Replays one persisted trace timeline onto `target`. Failures are not
/// counted against the job transfer — a lost timeline degrades the merged
/// trace, never the durability contract.
fn replay_trace(
    shared: &Arc<Shared>,
    target: &Arc<Shard>,
    id: u64,
    bytes: &[u8],
    report: &mut ReplayReport,
) {
    let trace = trace_for_job(id);
    let _trace = nptsn_obs::with_trace(Some(trace));
    let _span = nptsn_obs::span("router.replay.trace");
    let started = Instant::now();
    for attempt in 0..5u32 {
        if attempt > 0 {
            report.retries += 1;
            nptsn_obs::telemetry().router_replay_retries.inc();
        }
        if nptsn_chaos::point("router.replay").is_err() {
            continue;
        }
        let mut client = shared.forward_client(target.addr(), key_hash(id) ^ 0x0054_7261_6365);
        let headers = [(nptsn_obs::TRACE_HEADER, trace.header_value())];
        match client.send("POST", &format!("/internal/trace/{id}"), &headers, bytes) {
            Ok(response) if response.status == 200 => break,
            // A 400 is a verdict: the record does not decode.
            Ok(response) if response.status == 400 => break,
            _ => continue,
        }
    }
    shared.metrics.replay_seconds.observe(started.elapsed().as_secs_f64());
}
