//! The router process: an HTTP front tier that owns job-id assignment,
//! places each job on a shard via the consistent-hash [`Ring`], and fans
//! requests out to the serve fleet over the retrying
//! [`nptsn_serve::Client`].
//!
//! | Route | Behavior |
//! |---|---|
//! | `GET /healthz` | router liveness + per-shard membership state table |
//! | `GET /readyz` | `200` iff at least one shard is live; ring generation + live/total shards |
//! | `GET /metrics` | federated: router registry + telemetry + every live shard's metrics re-labeled `shard="<name>"` + `nptsn_fleet_*` sums |
//! | `GET /jobs/<id>/trace` | merged fleet-wide Chrome trace for the job (router + shard spans, one trace id) |
//! | `GET /debug/flight` | the router's in-memory flight-recorder ring |
//! | `POST /shutdown` | drain and stop the router (shards keep running) |
//! | `POST /admin/shards` | add a shard to the running fleet, or re-announce a dead one at a new address |
//! | `POST /jobs/{plan,verify,infer,burn}` | assign an id, place it on the ring, forward with `X-Nptsn-Job-Id` |
//! | `GET/DELETE /jobs/<id>` | forward to the ring owner of `<id>` |
//! | `/checkpoints`, `/checkpoints/<name>` | reads from the first live shard; writes fan out to **every** live shard |
//!
//! The durability contract is inherited from the shards, not weakened by
//! the extra hop: the router answers `202` only by relaying a shard's
//! `202`, which the shard sends only after the job record is durable. A
//! forward that dies mid-flight is answered `503` — the client retries and
//! no acked job existed. When a shard is declared dead (K consecutive
//! failed `/readyz` probes), its ring range is rebalanced to the survivors
//! and its segment log is replayed onto them ([`crate::replay`]), so every
//! acked job reaches a terminal state on some live shard.
//!
//! # Membership
//!
//! Membership is a self-healing state machine, not a one-way trap door:
//! `live → suspect → dead → rejoining → live`. A probe failure moves a
//! shard to *suspect* (still routable); K consecutive failures declare it
//! *dead* — removed from the ring at a bumped ring generation, its log
//! replayed. The health loop keeps probing dead shards, and a shard that
//! answers its `/readyz` re-admission handshake again (same process
//! restarted on the same `--data-dir`, or re-announced at a new address
//! via `POST /admin/shards`) becomes *rejoining*: it receives a catch-up
//! transfer of the records it missed (multi-pass, cursor-bounded, through
//! the idempotent `/internal/replay/<id>` gate), then re-enters the ring.
//! `POST /admin/shards` with a fresh name is live scale-out: the ring's
//! ≤1/N remap drives a background migration drain to the newcomer.
//!
//! With `replication_factor` 2, every accepted submission is written
//! through to the key's ring successor as a passive replica. Because the
//! successor is by construction where the key lands when its owner leaves
//! the ring, a death promotes local records (`POST /internal/promote`)
//! instead of pausing for a cross-process log export — failover becomes a
//! ring flip, with the dead-log replay demoted to a background safety net.

use std::collections::{HashMap, HashSet};
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use nptsn_format::json::Object;
use nptsn_obs::metrics::{Counter, Gauge, Histogram, Registry};
use nptsn_obs::{MergedSpan, ProcessTrace, TraceContext};
use nptsn_serve::client::{BackoffConfig, Client, ClientResponse};
use nptsn_serve::http::{read_request_deadline, HttpError, Request, Response};
use nptsn_store::{ExportCursor, LogStore};

use crate::replay;
use crate::ring::{key_hash, Ring};

/// One shard of the serve fleet, as configured at router start.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// The shard's stable name — the identity hashed onto the ring.
    pub name: String,
    /// The shard's listen address.
    pub addr: SocketAddr,
    /// The shard's `--data-dir`, when the router can reach it for
    /// dead-shard replay. `None` disables replay for this shard.
    pub data_dir: Option<PathBuf>,
}

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Listen address; port `0` picks a free port.
    pub addr: String,
    /// The initial shard fleet. Shards can die, rejoin after a restart,
    /// and new ones can join a running fleet via `POST /admin/shards`.
    pub shards: Vec<ShardSpec>,
    /// Copies of every accepted submission (`1` disables replication).
    /// At `2`, each submission is written through to the key's ring
    /// successor as a passive replica, and a shard death promotes those
    /// replicas instead of pausing for a dead-log replay.
    pub replication_factor: u32,
    /// Virtual nodes per shard on the ring.
    pub vnodes: u32,
    /// Health-probe period per shard, in milliseconds.
    pub health_interval_ms: u64,
    /// Consecutive failed probes before a shard is declared dead.
    pub health_failures: u32,
    /// Total elapsed cap on one forwarded request's retry schedule
    /// ([`BackoffConfig::deadline_ms`]) — one slow shard cannot pin a
    /// routed request beyond this.
    pub forward_deadline_ms: u64,
    /// Largest accepted request body (mirrors the shard limit).
    pub max_body_bytes: usize,
    /// Per-read/write socket timeout on router connections.
    pub io_timeout_ms: u64,
    /// Total deadline on reading one request head.
    pub header_deadline_ms: u64,
    /// `Retry-After` hint on `503` answers, in seconds.
    pub retry_after_secs: u32,
    /// Flight-recorder ring capacity in entries (`0` uses the built-in
    /// default). Armed unconditionally at bind, like the shards.
    pub flight_capacity: usize,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            shards: Vec::new(),
            replication_factor: 1,
            vnodes: 64,
            health_interval_ms: 100,
            health_failures: 3,
            forward_deadline_ms: 2_000,
            max_body_bytes: 4 * 1024 * 1024,
            io_timeout_ms: 30_000,
            header_deadline_ms: 10_000,
            retry_after_secs: 1,
            flight_capacity: 0,
        }
    }
}

/// Router-local metrics (the cross-cutting `nptsn_router_*_total` series
/// live in the process-wide telemetry so benchmarks and the CLI see them).
#[derive(Debug)]
pub struct RouterMetrics {
    /// The router's own registry; render it for `/metrics`.
    pub registry: Registry,
    /// Requests received by the router (`nptsn_router_http_requests_total`).
    pub http_requests: Arc<Counter>,
    /// Forwards that failed after retries (`nptsn_router_forward_errors_total`).
    pub forward_errors: Arc<Counter>,
    /// Submissions re-tried under a fresh id after a `409` id collision
    /// (`nptsn_router_submit_conflicts_total`).
    pub submit_conflicts: Arc<Counter>,
    /// Live shards on the ring (`nptsn_router_live_shards`).
    pub live_shards: Arc<Gauge>,
    /// Monotonic ring version, bumped on every membership change
    /// (`nptsn_router_ring_generation`).
    pub ring_generation: Arc<Gauge>,
    /// Latency of one forwarded request, retries included
    /// (`nptsn_router_forward_duration_seconds`).
    pub forward_seconds: Arc<Histogram>,
    /// Latency of one replayed record's ingest, retries included
    /// (`nptsn_router_replay_duration_seconds`).
    pub replay_seconds: Arc<Histogram>,
    /// Shard `/metrics` scrapes that failed — the federated exposition
    /// degraded to the shards that answered
    /// (`nptsn_router_scrape_errors_total`).
    pub scrape_errors: Arc<Counter>,
}

impl RouterMetrics {
    /// Registers the router metric set on a fresh registry.
    pub fn new() -> RouterMetrics {
        let registry = Registry::new();
        let http_requests =
            registry.counter("nptsn_router_http_requests_total", "Requests received by the router");
        let forward_errors = registry
            .counter("nptsn_router_forward_errors_total", "Forwards that failed after retries");
        let submit_conflicts = registry.counter(
            "nptsn_router_submit_conflicts_total",
            "Submissions retried under a fresh id after a 409",
        );
        let live_shards =
            registry.gauge("nptsn_router_live_shards", "Shards currently live on the ring");
        let ring_generation = registry.gauge(
            "nptsn_router_ring_generation",
            "Monotonic ring version, bumped on every membership change",
        );
        let forward_seconds = registry.histogram(
            "nptsn_router_forward_duration_seconds",
            "Latency of one forwarded request, retries included",
            &Histogram::latency_bounds(),
        );
        let replay_seconds = registry.histogram(
            "nptsn_router_replay_duration_seconds",
            "Latency of one replayed record's ingest, retries included",
            &Histogram::latency_bounds(),
        );
        let scrape_errors = registry.counter(
            "nptsn_router_scrape_errors_total",
            "Shard metrics scrapes that failed during federation",
        );
        RouterMetrics {
            registry,
            http_requests,
            forward_errors,
            submit_conflicts,
            live_shards,
            ring_generation,
            forward_seconds,
            replay_seconds,
            scrape_errors,
        }
    }

    /// The full `/metrics` exposition: the router registry followed by the
    /// process-wide telemetry (which carries `nptsn_router_forwards_total`,
    /// `nptsn_router_failovers_total`, `nptsn_router_replayed_jobs_total`
    /// and `nptsn_router_replay_retries_total`).
    pub fn render(&self) -> String {
        let mut text = self.registry.render();
        text.push_str(&nptsn_obs::telemetry().registry.render());
        text
    }

    /// The per-status-code response counter
    /// (`nptsn_router_http_responses_total`).
    pub fn response_counter(&self, code: u16) -> Arc<Counter> {
        self.registry.counter_labeled(
            "nptsn_router_http_responses_total",
            &format!("code=\"{code}\""),
            "Router responses by status code",
        )
    }
}

impl Default for RouterMetrics {
    fn default() -> RouterMetrics {
        RouterMetrics::new()
    }
}

/// One shard's membership state. The machine is
/// `live → suspect → dead → rejoining → live`; *suspect* (a probe just
/// failed) and *live* shards are routable, *dead* and *rejoining* ones
/// are not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ShardState {
    /// Probes are passing; the shard owns its ring range.
    Live = 0,
    /// At least one probe failed but the death threshold is not reached;
    /// still routable (the forward path has its own retries).
    Suspect = 1,
    /// Declared dead: off the ring, its range rebalanced, its log
    /// replayed. Probed in the background for a possible rejoin.
    Dead = 2,
    /// Passed the re-admission handshake; catch-up transfer in progress.
    Rejoining = 3,
}

impl ShardState {
    fn from_u8(raw: u8) -> ShardState {
        match raw {
            0 => ShardState::Live,
            1 => ShardState::Suspect,
            3 => ShardState::Rejoining,
            _ => ShardState::Dead,
        }
    }

    /// The label used in `/healthz` and log events.
    pub fn label(self) -> &'static str {
        match self {
            ShardState::Live => "live",
            ShardState::Suspect => "suspect",
            ShardState::Dead => "dead",
            ShardState::Rejoining => "rejoining",
        }
    }
}

/// One shard's runtime state. The address and data dir are mutable
/// because a dead shard may be re-announced at a new address
/// (`POST /admin/shards`) — a restarted process rarely gets its old port
/// back from the OS.
pub(crate) struct Shard {
    pub(crate) name: String,
    addr: Mutex<SocketAddr>,
    data_dir: Mutex<Option<PathBuf>>,
    state: AtomicU8,
    /// Consecutive failed probes (reset on success; reported in
    /// `/healthz`).
    pub(crate) probe_failures: AtomicU32,
    /// Idle keep-alive clients for the forward path. Per-request TCP
    /// connects dominate routed overhead on small requests; reusing the
    /// connection amortizes the handshake away. Checked out per forward,
    /// returned only on success — a failed client's connection is suspect
    /// and is dropped. Cleared whenever the address changes.
    pool: Mutex<Vec<Client>>,
}

/// Upper bound on idle kept-alive connections retained per shard.
const POOL_CAP: usize = 8;

impl Shard {
    fn new(spec: &ShardSpec) -> Shard {
        Shard {
            name: spec.name.clone(),
            addr: Mutex::new(spec.addr),
            data_dir: Mutex::new(spec.data_dir.clone()),
            state: AtomicU8::new(ShardState::Live as u8),
            probe_failures: AtomicU32::new(0),
            pool: Mutex::new(Vec::new()),
        }
    }

    /// Pops a pooled keep-alive client, or opens a fresh one. A pooled
    /// connection may have gone stale while idle; `Client` drops it and
    /// retries once on a fresh connection, so stale checkouts self-heal.
    fn checkout(&self) -> Client {
        let pooled = self.pool.lock().unwrap_or_else(|e| e.into_inner()).pop();
        pooled.unwrap_or_else(|| Client::new(self.addr()))
    }

    /// Returns a client whose request succeeded to the pool, stripped of
    /// its per-request retry policy (the next checkout applies its own).
    fn checkin(&self, client: Client) {
        let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        if pool.len() < POOL_CAP {
            pool.push(client.without_backoff());
        }
    }

    /// Drops every pooled connection — they point at the old address.
    fn clear_pool(&self) {
        self.pool.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }

    pub(crate) fn state(&self) -> ShardState {
        ShardState::from_u8(self.state.load(Ordering::SeqCst))
    }

    fn set_state(&self, state: ShardState) {
        self.state.store(state as u8, Ordering::SeqCst);
    }

    /// Whether the router forwards requests here (live or suspect).
    pub(crate) fn is_routable(&self) -> bool {
        matches!(self.state(), ShardState::Live | ShardState::Suspect)
    }

    pub(crate) fn addr(&self) -> SocketAddr {
        *self.addr.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn data_dir(&self) -> Option<PathBuf> {
        self.data_dir.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

/// State shared between the acceptor, connection handlers and the health
/// thread.
pub(crate) struct Shared {
    pub(crate) config: RouterConfig,
    pub(crate) local_addr: SocketAddr,
    /// The shard set. Grows on scale-out joins; never shrinks (a dead
    /// shard keeps its slot so it can rejoin). Read-mostly.
    pub(crate) shards: RwLock<Vec<Arc<Shard>>>,
    /// The current placement ring over routable shards. Swapped
    /// atomically (short lock, `Arc` clone out) on membership changes.
    pub(crate) ring: Mutex<Arc<Ring>>,
    /// Monotonic ring version; bumped under the membership lock on every
    /// ring swap.
    pub(crate) ring_generation: AtomicU64,
    /// The highest job id assigned or observed anywhere in the fleet.
    pub(crate) next_id: AtomicU64,
    /// Set while a dead shard's log is being replayed — a `404` for a job
    /// in flight between shards answers `503 Retry-After` instead.
    pub(crate) replaying: AtomicBool,
    /// Catch-up / migration drains in flight. While positive, a `404`
    /// from a shard answers `503 Retry-After` — the record may still be
    /// on its way to its new owner.
    pub(crate) migrating: AtomicU64,
    /// Serializes membership transitions (death, rejoin, scale-out join)
    /// so two ring swaps can never interleave.
    pub(crate) membership: Mutex<()>,
    pub(crate) shutdown: AtomicBool,
    pub(crate) metrics: Arc<RouterMetrics>,
    done: Mutex<bool>,
    done_cv: Condvar,
}

impl Shared {
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the acceptor so it observes the flag.
        let _ = TcpStream::connect(self.local_addr);
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        *done = true;
        self.done_cv.notify_all();
    }

    pub(crate) fn current_ring(&self) -> Arc<Ring> {
        Arc::clone(&self.ring.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// A point-in-time copy of the shard set.
    pub(crate) fn shards_snapshot(&self) -> Vec<Arc<Shard>> {
        self.shards.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// The shard named `name`, whatever its state.
    pub(crate) fn shard_named(&self, name: &str) -> Option<Arc<Shard>> {
        self.shards
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .find(|s| s.name == name)
            .cloned()
    }

    /// The routable (live or suspect) shard named `name`, if any.
    pub(crate) fn routable_shard(&self, name: &str) -> Option<Arc<Shard>> {
        self.shard_named(name).filter(|s| s.is_routable())
    }

    fn live_count(&self) -> usize {
        self.shards
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .filter(|s| s.is_routable())
            .count()
    }

    /// Swaps in a new ring and bumps the generation. Callers hold the
    /// membership lock.
    fn swap_ring(&self, next: Ring) {
        {
            let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
            *ring = Arc::new(next);
        }
        let generation = self.ring_generation.fetch_add(1, Ordering::SeqCst) + 1;
        self.metrics.ring_generation.set(generation as i64);
        self.metrics.live_shards.set(self.live_count() as i64);
    }

    /// The retry policy for one forwarded request. The jitter seed is
    /// derived from the request key so a replayed run retries on the same
    /// schedule.
    pub(crate) fn forward_backoff(&self, seed: u64) -> BackoffConfig {
        BackoffConfig {
            max_retries: 4,
            base_ms: 20,
            cap_ms: 250,
            seed,
            deadline_ms: self.config.forward_deadline_ms,
        }
    }

    /// A retrying client for one forwarded request.
    pub(crate) fn forward_client(&self, addr: SocketAddr, seed: u64) -> Client {
        Client::new(addr).with_backoff(self.forward_backoff(seed))
    }
}

/// The running router: a TCP acceptor plus the health/failover thread.
pub struct Router {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    health: Option<JoinHandle<()>>,
}

impl Router {
    /// Binds the listener, seeds the id watermark from the shards'
    /// `/readyz` reports (best effort — the health loop keeps it fresh and
    /// `409` collisions are retried under a fresh id), and starts the
    /// acceptor and health threads.
    ///
    /// # Errors
    ///
    /// `InvalidInput` when the shard list is empty or has duplicate names;
    /// otherwise whatever binding the listener returns.
    pub fn bind(config: RouterConfig) -> io::Result<Router> {
        // Arm the flight recorder before anything can record: it is the
        // always-on ring behind `/debug/flight` and the source of the
        // router's own spans in merged per-job timelines.
        nptsn_obs::flight_init(config.flight_capacity);
        if config.shards.is_empty() {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "no shards configured"));
        }
        let mut seen = HashSet::new();
        for spec in &config.shards {
            if !seen.insert(spec.name.as_str()) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("duplicate shard name {:?}", spec.name),
                ));
            }
        }
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let names: Vec<String> = config.shards.iter().map(|s| s.name.clone()).collect();
        let ring = Arc::new(Ring::build(&names, config.vnodes));
        let shards: Vec<Arc<Shard>> =
            config.shards.iter().map(|spec| Arc::new(Shard::new(spec))).collect();
        let metrics = Arc::new(RouterMetrics::new());
        metrics.live_shards.set(shards.len() as i64);
        metrics.ring_generation.set(1);
        let shared = Arc::new(Shared {
            config,
            local_addr,
            shards: RwLock::new(shards),
            ring: Mutex::new(ring),
            ring_generation: AtomicU64::new(1),
            next_id: AtomicU64::new(0),
            replaying: AtomicBool::new(false),
            migrating: AtomicU64::new(0),
            membership: Mutex::new(()),
            shutdown: AtomicBool::new(false),
            metrics,
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });

        // Seed the watermark before taking traffic so the first assigned
        // id is above anything already durable on a shard.
        for shard in shared.shards_snapshot() {
            for attempt in 0..3u32 {
                if probe_shard(&shared, &shard) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(20 << attempt));
            }
        }

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("nptsn-router-acceptor".to_string())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn acceptor thread")
        };
        let health = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("nptsn-router-health".to_string())
                .spawn(move || health_loop(&shared))
                .expect("spawn health thread")
        };
        Ok(Router { shared, acceptor: Some(acceptor), health: Some(health) })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// The router metrics (for embedding / tests).
    pub fn metrics(&self) -> Arc<RouterMetrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// The current placement ring (for embedding / tests).
    pub fn ring(&self) -> Arc<Ring> {
        self.shared.current_ring()
    }

    /// The id watermark — the highest job id assigned or observed.
    pub fn next_id_watermark(&self) -> u64 {
        self.shared.next_id.load(Ordering::SeqCst)
    }

    /// The current ring generation — the membership version, bumped on
    /// every death, rejoin, or scale-out join.
    pub fn ring_generation(&self) -> u64 {
        self.shared.ring_generation.load(Ordering::SeqCst)
    }

    /// Initiates shutdown, as `POST /shutdown` would. Shards are not
    /// touched — the router is a front tier, not a supervisor.
    pub fn stop(&self) {
        self.shared.begin_shutdown();
    }

    /// Blocks until shutdown is requested, then joins the acceptor and
    /// health threads.
    pub fn wait(mut self) {
        {
            let mut done = self.shared.done.lock().unwrap_or_else(|e| e.into_inner());
            while !*done {
                done = self.shared.done_cv.wait(done).unwrap_or_else(|e| e.into_inner());
            }
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        if let Some(health) = self.health.take() {
            let _ = health.join();
        }
        // Park the flight ring on disk (when a dump dir is configured) so
        // the router's final moments survive the shutdown.
        nptsn_obs::flight_dump_auto("drain");
    }
}

/// The deterministic trace context for a job id. Any router instance (or
/// a restarted one) recomputes the same 128-bit trace id from the id
/// alone, so `GET /jobs/<id>/trace` needs no stored id→trace mapping and
/// a replayed job re-joins the timeline it started.
pub fn trace_for_job(id: u64) -> TraceContext {
    TraceContext::from_seed(key_hash(id) ^ 0x4e70_7473_6e54_7263)
}

/// Extracts `"key":<u64>` from a flat JSON body — enough to read the
/// `/readyz` watermark without a parser.
fn json_u64(text: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = text.find(&needle)? + needle.len();
    let digits: String =
        text[start..].chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// Extracts `"key":"<string>"` from a flat JSON body.
fn json_str<'t>(text: &'t str, key: &str) -> Option<&'t str> {
    let needle = format!("\"{key}\":\"");
    let start = text.find(&needle)? + needle.len();
    text[start..].split('"').next()
}

/// One `/readyz` probe: returns whether the shard answered `200`, and
/// folds its id watermark into the router's.
fn probe_shard(shared: &Arc<Shared>, shard: &Arc<Shard>) -> bool {
    let mut client = Client::new(shard.addr());
    match client.get("/readyz") {
        Ok(response) if response.status == 200 => {
            if let Some(next_id) = json_u64(&response.text(), "next_id") {
                shared.next_id.fetch_max(next_id, Ordering::SeqCst);
            }
            true
        }
        _ => false,
    }
}

/// The re-admission handshake: a `200` `/readyz` whose reported shard
/// name (when the shard reports one) matches the slot being rejoined.
/// The name check is what stops a recycled address — some other process
/// now listening on the dead shard's old port — from being admitted as
/// the shard it isn't. Folds the shard's recovered id watermark into the
/// router's, which is the "id watermark reconciled" half of re-admission.
fn handshake(shared: &Arc<Shared>, shard: &Arc<Shard>) -> bool {
    let mut client = Client::new(shard.addr());
    let Ok(response) = client.get("/readyz") else { return false };
    if response.status != 200 {
        return false;
    }
    let text = response.text();
    if let Some(reported) = json_str(&text, "shard") {
        if reported != shard.name {
            return false;
        }
    }
    if let Some(next_id) = json_u64(&text, "next_id") {
        shared.next_id.fetch_max(next_id, Ordering::SeqCst);
    }
    true
}

/// The health/membership loop. Routable shards are probed every interval:
/// a failure moves them `live → suspect`, K consecutive failures
/// `suspect → dead` (ring rebalance + replay/promotion). Dead shards keep
/// being probed — one that answers its re-admission handshake again is
/// rejoined with a catch-up transfer.
fn health_loop(shared: &Arc<Shared>) {
    let interval = Duration::from_millis(shared.config.health_interval_ms.max(2));
    let threshold = shared.config.health_failures.max(1);
    while !shared.shutdown.load(Ordering::SeqCst) {
        for shard in shared.shards_snapshot() {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            match shard.state() {
                ShardState::Rejoining => continue,
                ShardState::Dead => {
                    // No chaos point here: the dead-probe is pure
                    // observation, and rejoin has its own `router.join`
                    // gate inside `attempt_rejoin`.
                    if handshake(shared, &shard) {
                        attempt_rejoin(shared, &shard);
                    }
                }
                ShardState::Live | ShardState::Suspect => {
                    // Chaos: a faulted probe counts as a failed probe —
                    // enough of them in a row and the router declares a
                    // live shard dead, exercising the failover path
                    // against a healthy fleet.
                    let healthy = nptsn_chaos::point("router.health").is_ok()
                        && probe_shard(shared, &shard);
                    if healthy {
                        shard.probe_failures.store(0, Ordering::SeqCst);
                        shard.set_state(ShardState::Live);
                        continue;
                    }
                    let consecutive = shard.probe_failures.fetch_add(1, Ordering::SeqCst) + 1;
                    if consecutive >= threshold {
                        declare_dead(shared, &shard);
                    } else {
                        shard.set_state(ShardState::Suspect);
                    }
                }
            }
        }
        // Sleep in short steps so shutdown stays prompt even under a
        // long interval; a sub-5ms interval (tight failure-detection
        // budgets) sleeps in one piece.
        let step = interval.min(Duration::from_millis(5));
        let deadline = Instant::now() + interval;
        while Instant::now() < deadline && !shared.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(step);
        }
    }
}

/// Declares a shard dead: removes it from the ring at a bumped
/// generation, then recovers its jobs. With replication the successor
/// shards already hold passive copies of everything the dead shard
/// accepted, so promotion (`POST /internal/promote`, a local requeue) is
/// the recovery path and the dead-log replay runs behind it as a
/// background safety net. Without replication the replay runs inline,
/// exactly as it always has.
fn declare_dead(shared: &Arc<Shared>, shard: &Arc<Shard>) {
    let _membership = shared.membership.lock().unwrap_or_else(|e| e.into_inner());
    if shard.state() == ShardState::Dead {
        return;
    }
    shard.set_state(ShardState::Dead);
    nptsn_obs::telemetry().router_failovers.inc();
    let survivors: Vec<String> = shared
        .shards_snapshot()
        .iter()
        .filter(|s| s.is_routable())
        .map(|s| s.name.clone())
        .collect();
    shared.swap_ring(shared.current_ring().retain(&survivors));
    if nptsn_obs::enabled() {
        nptsn_obs::event(
            nptsn_obs::Level::Info,
            "router.failover",
            &format!("shard {} declared dead, {} survivors", shard.name, survivors.len()),
        );
    }
    if survivors.is_empty() {
        return;
    }
    let replicated = shared.config.replication_factor >= 2;
    if replicated {
        promote_replicas(shared, &shard.name);
    }
    if shard.data_dir().is_none() {
        return;
    }
    if !replicated {
        // Classic inline replay: the health loop blocks until every
        // record from the dead log is re-ingested on a survivor.
        shared.replaying.store(true, Ordering::SeqCst);
        let report = replay::replay_dead_shard(shared, shard);
        shared.replaying.store(false, Ordering::SeqCst);
        log_replay(&shard.name, &report);
        return;
    }
    // Promotion already restored service; the replay now only backstops
    // replicas that were lost (e.g. a mirror that never landed), so it
    // runs off the hot path. Idempotent ingest makes the overlap safe.
    shared.replaying.store(true, Ordering::SeqCst);
    let background_shared = Arc::clone(shared);
    let background_shard = Arc::clone(shard);
    let spawned = std::thread::Builder::new()
        .name("nptsn-router-replay".to_string())
        .spawn(move || {
            let report = replay::replay_dead_shard(&background_shared, &background_shard);
            background_shared.replaying.store(false, Ordering::SeqCst);
            log_replay(&background_shard.name, &report);
        });
    if spawned.is_err() {
        shared.replaying.store(false, Ordering::SeqCst);
    }
}

fn log_replay(name: &str, report: &replay::ReplayReport) {
    if nptsn_obs::enabled() {
        nptsn_obs::event(
            nptsn_obs::Level::Info,
            "router.replay",
            &format!(
                "shard {name}: {} replayed, {} already known, {} failed, {} retries",
                report.replayed, report.already_known, report.failed, report.retries
            ),
        );
    }
}

/// Fans `POST /internal/promote?for=<dead>` out to every routable shard:
/// each activates the passive replica records it holds for the dead
/// primary. The sum lands in `nptsn_router_replica_promotions_total`.
fn promote_replicas(shared: &Arc<Shared>, dead: &str) -> u64 {
    let mut promoted = 0u64;
    for shard in shared.shards_snapshot() {
        if !shard.is_routable() {
            continue;
        }
        let mut client = shared.forward_client(shard.addr(), key_hash(promoted) ^ 0x50726f6d);
        match client.post(&format!("/internal/promote?for={}", url_encode(dead)), &[]) {
            Ok(response) if response.status == 200 => {
                let count = json_u64(&response.text(), "promoted").unwrap_or(0);
                promoted += count;
            }
            _ => {
                // A shard that cannot promote right now still holds its
                // replicas durably; the background replay covers the gap.
            }
        }
    }
    if promoted > 0 {
        nptsn_obs::telemetry().router_replica_promotions.add(promoted);
    }
    if nptsn_obs::enabled() {
        nptsn_obs::event(
            nptsn_obs::Level::Info,
            "router.promote",
            &format!("shard {dead}: {promoted} passive replicas promoted"),
        );
    }
    promoted
}

/// Re-admits a dead shard: handshake, ring re-entry at a bumped
/// generation, then a catch-up transfer of everything it missed. Returns
/// whether the shard is live again. Serialized with every other
/// membership transition.
fn attempt_rejoin(shared: &Arc<Shared>, shard: &Arc<Shard>) -> bool {
    let membership = shared.membership.lock().unwrap_or_else(|e| e.into_inner());
    if shard.state() != ShardState::Dead {
        return false; // Raced another transition; nothing to do.
    }
    // Chaos: a faulted rejoin leaves the shard dead — the health loop
    // simply tries again next interval, proving rejoin is re-entrant.
    if nptsn_chaos::point("router.join").is_err() {
        return false;
    }
    shard.set_state(ShardState::Rejoining);
    let admitted = (0..3).any(|_| handshake(shared, shard));
    if !admitted {
        shard.set_state(ShardState::Dead);
        return false;
    }
    // Ring first, catch-up second: the rejoiner starts taking new
    // submissions immediately (its store already holds everything from
    // before it died), and `migrating > 0` turns a premature 404 for an
    // in-transfer record into a retriable 503.
    shard.probe_failures.store(0, Ordering::SeqCst);
    shard.set_state(ShardState::Live);
    shared.swap_ring(shared.current_ring().add(&shard.name));
    nptsn_obs::telemetry().router_rejoins.inc();
    if nptsn_obs::enabled() {
        nptsn_obs::event(
            nptsn_obs::Level::Info,
            "router.rejoin",
            &format!(
                "shard {} rejoined at ring generation {}",
                shard.name,
                shared.ring_generation.load(Ordering::SeqCst)
            ),
        );
    }
    drop(membership);
    let moved = drain_to(shared, shard);
    if nptsn_obs::enabled() {
        nptsn_obs::event(
            nptsn_obs::Level::Info,
            "router.rejoin",
            &format!("shard {}: catch-up transferred {moved} records", shard.name),
        );
    }
    true
}

/// Transfers to `target` every record the current ring places there but
/// some other shard still holds. Runs in passes: the first pass walks
/// each donor's full live export, later passes only the delta after the
/// previous pass's cursor ([`LogStore::export_live_since`]), until a pass
/// moves nothing. Donor logs are read-only; ingest on the target is
/// idempotent, so overlap with concurrent writes is safe and convergence
/// is guaranteed by the cursor monotonically chasing the log tail.
fn drain_to(shared: &Arc<Shared>, target: &Arc<Shard>) -> u64 {
    shared.migrating.fetch_add(1, Ordering::SeqCst);
    let mut cursors: HashMap<String, ExportCursor> = HashMap::new();
    let mut moved_total = 0u64;
    for _pass in 0..5 {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let ring = shared.current_ring();
        let mut moved_this_pass = 0u64;
        for donor in shared.shards_snapshot() {
            if donor.name == target.name || !donor.is_routable() {
                continue;
            }
            let Some(dir) = donor.data_dir() else { continue };
            let cursor = cursors.get(&donor.name).copied();
            let Ok((records, next)) = LogStore::export_live_since(&dir, cursor) else {
                continue;
            };
            cursors.insert(donor.name.clone(), next);
            moved_this_pass += replay::transfer_owned(shared, target, &ring, &records);
        }
        moved_total += moved_this_pass;
        if moved_this_pass == 0 {
            break;
        }
    }
    shared.migrating.fetch_sub(1, Ordering::SeqCst);
    moved_total
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name("nptsn-router-conn".to_string())
            .spawn(move || handle_connection(&shared, stream));
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let io_timeout = (shared.config.io_timeout_ms > 0)
        .then(|| Duration::from_millis(shared.config.io_timeout_ms));
    if stream.set_read_timeout(io_timeout).is_err() || stream.set_write_timeout(io_timeout).is_err()
    {
        return;
    }
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        let started = Instant::now();
        let header_deadline = (shared.config.header_deadline_ms > 0)
            .then(|| started + Duration::from_millis(shared.config.header_deadline_ms));
        let mut is_shutdown = false;
        let response = match read_request_deadline(
            &mut reader,
            shared.config.max_body_bytes,
            header_deadline,
        ) {
            Ok(request) => {
                let _span = nptsn_obs::span("router.request");
                shared.metrics.http_requests.inc();
                is_shutdown = request.method == "POST" && request.path == "/shutdown";
                let mut response = route(shared, &request);
                response.close = response.close
                    || request.wants_close()
                    || shared.shutdown.load(Ordering::SeqCst);
                response
            }
            Err(HttpError::Closed) => return,
            Err(HttpError::BadRequest(message)) => {
                shared.metrics.http_requests.inc();
                let mut r = Response::error(400, &message);
                r.close = true;
                r
            }
            Err(HttpError::PayloadTooLarge { declared, limit }) => {
                shared.metrics.http_requests.inc();
                let mut r = Response::error(
                    413,
                    &format!("body of {declared} bytes exceeds the {limit}-byte limit"),
                );
                r.close = true;
                r
            }
            Err(HttpError::Timeout { mid_request: false }) => return,
            Err(HttpError::Timeout { mid_request: true }) => {
                shared.metrics.http_requests.inc();
                let mut r = Response::error(408, "request timed out");
                r.close = true;
                r
            }
            Err(HttpError::Io(_)) => return,
        };
        shared.metrics.response_counter(response.status).inc();
        let write_ok = response.write_to(&mut writer).is_ok();
        if is_shutdown {
            shared.begin_shutdown();
        }
        if !write_ok || response.close {
            return;
        }
    }
}

/// A `503` with the configured `Retry-After` hint.
fn unavailable(shared: &Arc<Shared>, message: &str) -> Response {
    Response::error(503, message)
        .with_header("Retry-After", shared.config.retry_after_secs.to_string())
}

/// Dispatches one request.
fn route(shared: &Arc<Shared>, request: &Request) -> Response {
    let path = request.path.as_str();
    let method = request.method.as_str();
    match (method, path) {
        ("GET", "/healthz") => healthz(shared),
        ("GET", "/readyz") => {
            if shared.shutdown.load(Ordering::SeqCst) {
                return unavailable(shared, "router is shutting down");
            }
            if shared.live_count() == 0 {
                return unavailable(shared, "no live shards");
            }
            let mut obj = Object::new();
            obj.str("status", "ready");
            obj.int("live_shards", shared.live_count() as u64);
            obj.int("shards_total", shared.shards_snapshot().len() as u64);
            obj.int("ring_generation", shared.ring_generation.load(Ordering::SeqCst));
            obj.int("next_id", shared.next_id.load(Ordering::SeqCst));
            Response::json(200, obj.finish())
        }
        ("POST", "/admin/shards") => route_admin_add_shard(shared, request),
        ("GET", "/metrics") => metrics_federated(shared),
        ("GET", "/debug/flight") => Response::json(200, nptsn_obs::flight_json()),
        ("POST", "/shutdown") => {
            let mut obj = Object::new();
            obj.str("status", "shutting down");
            let mut r = Response::json(200, obj.finish());
            r.close = true;
            r
        }
        ("POST", "/jobs/plan" | "/jobs/verify" | "/jobs/infer" | "/jobs/burn") => {
            route_submit(shared, request)
        }
        ("GET", "/checkpoints") => forward_first_live(shared, request),
        _ if path.starts_with("/checkpoints/") => route_checkpoint(shared, request),
        _ if path.starts_with("/jobs/") => route_job(shared, request),
        _ => Response::error(404, &format!("{method} {path} is not routed")),
    }
}

/// `GET /metrics`: the fleet-wide exposition. The router's own registry
/// and telemetry pass through unchanged; every live shard's `/metrics` is
/// scraped, each sample re-labeled with `shard="<name>"`, and the shard
/// counters additionally summed into `nptsn_fleet_*` series — one scrape
/// target tells the whole fleet's story. A shard that fails to answer
/// (or a `router.scrape` chaos fault) degrades that shard to absent and
/// counts in `nptsn_router_scrape_errors_total`; the exposition itself
/// always renders.
fn metrics_federated(shared: &Arc<Shared>) -> Response {
    let mut scraped: Vec<(String, String)> = Vec::new();
    for shard in shared.shards_snapshot() {
        if !shard.is_routable() {
            continue;
        }
        // Chaos: a faulted scrape is one shard missing from this render —
        // degrade, don't break.
        if nptsn_chaos::point("router.scrape").is_err() {
            shared.metrics.scrape_errors.inc();
            continue;
        }
        let mut client = Client::new(shard.addr());
        match client.get("/metrics") {
            Ok(response) if response.status == 200 => {
                scraped.push((shard.name.clone(), response.text()));
            }
            _ => shared.metrics.scrape_errors.inc(),
        }
    }
    let shards: Vec<(&str, &str)> =
        scraped.iter().map(|(name, text)| (name.as_str(), text.as_str())).collect();
    // Render the local registry after the scrape loop so the scrape
    // errors this very request counted are already in the exposition.
    let local = shared.metrics.render();
    let mut r = Response::text(200, nptsn_obs::promtext::federate(&local, &shards));
    r.content_type = "text/plain; version=0.0.4";
    r
}

/// `GET /jobs/<id>/trace`: the fleet-wide timeline for one job as a
/// Chrome trace-event document (loadable in Perfetto / `chrome://tracing`).
/// The router contributes its own forward/replay spans straight from the
/// flight ring; every live shard is asked for its persisted fragment and
/// the pieces merge under one trace id, each process on its own `pid` row.
/// A fragment recorded by a since-dead shard still appears — replay moved
/// the record to a survivor, and the record names its original recorder.
fn merged_trace(shared: &Arc<Shared>, id: u64) -> Response {
    let trace = trace_for_job(id);
    let router_spans: Vec<MergedSpan> = nptsn_obs::flight_spans_for_trace(trace.trace_id)
        .into_iter()
        .map(|e| MergedSpan {
            name: e.name.to_string(),
            tid: e.tid,
            start_ns: e.ts_ns,
            dur_ns: e.dur_ns,
            self_ns: e.dur_ns,
            trace_id: e.trace_id,
        })
        .collect();
    // One process row per known shard (dead ones included — their spans
    // may have been replayed onto a survivor), keyed by the name the
    // *record* carries, which is the shard that recorded it.
    let fleet = shared.shards_snapshot();
    let mut order: Vec<String> = fleet.iter().map(|s| s.name.clone()).collect();
    let mut per_shard: std::collections::BTreeMap<String, Vec<MergedSpan>> =
        order.iter().map(|name| (name.clone(), Vec::new())).collect();
    let mut found = false;
    for shard in &fleet {
        if !shard.is_routable() {
            continue;
        }
        let mut client = Client::new(shard.addr());
        let Ok(response) = client.get(&format!("/jobs/{id}/trace")) else { continue };
        if response.status != 200 {
            continue;
        }
        found = true;
        let Ok(doc) = nptsn_obs::json::parse(&response.text()) else { continue };
        let recorder = doc
            .get("shard")
            .and_then(|v| v.as_str())
            .filter(|s| !s.is_empty())
            .unwrap_or(&shard.name)
            .to_string();
        let Some(spans) = doc.get("spans").and_then(|v| v.as_arr()) else { continue };
        let bucket = per_shard.entry(recorder.clone()).or_insert_with(|| {
            order.push(recorder.clone());
            Vec::new()
        });
        for span in spans {
            let name = span.get("name").and_then(|v| v.as_str()).unwrap_or("?").to_string();
            let num = |key: &str| span.get(key).and_then(|v| v.as_num()).unwrap_or(0.0) as u64;
            bucket.push(MergedSpan {
                name,
                tid: num("tid"),
                start_ns: num("start_ns"),
                dur_ns: num("dur_ns"),
                self_ns: num("self_ns"),
                trace_id: trace.trace_id,
            });
        }
    }
    if !found && router_spans.is_empty() {
        return Response::error(404, &format!("no trace for job {id}"));
    }
    let mut processes = vec![ProcessTrace { name: "router".to_string(), spans: router_spans }];
    for name in &order {
        processes.push(ProcessTrace {
            name: name.clone(),
            spans: per_shard.remove(name).unwrap_or_default(),
        });
    }
    Response::json(200, nptsn_obs::chrome_trace_merged(&processes))
}

/// `GET /healthz`: the router's own liveness plus the shard membership
/// table (state, consecutive probe failures).
fn healthz(shared: &Arc<Shared>) -> Response {
    let shards: Vec<String> = shared
        .shards_snapshot()
        .iter()
        .map(|s| {
            let mut obj = Object::new();
            obj.str("name", &s.name);
            obj.str("addr", &s.addr().to_string());
            obj.str("state", s.state().label());
            obj.bool("alive", s.is_routable());
            obj.int("probe_failures", s.probe_failures.load(Ordering::SeqCst) as u64);
            obj.finish()
        })
        .collect();
    let mut obj = Object::new();
    obj.str("status", "ok");
    obj.int("live_shards", shared.live_count() as u64);
    obj.int("ring_shards", shared.current_ring().len() as u64);
    obj.int("ring_generation", shared.ring_generation.load(Ordering::SeqCst));
    obj.bool("replaying", shared.replaying.load(Ordering::SeqCst));
    obj.bool("migrating", shared.migrating.load(Ordering::SeqCst) > 0);
    obj.raw("shards", &format!("[{}]", shards.join(",")));
    Response::json(200, obj.finish())
}

/// `POST /admin/shards`: live membership change. The JSON body names a
/// shard (`{"name":..,"addr":..,"data_dir":..}`). An unknown name is a
/// scale-out join: the shard is handshake-probed, appended to the fleet,
/// entered on the ring at a bumped generation, and a background migration
/// drain moves the ≤1/N of existing records the ring now places on it. A
/// known *dead* name is a re-announcement (the restarted process rarely
/// gets its old port back): the address is updated and the full rejoin
/// path — handshake, ring re-entry, synchronous catch-up — runs before
/// the response. A known live name is a `409`.
fn route_admin_add_shard(shared: &Arc<Shared>, request: &Request) -> Response {
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return Response::error(400, "body is not UTF-8");
    };
    let Ok(doc) = nptsn_obs::json::parse(text) else {
        return Response::error(400, "body is not valid JSON");
    };
    let Some(name) = doc.get("name").and_then(|v| v.as_str()).filter(|s| !s.is_empty())
    else {
        return Response::error(400, "missing shard name");
    };
    let Some(addr) =
        doc.get("addr").and_then(|v| v.as_str()).and_then(|s| s.parse::<SocketAddr>().ok())
    else {
        return Response::error(400, "missing or invalid shard addr");
    };
    let data_dir = doc
        .get("data_dir")
        .and_then(|v| v.as_str())
        .filter(|s| !s.is_empty())
        .map(PathBuf::from);

    if let Some(existing) = shared.shard_named(name) {
        if existing.state() != ShardState::Dead {
            return Response::error(
                409,
                &format!("shard {name} is already {}", existing.state().label()),
            );
        }
        // Re-announcement of a dead shard at a (possibly new) address.
        *existing.addr.lock().unwrap_or_else(|e| e.into_inner()) = addr;
        existing.clear_pool();
        if data_dir.is_some() {
            *existing.data_dir.lock().unwrap_or_else(|e| e.into_inner()) = data_dir;
        }
        // `attempt_rejoin` can lose a benign race: the health loop's own
        // dead-shard handshake may complete the rejoin first, in which
        // case the shard is already routable and this announcement
        // succeeded in every way that matters.
        return if attempt_rejoin(shared, &existing) || existing.is_routable() {
            let mut obj = Object::new();
            obj.str("shard", name);
            obj.str("status", "rejoined");
            obj.int("ring_generation", shared.ring_generation.load(Ordering::SeqCst));
            Response::json(200, obj.finish())
        } else {
            Response::error(502, &format!("shard {name} failed the re-admission handshake"))
        };
    }

    // Scale-out join of a brand-new shard.
    if nptsn_chaos::point("router.join").is_err() {
        return unavailable(shared, "membership change rejected, retry");
    }
    let newcomer = Arc::new(Shard::new(&ShardSpec {
        name: name.to_string(),
        addr,
        data_dir,
    }));
    if !(0..3).any(|_| handshake(shared, &newcomer)) {
        return Response::error(502, &format!("shard {name} failed the admission handshake"));
    }
    {
        let membership = shared.membership.lock().unwrap_or_else(|e| e.into_inner());
        {
            let mut shards = shared.shards.write().unwrap_or_else(|e| e.into_inner());
            if shards.iter().any(|s| s.name == newcomer.name) {
                return Response::error(409, &format!("shard {name} joined concurrently"));
            }
            shards.push(Arc::clone(&newcomer));
        }
        shared.swap_ring(shared.current_ring().add(&newcomer.name));
        drop(membership);
    }
    if nptsn_obs::enabled() {
        nptsn_obs::event(
            nptsn_obs::Level::Info,
            "router.join",
            &format!(
                "shard {name} joined at ring generation {}",
                shared.ring_generation.load(Ordering::SeqCst)
            ),
        );
    }
    // The newcomer serves fresh submissions immediately; existing records
    // it now owns migrate over in the background (`migrating > 0` shields
    // reads racing the drain).
    let drain_shared = Arc::clone(shared);
    let drain_target = Arc::clone(&newcomer);
    let _ = std::thread::Builder::new()
        .name("nptsn-router-migrate".to_string())
        .spawn(move || {
            let moved = drain_to(&drain_shared, &drain_target);
            if nptsn_obs::enabled() {
                nptsn_obs::event(
                    nptsn_obs::Level::Info,
                    "router.migrate",
                    &format!(
                        "shard {}: migration drain moved {moved} records",
                        drain_target.name
                    ),
                );
            }
        });
    let mut obj = Object::new();
    obj.str("shard", name);
    obj.str("status", "joined");
    obj.int("ring_generation", shared.ring_generation.load(Ordering::SeqCst));
    obj.int("live_shards", shared.live_count() as u64);
    Response::json(200, obj.finish())
}

/// Percent-encodes one query component for the forwarded request line.
/// The inverse of the minimal `url_decode` on the other side.
fn url_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Rebuilds the request target (path + encoded query) for forwarding.
fn forward_target(request: &Request) -> String {
    let mut target = request.path.clone();
    for (i, (key, value)) in request.query.iter().enumerate() {
        target.push(if i == 0 { '?' } else { '&' });
        target.push_str(&url_encode(key));
        if !value.is_empty() {
            target.push('=');
            target.push_str(&url_encode(value));
        }
    }
    target
}

/// Headers worth forwarding: everything except the hop-by-hop fields the
/// client rebuilds and the id/trace/replication headers the router owns.
/// The router is the trace minter — an incoming `X-Nptsn-Trace` is
/// dropped, never relayed, so one job cannot impersonate another's
/// timeline; `X-Nptsn-Replica` and `X-Nptsn-Passive-For` are likewise
/// stripped so a client cannot steer replication.
fn forward_headers(
    request: &Request,
    job_id: Option<u64>,
    trace: Option<TraceContext>,
    replica: Option<SocketAddr>,
) -> Vec<(&str, String)> {
    let mut headers: Vec<(&str, String)> = request
        .headers
        .iter()
        .filter(|(name, _)| {
            !matches!(
                name.as_str(),
                "host"
                    | "content-length"
                    | "connection"
                    | "x-nptsn-job-id"
                    | "x-nptsn-trace"
                    | "x-nptsn-replica"
                    | "x-nptsn-passive-for"
            )
        })
        .map(|(name, value)| (name.as_str(), value.clone()))
        .collect();
    if let Some(id) = job_id {
        headers.push(("X-Nptsn-Job-Id", id.to_string()));
    }
    if let Some(trace) = trace {
        headers.push((nptsn_obs::TRACE_HEADER, trace.header_value()));
    }
    if let Some(addr) = replica {
        headers.push(("X-Nptsn-Replica", addr.to_string()));
    }
    headers
}

/// Forwards `request` to `shard`. The chaos site `router.forward` fires
/// before any bytes leave the router, so an injected fault is always a
/// clean un-acked failure. With `replica` set, the target shard mirrors
/// the accepted record to that address as a passive copy.
fn forward(
    shared: &Arc<Shared>,
    shard: &Arc<Shard>,
    request: &Request,
    job_id: Option<u64>,
    trace: Option<TraceContext>,
    replica: Option<SocketAddr>,
) -> io::Result<ClientResponse> {
    nptsn_chaos::point("router.forward").map_err(io::Error::from)?;
    nptsn_obs::telemetry().router_forwards.inc();
    let seed = key_hash(job_id.unwrap_or(0));
    let mut client = shard.checkout().with_backoff(shared.forward_backoff(seed));
    let started = Instant::now();
    let result = client.send(
        &request.method,
        &forward_target(request),
        &forward_headers(request, job_id, trace, replica),
        &request.body,
    );
    shared.metrics.forward_seconds.observe(started.elapsed().as_secs_f64());
    if result.is_ok() {
        shard.checkin(client);
    }
    result
}

/// One forwarding attempt with no client-side retries — for callers that
/// own the retry loop themselves and re-resolve ownership between
/// attempts (see `route_job`), so a death mid-request fails over with
/// the ring instead of pinning on the dead shard's backoff schedule.
fn forward_once(
    shared: &Arc<Shared>,
    shard: &Arc<Shard>,
    request: &Request,
    trace: Option<TraceContext>,
) -> io::Result<ClientResponse> {
    nptsn_chaos::point("router.forward").map_err(io::Error::from)?;
    nptsn_obs::telemetry().router_forwards.inc();
    let mut client = shard.checkout();
    let started = Instant::now();
    let result = client.send(
        &request.method,
        &forward_target(request),
        &forward_headers(request, None, trace, None),
        &request.body,
    );
    shared.metrics.forward_seconds.observe(started.elapsed().as_secs_f64());
    if result.is_ok() {
        shard.checkin(client);
    }
    result
}

/// Maps an upstream response onto the router's (static) content types.
fn relay(shared: &Arc<Shared>, upstream: ClientResponse) -> Response {
    let content_type = match upstream.header("content-type") {
        Some("application/json") => "application/json",
        Some(ct) if ct.starts_with("text/plain; version=0.0.4") => "text/plain; version=0.0.4",
        Some(ct) if ct.starts_with("text/plain") => "text/plain; charset=utf-8",
        _ => "application/octet-stream",
    };
    let mut response = Response {
        status: upstream.status,
        content_type,
        body: upstream.body,
        extra_headers: Vec::new(),
        close: false,
    };
    if let Some(hint) = upstream.headers.iter().find(|(n, _)| n == "retry-after") {
        response = response.with_header("Retry-After", hint.1.clone());
    } else if upstream.status == 503 {
        response =
            response.with_header("Retry-After", shared.config.retry_after_secs.to_string());
    }
    response
}

/// `POST /jobs/*`: assign an id, place it, forward with `X-Nptsn-Job-Id`.
/// A `409` means the watermark lagged a shard (e.g. a router restart): the
/// id is burned, the watermark refreshed from the fleet and the submission
/// retried under a fresh id. A transport failure is answered `503` — the
/// job was never acked, so the client's retry cannot duplicate it.
fn route_submit(shared: &Arc<Shared>, request: &Request) -> Response {
    for _ in 0..3 {
        let ring = shared.current_ring();
        let id = shared.next_id.fetch_add(1, Ordering::SeqCst) + 1;
        let Some(owner) = ring.place(id).and_then(|name| shared.routable_shard(name)) else {
            return unavailable(shared, "no live shards");
        };
        // Replication: name the key's ring successor so the owner mirrors
        // the accepted record there as a passive replica. The successor
        // is exactly where the key lands if the owner leaves the ring, so
        // a later promotion never moves the record a second time.
        let replica = (shared.config.replication_factor >= 2)
            .then(|| ring.successor(id).and_then(|name| shared.routable_shard(name)))
            .flatten()
            .map(|shard| shard.addr());
        // Mint the job's trace context and work under it: the forward
        // span below lands in the flight ring tagged with the same trace
        // id the shard adopts from the stamped header.
        let trace = trace_for_job(id);
        let _trace = nptsn_obs::with_trace(Some(trace));
        let _span = nptsn_obs::span("router.forward");
        match forward(shared, &owner, request, Some(id), Some(trace), replica) {
            Ok(upstream) if upstream.status == 409 => {
                shared.metrics.submit_conflicts.inc();
                for other in shared.shards_snapshot() {
                    if other.is_routable() {
                        probe_shard(shared, &other);
                    }
                }
            }
            Ok(upstream) => return relay(shared, upstream),
            Err(_) => {
                shared.metrics.forward_errors.inc();
                return unavailable(shared, "shard unreachable, job not accepted");
            }
        }
    }
    unavailable(shared, "id watermark contention, retry")
}

/// `GET`/`DELETE /jobs/<id>[...]`: forward to the ring owner of `<id>`.
fn route_job(shared: &Arc<Shared>, request: &Request) -> Response {
    let rest = &request.path["/jobs/".len()..];
    let Ok(id) = rest.split('/').next().unwrap_or("").parse::<u64>() else {
        return Response::error(400, "job id is not a number");
    };
    if request.method == "GET" && rest.split('/').nth(1) == Some("trace") {
        return merged_trace(shared, id);
    }
    let trace = trace_for_job(id);
    let _trace = nptsn_obs::with_trace(Some(trace));
    let _span = nptsn_obs::span("router.forward");
    // Job reads re-resolve ownership between attempts: a poll caught in
    // flight by a shard death migrates to the new owner the moment the
    // ring is swapped, instead of burning a whole retry budget against
    // the dead address. This is what makes replica promotion pause-free
    // from the client's side — the first post-swap attempt already lands
    // on the successor holding the promoted record.
    let deadline = Instant::now() + Duration::from_millis(shared.config.forward_deadline_ms);
    let mut delay = Duration::from_millis(2);
    loop {
        let ring = shared.current_ring();
        let Some(owner) = ring.place(id).and_then(|name| shared.routable_shard(name)) else {
            return unavailable(shared, "no live shards");
        };
        let in_transfer = shared.replaying.load(Ordering::SeqCst)
            || shared.migrating.load(Ordering::SeqCst) > 0;
        match forward_once(shared, &owner, request, Some(trace)) {
            Ok(upstream) if upstream.status == 404 && in_transfer => {
                // The job may be mid-flight between shards (dead-log
                // replay, rejoin catch-up, or a migration drain); a retry
                // lands after the transfer settles.
                return unavailable(shared, "job may be mid-transfer, retry");
            }
            Ok(upstream) => return relay(shared, upstream),
            Err(_) => {
                shared.metrics.forward_errors.inc();
                if Instant::now() + delay > deadline {
                    return unavailable(shared, "shard unreachable");
                }
                std::thread::sleep(delay);
                // Cap low: each retry re-resolves the ring, so the cap
                // bounds how far past a failover's ring swap a caught
                // request can oversleep — it is paid straight into the
                // kill-to-served latency the fleet promises.
                delay = (delay * 2).min(Duration::from_millis(10));
            }
        }
    }
}

/// Forwards a read to the first live shard (checkpoint listings are
/// identical fleet-wide because writes fan out to every live shard).
fn forward_first_live(shared: &Arc<Shared>, request: &Request) -> Response {
    let Some(shard) = shared.shards_snapshot().into_iter().find(|s| s.is_routable()) else {
        return unavailable(shared, "no live shards");
    };
    match forward(shared, &shard, request, None, None, None) {
        Ok(upstream) => relay(shared, upstream),
        Err(_) => {
            shared.metrics.forward_errors.inc();
            unavailable(shared, "shard unreachable")
        }
    }
}

/// `/checkpoints/<name>`: reads go to the first live shard; writes
/// (`PUT`/`DELETE`) fan out to **every** live shard so any shard can run
/// an infer job against any registered checkpoint. A partial write is a
/// `503`: the client retries the whole fan-out (registration is
/// idempotent shard-side).
fn route_checkpoint(shared: &Arc<Shared>, request: &Request) -> Response {
    if request.method != "PUT" && request.method != "DELETE" {
        return forward_first_live(shared, request);
    }
    let mut last = None;
    for shard in shared.shards_snapshot() {
        if !shard.is_routable() {
            continue;
        }
        match forward(shared, &shard, request, None, None, None) {
            Ok(upstream) if upstream.status < 300 => last = Some(upstream),
            Ok(upstream) => return relay(shared, upstream),
            Err(_) => {
                shared.metrics.forward_errors.inc();
                return unavailable(shared, "checkpoint fan-out incomplete, retry");
            }
        }
    }
    match last {
        Some(upstream) => relay(shared, upstream),
        None => unavailable(shared, "no live shards"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_u64_reads_flat_bodies() {
        assert_eq!(json_u64("{\"a\":3,\"next_id\":41}", "next_id"), Some(41));
        assert_eq!(json_u64("{\"next_id\":\"x\"}", "next_id"), None);
        assert_eq!(json_u64("{}", "next_id"), None);
    }

    #[test]
    fn forward_targets_round_trip_the_query() {
        let request = Request {
            method: "POST".to_string(),
            path: "/jobs/burn".to_string(),
            query: vec![("millis".to_string(), "5".to_string()), ("q".to_string(), "a b".to_string())],
            headers: Vec::new(),
            body: Vec::new(),
        };
        assert_eq!(forward_target(&request), "/jobs/burn?millis=5&q=a%20b");
    }

    #[test]
    fn hop_by_hop_headers_are_stripped() {
        let request = Request {
            method: "POST".to_string(),
            path: "/jobs/plan".to_string(),
            query: Vec::new(),
            headers: vec![
                ("host".to_string(), "x".to_string()),
                ("content-length".to_string(), "3".to_string()),
                ("connection".to_string(), "close".to_string()),
                ("x-nptsn-job-id".to_string(), "999".to_string()),
                ("x-nptsn-trace".to_string(), "forged".to_string()),
                ("x-nptsn-replica".to_string(), "10.0.0.1:1".to_string()),
                ("x-nptsn-passive-for".to_string(), "mallory".to_string()),
                ("x-problem-length".to_string(), "7".to_string()),
            ],
            body: Vec::new(),
        };
        let headers = forward_headers(&request, Some(12), None, None);
        assert_eq!(
            headers,
            vec![("x-problem-length", "7".to_string()), ("X-Nptsn-Job-Id", "12".to_string())]
        );
        // With a minted trace, the router's own header is appended — the
        // forged incoming one stays stripped.
        let trace = trace_for_job(12);
        let headers = forward_headers(&request, Some(12), Some(trace), None);
        assert!(headers
            .iter()
            .any(|(name, value)| *name == "X-Nptsn-Trace" && *value == trace.header_value()));
        // The replica target the router itself picks is stamped; the
        // client-supplied one above stays stripped.
        let replica: SocketAddr = "127.0.0.1:9999".parse().unwrap();
        let headers = forward_headers(&request, Some(12), None, Some(replica));
        assert!(headers
            .iter()
            .any(|(name, value)| *name == "X-Nptsn-Replica" && *value == "127.0.0.1:9999"));
        assert!(!headers.iter().any(|(_, value)| value == "10.0.0.1:1"));
    }

    #[test]
    fn json_str_reads_flat_bodies() {
        assert_eq!(json_str("{\"shard\":\"s1\",\"x\":2}", "shard"), Some("s1"));
        assert_eq!(json_str("{\"shard\":\"\"}", "shard"), Some(""));
        assert_eq!(json_str("{}", "shard"), None);
    }

    #[test]
    fn shard_states_round_trip_and_label() {
        for state in
            [ShardState::Live, ShardState::Suspect, ShardState::Dead, ShardState::Rejoining]
        {
            assert_eq!(ShardState::from_u8(state as u8), state);
            assert!(!state.label().is_empty());
        }
        let spec = ShardSpec {
            name: "s0".to_string(),
            addr: "127.0.0.1:1".parse().unwrap(),
            data_dir: None,
        };
        let shard = Shard::new(&spec);
        assert_eq!(shard.state(), ShardState::Live);
        assert!(shard.is_routable());
        shard.set_state(ShardState::Suspect);
        assert!(shard.is_routable());
        shard.set_state(ShardState::Dead);
        assert!(!shard.is_routable());
        shard.set_state(ShardState::Rejoining);
        assert!(!shard.is_routable());
    }

    #[test]
    fn job_traces_are_deterministic_and_distinct() {
        assert_eq!(trace_for_job(7), trace_for_job(7));
        assert_ne!(trace_for_job(7).trace_id, trace_for_job(8).trace_id);
        assert_ne!(trace_for_job(7).trace_id, 0);
    }

    #[test]
    fn bind_rejects_empty_and_duplicate_fleets() {
        assert!(Router::bind(RouterConfig::default()).is_err());
        let spec = ShardSpec {
            name: "s0".to_string(),
            addr: "127.0.0.1:1".parse().unwrap(),
            data_dir: None,
        };
        let config = RouterConfig {
            shards: vec![spec.clone(), spec],
            ..RouterConfig::default()
        };
        assert!(Router::bind(config).is_err());
    }
}
