//! The router process: an HTTP front tier that owns job-id assignment,
//! places each job on a shard via the consistent-hash [`Ring`], and fans
//! requests out to the serve fleet over the retrying
//! [`nptsn_serve::Client`].
//!
//! | Route | Behavior |
//! |---|---|
//! | `GET /healthz` | router liveness + per-shard alive/dead table |
//! | `GET /readyz` | `200` iff at least one shard is live |
//! | `GET /metrics` | federated: router registry + telemetry + every live shard's metrics re-labeled `shard="<name>"` + `nptsn_fleet_*` sums |
//! | `GET /jobs/<id>/trace` | merged fleet-wide Chrome trace for the job (router + shard spans, one trace id) |
//! | `GET /debug/flight` | the router's in-memory flight-recorder ring |
//! | `POST /shutdown` | drain and stop the router (shards keep running) |
//! | `POST /jobs/{plan,verify,infer,burn}` | assign an id, place it on the ring, forward with `X-Nptsn-Job-Id` |
//! | `GET/DELETE /jobs/<id>` | forward to the ring owner of `<id>` |
//! | `/checkpoints`, `/checkpoints/<name>` | reads from the first live shard; writes fan out to **every** live shard |
//!
//! The durability contract is inherited from the shards, not weakened by
//! the extra hop: the router answers `202` only by relaying a shard's
//! `202`, which the shard sends only after the job record is durable. A
//! forward that dies mid-flight is answered `503` — the client retries and
//! no acked job existed. When a shard is declared dead (K consecutive
//! failed `/readyz` probes), its ring range is rebalanced to the survivors
//! and its segment log is replayed onto them ([`crate::replay`]), so every
//! acked job reaches a terminal state on some live shard.

use std::collections::HashSet;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use nptsn_format::json::Object;
use nptsn_obs::metrics::{Counter, Gauge, Histogram, Registry};
use nptsn_obs::{MergedSpan, ProcessTrace, TraceContext};
use nptsn_serve::client::{BackoffConfig, Client, ClientResponse};
use nptsn_serve::http::{read_request_deadline, HttpError, Request, Response};

use crate::replay;
use crate::ring::{key_hash, Ring};

/// One shard of the serve fleet, as configured at router start.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// The shard's stable name — the identity hashed onto the ring.
    pub name: String,
    /// The shard's listen address.
    pub addr: SocketAddr,
    /// The shard's `--data-dir`, when the router can reach it for
    /// dead-shard replay. `None` disables replay for this shard.
    pub data_dir: Option<PathBuf>,
}

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Listen address; port `0` picks a free port.
    pub addr: String,
    /// The shard fleet. Fixed for the router's lifetime; shards can die
    /// but not join.
    pub shards: Vec<ShardSpec>,
    /// Virtual nodes per shard on the ring.
    pub vnodes: u32,
    /// Health-probe period per shard, in milliseconds.
    pub health_interval_ms: u64,
    /// Consecutive failed probes before a shard is declared dead.
    pub health_failures: u32,
    /// Total elapsed cap on one forwarded request's retry schedule
    /// ([`BackoffConfig::deadline_ms`]) — one slow shard cannot pin a
    /// routed request beyond this.
    pub forward_deadline_ms: u64,
    /// Largest accepted request body (mirrors the shard limit).
    pub max_body_bytes: usize,
    /// Per-read/write socket timeout on router connections.
    pub io_timeout_ms: u64,
    /// Total deadline on reading one request head.
    pub header_deadline_ms: u64,
    /// `Retry-After` hint on `503` answers, in seconds.
    pub retry_after_secs: u32,
    /// Flight-recorder ring capacity in entries (`0` uses the built-in
    /// default). Armed unconditionally at bind, like the shards.
    pub flight_capacity: usize,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            shards: Vec::new(),
            vnodes: 64,
            health_interval_ms: 100,
            health_failures: 3,
            forward_deadline_ms: 2_000,
            max_body_bytes: 4 * 1024 * 1024,
            io_timeout_ms: 30_000,
            header_deadline_ms: 10_000,
            retry_after_secs: 1,
            flight_capacity: 0,
        }
    }
}

/// Router-local metrics (the cross-cutting `nptsn_router_*_total` series
/// live in the process-wide telemetry so benchmarks and the CLI see them).
#[derive(Debug)]
pub struct RouterMetrics {
    /// The router's own registry; render it for `/metrics`.
    pub registry: Registry,
    /// Requests received by the router (`nptsn_router_http_requests_total`).
    pub http_requests: Arc<Counter>,
    /// Forwards that failed after retries (`nptsn_router_forward_errors_total`).
    pub forward_errors: Arc<Counter>,
    /// Submissions re-tried under a fresh id after a `409` id collision
    /// (`nptsn_router_submit_conflicts_total`).
    pub submit_conflicts: Arc<Counter>,
    /// Live shards on the ring (`nptsn_router_live_shards`).
    pub live_shards: Arc<Gauge>,
    /// Latency of one forwarded request, retries included
    /// (`nptsn_router_forward_duration_seconds`).
    pub forward_seconds: Arc<Histogram>,
    /// Latency of one replayed record's ingest, retries included
    /// (`nptsn_router_replay_duration_seconds`).
    pub replay_seconds: Arc<Histogram>,
    /// Shard `/metrics` scrapes that failed — the federated exposition
    /// degraded to the shards that answered
    /// (`nptsn_router_scrape_errors_total`).
    pub scrape_errors: Arc<Counter>,
}

impl RouterMetrics {
    /// Registers the router metric set on a fresh registry.
    pub fn new() -> RouterMetrics {
        let registry = Registry::new();
        let http_requests =
            registry.counter("nptsn_router_http_requests_total", "Requests received by the router");
        let forward_errors = registry
            .counter("nptsn_router_forward_errors_total", "Forwards that failed after retries");
        let submit_conflicts = registry.counter(
            "nptsn_router_submit_conflicts_total",
            "Submissions retried under a fresh id after a 409",
        );
        let live_shards =
            registry.gauge("nptsn_router_live_shards", "Shards currently live on the ring");
        let forward_seconds = registry.histogram(
            "nptsn_router_forward_duration_seconds",
            "Latency of one forwarded request, retries included",
            &Histogram::latency_bounds(),
        );
        let replay_seconds = registry.histogram(
            "nptsn_router_replay_duration_seconds",
            "Latency of one replayed record's ingest, retries included",
            &Histogram::latency_bounds(),
        );
        let scrape_errors = registry.counter(
            "nptsn_router_scrape_errors_total",
            "Shard metrics scrapes that failed during federation",
        );
        RouterMetrics {
            registry,
            http_requests,
            forward_errors,
            submit_conflicts,
            live_shards,
            forward_seconds,
            replay_seconds,
            scrape_errors,
        }
    }

    /// The full `/metrics` exposition: the router registry followed by the
    /// process-wide telemetry (which carries `nptsn_router_forwards_total`,
    /// `nptsn_router_failovers_total`, `nptsn_router_replayed_jobs_total`
    /// and `nptsn_router_replay_retries_total`).
    pub fn render(&self) -> String {
        let mut text = self.registry.render();
        text.push_str(&nptsn_obs::telemetry().registry.render());
        text
    }

    /// The per-status-code response counter
    /// (`nptsn_router_http_responses_total`).
    pub fn response_counter(&self, code: u16) -> Arc<Counter> {
        self.registry.counter_labeled(
            "nptsn_router_http_responses_total",
            &format!("code=\"{code}\""),
            "Router responses by status code",
        )
    }
}

impl Default for RouterMetrics {
    fn default() -> RouterMetrics {
        RouterMetrics::new()
    }
}

/// One shard's runtime state. Death is one-way: a dead shard's range has
/// been rebalanced and its log replayed, so letting it rejoin would split
/// ownership of the replayed ids.
pub(crate) struct Shard {
    pub(crate) spec: ShardSpec,
    pub(crate) alive: AtomicBool,
}

/// State shared between the acceptor, connection handlers and the health
/// thread.
pub(crate) struct Shared {
    pub(crate) config: RouterConfig,
    pub(crate) local_addr: SocketAddr,
    pub(crate) shards: Vec<Shard>,
    /// The current placement ring over live shards. Swapped atomically
    /// (short lock, `Arc` clone out) when a shard dies.
    pub(crate) ring: Mutex<Arc<Ring>>,
    /// The highest job id assigned or observed anywhere in the fleet.
    pub(crate) next_id: AtomicU64,
    /// Set while a dead shard's log is being replayed — a `404` for a job
    /// in flight between shards answers `503 Retry-After` instead.
    pub(crate) replaying: AtomicBool,
    pub(crate) shutdown: AtomicBool,
    pub(crate) metrics: Arc<RouterMetrics>,
    done: Mutex<bool>,
    done_cv: Condvar,
}

impl Shared {
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the acceptor so it observes the flag.
        let _ = TcpStream::connect(self.local_addr);
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        *done = true;
        self.done_cv.notify_all();
    }

    pub(crate) fn current_ring(&self) -> Arc<Ring> {
        Arc::clone(&self.ring.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// The index of the live shard named `name`, if any.
    pub(crate) fn live_index(&self, name: &str) -> Option<usize> {
        self.shards
            .iter()
            .position(|s| s.spec.name == name && s.alive.load(Ordering::SeqCst))
    }

    fn live_count(&self) -> usize {
        self.shards.iter().filter(|s| s.alive.load(Ordering::SeqCst)).count()
    }

    /// A retrying client for one forwarded request. The jitter seed is
    /// derived from the request key so a replayed run retries on the same
    /// schedule.
    pub(crate) fn forward_client(&self, shard: usize, seed: u64) -> Client {
        Client::new(self.shards[shard].spec.addr).with_backoff(BackoffConfig {
            max_retries: 4,
            base_ms: 20,
            cap_ms: 250,
            seed,
            deadline_ms: self.config.forward_deadline_ms,
        })
    }
}

/// The running router: a TCP acceptor plus the health/failover thread.
pub struct Router {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    health: Option<JoinHandle<()>>,
}

impl Router {
    /// Binds the listener, seeds the id watermark from the shards'
    /// `/readyz` reports (best effort — the health loop keeps it fresh and
    /// `409` collisions are retried under a fresh id), and starts the
    /// acceptor and health threads.
    ///
    /// # Errors
    ///
    /// `InvalidInput` when the shard list is empty or has duplicate names;
    /// otherwise whatever binding the listener returns.
    pub fn bind(config: RouterConfig) -> io::Result<Router> {
        // Arm the flight recorder before anything can record: it is the
        // always-on ring behind `/debug/flight` and the source of the
        // router's own spans in merged per-job timelines.
        nptsn_obs::flight_init(config.flight_capacity);
        if config.shards.is_empty() {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "no shards configured"));
        }
        let mut seen = HashSet::new();
        for spec in &config.shards {
            if !seen.insert(spec.name.as_str()) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("duplicate shard name {:?}", spec.name),
                ));
            }
        }
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let names: Vec<String> = config.shards.iter().map(|s| s.name.clone()).collect();
        let ring = Arc::new(Ring::build(&names, config.vnodes));
        let shards: Vec<Shard> = config
            .shards
            .iter()
            .map(|spec| Shard { spec: spec.clone(), alive: AtomicBool::new(true) })
            .collect();
        let metrics = Arc::new(RouterMetrics::new());
        metrics.live_shards.set(shards.len() as i64);
        let shared = Arc::new(Shared {
            config,
            local_addr,
            shards,
            ring: Mutex::new(ring),
            next_id: AtomicU64::new(0),
            replaying: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            metrics,
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });

        // Seed the watermark before taking traffic so the first assigned
        // id is above anything already durable on a shard.
        for index in 0..shared.shards.len() {
            for attempt in 0..3u32 {
                if probe_shard(&shared, index) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(20 << attempt));
            }
        }

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("nptsn-router-acceptor".to_string())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn acceptor thread")
        };
        let health = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("nptsn-router-health".to_string())
                .spawn(move || health_loop(&shared))
                .expect("spawn health thread")
        };
        Ok(Router { shared, acceptor: Some(acceptor), health: Some(health) })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// The router metrics (for embedding / tests).
    pub fn metrics(&self) -> Arc<RouterMetrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// The current placement ring (for embedding / tests).
    pub fn ring(&self) -> Arc<Ring> {
        self.shared.current_ring()
    }

    /// The id watermark — the highest job id assigned or observed.
    pub fn next_id_watermark(&self) -> u64 {
        self.shared.next_id.load(Ordering::SeqCst)
    }

    /// Initiates shutdown, as `POST /shutdown` would. Shards are not
    /// touched — the router is a front tier, not a supervisor.
    pub fn stop(&self) {
        self.shared.begin_shutdown();
    }

    /// Blocks until shutdown is requested, then joins the acceptor and
    /// health threads.
    pub fn wait(mut self) {
        {
            let mut done = self.shared.done.lock().unwrap_or_else(|e| e.into_inner());
            while !*done {
                done = self.shared.done_cv.wait(done).unwrap_or_else(|e| e.into_inner());
            }
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        if let Some(health) = self.health.take() {
            let _ = health.join();
        }
        // Park the flight ring on disk (when a dump dir is configured) so
        // the router's final moments survive the shutdown.
        nptsn_obs::flight_dump_auto("drain");
    }
}

/// The deterministic trace context for a job id. Any router instance (or
/// a restarted one) recomputes the same 128-bit trace id from the id
/// alone, so `GET /jobs/<id>/trace` needs no stored id→trace mapping and
/// a replayed job re-joins the timeline it started.
pub fn trace_for_job(id: u64) -> TraceContext {
    TraceContext::from_seed(key_hash(id) ^ 0x4e70_7473_6e54_7263)
}

/// Extracts `"key":<u64>` from a flat JSON body — enough to read the
/// `/readyz` watermark without a parser.
fn json_u64(text: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = text.find(&needle)? + needle.len();
    let digits: String =
        text[start..].chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// One `/readyz` probe: returns whether the shard answered `200`, and
/// folds its id watermark into the router's.
fn probe_shard(shared: &Arc<Shared>, index: usize) -> bool {
    let mut client = Client::new(shared.shards[index].spec.addr);
    match client.get("/readyz") {
        Ok(response) if response.status == 200 => {
            if let Some(next_id) = json_u64(&response.text(), "next_id") {
                shared.next_id.fetch_max(next_id, Ordering::SeqCst);
            }
            true
        }
        _ => false,
    }
}

/// The health/failover loop: probes every live shard each interval; K
/// consecutive failures declare the shard dead (one-way), rebalance the
/// ring to the survivors and replay the dead shard's log onto them.
fn health_loop(shared: &Arc<Shared>) {
    let interval = Duration::from_millis(shared.config.health_interval_ms.max(10));
    let threshold = shared.config.health_failures.max(1);
    let mut failures = vec![0u32; shared.shards.len()];
    while !shared.shutdown.load(Ordering::SeqCst) {
        for (index, consecutive) in failures.iter_mut().enumerate() {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            if !shared.shards[index].alive.load(Ordering::SeqCst) {
                continue;
            }
            // Chaos: a faulted probe counts as a failed probe — enough of
            // them in a row and the router declares a live shard dead,
            // exercising the failover path against a healthy fleet.
            let healthy =
                nptsn_chaos::point("router.health").is_ok() && probe_shard(shared, index);
            if healthy {
                *consecutive = 0;
                continue;
            }
            *consecutive += 1;
            if *consecutive >= threshold {
                declare_dead(shared, index);
            }
        }
        // Sleep in short steps so shutdown stays prompt.
        let deadline = Instant::now() + interval;
        while Instant::now() < deadline && !shared.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

/// Declares a shard dead: removes it from the ring, then replays its
/// segment log onto the survivors through the shard-side validation gate.
fn declare_dead(shared: &Arc<Shared>, index: usize) {
    if shared.shards[index].alive.swap(false, Ordering::SeqCst) {
        nptsn_obs::telemetry().router_failovers.inc();
    } else {
        return;
    }
    let survivors: Vec<String> = shared
        .shards
        .iter()
        .filter(|s| s.alive.load(Ordering::SeqCst))
        .map(|s| s.spec.name.clone())
        .collect();
    {
        let mut ring = shared.ring.lock().unwrap_or_else(|e| e.into_inner());
        *ring = Arc::new(ring.retain(&survivors));
    }
    shared.metrics.live_shards.set(shared.live_count() as i64);
    let name = &shared.shards[index].spec.name;
    if nptsn_obs::enabled() {
        nptsn_obs::event(
            nptsn_obs::Level::Info,
            "router.failover",
            &format!("shard {name} declared dead, {} survivors", survivors.len()),
        );
    }
    if survivors.is_empty() || shared.shards[index].spec.data_dir.is_none() {
        return;
    }
    shared.replaying.store(true, Ordering::SeqCst);
    let report = replay::replay_dead_shard(shared, index);
    shared.replaying.store(false, Ordering::SeqCst);
    if nptsn_obs::enabled() {
        nptsn_obs::event(
            nptsn_obs::Level::Info,
            "router.replay",
            &format!(
                "shard {name}: {} replayed, {} already known, {} failed, {} retries",
                report.replayed, report.already_known, report.failed, report.retries
            ),
        );
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name("nptsn-router-conn".to_string())
            .spawn(move || handle_connection(&shared, stream));
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let io_timeout = (shared.config.io_timeout_ms > 0)
        .then(|| Duration::from_millis(shared.config.io_timeout_ms));
    if stream.set_read_timeout(io_timeout).is_err() || stream.set_write_timeout(io_timeout).is_err()
    {
        return;
    }
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        let started = Instant::now();
        let header_deadline = (shared.config.header_deadline_ms > 0)
            .then(|| started + Duration::from_millis(shared.config.header_deadline_ms));
        let mut is_shutdown = false;
        let response = match read_request_deadline(
            &mut reader,
            shared.config.max_body_bytes,
            header_deadline,
        ) {
            Ok(request) => {
                let _span = nptsn_obs::span("router.request");
                shared.metrics.http_requests.inc();
                is_shutdown = request.method == "POST" && request.path == "/shutdown";
                let mut response = route(shared, &request);
                response.close = response.close
                    || request.wants_close()
                    || shared.shutdown.load(Ordering::SeqCst);
                response
            }
            Err(HttpError::Closed) => return,
            Err(HttpError::BadRequest(message)) => {
                shared.metrics.http_requests.inc();
                let mut r = Response::error(400, &message);
                r.close = true;
                r
            }
            Err(HttpError::PayloadTooLarge { declared, limit }) => {
                shared.metrics.http_requests.inc();
                let mut r = Response::error(
                    413,
                    &format!("body of {declared} bytes exceeds the {limit}-byte limit"),
                );
                r.close = true;
                r
            }
            Err(HttpError::Timeout { mid_request: false }) => return,
            Err(HttpError::Timeout { mid_request: true }) => {
                shared.metrics.http_requests.inc();
                let mut r = Response::error(408, "request timed out");
                r.close = true;
                r
            }
            Err(HttpError::Io(_)) => return,
        };
        shared.metrics.response_counter(response.status).inc();
        let write_ok = response.write_to(&mut writer).is_ok();
        if is_shutdown {
            shared.begin_shutdown();
        }
        if !write_ok || response.close {
            return;
        }
    }
}

/// A `503` with the configured `Retry-After` hint.
fn unavailable(shared: &Arc<Shared>, message: &str) -> Response {
    Response::error(503, message)
        .with_header("Retry-After", shared.config.retry_after_secs.to_string())
}

/// Dispatches one request.
fn route(shared: &Arc<Shared>, request: &Request) -> Response {
    let path = request.path.as_str();
    let method = request.method.as_str();
    match (method, path) {
        ("GET", "/healthz") => healthz(shared),
        ("GET", "/readyz") => {
            if shared.shutdown.load(Ordering::SeqCst) {
                return unavailable(shared, "router is shutting down");
            }
            if shared.live_count() == 0 {
                return unavailable(shared, "no live shards");
            }
            let mut obj = Object::new();
            obj.str("status", "ready");
            obj.int("live_shards", shared.live_count() as u64);
            obj.int("next_id", shared.next_id.load(Ordering::SeqCst));
            Response::json(200, obj.finish())
        }
        ("GET", "/metrics") => metrics_federated(shared),
        ("GET", "/debug/flight") => Response::json(200, nptsn_obs::flight_json()),
        ("POST", "/shutdown") => {
            let mut obj = Object::new();
            obj.str("status", "shutting down");
            let mut r = Response::json(200, obj.finish());
            r.close = true;
            r
        }
        ("POST", "/jobs/plan" | "/jobs/verify" | "/jobs/infer" | "/jobs/burn") => {
            route_submit(shared, request)
        }
        ("GET", "/checkpoints") => forward_first_live(shared, request),
        _ if path.starts_with("/checkpoints/") => route_checkpoint(shared, request),
        _ if path.starts_with("/jobs/") => route_job(shared, request),
        _ => Response::error(404, &format!("{method} {path} is not routed")),
    }
}

/// `GET /metrics`: the fleet-wide exposition. The router's own registry
/// and telemetry pass through unchanged; every live shard's `/metrics` is
/// scraped, each sample re-labeled with `shard="<name>"`, and the shard
/// counters additionally summed into `nptsn_fleet_*` series — one scrape
/// target tells the whole fleet's story. A shard that fails to answer
/// (or a `router.scrape` chaos fault) degrades that shard to absent and
/// counts in `nptsn_router_scrape_errors_total`; the exposition itself
/// always renders.
fn metrics_federated(shared: &Arc<Shared>) -> Response {
    let mut scraped: Vec<(String, String)> = Vec::new();
    for shard in &shared.shards {
        if !shard.alive.load(Ordering::SeqCst) {
            continue;
        }
        // Chaos: a faulted scrape is one shard missing from this render —
        // degrade, don't break.
        if nptsn_chaos::point("router.scrape").is_err() {
            shared.metrics.scrape_errors.inc();
            continue;
        }
        let mut client = Client::new(shard.spec.addr);
        match client.get("/metrics") {
            Ok(response) if response.status == 200 => {
                scraped.push((shard.spec.name.clone(), response.text()));
            }
            _ => shared.metrics.scrape_errors.inc(),
        }
    }
    let shards: Vec<(&str, &str)> =
        scraped.iter().map(|(name, text)| (name.as_str(), text.as_str())).collect();
    // Render the local registry after the scrape loop so the scrape
    // errors this very request counted are already in the exposition.
    let local = shared.metrics.render();
    let mut r = Response::text(200, nptsn_obs::promtext::federate(&local, &shards));
    r.content_type = "text/plain; version=0.0.4";
    r
}

/// `GET /jobs/<id>/trace`: the fleet-wide timeline for one job as a
/// Chrome trace-event document (loadable in Perfetto / `chrome://tracing`).
/// The router contributes its own forward/replay spans straight from the
/// flight ring; every live shard is asked for its persisted fragment and
/// the pieces merge under one trace id, each process on its own `pid` row.
/// A fragment recorded by a since-dead shard still appears — replay moved
/// the record to a survivor, and the record names its original recorder.
fn merged_trace(shared: &Arc<Shared>, id: u64) -> Response {
    let trace = trace_for_job(id);
    let router_spans: Vec<MergedSpan> = nptsn_obs::flight_spans_for_trace(trace.trace_id)
        .into_iter()
        .map(|e| MergedSpan {
            name: e.name.to_string(),
            tid: e.tid,
            start_ns: e.ts_ns,
            dur_ns: e.dur_ns,
            self_ns: e.dur_ns,
            trace_id: e.trace_id,
        })
        .collect();
    // One process row per configured shard (dead ones included — their
    // spans may have been replayed onto a survivor), keyed by the name
    // the *record* carries, which is the shard that recorded it.
    let mut order: Vec<String> = shared.shards.iter().map(|s| s.spec.name.clone()).collect();
    let mut per_shard: std::collections::BTreeMap<String, Vec<MergedSpan>> =
        order.iter().map(|name| (name.clone(), Vec::new())).collect();
    let mut found = false;
    for index in 0..shared.shards.len() {
        if !shared.shards[index].alive.load(Ordering::SeqCst) {
            continue;
        }
        let mut client = Client::new(shared.shards[index].spec.addr);
        let Ok(response) = client.get(&format!("/jobs/{id}/trace")) else { continue };
        if response.status != 200 {
            continue;
        }
        found = true;
        let Ok(doc) = nptsn_obs::json::parse(&response.text()) else { continue };
        let recorder = doc
            .get("shard")
            .and_then(|v| v.as_str())
            .filter(|s| !s.is_empty())
            .unwrap_or(&shared.shards[index].spec.name)
            .to_string();
        let Some(spans) = doc.get("spans").and_then(|v| v.as_arr()) else { continue };
        let bucket = per_shard.entry(recorder.clone()).or_insert_with(|| {
            order.push(recorder.clone());
            Vec::new()
        });
        for span in spans {
            let name = span.get("name").and_then(|v| v.as_str()).unwrap_or("?").to_string();
            let num = |key: &str| span.get(key).and_then(|v| v.as_num()).unwrap_or(0.0) as u64;
            bucket.push(MergedSpan {
                name,
                tid: num("tid"),
                start_ns: num("start_ns"),
                dur_ns: num("dur_ns"),
                self_ns: num("self_ns"),
                trace_id: trace.trace_id,
            });
        }
    }
    if !found && router_spans.is_empty() {
        return Response::error(404, &format!("no trace for job {id}"));
    }
    let mut processes = vec![ProcessTrace { name: "router".to_string(), spans: router_spans }];
    for name in &order {
        processes.push(ProcessTrace {
            name: name.clone(),
            spans: per_shard.remove(name).unwrap_or_default(),
        });
    }
    Response::json(200, nptsn_obs::chrome_trace_merged(&processes))
}

/// `GET /healthz`: the router's own liveness plus the shard table.
fn healthz(shared: &Arc<Shared>) -> Response {
    let shards: Vec<String> = shared
        .shards
        .iter()
        .map(|s| {
            let mut obj = Object::new();
            obj.str("name", &s.spec.name);
            obj.str("addr", &s.spec.addr.to_string());
            obj.bool("alive", s.alive.load(Ordering::SeqCst));
            obj.finish()
        })
        .collect();
    let mut obj = Object::new();
    obj.str("status", "ok");
    obj.int("live_shards", shared.live_count() as u64);
    obj.int("ring_shards", shared.current_ring().len() as u64);
    obj.bool("replaying", shared.replaying.load(Ordering::SeqCst));
    obj.raw("shards", &format!("[{}]", shards.join(",")));
    Response::json(200, obj.finish())
}

/// Percent-encodes one query component for the forwarded request line.
/// The inverse of the minimal `url_decode` on the other side.
fn url_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Rebuilds the request target (path + encoded query) for forwarding.
fn forward_target(request: &Request) -> String {
    let mut target = request.path.clone();
    for (i, (key, value)) in request.query.iter().enumerate() {
        target.push(if i == 0 { '?' } else { '&' });
        target.push_str(&url_encode(key));
        if !value.is_empty() {
            target.push('=');
            target.push_str(&url_encode(value));
        }
    }
    target
}

/// Headers worth forwarding: everything except the hop-by-hop fields the
/// client rebuilds and the id/trace headers the router owns. The router
/// is the trace minter — an incoming `X-Nptsn-Trace` is dropped, never
/// relayed, so one job cannot impersonate another's timeline.
fn forward_headers(
    request: &Request,
    job_id: Option<u64>,
    trace: Option<TraceContext>,
) -> Vec<(&str, String)> {
    let mut headers: Vec<(&str, String)> = request
        .headers
        .iter()
        .filter(|(name, _)| {
            !matches!(
                name.as_str(),
                "host" | "content-length" | "connection" | "x-nptsn-job-id" | "x-nptsn-trace"
            )
        })
        .map(|(name, value)| (name.as_str(), value.clone()))
        .collect();
    if let Some(id) = job_id {
        headers.push(("X-Nptsn-Job-Id", id.to_string()));
    }
    if let Some(trace) = trace {
        headers.push((nptsn_obs::TRACE_HEADER, trace.header_value()));
    }
    headers
}

/// Forwards `request` to the shard at `index`. The chaos site
/// `router.forward` fires before any bytes leave the router, so an
/// injected fault is always a clean un-acked failure.
fn forward(
    shared: &Arc<Shared>,
    index: usize,
    request: &Request,
    job_id: Option<u64>,
    trace: Option<TraceContext>,
) -> io::Result<ClientResponse> {
    nptsn_chaos::point("router.forward").map_err(io::Error::from)?;
    nptsn_obs::telemetry().router_forwards.inc();
    let seed = key_hash(job_id.unwrap_or(0));
    let mut client = shared.forward_client(index, seed);
    let started = Instant::now();
    let result = client.send(
        &request.method,
        &forward_target(request),
        &forward_headers(request, job_id, trace),
        &request.body,
    );
    shared.metrics.forward_seconds.observe(started.elapsed().as_secs_f64());
    result
}

/// Maps an upstream response onto the router's (static) content types.
fn relay(shared: &Arc<Shared>, upstream: ClientResponse) -> Response {
    let content_type = match upstream.header("content-type") {
        Some("application/json") => "application/json",
        Some(ct) if ct.starts_with("text/plain; version=0.0.4") => "text/plain; version=0.0.4",
        Some(ct) if ct.starts_with("text/plain") => "text/plain; charset=utf-8",
        _ => "application/octet-stream",
    };
    let mut response = Response {
        status: upstream.status,
        content_type,
        body: upstream.body,
        extra_headers: Vec::new(),
        close: false,
    };
    if let Some(hint) = upstream.headers.iter().find(|(n, _)| n == "retry-after") {
        response = response.with_header("Retry-After", hint.1.clone());
    } else if upstream.status == 503 {
        response =
            response.with_header("Retry-After", shared.config.retry_after_secs.to_string());
    }
    response
}

/// `POST /jobs/*`: assign an id, place it, forward with `X-Nptsn-Job-Id`.
/// A `409` means the watermark lagged a shard (e.g. a router restart): the
/// id is burned, the watermark refreshed from the fleet and the submission
/// retried under a fresh id. A transport failure is answered `503` — the
/// job was never acked, so the client's retry cannot duplicate it.
fn route_submit(shared: &Arc<Shared>, request: &Request) -> Response {
    for _ in 0..3 {
        let ring = shared.current_ring();
        let id = shared.next_id.fetch_add(1, Ordering::SeqCst) + 1;
        let Some(index) = ring.place(id).and_then(|name| shared.live_index(name)) else {
            return unavailable(shared, "no live shards");
        };
        // Mint the job's trace context and work under it: the forward
        // span below lands in the flight ring tagged with the same trace
        // id the shard adopts from the stamped header.
        let trace = trace_for_job(id);
        let _trace = nptsn_obs::with_trace(Some(trace));
        let _span = nptsn_obs::span("router.forward");
        match forward(shared, index, request, Some(id), Some(trace)) {
            Ok(upstream) if upstream.status == 409 => {
                shared.metrics.submit_conflicts.inc();
                for other in 0..shared.shards.len() {
                    if shared.shards[other].alive.load(Ordering::SeqCst) {
                        probe_shard(shared, other);
                    }
                }
            }
            Ok(upstream) => return relay(shared, upstream),
            Err(_) => {
                shared.metrics.forward_errors.inc();
                return unavailable(shared, "shard unreachable, job not accepted");
            }
        }
    }
    unavailable(shared, "id watermark contention, retry")
}

/// `GET`/`DELETE /jobs/<id>[...]`: forward to the ring owner of `<id>`.
fn route_job(shared: &Arc<Shared>, request: &Request) -> Response {
    let rest = &request.path["/jobs/".len()..];
    let Ok(id) = rest.split('/').next().unwrap_or("").parse::<u64>() else {
        return Response::error(400, "job id is not a number");
    };
    if request.method == "GET" && rest.split('/').nth(1) == Some("trace") {
        return merged_trace(shared, id);
    }
    let ring = shared.current_ring();
    let Some(index) = ring.place(id).and_then(|name| shared.live_index(name)) else {
        return unavailable(shared, "no live shards");
    };
    let trace = trace_for_job(id);
    let _trace = nptsn_obs::with_trace(Some(trace));
    let _span = nptsn_obs::span("router.forward");
    match forward(shared, index, request, None, Some(trace)) {
        Ok(upstream)
            if upstream.status == 404 && shared.replaying.load(Ordering::SeqCst) =>
        {
            // The job may be mid-flight between the dead shard's log and
            // this survivor; a retry lands after the replay settles.
            unavailable(shared, "job may be mid-replay, retry")
        }
        Ok(upstream) => relay(shared, upstream),
        Err(_) => {
            shared.metrics.forward_errors.inc();
            unavailable(shared, "shard unreachable")
        }
    }
}

/// Forwards a read to the first live shard (checkpoint listings are
/// identical fleet-wide because writes fan out to every live shard).
fn forward_first_live(shared: &Arc<Shared>, request: &Request) -> Response {
    let Some(index) =
        (0..shared.shards.len()).find(|&i| shared.shards[i].alive.load(Ordering::SeqCst))
    else {
        return unavailable(shared, "no live shards");
    };
    match forward(shared, index, request, None, None) {
        Ok(upstream) => relay(shared, upstream),
        Err(_) => {
            shared.metrics.forward_errors.inc();
            unavailable(shared, "shard unreachable")
        }
    }
}

/// `/checkpoints/<name>`: reads go to the first live shard; writes
/// (`PUT`/`DELETE`) fan out to **every** live shard so any shard can run
/// an infer job against any registered checkpoint. A partial write is a
/// `503`: the client retries the whole fan-out (registration is
/// idempotent shard-side).
fn route_checkpoint(shared: &Arc<Shared>, request: &Request) -> Response {
    if request.method != "PUT" && request.method != "DELETE" {
        return forward_first_live(shared, request);
    }
    let mut last = None;
    for index in 0..shared.shards.len() {
        if !shared.shards[index].alive.load(Ordering::SeqCst) {
            continue;
        }
        match forward(shared, index, request, None, None) {
            Ok(upstream) if upstream.status < 300 => last = Some(upstream),
            Ok(upstream) => return relay(shared, upstream),
            Err(_) => {
                shared.metrics.forward_errors.inc();
                return unavailable(shared, "checkpoint fan-out incomplete, retry");
            }
        }
    }
    match last {
        Some(upstream) => relay(shared, upstream),
        None => unavailable(shared, "no live shards"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_u64_reads_flat_bodies() {
        assert_eq!(json_u64("{\"a\":3,\"next_id\":41}", "next_id"), Some(41));
        assert_eq!(json_u64("{\"next_id\":\"x\"}", "next_id"), None);
        assert_eq!(json_u64("{}", "next_id"), None);
    }

    #[test]
    fn forward_targets_round_trip_the_query() {
        let request = Request {
            method: "POST".to_string(),
            path: "/jobs/burn".to_string(),
            query: vec![("millis".to_string(), "5".to_string()), ("q".to_string(), "a b".to_string())],
            headers: Vec::new(),
            body: Vec::new(),
        };
        assert_eq!(forward_target(&request), "/jobs/burn?millis=5&q=a%20b");
    }

    #[test]
    fn hop_by_hop_headers_are_stripped() {
        let request = Request {
            method: "POST".to_string(),
            path: "/jobs/plan".to_string(),
            query: Vec::new(),
            headers: vec![
                ("host".to_string(), "x".to_string()),
                ("content-length".to_string(), "3".to_string()),
                ("connection".to_string(), "close".to_string()),
                ("x-nptsn-job-id".to_string(), "999".to_string()),
                ("x-nptsn-trace".to_string(), "forged".to_string()),
                ("x-problem-length".to_string(), "7".to_string()),
            ],
            body: Vec::new(),
        };
        let headers = forward_headers(&request, Some(12), None);
        assert_eq!(
            headers,
            vec![("x-problem-length", "7".to_string()), ("X-Nptsn-Job-Id", "12".to_string())]
        );
        // With a minted trace, the router's own header is appended — the
        // forged incoming one stays stripped.
        let trace = trace_for_job(12);
        let headers = forward_headers(&request, Some(12), Some(trace));
        assert!(headers
            .iter()
            .any(|(name, value)| *name == "X-Nptsn-Trace" && *value == trace.header_value()));
    }

    #[test]
    fn job_traces_are_deterministic_and_distinct() {
        assert_eq!(trace_for_job(7), trace_for_job(7));
        assert_ne!(trace_for_job(7).trace_id, trace_for_job(8).trace_id);
        assert_ne!(trace_for_job(7).trace_id, 0);
    }

    #[test]
    fn bind_rejects_empty_and_duplicate_fleets() {
        assert!(Router::bind(RouterConfig::default()).is_err());
        let spec = ShardSpec {
            name: "s0".to_string(),
            addr: "127.0.0.1:1".parse().unwrap(),
            data_dir: None,
        };
        let config = RouterConfig {
            shards: vec![spec.clone(), spec],
            ..RouterConfig::default()
        };
        assert!(Router::bind(config).is_err());
    }
}
