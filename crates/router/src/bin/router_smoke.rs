//! Smoke client for `scripts/verify.sh`: drives a routed two-shard fleet
//! through a mid-work `kill -9` of one shard and asserts the durability
//! contract — every job the router acked reaches a terminal state with a
//! correct result, served through the router, with the failover and
//! replay visible in `/metrics`. Exits non-zero (panic message) on any
//! deviation.
//!
//! ```text
//! router_smoke <router-host:port> --kill-pid <shard-pid>
//! ```
//!
//! The script starts the shards and the router; this binary owns the kill
//! so it lands mid-submission, not between phases.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use nptsn_serve::client::{BackoffConfig, Client};

fn json_u64(body: &str, key: &str) -> u64 {
    let marker = format!("\"{key}\":");
    let at = body.find(&marker).unwrap_or_else(|| panic!("no {key} in {body}"));
    body[at + marker.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric {key} in {body}"))
}

/// Reads one counter out of a Prometheus text exposition.
fn metric(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|line| line.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.trim().parse::<f64>().ok())
        .map(|v| v as u64)
        .unwrap_or_else(|| panic!("no {name} sample in /metrics"))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let addr: SocketAddr = args
        .next()
        .expect("usage: router_smoke <host:port> --kill-pid <pid>")
        .parse()
        .expect("argument is not a host:port address");
    assert_eq!(args.next().as_deref(), Some("--kill-pid"), "expected --kill-pid");
    let kill_pid = args.next().expect("--kill-pid needs a pid");

    // Generous retries: while the dead shard is still on the ring, a
    // submission placed there fails un-acked and is answered 503 — the
    // client is expected to retry through the failover window.
    let mut client = Client::new(addr).with_backoff(BackoffConfig {
        max_retries: 40,
        base_ms: 25,
        cap_ms: 400,
        seed: 7,
        deadline_ms: 0,
    });

    let health = client.get("/healthz").expect("GET /healthz");
    assert_eq!(health.status, 200, "{}", health.text());
    assert_eq!(json_u64(&health.text(), "live_shards"), 2, "{}", health.text());
    println!("router_smoke: /healthz 200, 2 live shards");

    let total = 24usize;
    let mut acked = Vec::with_capacity(total);
    for n in 0..total {
        if n == total / 2 {
            let status = std::process::Command::new("kill")
                .args(["-9", &kill_pid])
                .status()
                .expect("run kill");
            assert!(status.success(), "kill -9 {kill_pid} failed");
            println!("router_smoke: killed shard pid {kill_pid} mid-submission");
        }
        let accepted = client.post("/jobs/burn?millis=20", &[]).expect("POST /jobs/burn");
        assert_eq!(accepted.status, 202, "submission {n}: {}", accepted.text());
        acked.push(json_u64(&accepted.text(), "id"));
    }
    println!("router_smoke: {} jobs acked through the router", acked.len());

    // Zero acked loss: every 202'd job must reach `done` via the router,
    // whichever shard it first landed on.
    let deadline = Instant::now() + Duration::from_secs(60);
    for &id in &acked {
        loop {
            let status = client.get(&format!("/jobs/{id}")).expect("GET /jobs/<id>");
            if status.status == 200 && status.text().contains("\"state\":\"done\"") {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "job {id} not terminal in time: {} {}",
                status.status,
                status.text()
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }
    println!("router_smoke: all {} acked jobs terminal (done)", acked.len());

    let health = client.get("/healthz").expect("GET /healthz after kill");
    assert_eq!(json_u64(&health.text(), "live_shards"), 1, "{}", health.text());

    let metrics = client.get("/metrics").expect("GET /metrics");
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    let failovers = metric(&text, "nptsn_router_failovers_total");
    let replayed = metric(&text, "nptsn_router_replayed_jobs_total");
    assert!(failovers >= 1, "no failover recorded: {failovers}");
    assert!(replayed >= 1, "nothing replayed from the dead shard: {replayed}");
    println!("router_smoke: failovers={failovers} replayed={replayed}");

    let shutdown = client.post("/shutdown", &[]).expect("POST /shutdown");
    assert_eq!(shutdown.status, 200, "{}", shutdown.text());
    println!("router_smoke: PASS");
}
