//! Observability smoke client for `scripts/verify.sh`: drives a routed
//! two-shard fleet through one traced job and asserts the fleet
//! observability contract — the merged `GET /jobs/<id>/trace` document
//! parses, names every fleet member, and carries router and shard spans
//! under the single router-minted trace id; `GET /debug/flight` answers
//! with a populated ring; the federated `/metrics` labels shard series.
//! The merged trace is written to a file for the script to grep. Exits
//! non-zero (panic message) on any deviation.
//!
//! ```text
//! trace_smoke <router-host:port> <trace-out-file> [--expect-capacity N]
//! ```

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use nptsn_obs::json::{self, Value};
use nptsn_router::trace_for_job;
use nptsn_serve::client::{BackoffConfig, Client};

fn json_u64(body: &str, key: &str) -> u64 {
    let marker = format!("\"{key}\":");
    let at = body.find(&marker).unwrap_or_else(|| panic!("no {key} in {body}"));
    body[at + marker.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric {key} in {body}"))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let addr: SocketAddr = args
        .next()
        .expect("usage: trace_smoke <host:port> <trace-out-file> [--expect-capacity N]")
        .parse()
        .expect("argument is not a host:port address");
    let out_path = args.next().expect("trace_smoke needs an output file path");
    let expect_capacity = match args.next().as_deref() {
        Some("--expect-capacity") => Some(
            args.next()
                .expect("--expect-capacity needs a number")
                .parse::<f64>()
                .expect("--expect-capacity is not a number"),
        ),
        Some(other) => panic!("unknown argument {other}"),
        None => None,
    };
    let mut client = Client::new(addr).with_backoff(BackoffConfig {
        max_retries: 40,
        base_ms: 25,
        cap_ms: 400,
        seed: 7,
        deadline_ms: 0,
    });

    let accepted = client.post("/jobs/burn?millis=20", &[]).expect("POST /jobs/burn");
    assert_eq!(accepted.status, 202, "{}", accepted.text());
    let id = json_u64(&accepted.text(), "id");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let status = client.get(&format!("/jobs/{id}")).expect("GET /jobs/<id>");
        if status.status == 200 && status.text().contains("\"state\":\"done\"") {
            break;
        }
        assert!(Instant::now() < deadline, "job {id} never finished: {}", status.text());
        std::thread::sleep(Duration::from_millis(25));
    }
    println!("trace_smoke: job {id} done through the router");

    // The shard persists its timeline just after the job goes terminal;
    // poll the merged document until both processes' spans are present.
    let hex = format!("{:032x}", trace_for_job(id).trace_id);
    let deadline = Instant::now() + Duration::from_secs(30);
    let merged = loop {
        let response = client.get(&format!("/jobs/{id}/trace")).expect("GET /jobs/<id>/trace");
        let body = response.text();
        if response.status == 200 && body.contains("job.run") && body.contains("router.forward")
        {
            break body;
        }
        assert!(Instant::now() < deadline, "merged trace never completed: {body}");
        std::thread::sleep(Duration::from_millis(25));
    };
    let doc = json::parse(&merged).expect("merged trace is not valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("merged trace has no traceEvents");
    let process_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("M"))
        .filter_map(|e| e.get("args").and_then(|a| a.get("name")).and_then(Value::as_str))
        .collect();
    assert!(process_names.contains(&"router"), "no router process row: {process_names:?}");
    assert!(process_names.len() >= 3, "expected router + 2 shard rows: {process_names:?}");
    let span_traces: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        .filter_map(|e| e.get("args").and_then(|a| a.get("trace")).and_then(Value::as_str))
        .collect();
    assert!(!span_traces.is_empty(), "merged trace holds no spans");
    assert!(
        span_traces.iter().all(|t| *t == hex),
        "a span strayed from the minted trace id {hex}: {span_traces:?}"
    );
    std::fs::write(&out_path, &merged).expect("write the merged trace");
    println!(
        "trace_smoke: merged trace with {} processes, {} spans under trace {hex}",
        process_names.len(),
        span_traces.len()
    );

    let flight = client.get("/debug/flight").expect("GET /debug/flight");
    assert_eq!(flight.status, 200, "{}", flight.text());
    let doc = json::parse(&flight.text()).expect("flight ring is not valid JSON");
    let capacity = doc.get("capacity").and_then(Value::as_num).expect("flight capacity");
    if let Some(expected) = expect_capacity {
        assert_eq!(capacity, expected, "--flight-capacity was not honored");
    }
    let entries = doc.get("entries").and_then(Value::as_arr).expect("flight entries");
    assert!(!entries.is_empty(), "flight ring recorded nothing");
    println!("trace_smoke: flight ring capacity {capacity}, {} entries", entries.len());

    let metrics = client.get("/metrics").expect("GET /metrics");
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    assert!(text.contains("shard=\""), "no shard-labeled series in /metrics");
    assert!(text.contains("nptsn_fleet_jobs_total"), "no fleet sum in /metrics");
    println!("trace_smoke: federated /metrics with shard labels and fleet sums");

    let shutdown = client.post("/shutdown", &[]).expect("POST /shutdown");
    assert_eq!(shutdown.status, 200, "{}", shutdown.text());
    println!("trace_smoke: PASS");
}
