//! nptsn-router: a consistent-hash sharded front tier for the NPTSN serve
//! fleet, with elastic membership and dead-shard replay.
//!
//! One router process fronts N independent `nptsn-serve` shards. It owns
//! job-id assignment, places every job on a shard via a consistent-hash
//! [`ring::Ring`] with virtual nodes, and fans requests out over the
//! retrying [`nptsn_serve::Client`]. A health thread probes each shard's
//! `GET /readyz`; after K consecutive failures a shard is declared dead,
//! its ring range is rebalanced to the survivors, and its durable segment
//! log is replayed onto them through the same validation gate as HTTP
//! submission — so a job acked with a durable `202` is never lost, even
//! to `kill -9` of the shard that held it.
//!
//! Membership is elastic, not a one-way trap door: a dead shard that
//! comes back (same process restarted on its `--data-dir`, or
//! re-announced at a new address via `POST /admin/shards`) passes a
//! re-admission handshake, re-enters the ring at a bumped generation and
//! receives a catch-up transfer of the records it missed; a brand-new
//! shard can join a running fleet the same way, with a background
//! migration drain moving its ≤1/N of existing records over. With
//! [`server::RouterConfig::replication_factor`] 2, every accepted
//! submission is mirrored to its ring successor as a passive replica, so
//! a death promotes local records instantly instead of pausing for the
//! dead-log replay.
//!
//! Everything is `std`-only, like the rest of the workspace: no async
//! runtime, no external crates — threads, atomics and blocking sockets.
//!
//! # Example
//!
//! ```no_run
//! use nptsn_router::{Router, RouterConfig, ShardSpec};
//!
//! let config = RouterConfig {
//!     shards: vec![
//!         ShardSpec {
//!             name: "s0".to_string(),
//!             addr: "127.0.0.1:7101".parse().unwrap(),
//!             data_dir: Some("data/s0".into()),
//!         },
//!         ShardSpec {
//!             name: "s1".to_string(),
//!             addr: "127.0.0.1:7102".parse().unwrap(),
//!             data_dir: Some("data/s1".into()),
//!         },
//!     ],
//!     ..RouterConfig::default()
//! };
//! let router = Router::bind(config).expect("bind");
//! println!("routing on {}", router.local_addr());
//! router.wait(); // until POST /shutdown
//! ```

#![warn(missing_docs)]

pub mod replay;
pub mod ring;
pub mod server;

pub use replay::ReplayReport;
pub use ring::Ring;
pub use server::{trace_for_job, Router, RouterConfig, RouterMetrics, ShardSpec, ShardState};
