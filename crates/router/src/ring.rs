//! The consistent-hash ring that maps job ids onto shards.
//!
//! Each shard contributes `vnodes` points on a `u64` circle; a key is
//! placed on the shard owning the first point at or clockwise after the
//! key's hash. Virtual nodes keep the per-shard load even (the variance of
//! an N-point partition shrinks with the point count), and consistent
//! hashing keeps placement *stable*: removing one shard from an N-shard
//! ring moves only the keys that shard owned — about `1/N` of them — while
//! every other key keeps its shard. That stability is what makes failover
//! cheap: the router only replays the dead shard's log, never reshuffles
//! the fleet.
//!
//! Determinism is load-bearing here. The ring is rebuilt independently by
//! every router process (and by the replay engine mid-failover), so two
//! builds from the same shard list must be byte-identical. Points are
//! derived with FNV-1a — no per-process state — and stored sorted with a
//! total order, so placement never depends on construction order.

/// FNV-1a 64-bit over `bytes` — a stable, dependency-free point hash.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Finalizes a job id into a ring position. Job ids are small sequential
/// integers; splitmix64's avalanche spreads them over the whole circle so
/// consecutive ids land on different shards.
pub fn key_hash(job_id: u64) -> u64 {
    let mut z = job_id.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A consistent-hash ring over named shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ring {
    shards: Vec<String>,
    /// `(position, shard index)`, sorted — the total order (position,
    /// then index) makes hash collisions between vnode points harmless.
    points: Vec<(u64, u16)>,
    vnodes: u32,
}

impl Ring {
    /// Builds a ring with `vnodes` points per shard. Shard names must be
    /// distinct (duplicates would double a shard's share silently).
    ///
    /// # Panics
    ///
    /// If there are more than `u16::MAX` shards or duplicate names.
    pub fn build(shard_names: &[String], vnodes: u32) -> Ring {
        assert!(shard_names.len() <= u16::MAX as usize, "too many shards");
        for (i, name) in shard_names.iter().enumerate() {
            assert!(
                !shard_names[..i].contains(name),
                "duplicate shard name {name:?}"
            );
        }
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(shard_names.len() * vnodes as usize);
        for (index, name) in shard_names.iter().enumerate() {
            for vnode in 0..vnodes {
                // FNV alone clusters on short, similar names ("s0#1",
                // "s0#2", …); the splitmix64 finalizer spreads the points
                // uniformly over the circle without giving up determinism.
                let point = key_hash(fnv1a64(format!("{name}#{vnode}").as_bytes()));
                points.push((point, index as u16));
            }
        }
        points.sort_unstable();
        Ring { shards: shard_names.to_vec(), points, vnodes }
    }

    /// Rebuilds the ring over a subset of its shards (the survivors of a
    /// failover). Names not present in this ring are ignored.
    pub fn retain(&self, survivors: &[String]) -> Ring {
        let kept: Vec<String> =
            self.shards.iter().filter(|s| survivors.contains(s)).cloned().collect();
        Ring::build(&kept, self.vnodes)
    }

    /// Builds the ring that results from adding one shard. Points depend
    /// only on a shard's own name, so every existing shard keeps all of
    /// its points: the newcomer steals keys only for itself, and
    /// `remove(x)` then `add(x)` restores byte-identical placement.
    /// Adding a name already on the ring returns an identical ring.
    pub fn add(&self, name: &str) -> Ring {
        if self.shards.iter().any(|s| s == name) {
            return self.clone();
        }
        let mut shards = self.shards.clone();
        shards.push(name.to_string());
        Ring::build(&shards, self.vnodes)
    }

    /// The first shard clockwise after `job_id`'s owner — the shard the
    /// key would land on if its owner left the ring. This identity (the
    /// successor *is* the post-removal owner) is what makes the successor
    /// the correct passive-replica target: when the primary dies and is
    /// retained out of the ring, the key routes exactly to its replica.
    /// `None` on rings with fewer than two shards.
    pub fn successor(&self, job_id: u64) -> Option<&str> {
        if self.shards.len() < 2 {
            return None;
        }
        let position = key_hash(job_id);
        let start = match self.points.binary_search(&(position, u16::MAX)) {
            Ok(i) => i,
            Err(i) => i,
        };
        let n = self.points.len();
        let owner = self.points[start % n].1;
        (1..n)
            .map(|step| self.points[(start + step) % n].1)
            .find(|&shard| shard != owner)
            .map(|shard| self.shards[shard as usize].as_str())
    }

    /// The shard owning `job_id`, or `None` on an empty ring.
    pub fn place(&self, job_id: u64) -> Option<&str> {
        let position = key_hash(job_id);
        let index = match self.points.binary_search(&(position, u16::MAX)) {
            Ok(i) => i,
            Err(i) => i,
        };
        // The successor point, wrapping past the top of the circle.
        let (_, shard) = *self.points.get(index).or_else(|| self.points.first())?;
        Some(&self.shards[shard as usize])
    }

    /// The shard names this ring was built over, in build order.
    pub fn shard_names(&self) -> &[String] {
        &self.shards
    }

    /// The number of shards on the ring.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the ring has no shards (placement always `None`).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("s{i}")).collect()
    }

    #[test]
    fn placement_is_total_and_deterministic() {
        let ring = Ring::build(&names(4), 64);
        for id in 1..=1_000u64 {
            let a = ring.place(id).unwrap().to_string();
            let b = Ring::build(&names(4), 64).place(id).unwrap().to_string();
            assert_eq!(a, b, "id {id} moved between identical builds");
        }
    }

    #[test]
    fn every_shard_owns_a_share() {
        let ring = Ring::build(&names(4), 64);
        let mut counts = [0usize; 4];
        for id in 1..=10_000u64 {
            let owner = ring.place(id).unwrap();
            counts[owner[1..].parse::<usize>().unwrap()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            // With 64 vnodes the shares are uneven but never degenerate.
            assert!(c > 1_000, "shard s{i} owns only {c} of 10k keys");
        }
    }

    #[test]
    fn an_empty_ring_places_nothing() {
        let ring = Ring::build(&[], 64);
        assert!(ring.is_empty());
        assert_eq!(ring.place(7), None);
    }

    #[test]
    fn retain_drops_only_the_named_shards() {
        let ring = Ring::build(&names(3), 16);
        let survivors = ring.retain(&["s0".to_string(), "s2".to_string()]);
        assert_eq!(survivors.shard_names(), &["s0".to_string(), "s2".to_string()]);
        assert_eq!(survivors.len(), 2);
        for id in 1..=500u64 {
            assert_ne!(survivors.place(id), Some("s1"));
        }
    }

    #[test]
    #[should_panic(expected = "duplicate shard name")]
    fn duplicate_names_are_rejected() {
        Ring::build(&["a".to_string(), "a".to_string()], 8);
    }

    #[test]
    fn adding_a_shard_steals_keys_only_for_the_newcomer() {
        let before = Ring::build(&names(3), 64);
        let after = before.add("s3");
        assert_eq!(after.shard_names(), &names(4)[..]);
        for id in 1..=5_000u64 {
            let was = before.place(id).unwrap();
            let now = after.place(id).unwrap();
            assert!(
                now == was || now == "s3",
                "id {id} moved {was} -> {now}, not to the newcomer"
            );
        }
    }

    #[test]
    fn remove_then_add_restores_byte_identical_placement() {
        let ring = Ring::build(&names(4), 64);
        let survivors: Vec<String> =
            names(4).into_iter().filter(|s| s != "s2").collect();
        let rejoined = ring.retain(&survivors).add("s2");
        // Build order differs (s2 is now last), but placement is a
        // function of each shard's own points, so every key comes home.
        for id in 1..=5_000u64 {
            assert_eq!(
                ring.place(id),
                rejoined.place(id),
                "id {id} placed differently after remove(s2); add(s2)"
            );
        }
    }

    #[test]
    fn adding_an_existing_shard_is_a_no_op() {
        let ring = Ring::build(&names(3), 32);
        let same = ring.add("s1");
        for id in 1..=1_000u64 {
            assert_eq!(ring.place(id), same.place(id));
        }
        assert_eq!(same.len(), 3);
    }

    #[test]
    fn the_successor_is_the_post_removal_owner() {
        let ring = Ring::build(&names(4), 64);
        for id in 1..=5_000u64 {
            let owner = ring.place(id).unwrap().to_string();
            let successor = ring.successor(id).unwrap().to_string();
            assert_ne!(owner, successor, "id {id} replicates onto its own shard");
            let survivors: Vec<String> =
                names(4).into_iter().filter(|s| *s != owner).collect();
            let after_death = ring.retain(&survivors);
            assert_eq!(
                after_death.place(id),
                Some(successor.as_str()),
                "id {id}: successor is not where the key lands after {owner} dies"
            );
        }
    }

    #[test]
    fn a_single_shard_ring_has_no_successor() {
        let ring = Ring::build(&names(1), 16);
        assert_eq!(ring.successor(7), None);
        assert!(Ring::build(&[], 16).successor(7).is_none());
    }
}
