//! The ADS (autonomous driving system) design scenario from \[31\].

use std::sync::Arc;

use nptsn_sched::TasConfig;
use nptsn_topo::ConnectionGraph;

use crate::Scenario;

/// End stations of the autonomous driving system, following the
/// distributed architecture of Jo et al. \[31\]: sensors, compute units and
/// actuators hosting the 7 safety-related applications.
const ADS_STATIONS: [&str; 12] = [
    "gps",
    "imu",
    "lidar-front",
    "lidar-rear",
    "camera-front",
    "camera-rear",
    "radar",
    "v2x",
    "compute-a",
    "compute-b",
    "actuator-steer",
    "actuator-brake",
];

/// Number of optional switches in the ADS scenario.
const ADS_SWITCHES: usize = 4;

/// Builds the ADS design scenario: 12 end stations, a maximum of 4
/// switches, and the *complete* candidate connection set minus direct
/// ES–ES links — 12·4 switch-station pairs plus C(4,2) switch pairs =
/// 54 optional links, exactly as stated in Section VI-B.
///
/// There is no manually designed original topology for ADS; the paper uses
/// this scenario for the sensitivity study only.
///
/// # Examples
///
/// ```
/// use nptsn_scenarios::ads;
///
/// let s = ads();
/// assert_eq!(s.graph.end_stations().len(), 12);
/// assert_eq!(s.graph.switches().len(), 4);
/// assert_eq!(s.graph.candidate_link_count(), 54);
/// assert!(s.original.is_none());
/// ```
pub fn ads() -> Scenario {
    let mut gc = ConnectionGraph::new();
    let stations: Vec<_> = ADS_STATIONS.iter().map(|name| gc.add_end_station(*name)).collect();
    let switches: Vec<_> = (0..ADS_SWITCHES).map(|i| gc.add_switch(format!("ads-sw{i}"))).collect();
    for &sw in &switches {
        for &es in &stations {
            gc.add_candidate_link(sw, es, 1.0).expect("unique pairs");
        }
    }
    for i in 0..switches.len() {
        for j in i + 1..switches.len() {
            gc.add_candidate_link(switches[i], switches[j], 1.0).expect("unique pairs");
        }
    }
    Scenario { name: "ads", graph: Arc::new(gc), original: None, tas: TasConfig::default() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_count_matches_the_paper() {
        let s = ads();
        // 12 * 4 + C(4, 2) = 48 + 6 = 54.
        assert_eq!(s.graph.candidate_link_count(), 54);
    }

    #[test]
    fn no_direct_station_connections() {
        let s = ads();
        for link in s.graph.links() {
            let (u, v) = s.graph.link_endpoints(link);
            assert!(s.graph.is_switch(u) || s.graph.is_switch(v));
        }
    }

    #[test]
    fn every_switch_pair_is_a_candidate() {
        let s = ads();
        let sw = s.graph.switches();
        for i in 0..sw.len() {
            for j in i + 1..sw.len() {
                assert!(s.graph.link_between(sw[i], sw[j]).is_some());
            }
        }
    }

    #[test]
    fn station_names_cover_the_applications() {
        let s = ads();
        let names: Vec<&str> =
            s.graph.end_stations().iter().map(|&e| s.graph.name(e)).collect();
        assert!(names.contains(&"compute-a"));
        assert!(names.contains(&"actuator-brake"));
        assert_eq!(names.len(), 12);
    }
}
