//! Design scenarios and workloads for the NPTSN evaluation (Section VI).
//!
//! Two scenarios drive the paper's experiments:
//!
//! * [`orion`] — a network abstracted from the ORION crew exploration
//!   vehicle \[30\]: 31 end stations, 15 optional switches, candidate links
//!   between node pairs within 3 hops of the original topology, plus the
//!   manually designed original topology used as a baseline. The exact
//!   ORION topology is not redistributable, so this is a *deterministic
//!   synthetic stand-in* preserving the properties the evaluation depends
//!   on: the scale, single-attached end stations (which force the original
//!   to all-ASIL-D), and the candidate-link density (the paper reports 189
//!   optional links; this construction yields 200).
//! * [`ads`] — the autonomous-driving-system scenario from \[31\]: 12 end
//!   stations, 4 optional switches, the complete candidate set minus
//!   direct ES–ES connections — exactly the 54 optional links the paper
//!   states.
//!
//! Workloads are periodic unicast TT flows with period = deadline = the
//! base period, endpoints drawn uniformly from the end stations
//! ([`random_flows`]), matching Section VI-A.
//!
//! # Examples
//!
//! ```
//! use nptsn_scenarios::{ads, orion, random_flows};
//!
//! let orion = orion();
//! assert_eq!(orion.graph.end_stations().len(), 31);
//! assert_eq!(orion.graph.switches().len(), 15);
//!
//! let ads = ads();
//! assert_eq!(ads.graph.candidate_link_count(), 54);
//!
//! let flows = random_flows(&ads.graph, 12, 7);
//! assert_eq!(flows.len(), 12);
//! ```

#![warn(missing_docs)]

mod ads;
mod orion;
mod workload;

pub use ads::ads;
pub use orion::orion;
pub use workload::{flow_count_suite, random_flows};

use std::sync::Arc;

use nptsn_sched::TasConfig;
use nptsn_topo::{ConnectionGraph, Topology};

/// A design scenario: the planning inputs shared by every test case built
/// on it.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name for reports ("orion", "ads").
    pub name: &'static str,
    /// The graph of possible connections `Gc`.
    pub graph: Arc<ConnectionGraph>,
    /// The manually designed original topology, when the scenario has one
    /// (ORION); used by the original-network baseline with all components
    /// at ASIL D.
    pub original: Option<Topology>,
    /// The TAS configuration: 500 µs base period, 20 slots (Section VI-A).
    pub tas: TasConfig,
}
