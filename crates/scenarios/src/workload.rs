//! Randomized TT-flow workload generation (Section VI-A).

use nptsn_sched::{FlowSet, FlowSpec};
use nptsn_topo::ConnectionGraph;
use nptsn_rand::rngs::StdRng;
use nptsn_rand::{Rng, SeedableRng};

/// Frame size used for generated flows. The paper does not state frame
/// sizes; 256 bytes is a typical safety-critical control frame and fits
/// comfortably in one 25 µs slot at 1 Gbit/s.
pub(crate) const FRAME_BYTES: u32 = 256;

/// Generates `count` periodic unicast TT flows with sources and
/// destinations drawn uniformly (without self-loops) from the end stations
/// of `graph`, period and deadline equal to the 500 µs base period —
/// the workload recipe of Section VI-A.
///
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics when the graph has fewer than two end stations or `count` is
/// zero.
///
/// # Examples
///
/// ```
/// use nptsn_scenarios::{orion, random_flows};
///
/// let s = orion();
/// let flows = random_flows(&s.graph, 10, 42);
/// assert_eq!(flows.len(), 10);
/// // Reproducible.
/// assert_eq!(flows, random_flows(&s.graph, 10, 42));
/// ```
pub fn random_flows(graph: &ConnectionGraph, count: usize, seed: u64) -> FlowSet {
    let stations = graph.end_stations();
    assert!(stations.len() >= 2, "need at least two end stations");
    assert!(count > 0, "at least one flow is required");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut flows = Vec::with_capacity(count);
    for _ in 0..count {
        let s = stations[rng.gen_range(0..stations.len())];
        let d = loop {
            let d = stations[rng.gen_range(0..stations.len())];
            if d != s {
                break d;
            }
        };
        flows.push(FlowSpec::new(s, d, 500, FRAME_BYTES));
    }
    FlowSet::new(flows).expect("generated flows are valid")
}

/// Builds the Fig. 4 test-case suite: for every entry of `flow_counts`,
/// `cases_per_count` independent workloads (the paper uses counts
/// 10..50 with ten cases each, 50 in total).
///
/// Returns `(flow_count, case_index, flows)` triples; seeds derive
/// deterministically from `base_seed`.
pub fn flow_count_suite(
    graph: &ConnectionGraph,
    flow_counts: &[usize],
    cases_per_count: usize,
    base_seed: u64,
) -> Vec<(usize, usize, FlowSet)> {
    let mut out = Vec::with_capacity(flow_counts.len() * cases_per_count);
    for (ci, &count) in flow_counts.iter().enumerate() {
        for case in 0..cases_per_count {
            let seed = base_seed
                .wrapping_mul(1_000_003)
                .wrapping_add((ci * 1000 + case) as u64);
            out.push((count, case, random_flows(graph, count, seed)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ads, orion};

    #[test]
    fn flows_connect_distinct_end_stations() {
        let s = orion();
        let flows = random_flows(&s.graph, 50, 1);
        for (_, spec) in flows.iter() {
            assert_ne!(spec.source(), spec.destination());
            assert!(s.graph.is_end_station(spec.source()));
            assert!(s.graph.is_end_station(spec.destination()));
            assert_eq!(spec.period_us(), 500);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let s = ads();
        let a = random_flows(&s.graph, 12, 1);
        let b = random_flows(&s.graph, 12, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn suite_covers_the_grid() {
        let s = orion();
        let suite = flow_count_suite(&s.graph, &[10, 20, 30, 40, 50], 10, 0);
        assert_eq!(suite.len(), 50);
        for (count, _, flows) in &suite {
            assert_eq!(flows.len(), *count);
        }
        // All workloads distinct.
        for i in 0..suite.len() {
            for j in 0..i {
                assert!(
                    suite[i].2 != suite[j].2 || suite[i].0 != suite[j].0,
                    "duplicate workload at {i} and {j}"
                );
            }
        }
    }

    #[test]
    fn endpoints_cover_many_stations() {
        // With 50 flows over 31 stations the workload should touch a broad
        // subset (sanity check of the uniform sampling).
        let s = orion();
        let flows = random_flows(&s.graph, 50, 3);
        let mut touched = std::collections::HashSet::new();
        for (_, spec) in flows.iter() {
            touched.insert(spec.source());
            touched.insert(spec.destination());
        }
        assert!(touched.len() > 20, "only {} stations touched", touched.len());
    }
}
