//! The ORION design scenario (synthetic stand-in for \[30\]).

use std::sync::Arc;

use nptsn_sched::TasConfig;
use nptsn_topo::{bfs_distances, Asil, ConnectionGraph, NodeId, TopoError, Topology};

use crate::Scenario;

/// Number of end stations in the ORION scenario.
pub(crate) const ORION_END_STATIONS: usize = 31;
/// Number of optional switches.
pub(crate) const ORION_SWITCHES: usize = 15;
/// Candidate links exist between node pairs within this hop distance of
/// the original topology (Section VI-A).
const CANDIDATE_HOPS: usize = 3;

/// Builds the ORION design scenario: 31 end stations, 15 optional
/// switches, and candidate links between all node pairs within 3 hops of
/// the original topology (direct ES–ES connections excluded, as in
/// switched Ethernet).
///
/// The original topology is a 15-switch ring with each end station
/// single-attached to one switch (round-robin, so one switch carries three
/// stations and the rest two). Because every station hangs off a single
/// link, the original network needs ASIL-D everywhere to meet `R = 1e-6`,
/// reproducing the baseline argument of Section VI-A. All link lengths are
/// 1 unit (the paper's simplification for unavailable wiring distances).
///
/// Deterministic: repeated calls build identical graphs.
///
/// # Examples
///
/// ```
/// use nptsn_scenarios::orion;
///
/// let s = orion();
/// assert_eq!(s.graph.node_count(), 46);
/// let original = s.original.as_ref().unwrap();
/// // Every end station is single-attached in the original design.
/// for &es in s.graph.end_stations() {
///     assert_eq!(original.degree(es), 1);
/// }
/// ```
pub fn orion() -> Scenario {
    let mut gc = ConnectionGraph::new();
    let stations: Vec<NodeId> = (0..ORION_END_STATIONS)
        .map(|i| gc.add_end_station(format!("orion-es{i:02}")))
        .collect();
    let switches: Vec<NodeId> = (0..ORION_SWITCHES)
        .map(|i| gc.add_switch(format!("orion-sw{i:02}")))
        .collect();

    // Original design: a switch ring with round-robin single-attached
    // stations.
    let ring: Vec<(NodeId, NodeId)> = (0..ORION_SWITCHES)
        .map(|i| (switches[i], switches[(i + 1) % ORION_SWITCHES]))
        .collect();
    let attach: Vec<(NodeId, NodeId)> = stations
        .iter()
        .enumerate()
        .map(|(i, &es)| (es, switches[i % ORION_SWITCHES]))
        .collect();

    // The original links are always candidates.
    for &(u, v) in ring.iter().chain(attach.iter()) {
        gc.add_candidate_link(u, v, 1.0).expect("original links are unique");
    }

    // Expand Ec with every pair within CANDIDATE_HOPS of the original
    // topology (at least one endpoint a switch).
    let original_adjacency = {
        let mut topo = gc.empty_topology();
        for &sw in &switches {
            topo.add_switch(sw, Asil::A).unwrap();
        }
        for &(u, v) in ring.iter().chain(attach.iter()) {
            topo.add_link(u, v).unwrap();
        }
        topo.adjacency()
    };
    // ES-ES pairs are excluded (switched Ethernet): only pairs with at
    // least one switch are enumerated, and switch pairs only once.
    let all_nodes: Vec<NodeId> = gc.nodes().collect();
    for &sw in &switches {
        let dist = bfs_distances(&original_adjacency, sw);
        for &other in &all_nodes {
            if other == sw {
                continue;
            }
            if gc.is_switch(other) && other < sw {
                continue;
            }
            match dist[other.index()] {
                Some(d) if d > 0 && d <= CANDIDATE_HOPS => {
                    match gc.add_candidate_link(sw, other, 1.0) {
                        Ok(_) | Err(TopoError::DuplicateLink(..)) => {}
                        Err(e) => panic!("unexpected candidate link error: {e}"),
                    }
                }
                _ => {}
            }
        }
    }

    // Materialize the original topology over the final candidate graph,
    // with the all-ASIL-D allocation of the baseline.
    let gc = Arc::new(gc);
    let mut original = Topology::empty(Arc::clone(&gc));
    for &sw in &switches {
        original.add_switch(sw, Asil::D).expect("switch ids valid");
    }
    for &(u, v) in ring.iter().chain(attach.iter()) {
        original.add_link(u, v).expect("original links are candidates");
    }

    Scenario { name: "orion", graph: gc, original: Some(original), tas: TasConfig::default() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_matches_the_paper() {
        let s = orion();
        assert_eq!(s.graph.end_stations().len(), 31);
        assert_eq!(s.graph.switches().len(), 15);
        assert_eq!(s.graph.node_count(), 46);
        // The paper reports 189 optional links for the real topology; the
        // synthetic ring stand-in yields 200 (documented substitution).
        assert_eq!(s.graph.candidate_link_count(), 200);
    }

    #[test]
    fn construction_is_deterministic() {
        let a = orion();
        let b = orion();
        assert_eq!(a.graph.candidate_link_count(), b.graph.candidate_link_count());
        for (la, lb) in a.graph.links().zip(b.graph.links()) {
            assert_eq!(a.graph.link_endpoints(la), b.graph.link_endpoints(lb));
        }
    }

    #[test]
    fn no_direct_es_es_candidates() {
        let s = orion();
        for link in s.graph.links() {
            let (u, v) = s.graph.link_endpoints(link);
            assert!(
                s.graph.is_switch(u) || s.graph.is_switch(v),
                "ES-ES candidate link ({u}, {v})"
            );
        }
    }

    #[test]
    fn candidates_are_within_three_hops() {
        let s = orion();
        let original = s.original.as_ref().unwrap();
        let adj = original.adjacency();
        for link in s.graph.links() {
            let (u, v) = s.graph.link_endpoints(link);
            let dist = bfs_distances(&adj, u);
            let d = dist[v.index()].expect("original topology is connected");
            assert!(d <= 3, "candidate ({u}, {v}) spans {d} hops");
        }
    }

    #[test]
    fn original_topology_is_all_asil_d_and_single_attached() {
        let s = orion();
        let original = s.original.as_ref().unwrap();
        assert_eq!(original.selected_switches().len(), 15);
        for &sw in original.selected_switches() {
            assert_eq!(original.switch_asil(sw), Some(Asil::D));
            assert!(original.degree(sw) <= s.graph.max_switch_degree());
        }
        for &es in s.graph.end_stations() {
            assert_eq!(original.degree(es), 1, "stations are single-attached");
        }
        // Ring + attachments.
        assert_eq!(original.link_count(), 15 + 31);
        // Cost magnitude comparable to the paper's 986 (all-D components).
        let cost = original.network_cost(&nptsn_topo::ComponentLibrary::automotive());
        assert!(cost > 500.0 && cost < 1500.0, "cost {cost}");
    }

    #[test]
    fn original_topology_is_connected() {
        let s = orion();
        let original = s.original.as_ref().unwrap();
        let adj = original.adjacency();
        let from = s.graph.end_stations()[0];
        let dist = bfs_distances(&adj, from);
        for node in s.graph.nodes() {
            assert!(dist[node.index()].is_some(), "{node} unreachable");
        }
    }
}
