//! Parameter initialization.

use nptsn_tensor::Tensor;
use rand::Rng;

/// Xavier/Glorot uniform initialization: a `(rows, cols)` parameter drawn
/// from `U(-a, a)` with `a = sqrt(6 / (rows + cols))`.
///
/// Keeps activation variances stable across layers for tanh/linear
/// networks and is a solid default for relu at these widths.
///
/// # Examples
///
/// ```
/// use nptsn_nn::xavier_uniform;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let w = xavier_uniform(&mut rng, 64, 64);
/// let bound = (6.0f32 / 128.0).sqrt();
/// assert!(w.to_vec().iter().all(|v| v.abs() <= bound));
/// ```
pub fn xavier_uniform(rng: &mut impl Rng, rows: usize, cols: usize) -> Tensor {
    let bound = (6.0 / (rows + cols) as f32).sqrt();
    let data = (0..rows * cols).map(|_| rng.gen_range(-bound..=bound)).collect();
    Tensor::param(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn values_within_bound_and_nondegenerate() {
        let mut rng = StdRng::seed_from_u64(42);
        let w = xavier_uniform(&mut rng, 10, 30);
        let bound = (6.0f32 / 40.0).sqrt();
        let vals = w.to_vec();
        assert!(vals.iter().all(|v| v.abs() <= bound));
        // Not all identical.
        assert!(vals.iter().any(|&v| (v - vals[0]).abs() > 1e-6));
        assert!(w.requires_grad());
    }

    #[test]
    fn seeded_reproducibility() {
        let a = xavier_uniform(&mut StdRng::seed_from_u64(1), 4, 4).to_vec();
        let b = xavier_uniform(&mut StdRng::seed_from_u64(1), 4, 4).to_vec();
        assert_eq!(a, b);
    }
}
