//! Parameter initialization.

use nptsn_tensor::Tensor;
use nptsn_rand::Rng;

/// Xavier/Glorot uniform initialization: a `(rows, cols)` parameter drawn
/// from `U(-a, a)` with `a = sqrt(6 / (rows + cols))`.
///
/// Keeps activation variances stable across layers for tanh/linear
/// networks and is a solid default for relu at these widths.
///
/// # Examples
///
/// ```
/// use nptsn_nn::xavier_uniform;
/// use nptsn_rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let w = xavier_uniform(&mut rng, 64, 64);
/// let bound = (6.0f32 / 128.0).sqrt();
/// assert!(w.to_vec().iter().all(|v| v.abs() <= bound));
/// ```
pub fn xavier_uniform(rng: &mut impl Rng, rows: usize, cols: usize) -> Tensor {
    let bound = (6.0 / (rows + cols) as f32).sqrt();
    let data = (0..rows * cols).map(|_| rng.gen_range(-bound..=bound)).collect();
    Tensor::param(rows, cols, data)
}

/// Kaiming/He normal initialization: a `(rows, cols)` parameter drawn from
/// `N(0, 2 / rows)` where `rows` is the fan-in.
///
/// Preserves activation variance through relu layers; prefer it over
/// [`xavier_uniform`] when a network is relu-dominated and deep enough for
/// the variance drift to matter.
///
/// # Examples
///
/// ```
/// use nptsn_nn::kaiming_normal;
/// use nptsn_rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let w = kaiming_normal(&mut rng, 256, 64);
/// let vals = w.to_vec();
/// let mean = vals.iter().sum::<f32>() / vals.len() as f32;
/// assert!(mean.abs() < 0.02);
/// ```
pub fn kaiming_normal(rng: &mut impl Rng, rows: usize, cols: usize) -> Tensor {
    let std = (2.0 / rows as f64).sqrt();
    let data = (0..rows * cols).map(|_| (rng.gen_gaussian() * std) as f32).collect();
    Tensor::param(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nptsn_rand::rngs::StdRng;
    use nptsn_rand::SeedableRng;

    #[test]
    fn values_within_bound_and_nondegenerate() {
        let mut rng = StdRng::seed_from_u64(42);
        let w = xavier_uniform(&mut rng, 10, 30);
        let bound = (6.0f32 / 40.0).sqrt();
        let vals = w.to_vec();
        assert!(vals.iter().all(|v| v.abs() <= bound));
        // Not all identical.
        assert!(vals.iter().any(|&v| (v - vals[0]).abs() > 1e-6));
        assert!(w.requires_grad());
    }

    #[test]
    fn seeded_reproducibility() {
        let a = xavier_uniform(&mut StdRng::seed_from_u64(1), 4, 4).to_vec();
        let b = xavier_uniform(&mut StdRng::seed_from_u64(1), 4, 4).to_vec();
        assert_eq!(a, b);
    }

    #[test]
    fn kaiming_normal_moments_and_reproducibility() {
        let mut rng = StdRng::seed_from_u64(7);
        let fan_in = 512;
        let w = kaiming_normal(&mut rng, fan_in, 64);
        let vals = w.to_vec();
        let n = vals.len() as f32;
        let mean = vals.iter().sum::<f32>() / n;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
        let expected_var = 2.0 / fan_in as f32;
        assert!(mean.abs() < 0.01, "mean drifted: {mean}");
        assert!(
            (var - expected_var).abs() < 0.3 * expected_var,
            "variance {var} vs expected {expected_var}"
        );
        assert!(w.requires_grad());
        let again = kaiming_normal(&mut StdRng::seed_from_u64(7), fan_in, 64).to_vec();
        assert_eq!(vals, again);
    }
}
