//! Graph convolutional networks (Kipf & Welling, Eq. 4 of the paper).

use nptsn_tensor::{kernels, Tensor};
use nptsn_rand::Rng;

use crate::init::xavier_uniform;
use crate::Module;

/// A shape mismatch rejected by one of this crate's fallible (`try_*`)
/// entry points. Carries the operation name and a human-readable
/// description so callers can surface it without panicking a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// The operation that rejected its input (e.g. `"normalized_adjacency"`).
    pub op: &'static str,
    /// What disagreed with what.
    pub detail: String,
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.op, self.detail)
    }
}

impl std::error::Error for ShapeError {}

/// Computes the constant GCN propagation matrix
/// `D^-1/2 (A + I) D^-1/2` from a dense adjacency matrix (row-major,
/// `n x n`), where `D` is the degree matrix of the self-connected
/// adjacency.
///
/// The result is a constant tensor (no gradient flows through the graph
/// structure), recomputed whenever the topology changes.
///
/// # Panics
///
/// Panics when `adjacency.len() != n * n`.
///
/// # Examples
///
/// ```
/// use nptsn_nn::normalized_adjacency;
///
/// // Two connected nodes: A + I is all-ones, degrees are 2.
/// let ahat = normalized_adjacency(&[0.0, 1.0, 1.0, 0.0], 2);
/// for v in ahat.to_vec() {
///     assert!((v - 0.5).abs() < 1e-6);
/// }
/// ```
pub fn normalized_adjacency(adjacency: &[f32], n: usize) -> Tensor {
    assert_eq!(adjacency.len(), n * n, "adjacency must be n x n");
    Tensor::from_vec(n, n, normalized_adjacency_data(adjacency, n))
}

/// Panic-free twin of [`normalized_adjacency`]: returns a [`ShapeError`]
/// instead of panicking when `adjacency.len() != n * n`.
///
/// # Examples
///
/// ```
/// use nptsn_nn::try_normalized_adjacency;
///
/// assert!(try_normalized_adjacency(&[0.0; 4], 2).is_ok());
/// assert!(try_normalized_adjacency(&[0.0; 3], 2).is_err());
/// ```
pub fn try_normalized_adjacency(adjacency: &[f32], n: usize) -> Result<Tensor, ShapeError> {
    if adjacency.len() != n * n {
        return Err(ShapeError {
            op: "normalized_adjacency",
            detail: format!("adjacency has {} entries, expected {n} x {n}", adjacency.len()),
        });
    }
    Ok(normalized_adjacency(adjacency, n))
}

/// The raw data of [`normalized_adjacency`] without the tensor wrapper —
/// the form the fingerprint-keyed [`AdjacencyCache`](crate::AdjacencyCache)
/// stores. Callers must guarantee `adjacency.len() == n * n`.
pub(crate) fn normalized_adjacency_data(adjacency: &[f32], n: usize) -> Vec<f32> {
    // A + I.
    let mut a_hat: Vec<f32> = adjacency.to_vec();
    for i in 0..n {
        a_hat[i * n + i] += 1.0;
    }
    // D^-1/2 of the self-connected adjacency.
    let inv_sqrt_deg: Vec<f32> = (0..n)
        .map(|i| {
            let deg: f32 = a_hat[i * n..(i + 1) * n].iter().sum();
            if deg > 0.0 {
                deg.sqrt().recip()
            } else {
                0.0
            }
        })
        .collect();
    for i in 0..n {
        for j in 0..n {
            a_hat[i * n + j] *= inv_sqrt_deg[i] * inv_sqrt_deg[j];
        }
    }
    a_hat
}

/// One topology's slice of a batched GCN forward: its normalized
/// adjacency `Â` and node features, both row-major.
#[derive(Debug, Clone, Copy)]
pub struct GcnBatchItem<'a> {
    /// Normalized adjacency data (`n x n`), as produced by
    /// [`normalized_adjacency`].
    pub ahat: &'a [f32],
    /// Node count of this topology.
    pub n: usize,
    /// Node features (`n x f`); `f` must match the network's input width
    /// and be the same for every item in the batch.
    pub h: &'a [f32],
}

/// The stacked result of [`Gcn::forward_many`]: all K embeddings in one
/// row-major buffer, addressed per item through row offsets.
#[derive(Debug, Clone)]
pub struct GcnBatchOut {
    /// Stacked embeddings, `(sum of n_i) x out_dim` row-major.
    pub data: Vec<f32>,
    /// `offsets[i]..offsets[i + 1]` is the row range of item `i`
    /// (`offsets.len() == items + 1`).
    pub offsets: Vec<usize>,
    /// Output feature width of every row.
    pub out_dim: usize,
}

impl GcnBatchOut {
    /// The embedding rows of item `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn block(&self, i: usize) -> &[f32] {
        &self.data[self.offsets[i] * self.out_dim..self.offsets[i + 1] * self.out_dim]
    }

    /// Number of node rows of item `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn block_rows(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// Number of items in the batch.
    pub fn items(&self) -> usize {
        self.offsets.len() - 1
    }
}

/// A stack of graph convolutional layers implementing Eq. 4:
/// `H^{l+1} = relu(Â H^l W^l)` with `Â` the normalized self-connected
/// adjacency.
///
/// With zero layers the GCN is the identity on the node features — the
/// "GCN-0" configuration of the sensitivity study (Fig. 5a).
///
/// # Examples
///
/// ```
/// use nptsn_nn::{normalized_adjacency, Gcn, Module};
/// use nptsn_tensor::Tensor;
/// use nptsn_rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// // 2 layers turning 5 node features into 8-dimensional embeddings.
/// let gcn = Gcn::new(&mut rng, &[5, 8, 8]);
/// let ahat = normalized_adjacency(&vec![0.0; 9], 3);
/// let h = Tensor::from_vec(3, 5, vec![0.1; 15]);
/// let out = gcn.forward(&ahat, &h);
/// assert_eq!(out.shape(), (3, 8));
/// assert_eq!(gcn.layer_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Gcn {
    weights: Vec<Tensor>,
}

impl Gcn {
    /// Creates a GCN from feature dimensions: `dims[0]` is the input
    /// feature width, each subsequent entry one layer's output width.
    /// `dims` of length 1 yields the zero-layer identity GCN.
    ///
    /// # Panics
    ///
    /// Panics when `dims` is empty.
    pub fn new(rng: &mut impl Rng, dims: &[usize]) -> Gcn {
        assert!(!dims.is_empty(), "at least the input dimension is required");
        let weights = dims
            .windows(2)
            .map(|w| xavier_uniform(rng, w[0], w[1]))
            .collect();
        Gcn { weights }
    }

    /// Applies the propagation rule to node features `h` (`n x f`) using
    /// the precomputed normalized adjacency `ahat` (`n x n`).
    pub fn forward(&self, ahat: &Tensor, h: &Tensor) -> Tensor {
        let _span = nptsn_obs::span("gcn.forward");
        let mut out = h.clone();
        for w in &self.weights {
            out = ahat.matmul(&out).matmul(w).relu();
        }
        out
    }

    /// Panic-free twin of [`Gcn::forward`]: validates shapes up front and
    /// returns a [`ShapeError`] instead of panicking inside a matmul.
    pub fn try_forward(&self, ahat: &Tensor, h: &Tensor) -> Result<Tensor, ShapeError> {
        let (ar, ac) = ahat.shape();
        let (hr, hc) = h.shape();
        if ar != ac {
            return Err(ShapeError {
                op: "gcn.forward",
                detail: format!("adjacency is {ar} x {ac}, expected square"),
            });
        }
        if hr != ar {
            return Err(ShapeError {
                op: "gcn.forward",
                detail: format!("features have {hr} rows, adjacency expects {ar}"),
            });
        }
        if let Some(w) = self.weights.first() {
            if hc != w.rows() {
                return Err(ShapeError {
                    op: "gcn.forward",
                    detail: format!("features have {hc} columns, layer 0 expects {}", w.rows()),
                });
            }
        }
        Ok(self.forward(ahat, h))
    }

    /// Fused batched forward: applies the propagation rule to K
    /// topologies at once and returns their embeddings stacked row-wise.
    ///
    /// The batch is the block-diagonal system
    /// `diag(Â_1 .. Â_K) · stack(H_1 .. H_K) · W` — but the zero blocks
    /// are never materialized: each `Â_i H_i` product runs on its own
    /// block (zero blocks contribute nothing), while the shared-weight
    /// `(Â H) W` multiply runs as one kernel call per cache-sized tile of
    /// stacked rows (whole blocks, never split) and the relu as one pass.
    /// Because every output row sees exactly the
    /// operations, operands and accumulation order of a solo
    /// [`Gcn::forward`] on its item, the result is bitwise identical to K
    /// independent forwards (pinned by this crate's equivalence sweep).
    ///
    /// The output carries no autograd graph — this is the inference path.
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch; [`Gcn::try_forward_many`] is the
    /// panic-free twin.
    pub fn forward_many(&self, items: &[GcnBatchItem<'_>]) -> GcnBatchOut {
        match self.try_forward_many(items) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Panic-free twin of [`Gcn::forward_many`].
    pub fn try_forward_many(&self, items: &[GcnBatchItem<'_>]) -> Result<GcnBatchOut, ShapeError> {
        let _span = nptsn_obs::span("gcn.forward_many");
        // The shared input width: fixed by layer 0 when there is one,
        // inferred from the first item for the zero-layer identity GCN.
        let feat = match self.weights.first() {
            Some(w) => w.rows(),
            None => match items.first() {
                Some(it) if it.n > 0 => it.h.len() / it.n,
                _ => 0,
            },
        };
        let mut offsets = Vec::with_capacity(items.len() + 1);
        offsets.push(0usize);
        for (i, it) in items.iter().enumerate() {
            if it.ahat.len() != it.n * it.n {
                return Err(ShapeError {
                    op: "gcn.forward_many",
                    detail: format!(
                        "item {i}: adjacency has {} entries, expected {} x {}",
                        it.ahat.len(),
                        it.n,
                        it.n
                    ),
                });
            }
            if it.h.len() != it.n * feat {
                return Err(ShapeError {
                    op: "gcn.forward_many",
                    detail: format!(
                        "item {i}: features have {} entries, expected {} x {feat}",
                        it.h.len(),
                        it.n
                    ),
                });
            }
            offsets.push(offsets[i] + it.n);
        }
        let total = *offsets.last().unwrap();

        let out_cols = self.output_dim(feat);
        let weight_data: Vec<_> = self.weights.iter().map(Tensor::data).collect();

        // Depth-first tiling: a cache-sized group of whole blocks runs
        // through *all* layers before the next group starts, so every
        // intermediate buffer is tile-sized — only the final stacked
        // embedding is batch-sized, and it is written once, streaming.
        // Blocks are independent (the adjacency is block-diagonal) and a
        // tile never splits a block, so every output row still sees exactly
        // the operands and accumulation order of a solo forward — the
        // tiling cannot perturb the bitwise equivalence.
        const TILE_ROWS: usize = 512;
        let mut out_data = vec![0.0f32; total * out_cols];
        let (mut cur, mut prop, mut next) = (Vec::new(), Vec::new(), Vec::new());
        let mut tile_start = 0usize;
        while tile_start < items.len() {
            // Grow the tile by whole blocks up to the row budget (always at
            // least one block, however large).
            let mut tile_end = tile_start + 1;
            while tile_end < items.len()
                && offsets[tile_end + 1] - offsets[tile_start] <= TILE_ROWS
            {
                tile_end += 1;
            }
            let rows = offsets[tile_end] - offsets[tile_start];

            // Stack the tile's feature blocks.
            cur.clear();
            for it in &items[tile_start..tile_end] {
                cur.extend_from_slice(it.h);
            }
            let mut cur_cols = feat;
            for (w, wd) in self.weights.iter().zip(&weight_data) {
                let (wr, wc) = w.shape();
                debug_assert_eq!(wr, cur_cols);
                // Â H, block by block: the only non-zero blocks of the
                // block-diagonal product.
                prop.clear();
                prop.resize(rows * cur_cols, 0.0);
                for bi in tile_start..tile_end {
                    let r0 = (offsets[bi] - offsets[tile_start]) * cur_cols;
                    let r1 = (offsets[bi + 1] - offsets[tile_start]) * cur_cols;
                    let n = items[bi].n;
                    kernels::matmul(items[bi].ahat, &cur[r0..r1], &mut prop[r0..r1], n, n, cur_cols);
                }
                // (Â H) W + relu: one call each over the tile's stacked rows.
                next.clear();
                next.resize(rows * wc, 0.0);
                kernels::matmul(&prop, wd, &mut next, rows, cur_cols, wc);
                kernels::relu_in_place(&mut next);
                std::mem::swap(&mut cur, &mut next);
                cur_cols = wc;
            }
            debug_assert_eq!(cur_cols, out_cols);
            out_data[offsets[tile_start] * out_cols..offsets[tile_end] * out_cols]
                .copy_from_slice(&cur);
            tile_start = tile_end;
        }
        Ok(GcnBatchOut { data: out_data, offsets, out_dim: out_cols })
    }

    /// Number of convolution layers.
    pub fn layer_count(&self) -> usize {
        self.weights.len()
    }

    /// Output feature width (the input width for zero layers).
    pub fn output_dim(&self, input_dim: usize) -> usize {
        self.weights.last().map(Tensor::cols).unwrap_or(input_dim)
    }
}

impl Module for Gcn {
    fn parameters(&self) -> Vec<Tensor> {
        self.weights.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nptsn_rand::rngs::StdRng;
    use nptsn_rand::SeedableRng;

    #[test]
    fn normalized_adjacency_rows_of_path_graph() {
        // Path 0-1-2: degrees of A+I are 2, 3, 2.
        let adj = vec![0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0];
        let ahat = normalized_adjacency(&adj, 3);
        let d = [2.0f32, 3.0, 2.0];
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j {
                    1.0 / d[i]
                } else if (i as i32 - j as i32).abs() == 1 {
                    1.0 / (d[i] * d[j]).sqrt()
                } else {
                    0.0
                };
                assert!((ahat.at(i, j) - expected).abs() < 1e-6, "({i},{j})");
            }
        }
    }

    #[test]
    fn isolated_nodes_get_self_loop_only() {
        let ahat = normalized_adjacency(&[0.0; 4], 2);
        assert_eq!(ahat.to_vec(), vec![1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn zero_layer_gcn_is_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        let gcn = Gcn::new(&mut rng, &[4]);
        assert_eq!(gcn.layer_count(), 0);
        assert_eq!(gcn.output_dim(4), 4);
        let ahat = normalized_adjacency(&[0.0; 9], 3);
        let h = Tensor::from_vec(3, 4, (0..12).map(|i| i as f32).collect());
        assert_eq!(gcn.forward(&ahat, &h).to_vec(), h.to_vec());
    }

    #[test]
    fn message_passing_spreads_information() {
        let mut rng = StdRng::seed_from_u64(1);
        let gcn = Gcn::new(&mut rng, &[1, 4]);
        // Path 0-1-2; only node 0 carries a feature.
        let adj = vec![0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0];
        let ahat = normalized_adjacency(&adj, 3);
        let h = Tensor::from_vec(3, 1, vec![1.0, 0.0, 0.0]);
        let out = gcn.forward(&ahat, &h);
        // Node 1 (adjacent) receives signal; node 2 (two hops) does not in
        // a single layer.
        let row = |i: usize| (0..4).map(|j| out.at(i, j).abs()).sum::<f32>();
        assert!(row(1) > 0.0);
        assert_eq!(row(2), 0.0);
        // A second layer propagates two hops.
        let mut rng2 = StdRng::seed_from_u64(1);
        let gcn2 = Gcn::new(&mut rng2, &[1, 4, 4]);
        let out2 = gcn2.forward(&ahat, &h);
        let row2 = |i: usize| (0..4).map(|j| out2.at(i, j).abs()).sum::<f32>();
        // Relu may zero some channels; with seed 1 signal survives.
        assert!(row2(2) > 0.0, "two layers should reach node 2");
    }

    #[test]
    fn gradients_flow_through_gcn() {
        let mut rng = StdRng::seed_from_u64(1);
        let gcn = Gcn::new(&mut rng, &[2, 3, 3]);
        let ahat = normalized_adjacency(&[0.0, 1.0, 1.0, 0.0], 2);
        let h = Tensor::from_vec(2, 2, vec![0.5, -0.5, 0.25, 0.75]);
        gcn.forward(&ahat, &h).mean().backward();
        for (i, p) in gcn.parameters().iter().enumerate() {
            assert!(p.grad().iter().any(|&g| g != 0.0), "layer {i} got no gradient");
        }
    }
}
