//! Graph convolutional networks (Kipf & Welling, Eq. 4 of the paper).

use nptsn_tensor::Tensor;
use nptsn_rand::Rng;

use crate::init::xavier_uniform;
use crate::Module;

/// Computes the constant GCN propagation matrix
/// `D^-1/2 (A + I) D^-1/2` from a dense adjacency matrix (row-major,
/// `n x n`), where `D` is the degree matrix of the self-connected
/// adjacency.
///
/// The result is a constant tensor (no gradient flows through the graph
/// structure), recomputed whenever the topology changes.
///
/// # Panics
///
/// Panics when `adjacency.len() != n * n`.
///
/// # Examples
///
/// ```
/// use nptsn_nn::normalized_adjacency;
///
/// // Two connected nodes: A + I is all-ones, degrees are 2.
/// let ahat = normalized_adjacency(&[0.0, 1.0, 1.0, 0.0], 2);
/// for v in ahat.to_vec() {
///     assert!((v - 0.5).abs() < 1e-6);
/// }
/// ```
pub fn normalized_adjacency(adjacency: &[f32], n: usize) -> Tensor {
    assert_eq!(adjacency.len(), n * n, "adjacency must be n x n");
    // A + I.
    let mut a_hat: Vec<f32> = adjacency.to_vec();
    for i in 0..n {
        a_hat[i * n + i] += 1.0;
    }
    // D^-1/2 of the self-connected adjacency.
    let inv_sqrt_deg: Vec<f32> = (0..n)
        .map(|i| {
            let deg: f32 = a_hat[i * n..(i + 1) * n].iter().sum();
            if deg > 0.0 {
                deg.sqrt().recip()
            } else {
                0.0
            }
        })
        .collect();
    for i in 0..n {
        for j in 0..n {
            a_hat[i * n + j] *= inv_sqrt_deg[i] * inv_sqrt_deg[j];
        }
    }
    Tensor::from_vec(n, n, a_hat)
}

/// A stack of graph convolutional layers implementing Eq. 4:
/// `H^{l+1} = relu(Â H^l W^l)` with `Â` the normalized self-connected
/// adjacency.
///
/// With zero layers the GCN is the identity on the node features — the
/// "GCN-0" configuration of the sensitivity study (Fig. 5a).
///
/// # Examples
///
/// ```
/// use nptsn_nn::{normalized_adjacency, Gcn, Module};
/// use nptsn_tensor::Tensor;
/// use nptsn_rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// // 2 layers turning 5 node features into 8-dimensional embeddings.
/// let gcn = Gcn::new(&mut rng, &[5, 8, 8]);
/// let ahat = normalized_adjacency(&vec![0.0; 9], 3);
/// let h = Tensor::from_vec(3, 5, vec![0.1; 15]);
/// let out = gcn.forward(&ahat, &h);
/// assert_eq!(out.shape(), (3, 8));
/// assert_eq!(gcn.layer_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Gcn {
    weights: Vec<Tensor>,
}

impl Gcn {
    /// Creates a GCN from feature dimensions: `dims[0]` is the input
    /// feature width, each subsequent entry one layer's output width.
    /// `dims` of length 1 yields the zero-layer identity GCN.
    ///
    /// # Panics
    ///
    /// Panics when `dims` is empty.
    pub fn new(rng: &mut impl Rng, dims: &[usize]) -> Gcn {
        assert!(!dims.is_empty(), "at least the input dimension is required");
        let weights = dims
            .windows(2)
            .map(|w| xavier_uniform(rng, w[0], w[1]))
            .collect();
        Gcn { weights }
    }

    /// Applies the propagation rule to node features `h` (`n x f`) using
    /// the precomputed normalized adjacency `ahat` (`n x n`).
    pub fn forward(&self, ahat: &Tensor, h: &Tensor) -> Tensor {
        let _span = nptsn_obs::span("gcn.forward");
        let mut out = h.clone();
        for w in &self.weights {
            out = ahat.matmul(&out).matmul(w).relu();
        }
        out
    }

    /// Number of convolution layers.
    pub fn layer_count(&self) -> usize {
        self.weights.len()
    }

    /// Output feature width (the input width for zero layers).
    pub fn output_dim(&self, input_dim: usize) -> usize {
        self.weights.last().map(Tensor::cols).unwrap_or(input_dim)
    }
}

impl Module for Gcn {
    fn parameters(&self) -> Vec<Tensor> {
        self.weights.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nptsn_rand::rngs::StdRng;
    use nptsn_rand::SeedableRng;

    #[test]
    fn normalized_adjacency_rows_of_path_graph() {
        // Path 0-1-2: degrees of A+I are 2, 3, 2.
        let adj = vec![0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0];
        let ahat = normalized_adjacency(&adj, 3);
        let d = [2.0f32, 3.0, 2.0];
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j {
                    1.0 / d[i]
                } else if (i as i32 - j as i32).abs() == 1 {
                    1.0 / (d[i] * d[j]).sqrt()
                } else {
                    0.0
                };
                assert!((ahat.at(i, j) - expected).abs() < 1e-6, "({i},{j})");
            }
        }
    }

    #[test]
    fn isolated_nodes_get_self_loop_only() {
        let ahat = normalized_adjacency(&[0.0; 4], 2);
        assert_eq!(ahat.to_vec(), vec![1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn zero_layer_gcn_is_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        let gcn = Gcn::new(&mut rng, &[4]);
        assert_eq!(gcn.layer_count(), 0);
        assert_eq!(gcn.output_dim(4), 4);
        let ahat = normalized_adjacency(&[0.0; 9], 3);
        let h = Tensor::from_vec(3, 4, (0..12).map(|i| i as f32).collect());
        assert_eq!(gcn.forward(&ahat, &h).to_vec(), h.to_vec());
    }

    #[test]
    fn message_passing_spreads_information() {
        let mut rng = StdRng::seed_from_u64(1);
        let gcn = Gcn::new(&mut rng, &[1, 4]);
        // Path 0-1-2; only node 0 carries a feature.
        let adj = vec![0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0];
        let ahat = normalized_adjacency(&adj, 3);
        let h = Tensor::from_vec(3, 1, vec![1.0, 0.0, 0.0]);
        let out = gcn.forward(&ahat, &h);
        // Node 1 (adjacent) receives signal; node 2 (two hops) does not in
        // a single layer.
        let row = |i: usize| (0..4).map(|j| out.at(i, j).abs()).sum::<f32>();
        assert!(row(1) > 0.0);
        assert_eq!(row(2), 0.0);
        // A second layer propagates two hops.
        let mut rng2 = StdRng::seed_from_u64(1);
        let gcn2 = Gcn::new(&mut rng2, &[1, 4, 4]);
        let out2 = gcn2.forward(&ahat, &h);
        let row2 = |i: usize| (0..4).map(|j| out2.at(i, j).abs()).sum::<f32>();
        // Relu may zero some channels; with seed 1 signal survives.
        assert!(row2(2) > 0.0, "two layers should reach node 2");
    }

    #[test]
    fn gradients_flow_through_gcn() {
        let mut rng = StdRng::seed_from_u64(1);
        let gcn = Gcn::new(&mut rng, &[2, 3, 3]);
        let ahat = normalized_adjacency(&[0.0, 1.0, 1.0, 0.0], 2);
        let h = Tensor::from_vec(2, 2, vec![0.5, -0.5, 0.25, 0.75]);
        gcn.forward(&ahat, &h).mean().backward();
        for (i, p) in gcn.parameters().iter().enumerate() {
            assert!(p.grad().iter().any(|&g| g != 0.0), "layer {i} got no gradient");
        }
    }
}
