//! Neural-network layers, initializers and the Adam optimizer, built on
//! [`nptsn_tensor`].
//!
//! Provides exactly the architecture the NPTSN decision maker needs
//! (Section IV-C, Fig. 3 of the paper):
//!
//! * [`Linear`] — a fully connected layer.
//! * [`Mlp`] — multi-layer perceptrons for the actor and critic heads.
//! * [`Gcn`] — graph convolutional layers implementing the propagation
//!   rule of Eq. 4, `H' = σ(D^-1/2 (A+I) D^-1/2 H W)`, together with
//!   [`normalized_adjacency`] to precompute the constant propagation
//!   matrix.
//! * [`Adam`] — the Adam optimizer \[27\].
//! * [`Module`] — parameter enumeration, with [`export_params`] /
//!   [`import_params`] for synchronizing parameters across rollout workers.
//!
//! # Examples
//!
//! ```
//! use nptsn_nn::{Activation, Adam, Mlp, Module};
//! use nptsn_tensor::Tensor;
//! use nptsn_rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mlp = Mlp::new(&mut rng, &[2, 16, 1], Activation::Tanh, Activation::Identity);
//! let mut adam = Adam::new(mlp.parameters(), 1e-2);
//!
//! // Fit y = x0 + x1 on four points.
//! let x = Tensor::from_vec(4, 2, vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
//! let y = Tensor::from_vec(4, 1, vec![0.0, 1.0, 1.0, 2.0]);
//! let mut last = f32::INFINITY;
//! for _ in 0..200 {
//!     adam.zero_grad();
//!     let loss = mlp.forward(&x).sub(&y).square().mean();
//!     loss.backward();
//!     adam.step();
//!     last = loss.item();
//! }
//! assert!(last < 0.05, "loss should shrink, got {last}");
//! ```

#![warn(missing_docs)]

mod adam;
mod adjacency_cache;
mod checkpoint;
mod gcn;
mod init;
mod linear;
mod mlp;

pub use adam::Adam;
pub use adjacency_cache::{adjacency_cache, AdjacencyCache};
pub use checkpoint::{
    checkpoint_shapes, load_params, params_from_bytes, params_to_bytes, save_params_atomic,
    CheckpointError, CheckpointFileError,
};
pub use gcn::{
    normalized_adjacency, try_normalized_adjacency, Gcn, GcnBatchItem, GcnBatchOut, ShapeError,
};
pub use init::{kaiming_normal, xavier_uniform};
pub use linear::Linear;
pub use mlp::{Activation, Mlp};

use nptsn_tensor::Tensor;

/// Anything that owns trainable parameters.
pub trait Module {
    /// The trainable parameter tensors, in a stable order.
    fn parameters(&self) -> Vec<Tensor>;

    /// Total number of scalar parameters.
    fn parameter_count(&self) -> usize {
        self.parameters().iter().map(Tensor::len).sum()
    }
}

/// Snapshots parameter values (for checkpointing or shipping to rollout
/// worker threads).
pub fn export_params(params: &[Tensor]) -> Vec<Vec<f32>> {
    params.iter().map(Tensor::to_vec).collect()
}

/// Loads snapshots produced by [`export_params`] back into parameters.
///
/// # Panics
///
/// Panics when counts or shapes disagree.
pub fn import_params(params: &[Tensor], values: &[Vec<f32>]) {
    assert_eq!(params.len(), values.len(), "parameter count mismatch");
    for (p, v) in params.iter().zip(values) {
        p.set_data(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nptsn_rand::rngs::StdRng;
    use nptsn_rand::SeedableRng;

    #[test]
    fn export_import_roundtrip() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Mlp::new(&mut rng, &[3, 4, 2], Activation::Relu, Activation::Identity);
        let b = Mlp::new(&mut rng, &[3, 4, 2], Activation::Relu, Activation::Identity);
        let x = Tensor::from_vec(1, 3, vec![0.1, 0.2, 0.3]);
        assert_ne!(a.forward(&x).to_vec(), b.forward(&x).to_vec());
        import_params(&b.parameters(), &export_params(&a.parameters()));
        assert_eq!(a.forward(&x).to_vec(), b.forward(&x).to_vec());
    }

    #[test]
    fn parameter_count_adds_up() {
        let mut rng = StdRng::seed_from_u64(7);
        let mlp = Mlp::new(&mut rng, &[3, 5, 2], Activation::Relu, Activation::Identity);
        // (3*5 + 5) + (5*2 + 2) = 20 + 12.
        assert_eq!(mlp.parameter_count(), 32);
    }
}
