//! The Adam gradient optimizer (Kingma & Ba).

use nptsn_tensor::Tensor;

/// Adam: adaptive moment estimation over a fixed parameter list.
///
/// All gradient updates in the paper use Adam (Section IV-C); the defaults
/// here are the standard `beta1 = 0.9`, `beta2 = 0.999`, `eps = 1e-8`.
///
/// # Examples
///
/// ```
/// use nptsn_nn::Adam;
/// use nptsn_tensor::Tensor;
///
/// let w = Tensor::param(1, 1, vec![5.0]);
/// let mut adam = Adam::new(vec![w.clone()], 0.1);
/// for _ in 0..500 {
///     adam.zero_grad();
///     w.square().mean().backward();
///     adam.step();
/// }
/// assert!(w.item().abs() < 0.1, "should approach the minimum at 0");
/// ```
#[derive(Debug)]
pub struct Adam {
    params: Vec<Tensor>,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
    t: u64,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
}

impl Adam {
    /// Creates an optimizer over `params` with learning rate `lr` and the
    /// standard moment coefficients.
    pub fn new(params: Vec<Tensor>, lr: f32) -> Adam {
        Adam::with_betas(params, lr, 0.9, 0.999, 1e-8)
    }

    /// Creates an optimizer with explicit moment coefficients.
    pub fn with_betas(params: Vec<Tensor>, lr: f32, beta1: f32, beta2: f32, eps: f32) -> Adam {
        let m = params.iter().map(|p| vec![0.0; p.len()]).collect();
        let v = params.iter().map(|p| vec![0.0; p.len()]).collect();
        Adam { params, m, v, t: 0, lr, beta1, beta2, eps }
    }

    /// The current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Replaces the learning rate (e.g. for schedules).
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Clears the gradients of every managed parameter.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// Applies one Adam update using the currently accumulated gradients.
    pub fn step(&mut self) {
        self.step_with_grads(None);
    }

    /// Applies one Adam update using externally supplied gradients instead
    /// of the accumulated ones — the hook used for distributed gradient
    /// averaging across rollout workers (Section IV-C parallelization).
    ///
    /// # Panics
    ///
    /// Panics when the gradient list's shape does not match the parameters.
    pub fn step_with(&mut self, grads: &[Vec<f32>]) {
        assert_eq!(grads.len(), self.params.len(), "one gradient per parameter");
        self.step_with_grads(Some(grads));
    }

    fn step_with_grads(&mut self, grads: Option<&[Vec<f32>]>) {
        let _span = nptsn_obs::span("adam.step");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in self.params.iter().enumerate() {
            let grad = match grads {
                Some(gs) => {
                    assert_eq!(gs[i].len(), p.len(), "gradient {i} has the wrong length");
                    gs[i].clone()
                }
                None => p.grad(),
            };
            let (m, v) = (&mut self.m[i], &mut self.v[i]);
            let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
            p.update_data(|j, x| {
                m[j] = b1 * m[j] + (1.0 - b1) * grad[j];
                v[j] = b2 * v[j] + (1.0 - b2) * grad[j] * grad[j];
                let m_hat = m[j] / bc1;
                let v_hat = v[j] / bc2;
                x - lr * m_hat / (v_hat.sqrt() + eps)
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_a_quadratic() {
        let w = Tensor::param(1, 2, vec![3.0, -4.0]);
        let target = Tensor::from_vec(1, 2, vec![1.0, 2.0]);
        let mut adam = Adam::new(vec![w.clone()], 0.05);
        for _ in 0..1000 {
            adam.zero_grad();
            w.sub(&target).square().mean().backward();
            adam.step();
        }
        let v = w.to_vec();
        assert!((v[0] - 1.0).abs() < 0.05 && (v[1] - 2.0).abs() < 0.05, "{v:?}");
    }

    #[test]
    fn first_step_moves_by_about_lr() {
        // Adam's bias correction makes the first step ~= lr * sign(grad).
        let w = Tensor::param(1, 1, vec![0.0]);
        let mut adam = Adam::new(vec![w.clone()], 0.01);
        w.scale(3.0).mean().backward(); // grad = 3
        adam.step();
        assert!((w.item() + 0.01).abs() < 1e-4, "moved {}", w.item());
    }

    #[test]
    fn external_gradients_drive_the_step() {
        let w = Tensor::param(1, 1, vec![0.0]);
        let mut adam = Adam::new(vec![w.clone()], 0.01);
        // No backward at all; supply the averaged gradient directly.
        adam.step_with(&[vec![1.0]]);
        assert!(w.item() < 0.0);
    }

    #[test]
    fn zero_grad_clears_accumulation() {
        let w = Tensor::param(1, 1, vec![1.0]);
        let adam = Adam::new(vec![w.clone()], 0.01);
        w.square().mean().backward();
        assert!(w.grad()[0] != 0.0);
        adam.zero_grad();
        assert_eq!(w.grad(), vec![0.0]);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut adam = Adam::new(vec![Tensor::param(1, 1, vec![0.0])], 0.5);
        assert_eq!(adam.learning_rate(), 0.5);
        adam.set_learning_rate(0.25);
        assert_eq!(adam.learning_rate(), 0.25);
    }
}
