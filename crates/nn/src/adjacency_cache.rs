//! Fingerprint-keyed memoization of [`normalized_adjacency`] results.
//!
//! Normalizing an adjacency matrix is pure: the same topology always
//! yields the same `Â`, bit for bit. Inference traffic hits the same
//! topologies over and over (every episode step of every attempt of every
//! infer job re-encodes the current topology), so the propagation matrix
//! is normalized once per topology fingerprint and shared from then on —
//! the same way `ScenarioCache` memoizes NBF outcomes per
//! `(fingerprint, scenario)`. Mutating a topology changes its
//! fingerprint, so stale entries are never *served*; they are dropped
//! wholesale when the map reaches capacity.
//!
//! Hit/miss counters are registered on the process-wide telemetry
//! registry as `nptsn_infer_adjacency_cache_{hits,misses}_total`, so
//! `/metrics` shows whether the cache is engaging in production.
//!
//! [`normalized_adjacency`]: crate::normalized_adjacency

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use nptsn_obs::metrics::Counter;

use crate::gcn::normalized_adjacency_data;

/// A bounded, thread-safe cache of normalized-adjacency buffers keyed by
/// a 128-bit topology fingerprint.
///
/// # Examples
///
/// ```
/// use nptsn_nn::AdjacencyCache;
///
/// let cache = AdjacencyCache::new(16);
/// let a = cache.get_or_insert(7, &[0.0, 1.0, 1.0, 0.0], 2);
/// let b = cache.get_or_insert(7, &[0.0, 1.0, 1.0, 0.0], 2);
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// assert_eq!(cache.hits(), 1);
/// assert_eq!(cache.misses(), 1);
/// ```
pub struct AdjacencyCache {
    map: Mutex<HashMap<u128, Arc<[f32]>>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl AdjacencyCache {
    /// Creates a cache holding at most `capacity` topologies; when full,
    /// the whole map is cleared (fingerprints do not revisit old values,
    /// so eviction order is irrelevant and a clear keeps the lock cheap).
    pub fn new(capacity: usize) -> AdjacencyCache {
        AdjacencyCache {
            map: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the cached `Â` for `key`, normalizing `adjacency`
    /// (`n x n`, as accepted by
    /// [`normalized_adjacency`](crate::normalized_adjacency)) on the
    /// first sighting. The caller must guarantee that `key` uniquely
    /// identifies the adjacency contents.
    ///
    /// # Panics
    ///
    /// Panics when `adjacency.len() != n * n` on a miss.
    pub fn get_or_insert(&self, key: u128, adjacency: &[f32], n: usize) -> Arc<[f32]> {
        let counters = telemetry_counters();
        {
            let map = self.map.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(hit) = map.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                counters.hits.inc();
                return Arc::clone(hit);
            }
        }
        // Normalize outside the lock: misses are the expensive path and
        // concurrent misses on the same key just race to insert equal bits.
        assert_eq!(adjacency.len(), n * n, "adjacency must be n x n");
        let value: Arc<[f32]> = normalized_adjacency_data(adjacency, n).into();
        self.misses.fetch_add(1, Ordering::Relaxed);
        counters.misses.inc();
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        if map.len() >= self.capacity {
            map.clear();
        }
        Arc::clone(map.entry(key).or_insert(value))
    }

    /// Number of cached topologies.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime cache hits of this instance.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime cache misses of this instance.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

struct CacheCounters {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
}

fn telemetry_counters() -> &'static CacheCounters {
    static COUNTERS: OnceLock<CacheCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        let registry = &nptsn_obs::telemetry().registry;
        CacheCounters {
            hits: registry.counter(
                "nptsn_infer_adjacency_cache_hits_total",
                "Normalized-adjacency cache hits across all caches",
            ),
            misses: registry.counter(
                "nptsn_infer_adjacency_cache_misses_total",
                "Normalized-adjacency cache misses across all caches",
            ),
        }
    })
}

/// The process-wide adjacency cache shared by every inference path.
pub fn adjacency_cache() -> &'static AdjacencyCache {
    static GLOBAL: OnceLock<AdjacencyCache> = OnceLock::new();
    GLOBAL.get_or_init(|| AdjacencyCache::new(4096))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalized_adjacency;

    #[test]
    fn caches_by_key_and_matches_uncached_bits() {
        let cache = AdjacencyCache::new(8);
        let adj = [0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0];
        let cached = cache.get_or_insert(42, &adj, 3);
        assert_eq!(&cached[..], normalized_adjacency(&adj, 3).to_vec().as_slice());
        // Second lookup never re-normalizes: feeding garbage under the
        // same key must return the original buffer.
        let again = cache.get_or_insert(42, &[9.0; 9], 3);
        assert!(Arc::ptr_eq(&cached, &again));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn clears_at_capacity_instead_of_growing() {
        let cache = AdjacencyCache::new(2);
        for key in 0..5u128 {
            cache.get_or_insert(key, &[0.0; 4], 2);
            assert!(cache.len() <= 2, "len {} after key {key}", cache.len());
        }
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 5);
    }
}
