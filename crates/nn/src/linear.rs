//! Fully connected layers.

use nptsn_tensor::Tensor;
use nptsn_rand::Rng;

use crate::init::xavier_uniform;
use crate::Module;

/// A fully connected layer `y = x W + b` with `W: (inputs, outputs)` and a
/// row-broadcast bias `b: (1, outputs)`.
///
/// # Examples
///
/// ```
/// use nptsn_nn::{Linear, Module};
/// use nptsn_tensor::Tensor;
/// use nptsn_rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let layer = Linear::new(&mut rng, 3, 2);
/// let x = Tensor::from_vec(4, 3, vec![0.0; 12]);
/// assert_eq!(layer.forward(&x).shape(), (4, 2));
/// assert_eq!(layer.parameters().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Tensor,
    bias: Tensor,
}

impl Linear {
    /// Creates a layer with Xavier-initialized weights and zero bias.
    pub fn new(rng: &mut impl Rng, inputs: usize, outputs: usize) -> Linear {
        Linear {
            weight: xavier_uniform(rng, inputs, outputs),
            bias: Tensor::param(1, outputs, vec![0.0; outputs]),
        }
    }

    /// Applies the layer to a `(batch, inputs)` tensor.
    ///
    /// # Panics
    ///
    /// Panics when the input column count differs from `inputs`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        x.matmul(&self.weight).add(&self.bias)
    }

    /// Input width.
    pub fn inputs(&self) -> usize {
        self.weight.rows()
    }

    /// Output width.
    pub fn outputs(&self) -> usize {
        self.weight.cols()
    }

    /// The weight matrix.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// The bias row.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }
}

impl Module for Linear {
    fn parameters(&self) -> Vec<Tensor> {
        vec![self.weight.clone(), self.bias.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nptsn_rand::rngs::StdRng;
    use nptsn_rand::SeedableRng;

    #[test]
    fn forward_is_affine() {
        let mut rng = StdRng::seed_from_u64(3);
        let layer = Linear::new(&mut rng, 2, 2);
        let zero = Tensor::from_vec(1, 2, vec![0.0, 0.0]);
        // Zero input yields the bias (zero at init).
        assert_eq!(layer.forward(&zero).to_vec(), vec![0.0, 0.0]);
        // Linearity: f(2x) = 2 f(x) with zero bias.
        let x = Tensor::from_vec(1, 2, vec![0.3, -0.7]);
        let fx = layer.forward(&x).to_vec();
        let f2x = layer.forward(&x.scale(2.0)).to_vec();
        for (a, b) in fx.iter().zip(f2x.iter()) {
            assert!((2.0 * a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn gradients_flow_to_both_parameters() {
        let mut rng = StdRng::seed_from_u64(3);
        let layer = Linear::new(&mut rng, 2, 1);
        let x = Tensor::from_vec(1, 2, vec![1.0, -1.0]);
        layer.forward(&x).sum().backward();
        assert!(layer.weight().grad().iter().any(|&g| g != 0.0));
        assert!(layer.bias().grad().iter().all(|&g| g == 1.0));
        assert_eq!(layer.inputs(), 2);
        assert_eq!(layer.outputs(), 1);
    }
}
