//! Multi-layer perceptrons.

use nptsn_tensor::Tensor;
use nptsn_rand::Rng;

use crate::linear::Linear;
use crate::Module;

/// Elementwise activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// `max(x, 0)`.
    Relu,
    /// Hyperbolic tangent — the SpinningUp default for PPO hidden layers.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// No-op (linear output heads).
    Identity,
}

impl Activation {
    /// Applies the activation.
    pub fn apply(self, x: &Tensor) -> Tensor {
        match self {
            Activation::Relu => x.relu(),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => x.sigmoid(),
            Activation::Identity => x.clone(),
        }
    }
}

/// A multi-layer perceptron: `Linear -> activation` repeated, with a
/// configurable output activation.
///
/// The NPTSN decision maker uses two of these: the actor head producing
/// action logits and the critic head producing the value estimate, both on
/// top of the GCN graph embedding (Fig. 3). The paper's default hidden
/// size is 256x256 (Table II).
///
/// # Examples
///
/// ```
/// use nptsn_nn::{Activation, Mlp, Module};
/// use nptsn_tensor::Tensor;
/// use nptsn_rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mlp = Mlp::new(&mut rng, &[4, 256, 256, 3], Activation::Tanh, Activation::Identity);
/// let x = Tensor::from_vec(1, 4, vec![0.1, 0.2, 0.3, 0.4]);
/// assert_eq!(mlp.forward(&x).shape(), (1, 3));
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    hidden_activation: Activation,
    output_activation: Activation,
}

impl Mlp {
    /// Creates an MLP with the given layer sizes (`sizes[0]` is the input
    /// width, `sizes.last()` the output width).
    ///
    /// # Panics
    ///
    /// Panics when fewer than two sizes are given.
    pub fn new(
        rng: &mut impl Rng,
        sizes: &[usize],
        hidden_activation: Activation,
        output_activation: Activation,
    ) -> Mlp {
        assert!(sizes.len() >= 2, "an MLP needs at least input and output sizes");
        let layers = sizes
            .windows(2)
            .map(|w| Linear::new(rng, w[0], w[1]))
            .collect();
        Mlp { layers, hidden_activation, output_activation }
    }

    /// Applies the network to a `(batch, inputs)` tensor.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let mut h = x.clone();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(&h);
            h = if i == last {
                self.output_activation.apply(&h)
            } else {
                self.hidden_activation.apply(&h)
            };
        }
        h
    }

    /// Input width.
    pub fn inputs(&self) -> usize {
        self.layers[0].inputs()
    }

    /// Output width.
    pub fn outputs(&self) -> usize {
        self.layers[self.layers.len() - 1].outputs()
    }
}

impl Module for Mlp {
    fn parameters(&self) -> Vec<Tensor> {
        self.layers.iter().flat_map(Linear::parameters).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nptsn_rand::rngs::StdRng;
    use nptsn_rand::SeedableRng;

    #[test]
    fn shapes_and_parameters() {
        let mut rng = StdRng::seed_from_u64(0);
        let mlp = Mlp::new(&mut rng, &[3, 8, 8, 2], Activation::Relu, Activation::Identity);
        assert_eq!(mlp.inputs(), 3);
        assert_eq!(mlp.outputs(), 2);
        assert_eq!(mlp.parameters().len(), 6);
        let x = Tensor::from_vec(5, 3, vec![0.1; 15]);
        assert_eq!(mlp.forward(&x).shape(), (5, 2));
    }

    #[test]
    fn activations_change_output() {
        let mut rng = StdRng::seed_from_u64(0);
        let relu = Mlp::new(&mut rng, &[2, 4, 1], Activation::Relu, Activation::Identity);
        let mut rng2 = StdRng::seed_from_u64(0);
        let tanh = Mlp::new(&mut rng2, &[2, 4, 1], Activation::Tanh, Activation::Identity);
        let x = Tensor::from_vec(1, 2, vec![0.9, -0.4]);
        assert_ne!(relu.forward(&x).to_vec(), tanh.forward(&x).to_vec());
    }

    #[test]
    fn sigmoid_output_bounded() {
        let mut rng = StdRng::seed_from_u64(0);
        let mlp = Mlp::new(&mut rng, &[2, 4, 3], Activation::Tanh, Activation::Sigmoid);
        let x = Tensor::from_vec(1, 2, vec![100.0, -100.0]);
        assert!(mlp.forward(&x).to_vec().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn too_few_sizes_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = Mlp::new(&mut rng, &[3], Activation::Relu, Activation::Identity);
    }

    #[test]
    fn gradient_reaches_every_layer() {
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new(&mut rng, &[2, 4, 4, 1], Activation::Tanh, Activation::Identity);
        let x = Tensor::from_vec(1, 2, vec![0.5, -0.5]);
        mlp.forward(&x).sum().backward();
        for (i, p) in mlp.parameters().iter().enumerate() {
            // Biases of later layers always receive gradient; weights do
            // unless activations are exactly zero, which tanh avoids.
            assert!(
                p.grad().iter().any(|&g| g != 0.0),
                "parameter {i} received no gradient"
            );
        }
    }
}
