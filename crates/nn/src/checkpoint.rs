//! Parameter checkpointing: serialize trained weights to bytes and back.
//!
//! The planner trains one policy per planning problem; checkpoints let a
//! deployment save the best policy next to the chosen topology, resume a
//! long ORION run, or ship weights between machines. The format is a
//! deliberately simple self-describing little-endian layout — no external
//! serialization dependency required:
//!
//! ```text
//! +--------------------+  "NPTSNCK" + ASCII version digit ('2')
//! | magic      8 bytes |
//! +--------------------+
//! | count      u64 LE  |  number of tensors
//! +--------------------+
//! | rows       u64 LE  |\
//! | cols       u64 LE  | > repeated `count` times
//! | data  f32 LE × r·c |/
//! +--------------------+
//! | crc32      u32 LE  |  IEEE CRC-32 of every preceding byte
//! +--------------------+
//! ```
//!
//! The trailing checksum makes silent corruption (a flipped bit on disk, a
//! partially flushed write) a detectable [`CheckpointError::BadChecksum`]
//! instead of garbage weights; truncated streams fail structurally with
//! [`CheckpointError::Truncated`]. Version-1 checkpoints (no trailer) are
//! rejected with [`CheckpointError::UnsupportedVersion`] rather than
//! misread. For crash-safe persistence use [`save_params_atomic`], which
//! writes a temporary file, fsyncs it, and renames it into place so the
//! destination always holds either the old or the new checkpoint in full.

use std::fs::{self, File};
use std::io::Write as _;
use std::path::Path;

use nptsn_tensor::Tensor;

/// Magic prefix of the checkpoint format, excluding the version digit.
const MAGIC_PREFIX: &[u8; 7] = b"NPTSNCK";

/// Current format version (an ASCII digit, making the full magic
/// `NPTSNCK2`).
const VERSION: u8 = b'2';

/// IEEE CRC-32 (the Ethernet/zlib polynomial, reflected), bitwise — the
/// checkpoint path is not hot enough to justify a table.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFF_u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Errors from [`params_from_bytes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The byte stream does not start with the checkpoint magic.
    BadMagic,
    /// The stream carries the checkpoint magic but a format version this
    /// build cannot read (e.g. a pre-checksum `NPTSNCK1` file).
    UnsupportedVersion {
        /// The raw version byte found in the stream.
        found: u8,
    },
    /// The stream ended before the declared contents.
    Truncated,
    /// The checkpoint's tensor count or shapes do not match the target
    /// parameter list.
    ShapeMismatch {
        /// Index of the first mismatching tensor (or count mismatch).
        index: usize,
    },
    /// Trailing bytes after the declared contents.
    TrailingBytes,
    /// The CRC-32 trailer does not match the stream contents: the
    /// checkpoint was corrupted after it was written.
    BadChecksum {
        /// The checksum declared in the trailer.
        expected: u32,
        /// The checksum of the bytes actually present.
        actual: u32,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => f.write_str("not an NPTSN checkpoint"),
            CheckpointError::UnsupportedVersion { found } => {
                write!(f, "unsupported checkpoint version byte 0x{found:02x}")
            }
            CheckpointError::Truncated => f.write_str("checkpoint is truncated"),
            CheckpointError::ShapeMismatch { index } => {
                write!(f, "checkpoint shape mismatch at tensor {index}")
            }
            CheckpointError::TrailingBytes => f.write_str("trailing bytes after checkpoint"),
            CheckpointError::BadChecksum { expected, actual } => {
                write!(f, "checkpoint checksum mismatch: stored {expected:#010x}, computed {actual:#010x}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Errors from the file-level checkpoint API ([`save_params_atomic`],
/// [`load_params`]).
#[derive(Debug)]
pub enum CheckpointFileError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file was read but its contents are not a valid checkpoint.
    Format(CheckpointError),
}

impl std::fmt::Display for CheckpointFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointFileError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointFileError::Format(e) => write!(f, "checkpoint format error: {e}"),
        }
    }
}

impl std::error::Error for CheckpointFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointFileError::Io(e) => Some(e),
            CheckpointFileError::Format(e) => Some(e),
        }
    }
}

impl From<CheckpointError> for CheckpointFileError {
    fn from(e: CheckpointError) -> CheckpointFileError {
        CheckpointFileError::Format(e)
    }
}

impl From<std::io::Error> for CheckpointFileError {
    fn from(e: std::io::Error) -> CheckpointFileError {
        CheckpointFileError::Io(e)
    }
}

/// Serializes a parameter list into a checkpoint byte vector.
///
/// # Examples
///
/// ```
/// use nptsn_nn::{params_from_bytes, params_to_bytes};
/// use nptsn_tensor::Tensor;
///
/// let w = Tensor::param(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// let bytes = params_to_bytes(&[w.clone()]);
/// w.set_data(&[0.0; 4]);
/// params_from_bytes(&[w.clone()], &bytes).unwrap();
/// assert_eq!(w.to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
/// ```
pub fn params_to_bytes(params: &[Tensor]) -> Vec<u8> {
    let payload: usize = params.iter().map(|p| 16 + 4 * p.len()).sum();
    let mut out = Vec::with_capacity(8 + 8 + payload + 4);
    out.extend_from_slice(MAGIC_PREFIX);
    out.push(VERSION);
    out.extend_from_slice(&(params.len() as u64).to_le_bytes());
    for p in params {
        out.extend_from_slice(&(p.rows() as u64).to_le_bytes());
        out.extend_from_slice(&(p.cols() as u64).to_le_bytes());
        for v in p.data().iter() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Restores a checkpoint produced by [`params_to_bytes`] into `params`
/// (which must have the same count and shapes, e.g. a freshly constructed
/// network of the same configuration).
///
/// # Errors
///
/// Returns a [`CheckpointError`] describing the first structural problem;
/// on error the target parameters are left untouched. Structural errors
/// (bad magic, unsupported version, truncation, shape mismatch) are
/// reported before the checksum, so [`CheckpointError::BadChecksum`]
/// specifically means "structurally plausible but corrupted in place".
pub fn params_from_bytes(params: &[Tensor], bytes: &[u8]) -> Result<(), CheckpointError> {
    fn take<'a>(cursor: &mut &'a [u8], n: usize) -> Result<&'a [u8], CheckpointError> {
        if cursor.len() < n {
            return Err(CheckpointError::Truncated);
        }
        let (head, tail) = cursor.split_at(n);
        *cursor = tail;
        Ok(head)
    }
    if bytes.len() < 8 {
        // A prefix of the magic reads as a torn write, anything else as a
        // foreign format.
        return if MAGIC_PREFIX.starts_with(&bytes[..bytes.len().min(7)]) {
            Err(CheckpointError::Truncated)
        } else {
            Err(CheckpointError::BadMagic)
        };
    }
    if &bytes[..7] != MAGIC_PREFIX {
        return Err(CheckpointError::BadMagic);
    }
    if bytes[7] != VERSION {
        return Err(CheckpointError::UnsupportedVersion { found: bytes[7] });
    }
    // Everything before the 4-byte CRC trailer is the checksummed body.
    if bytes.len() < 8 + 8 + 4 {
        return Err(CheckpointError::Truncated);
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 4);
    let mut cursor = &body[8..];
    let count = u64::from_le_bytes(take(&mut cursor, 8)?.try_into().expect("8 bytes")) as usize;
    if count != params.len() {
        return Err(CheckpointError::ShapeMismatch { index: count.min(params.len()) });
    }
    // First pass: decode and validate fully before mutating anything.
    let mut decoded: Vec<Vec<f32>> = Vec::with_capacity(count);
    for (i, p) in params.iter().enumerate() {
        let rows = u64::from_le_bytes(take(&mut cursor, 8)?.try_into().expect("8 bytes")) as usize;
        let cols = u64::from_le_bytes(take(&mut cursor, 8)?.try_into().expect("8 bytes")) as usize;
        if (rows, cols) != p.shape() {
            return Err(CheckpointError::ShapeMismatch { index: i });
        }
        let raw = take(&mut cursor, 4 * rows * cols)?;
        let data = raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        decoded.push(data);
    }
    if !cursor.is_empty() {
        return Err(CheckpointError::TrailingBytes);
    }
    let expected = u32::from_le_bytes(trailer.try_into().expect("4 bytes"));
    let actual = crc32(body);
    if expected != actual {
        return Err(CheckpointError::BadChecksum { expected, actual });
    }
    for (p, d) in params.iter().zip(decoded) {
        p.set_data(&d);
    }
    Ok(())
}

/// Structurally validates a checkpoint byte stream *without* a target
/// parameter list: checks the magic, version, framing and the CRC-32
/// trailer, and returns the declared tensor shapes in order.
///
/// This is the ingestion guard of the serving layer: an uploaded
/// checkpoint is validated (and its shapes compared against the policy the
/// problem implies) before any network parameters are touched, so a
/// truncated body or flipped bit maps to a clean client error instead of
/// a partially restored model.
///
/// # Errors
///
/// The same [`CheckpointError`] taxonomy as [`params_from_bytes`], except
/// that `ShapeMismatch` cannot occur (there is no target to mismatch);
/// declared sizes that exceed the stream report as
/// [`CheckpointError::Truncated`].
pub fn checkpoint_shapes(bytes: &[u8]) -> Result<Vec<(usize, usize)>, CheckpointError> {
    fn take<'a>(cursor: &mut &'a [u8], n: usize) -> Result<&'a [u8], CheckpointError> {
        if cursor.len() < n {
            return Err(CheckpointError::Truncated);
        }
        let (head, tail) = cursor.split_at(n);
        *cursor = tail;
        Ok(head)
    }
    if bytes.len() < 8 {
        return if MAGIC_PREFIX.starts_with(&bytes[..bytes.len().min(7)]) {
            Err(CheckpointError::Truncated)
        } else {
            Err(CheckpointError::BadMagic)
        };
    }
    if &bytes[..7] != MAGIC_PREFIX {
        return Err(CheckpointError::BadMagic);
    }
    if bytes[7] != VERSION {
        return Err(CheckpointError::UnsupportedVersion { found: bytes[7] });
    }
    if bytes.len() < 8 + 8 + 4 {
        return Err(CheckpointError::Truncated);
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 4);
    let mut cursor = &body[8..];
    let count = u64::from_le_bytes(take(&mut cursor, 8)?.try_into().expect("8 bytes"));
    // Each tensor needs at least its 16-byte shape header, so a declared
    // count beyond that bound is a truncation (or a hostile header), not a
    // reason to allocate.
    if count > (cursor.len() / 16) as u64 {
        return Err(CheckpointError::Truncated);
    }
    let mut shapes = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let rows = u64::from_le_bytes(take(&mut cursor, 8)?.try_into().expect("8 bytes")) as usize;
        let cols = u64::from_le_bytes(take(&mut cursor, 8)?.try_into().expect("8 bytes")) as usize;
        // Overflow-safe payload size; anything that exceeds the remaining
        // stream is truncation.
        let payload = rows
            .checked_mul(cols)
            .and_then(|n| n.checked_mul(4))
            .ok_or(CheckpointError::Truncated)?;
        take(&mut cursor, payload)?;
        shapes.push((rows, cols));
    }
    if !cursor.is_empty() {
        return Err(CheckpointError::TrailingBytes);
    }
    let expected = u32::from_le_bytes(trailer.try_into().expect("4 bytes"));
    let actual = crc32(body);
    if expected != actual {
        return Err(CheckpointError::BadChecksum { expected, actual });
    }
    Ok(shapes)
}

/// Writes a checkpoint of `params` to `path` crash-safely: the bytes go to
/// a temporary file in the same directory, are flushed to stable storage,
/// and are renamed over `path` in one step. A crash (or full disk) at any
/// point leaves `path` either absent or holding its previous complete
/// contents — never a half-written checkpoint.
///
/// # Errors
///
/// Returns [`CheckpointFileError::Io`] if any filesystem step fails; the
/// temporary file is cleaned up on a best-effort basis.
pub fn save_params_atomic(params: &[Tensor], path: &Path) -> Result<(), CheckpointFileError> {
    let mut bytes = params_to_bytes(params);
    // Chaos site `checkpoint.save`: a firing `corrupt` rule flips one bit
    // after the CRC trailer was computed (rot between serialization and
    // stable storage — the next load must detect it); a firing `error`
    // rule becomes a torn temp file below.
    let injected = nptsn_chaos::point_bytes("checkpoint.save", &mut bytes);
    let file_name = path.file_name().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("checkpoint path {} has no file name", path.display()),
        )
    })?;
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    // Same directory as the destination so the rename cannot cross a
    // filesystem boundary (which would make it non-atomic).
    let tmp = dir.join(format!(".{}.tmp.{}", file_name.to_string_lossy(), std::process::id()));
    let write = (|| -> std::io::Result<()> {
        let mut f = File::create(&tmp)?;
        if let Err(fault) = injected {
            // Injected write failure: half the payload reaches the temp
            // file before the "crash", exercising cleanup and destination
            // atomicity.
            let _ = f.write_all(&bytes[..bytes.len() / 2]);
            return Err(fault.into());
        }
        f.write_all(&bytes)?;
        f.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if write.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    write.map_err(CheckpointFileError::Io)
}

/// Reads the checkpoint at `path` into `params` (same contract as
/// [`params_from_bytes`]).
///
/// # Errors
///
/// [`CheckpointFileError::Io`] if the file cannot be read,
/// [`CheckpointFileError::Format`] if its contents fail validation; in
/// both cases the target parameters are left untouched.
pub fn load_params(params: &[Tensor], path: &Path) -> Result<(), CheckpointFileError> {
    let mut bytes = fs::read(path)?;
    // Chaos site `checkpoint.load`: `corrupt` models bit rot between write
    // and read (the CRC trailer must catch it); `error` models a failing
    // read.
    nptsn_chaos::point_bytes("checkpoint.load", &mut bytes)
        .map_err(|e| CheckpointFileError::Io(e.into()))?;
    params_from_bytes(params, &bytes)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, Mlp, Module};
    use nptsn_rand::rngs::StdRng;
    use nptsn_rand::SeedableRng;

    /// A unique temp-dir path per test (no wall clock available: process id
    /// + test name keep parallel test runs apart).
    fn temp_path(test: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("nptsn-ck-{}-{test}.bin", std::process::id()))
    }

    #[test]
    fn crc32_reference_vector() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_restores_network_behavior() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = Mlp::new(&mut rng, &[3, 8, 2], Activation::Tanh, Activation::Identity);
        let b = Mlp::new(&mut rng, &[3, 8, 2], Activation::Tanh, Activation::Identity);
        let x = nptsn_tensor::Tensor::from_vec(1, 3, vec![0.3, -0.1, 0.7]);
        assert_ne!(a.forward(&x).to_vec(), b.forward(&x).to_vec());
        let ck = params_to_bytes(&a.parameters());
        params_from_bytes(&b.parameters(), &ck).unwrap();
        assert_eq!(a.forward(&x).to_vec(), b.forward(&x).to_vec());
    }

    #[test]
    fn bad_magic_rejected() {
        let p = nptsn_tensor::Tensor::param(1, 1, vec![1.0]);
        let err = params_from_bytes(&[p], b"NOTACKPT........").unwrap_err();
        assert_eq!(err, CheckpointError::BadMagic);
    }

    #[test]
    fn stale_version_rejected() {
        // A v1 checkpoint: same layout minus the trailer, magic NPTSNCK1.
        let p = nptsn_tensor::Tensor::param(1, 1, vec![1.0]);
        let mut bytes = params_to_bytes(std::slice::from_ref(&p));
        bytes[7] = b'1';
        bytes.truncate(bytes.len() - 4); // v1 had no CRC trailer
        assert_eq!(
            params_from_bytes(std::slice::from_ref(&p), &bytes),
            Err(CheckpointError::UnsupportedVersion { found: b'1' })
        );
        // A future version is refused the same way, even when intact.
        let mut future = params_to_bytes(std::slice::from_ref(&p));
        future[7] = b'3';
        assert_eq!(
            params_from_bytes(std::slice::from_ref(&p), &future),
            Err(CheckpointError::UnsupportedVersion { found: b'3' })
        );
    }

    #[test]
    fn truncation_rejected_without_mutation() {
        let p = nptsn_tensor::Tensor::param(1, 2, vec![5.0, 6.0]);
        let full = params_to_bytes(std::slice::from_ref(&p));
        // Every proper prefix must fail cleanly — never panic, never
        // mutate. Short prefixes of valid magic read as truncation, not as
        // a foreign format.
        for cut in 0..full.len() {
            let err = params_from_bytes(std::slice::from_ref(&p), &full[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated | CheckpointError::TrailingBytes
                ),
                "prefix of {cut} bytes: unexpected {err:?}"
            );
            assert_eq!(p.to_vec(), vec![5.0, 6.0], "target untouched on error");
        }
    }

    #[test]
    fn every_flipped_bit_is_detected() {
        let p = nptsn_tensor::Tensor::param(1, 2, vec![5.0, 6.0]);
        let full = params_to_bytes(std::slice::from_ref(&p));
        for byte in 0..full.len() {
            let mut corrupt = full.clone();
            corrupt[byte] ^= 0x10;
            let err = params_from_bytes(std::slice::from_ref(&p), &corrupt).unwrap_err();
            assert_eq!(p.to_vec(), vec![5.0, 6.0], "byte {byte}: target mutated");
            // Flips in the data or trailer surface as checksum failures;
            // flips in magic/header fields fail structurally first.
            match byte {
                0..=6 => assert_eq!(err, CheckpointError::BadMagic, "byte {byte}"),
                7 => assert!(
                    matches!(err, CheckpointError::UnsupportedVersion { .. }),
                    "byte {byte}: {err:?}"
                ),
                _ => assert!(
                    matches!(
                        err,
                        CheckpointError::BadChecksum { .. }
                            | CheckpointError::ShapeMismatch { .. }
                            | CheckpointError::Truncated
                            | CheckpointError::TrailingBytes
                    ),
                    "byte {byte}: {err:?}"
                ),
            }
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = nptsn_tensor::Tensor::param(1, 2, vec![1.0, 2.0]);
        let b = nptsn_tensor::Tensor::param(2, 1, vec![0.0, 0.0]);
        let bytes = params_to_bytes(&[a]);
        assert_eq!(
            params_from_bytes(&[b], &bytes),
            Err(CheckpointError::ShapeMismatch { index: 0 })
        );
        let c = nptsn_tensor::Tensor::param(1, 1, vec![0.0]);
        let d = nptsn_tensor::Tensor::param(1, 1, vec![0.0]);
        let bytes2 = params_to_bytes(std::slice::from_ref(&c));
        assert!(matches!(
            params_from_bytes(&[c, d], &bytes2),
            Err(CheckpointError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let p = nptsn_tensor::Tensor::param(1, 1, vec![1.0]);
        let mut bytes = params_to_bytes(std::slice::from_ref(&p));
        bytes.push(0);
        assert_eq!(params_from_bytes(&[p], &bytes), Err(CheckpointError::TrailingBytes));
    }

    #[test]
    fn errors_display() {
        for e in [
            CheckpointError::BadMagic,
            CheckpointError::UnsupportedVersion { found: b'1' },
            CheckpointError::Truncated,
            CheckpointError::ShapeMismatch { index: 3 },
            CheckpointError::TrailingBytes,
            CheckpointError::BadChecksum { expected: 1, actual: 2 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn shapes_probe_matches_layout() {
        let a = nptsn_tensor::Tensor::param(2, 3, vec![0.0; 6]);
        let b = nptsn_tensor::Tensor::param(1, 4, vec![0.0; 4]);
        let bytes = params_to_bytes(&[a, b]);
        assert_eq!(checkpoint_shapes(&bytes).unwrap(), vec![(2, 3), (1, 4)]);
        assert_eq!(checkpoint_shapes(&params_to_bytes(&[])).unwrap(), vec![]);
    }

    #[test]
    fn shapes_probe_rejects_every_fault() {
        let p = nptsn_tensor::Tensor::param(1, 2, vec![5.0, 6.0]);
        let full = params_to_bytes(std::slice::from_ref(&p));
        // Truncation at every cut point.
        for cut in 0..full.len() {
            assert!(
                matches!(
                    checkpoint_shapes(&full[..cut]),
                    Err(CheckpointError::Truncated | CheckpointError::TrailingBytes)
                ),
                "prefix of {cut} bytes"
            );
        }
        // A flipped payload bit is a checksum failure.
        let mut rotted = full.clone();
        rotted[20] ^= 0x40;
        assert!(matches!(
            checkpoint_shapes(&rotted),
            Err(CheckpointError::BadChecksum { .. } | CheckpointError::Truncated)
        ));
        // Foreign bytes and stale versions are refused up front.
        assert_eq!(checkpoint_shapes(b"GETxHTTP/1.1"), Err(CheckpointError::BadMagic));
        let mut v1 = full.clone();
        v1[7] = b'1';
        assert_eq!(
            checkpoint_shapes(&v1),
            Err(CheckpointError::UnsupportedVersion { found: b'1' })
        );
        // A hostile count/shape header cannot force an allocation or an
        // overflow: it reads as truncation.
        let mut hostile = full.clone();
        hostile[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(checkpoint_shapes(&hostile), Err(CheckpointError::Truncated));
        let mut wide = full.clone();
        wide[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        wide[24..32].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(checkpoint_shapes(&wide), Err(CheckpointError::Truncated));
    }

    #[test]
    fn atomic_file_roundtrip() {
        let path = temp_path("roundtrip");
        let mut rng = StdRng::seed_from_u64(1);
        let a = Mlp::new(&mut rng, &[2, 4, 1], Activation::Tanh, Activation::Identity);
        let b = Mlp::new(&mut rng, &[2, 4, 1], Activation::Tanh, Activation::Identity);
        save_params_atomic(&a.parameters(), &path).unwrap();
        load_params(&b.parameters(), &path).unwrap();
        let x = nptsn_tensor::Tensor::from_vec(1, 2, vec![0.5, -0.25]);
        assert_eq!(a.forward(&x).to_vec(), b.forward(&x).to_vec());
        // Overwriting an existing checkpoint also goes through the rename.
        save_params_atomic(&b.parameters(), &path).unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_fault_injection() {
        let path = temp_path("faults");
        let p = nptsn_tensor::Tensor::param(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        save_params_atomic(std::slice::from_ref(&p), &path).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Simulated torn write: the file holds only a prefix.
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        match load_params(std::slice::from_ref(&p), &path) {
            Err(CheckpointFileError::Format(CheckpointError::Truncated)) => {}
            other => panic!("expected truncation, got {other:?}"),
        }

        // Bit rot: one flipped bit in the tensor payload.
        let mut rotted = good.clone();
        let mid = 8 + 8 + 16 + 2; // inside the first tensor's f32 data
        rotted[mid] ^= 0x01;
        std::fs::write(&path, &rotted).unwrap();
        match load_params(std::slice::from_ref(&p), &path) {
            Err(CheckpointFileError::Format(CheckpointError::BadChecksum { .. })) => {}
            other => panic!("expected checksum failure, got {other:?}"),
        }

        // Missing file: an I/O error, not a panic.
        let _ = std::fs::remove_file(&path);
        match load_params(std::slice::from_ref(&p), &path) {
            Err(CheckpointFileError::Io(_)) => {}
            other => panic!("expected i/o error, got {other:?}"),
        }
        assert_eq!(p.to_vec(), vec![1.0, 2.0, 3.0, 4.0], "target never mutated");
    }

    #[test]
    fn save_rejects_directoryless_path() {
        let p = nptsn_tensor::Tensor::param(1, 1, vec![1.0]);
        match save_params_atomic(std::slice::from_ref(&p), Path::new("/")) {
            Err(CheckpointFileError::Io(_)) => {}
            other => panic!("expected i/o error, got {other:?}"),
        }
    }
}
